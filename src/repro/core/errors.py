"""Exception hierarchy for the repro package.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle all
library-level failures while letting genuine bugs (``TypeError`` etc.)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent user-supplied configuration."""


class GridError(ReproError):
    """A grid, mask, or stencil could not be constructed as requested."""


class DecompositionError(ReproError):
    """A block decomposition of the global domain is impossible or invalid."""


class KernelError(ReproError):
    """A kernel backend was requested that is unknown or unavailable."""


class SolverError(ReproError):
    """A linear solver was misused (bad operator, bad preconditioner, ...)."""


class BreakdownError(SolverError):
    """An iteration produced a scalar that makes continuing meaningless.

    Raised from inside a solver's ``_iterate`` hook (vanished or
    non-finite inner products); the shared convergence loop converts it
    into a diagnosed :class:`ConvergenceError` that carries the partial
    result, so callers never see a bare breakdown from ``solve``.
    """


class ConvergenceError(SolverError):
    """An iterative method failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Final residual norm achieved.
    result:
        The partial :class:`~repro.solvers.result.SolveResult` at the
        point of failure -- iterate, residual history, setup and loop
        events -- so callers can inspect (or restart from) whatever the
        solver had before it gave up.  ``None`` only when the failure
        predates any solver state.
    diagnosis:
        A structured :class:`~repro.solvers.health.SolverDiagnosis`
        explaining *why* the solve stopped (non-finite residual,
        divergence, breakdown, exhausted budget, ...); ``None`` for
        failures raised outside the guarded convergence loop.
    """

    def __init__(self, message, iterations=None, residual_norm=None,
                 result=None, diagnosis=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm
        self.result = result
        self.diagnosis = diagnosis

    def __reduce__(self):
        # Default exception pickling re-inits from ``args`` only, which
        # would drop the attached result/diagnosis when the error
        # crosses a process boundary (the report runner's worker pool).
        return (self.__class__,
                (self.args[0] if self.args else "",
                 self.iterations, self.residual_norm,
                 self.result, self.diagnosis))
