"""Exception hierarchy for the repro package.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle all
library-level failures while letting genuine bugs (``TypeError`` etc.)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent user-supplied configuration."""


class GridError(ReproError):
    """A grid, mask, or stencil could not be constructed as requested."""


class DecompositionError(ReproError):
    """A block decomposition of the global domain is impossible or invalid."""


class SolverError(ReproError):
    """A linear solver was misused (bad operator, bad preconditioner, ...)."""


class ConvergenceError(SolverError):
    """An iterative method failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Final residual norm achieved.
    """

    def __init__(self, message, iterations=None, residual_norm=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm
