"""Physical and numerical constants shared across the code base.

The values here follow the conventions of the Parallel Ocean Program (POP)
reference manual (Smith et al., 2010) where applicable; they are grouped so
that the rest of the code never hard-codes magic numbers.
"""

import numpy as np

#: Mean Earth radius in meters (spherical Earth, POP convention).
EARTH_RADIUS_M = 6.371e6

#: Gravitational acceleration in m/s^2.
GRAVITY_M_S2 = 9.806

#: Seconds in one simulated day.
SECONDS_PER_DAY = 86400.0

#: Reference sea-water density in kg/m^3 (Boussinesq reference).
RHO_SW_KG_M3 = 1026.0

#: Default floating-point dtype for all fields.  POP runs in double
#: precision; the EVP marching method in particular *requires* double
#: precision to keep round-off near 1e-8 on small blocks (paper section 4.3).
DEFAULT_DTYPE = np.float64

#: Default solver convergence tolerance used by CESM POP
#: (paper section 6: default is 1e-13, explored range 1e-10 .. 1e-16).
DEFAULT_SOLVER_TOLERANCE = 1.0e-13

#: Default interval, in iterations, between solver convergence checks
#: (paper section 5.2: "for all solvers we checked for convergence every
#: 10 iterations").
DEFAULT_CONVERGENCE_CHECK_FREQ = 10

#: Lanczos convergence tolerance for eigenvalue-bound estimation
#: (paper section 3: "setting the Lanczos convergence tolerance to 0.15
#: works efficiently in both 1 degree and 0.1 degree POP").
DEFAULT_LANCZOS_TOLERANCE = 0.15

#: Magnitude of the initial ocean-temperature perturbation used to build
#: verification ensembles (paper section 6: "an order 1e-14 perturbation").
ENSEMBLE_PERTURBATION = 1.0e-14

#: Default ensemble size for the RMSZ consistency test (paper section 6:
#: "an ensemble of size 40 was sufficient").
DEFAULT_ENSEMBLE_SIZE = 40

#: Relative depth assigned to land cells when an elliptic sub-problem must
#: remain non-degenerate (used by the EVP preconditioner; see
#: ``repro.precond.evp`` and DESIGN.md section 6).
LAND_EPSILON_DEPTH = 1.0e-3

#: Bytes per double-precision word, used by the communication cost models.
BYTES_PER_WORD = 8
