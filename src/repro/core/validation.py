"""Small argument-validation helpers used across public APIs.

These raise :class:`repro.core.errors.ConfigurationError` with messages
that name the offending parameter, keeping validation terse at call
sites.
"""

import numpy as np

from repro.core.errors import ConfigurationError


def require_positive_int(value, name):
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def require_positive_float(value, name):
    """Validate that ``value`` is a finite float > 0 and return it."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value}")
    return value


def require_fraction(value, name):
    """Validate that ``value`` lies in ``[0, 1]`` and return it as float."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_shape(array, shape, name):
    """Validate that ``array`` has exactly ``shape``."""
    array = np.asarray(array)
    if array.shape != tuple(shape):
        raise ConfigurationError(
            f"{name} must have shape {tuple(shape)}, got {array.shape}"
        )
    return array


def require_choice(value, choices, name):
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
