"""Two-tier content-addressed artifact cache.

The expensive one-time artifacts of the reproduction -- EVP influence
matrices (paper section 4.2: ``O(n^3)`` per tile group), Lanczos
eigenvalue bounds (section 3.2) and whole measured solve event streams
-- are all *pure functions of their inputs*: the grid content, the
stencil, and the solver/preconditioner parameters.  This module gives
them a shared memoization substrate:

* a **memory tier**: a process-local dict holding live Python objects
  (the role the old per-module ``_CONFIG_CACHE``-style dicts played),
* a **disk tier**: content-addressed ``.npz`` blobs under a cache
  directory, written atomically, shared between processes and across
  runs.

Keys are SHA-256 digests of a canonical byte encoding of the inputs
(scalars, strings, tuples, dicts and numpy arrays), always salted with
:data:`CACHE_FORMAT_VERSION` by the callers so that format changes
invalidate old entries wholesale.

Self-healing
------------
Every entry written since format v4 carries a SHA-256 checksum over its
payload (arrays + caller metadata) inside the npz metadata member.
:meth:`ArtifactCache.load` verifies that checksum on every read: a
corrupted, truncated, or silently bit-flipped entry is **quarantined**
(moved into ``<cache_dir>/quarantine/``) and reported as a miss, never
raised -- callers fall through to their rebuild path and the store
heals itself.  :meth:`ArtifactCache.verify` audits the whole disk tier
offline (``repro cache verify [--repair]``) without disturbing healthy
entries.

The global cache used by the experiment layer defaults to memory-only;
the disk tier activates when ``REPRO_CACHE_DIR`` is set, when the CLI
passes ``--cache-dir`` (or its default), or when
:func:`configure_cache` is called explicitly.

Sharding
--------
With ``shards=N`` the disk tier spreads entries across ``N``
``shard-XX/`` subdirectories by key prefix, each protected by its own
advisory file lock, so many concurrent writers (service workers,
pipeline processes) never serialize on one directory.  Readers take the
shard lock *shared* for the duration of a read, writers and the LRU
evictor take it *exclusive* -- an entry currently being read can never
be evicted or replaced mid-read.  ``max_bytes`` activates
byte-accounted least-recently-used eviction (access times are bumped on
every hit); eviction counts persist per shard so ``repro cache stats``
reports them across processes.  Entries written before sharding was
enabled remain readable: lookups fall back to the flat legacy layout.
"""

import contextlib
import hashlib
import json
import os
import struct
import tempfile
import zipfile

import numpy as np

try:  # pragma: no cover - fcntl is stdlib on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - Windows: locks degrade to no-ops
    fcntl = None

#: Bump when the on-disk payload layout or key semantics change; every
#: caller folds this into its digest so stale entries simply miss.
#: v2: the solver contexts gained a true ``scale`` primitive (replacing
#: the ``axpy(factor-1, copy(v), v)`` workaround), which changes cached
#: numerics (Lanczos eigenbounds, solve iterates) in the last bits.
#: v3: the EVP ring correction stores ``W^-1`` from an LU solve
#: (``np.linalg.solve`` against the identity) instead of explicit
#: ``np.linalg.inv``; persisted ``r_*`` influence arrays change in the
#: last bits.
#: v4: entries carry a self-describing integrity envelope (SHA-256
#: content checksum, verified on every read); pre-v4 blobs have no
#: checksum and must not be trusted as verified.
CACHE_FORMAT_VERSION = 4

#: Filename prefix for every entry this cache writes, so ``clear()``
#: only ever deletes files it owns.
_FILE_PREFIX = "repro-"

#: npz member holding the JSON metadata of an entry.
_META_KEY = "__meta__"

#: Subdirectory (inside the cache dir) receiving damaged entries.
QUARANTINE_DIRNAME = "quarantine"

#: Prefix of the per-shard subdirectories (``shard-00`` ... ``shard-NN``).
SHARD_DIR_PREFIX = "shard-"

#: Name of the advisory lock file inside each shard directory.
_SHARD_LOCK_NAME = ".shard.lock"

#: Name of the persisted per-shard counter file (eviction totals
#: survive across processes; hits/misses stay per-process).
_SHARD_STATS_NAME = "shard-stats.json"


@contextlib.contextmanager
def _file_lock(lock_path, exclusive):
    """Advisory ``flock`` on ``lock_path`` (no-op where unsupported).

    Shared mode lets any number of readers proceed together; exclusive
    mode (writers, the evictor) waits for all of them to finish.  The
    lock file itself is tiny and never contains data.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


# ----------------------------------------------------------------------
# canonical digests
# ----------------------------------------------------------------------
def canonical_bytes(obj):
    """A stable byte encoding of nested Python/numpy values.

    Supports ``None``, bools, ints, floats, strings, bytes, numpy
    scalars and arrays, and (nested) tuples/lists/dicts.  Dict items are
    sorted by their encoded keys, so insertion order never leaks into a
    digest.  Floats encode via ``repr`` (exact round-trip in Python 3).
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj, out):
    if obj is None:
        out += b"N;"
    elif isinstance(obj, bool):
        out += b"B1;" if obj else b"B0;"
    elif isinstance(obj, int):
        out += b"I" + str(obj).encode() + b";"
    elif isinstance(obj, float):
        out += b"F" + repr(obj).encode() + b";"
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"S" + str(len(raw)).encode() + b":" + raw
    elif isinstance(obj, bytes):
        out += b"Y" + str(len(obj)).encode() + b":" + obj
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        out += (b"A" + str(arr.dtype).encode() + b"|"
                + str(arr.shape).encode() + b"|")
        out += arr.tobytes()
        out += b";"
    elif isinstance(obj, (tuple, list)):
        out += b"T("
        for item in obj:
            _encode(item, out)
        out += b")"
    elif isinstance(obj, dict):
        items = sorted(
            ((canonical_bytes(k), v) for k, v in obj.items()),
            key=lambda kv: kv[0],
        )
        out += b"D{"
        for kb, v in items:
            out += kb
            _encode(v, out)
        out += b"}"
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r} for a "
            "cache key; pass scalars, strings, arrays, tuples or dicts"
        )


def digest_of(*parts):
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    h.update(struct.pack("<I", len(parts)))
    h.update(canonical_bytes(tuple(parts)))
    return h.hexdigest()


def decomp_signature(decomp):
    """A digestable summary of a block decomposition (or ``None``).

    Uses only the active-block geometry (duck-typed), which is exactly
    what block preconditioners and event rescaling depend on.
    """
    if decomp is None:
        return None
    blocks = tuple(
        (int(b.j0), int(b.j1), int(b.i0), int(b.i1))
        for b in decomp.active_blocks
    )
    return ("decomp", blocks)


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class CacheEntryDamaged(Exception):
    """Internal: one disk entry failed parsing or checksum verification.

    Never escapes :class:`ArtifactCache` -- ``load`` converts it into a
    quarantine + miss, ``verify`` into an audit finding.
    """


class ArtifactCache:
    """Two-tier (memory + content-addressed disk) artifact cache.

    Parameters
    ----------
    cache_dir:
        Directory for the disk tier; ``None`` disables persistence
        (memory tier only).  Created on first write.
    memory:
        Keep a process-local object tier (default True).
    shards:
        Spread disk entries across this many ``shard-XX/``
        subdirectories by key prefix, each with its own advisory file
        lock (see the module docstring).  ``None``/``0``/``1`` keeps
        the flat single-directory layout, bit-compatible with every
        earlier format.
    max_bytes:
        Total on-disk byte budget; when set, each store triggers
        least-recently-used eviction in its shard down to the shard's
        share of the budget.  ``None`` (default) never evicts.

    Lookup counters: ``memory_hits`` / ``disk_hits`` count successful
    lookups per tier; ``misses`` counts lookups that found nothing in
    either tier (a disk lookup is only issued after a memory miss, so
    the sum is consistent); ``writes`` counts disk stores;
    ``quarantined`` counts damaged entries moved aside; ``rebuilds``
    counts stores that replaced a previously quarantined entry (the
    self-healing path after ``verify --repair`` or a damaged read);
    ``evictions`` counts entries removed by the LRU policy.
    """

    def __init__(self, cache_dir=None, memory=True, shards=None,
                 max_bytes=None):
        self.cache_dir = os.path.abspath(cache_dir) if cache_dir else None
        self._memory = {} if memory else None
        shards = int(shards) if shards else 0
        self.shards = shards if shards > 1 else 0
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.rebuilds = 0
        self.evictions = 0
        #: Per-shard in-process lookup counters: index -> dict.
        self._shard_counters = {}

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def get_object(self, category, key):
        """Live object for ``(category, key)`` or ``None``."""
        if self._memory is None:
            return None
        obj = self._memory.get((category, key))
        if obj is not None:
            self.memory_hits += 1
        return obj

    def put_object(self, category, key, value):
        """Remember a live object in the memory tier."""
        if self._memory is not None:
            self._memory[(category, key)] = value
        return value

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _entry_name(self, category, key):
        return f"{_FILE_PREFIX}{category}-{key}.npz"

    def shard_index(self, key):
        """Shard owning ``key`` (0 when sharding is disabled).

        Keys are SHA-256 hex digests, so the leading prefix is already
        uniformly distributed; non-hex keys fall back to hashing.
        """
        if not self.shards:
            return 0
        text = str(key)
        try:
            prefix = int(text[:8], 16)
        except ValueError:
            prefix = int(hashlib.sha256(text.encode()).hexdigest()[:8], 16)
        return prefix % self.shards

    def _shard_dir(self, index):
        if not self.shards:
            return self.cache_dir
        return os.path.join(self.cache_dir, f"{SHARD_DIR_PREFIX}{index:02d}")

    def _shard_dirs(self):
        """Every possible shard directory (existing or not)."""
        if self.cache_dir is None:
            return []
        if not self.shards:
            return [self.cache_dir]
        return [self._shard_dir(i) for i in range(self.shards)]

    def _path(self, category, key):
        return os.path.join(self._shard_dir(self.shard_index(key)),
                            self._entry_name(category, key))

    def _legacy_path(self, category, key):
        """Flat-layout path (pre-sharding), used as a read fallback."""
        return os.path.join(self.cache_dir, self._entry_name(category, key))

    @property
    def _locking(self):
        """Whether shard locks are engaged (sharded or evicting)."""
        return bool(self.shards or self.max_bytes)

    def _lock(self, shard_dir, exclusive):
        """Advisory lock on one shard (no-op in flat unlocked mode)."""
        if not self._locking:
            return contextlib.nullcontext()
        os.makedirs(shard_dir, exist_ok=True)
        return _file_lock(os.path.join(shard_dir, _SHARD_LOCK_NAME),
                          exclusive)

    def _count_shard(self, index, field):
        entry = self._shard_counters.setdefault(
            index, {"hits": 0, "misses": 0, "evictions": 0})
        entry[field] += 1

    def quarantine_dir(self):
        """Directory receiving damaged entries (inside the cache dir)."""
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, QUARANTINE_DIRNAME)

    def _quarantine(self, path, reason):
        """Move a damaged entry aside instead of destroying evidence.

        The file lands in ``<cache_dir>/quarantine/`` under its own
        name and the reason is appended to ``quarantine/REASONS.log``;
        an operator (or the chaos-smoke CI job) can inspect exactly
        what was damaged and why.  Quarantining never raises -- if the
        move itself fails the file is deleted so the slot is freed
        either way.
        """
        qdir = self.quarantine_dir()
        try:
            os.makedirs(qdir, exist_ok=True)
            dest = os.path.join(qdir, os.path.basename(path))
            os.replace(path, dest)
            with open(os.path.join(qdir, "REASONS.log"), "a",
                      encoding="utf-8") as log:
                log.write(f"{os.path.basename(path)}\t{reason}\n")
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        self.quarantined += 1

    @staticmethod
    def _content_checksum(arrays, meta):
        """SHA-256 over the canonical payload encoding (order-stable)."""
        h = hashlib.sha256()
        h.update(canonical_bytes({str(k): np.asarray(v)
                                  for k, v in arrays.items()}))
        h.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
        return h.hexdigest()

    def _read_entry(self, path):
        """Parse one disk entry; returns ``(arrays, meta)``.

        Raises ``CacheEntryDamaged`` (carrying the reason) for anything
        unusable: unreadable npz, missing/garbled metadata member, or a
        checksum that does not match the recorded one.  Pre-v4 entries
        without an integrity envelope load as-is (their keys are salted
        with the old format version, so normal lookups never hit them).
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                meta_doc = json.loads(str(data[_META_KEY][()]))
                arrays = {name: data[name] for name in data.files
                          if name != _META_KEY}
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile, json.JSONDecodeError,
                UnicodeDecodeError) as exc:
            raise CacheEntryDamaged(f"unreadable ({exc})") from exc
        if isinstance(meta_doc, dict) and "__checksum__" in meta_doc:
            expected = meta_doc["__checksum__"]
            meta = meta_doc.get("meta", {})
            actual = self._content_checksum(arrays, meta)
            if actual != expected:
                raise CacheEntryDamaged(
                    f"checksum mismatch (sha256 {actual[:12]}... != "
                    f"recorded {str(expected)[:12]}...)")
            return arrays, meta
        # Legacy (pre-v4) layout: the metadata member is the caller's
        # meta itself and no checksum exists to verify.
        return arrays, meta_doc

    def load(self, category, key):
        """Disk entry as ``(arrays, meta)``; ``None`` (a miss) otherwise.

        Every read verifies the entry's content checksum.  Corrupted,
        truncated or unreadable entries are quarantined (moved to
        ``<cache_dir>/quarantine/``) and reported as misses, never
        raised -- the caller's rebuild-and-store path then heals the
        slot transparently.
        """
        if self.cache_dir is None:
            self.misses += 1
            return None
        index = self.shard_index(key)
        path = self._path(category, key)
        shard_dir = os.path.dirname(path)
        if not os.path.exists(path) and self.shards:
            # Entries written before sharding was enabled live in the
            # flat root; read them from there rather than rebuilding.
            legacy = self._legacy_path(category, key)
            if os.path.exists(legacy):
                path, shard_dir = legacy, self.cache_dir
        if not os.path.exists(path):
            self.misses += 1
            self._count_shard(index, "misses")
            return None
        try:
            # Readers hold the shard lock *shared* for the whole read:
            # the exclusive-locked LRU evictor (and concurrent writers)
            # can never remove or replace an entry mid-read.
            with self._lock(shard_dir, exclusive=False):
                arrays, meta = self._read_entry(path)
                if self.max_bytes:
                    try:  # LRU recency: a hit makes the entry young
                        os.utime(path)
                    except OSError:
                        pass
        except CacheEntryDamaged as exc:
            # A file that vanished under us (evicted/cleared by another
            # process between the existence check and the read) is a
            # plain miss, not damage to quarantine.
            if os.path.exists(path):
                self._quarantine(path, str(exc))
            self.misses += 1
            self._count_shard(index, "misses")
            return None
        self.disk_hits += 1
        self._count_shard(index, "hits")
        return arrays, meta

    def store(self, category, key, arrays=None, meta=None):
        """Atomically write ``(arrays, meta)``; returns the path or None.

        The entry embeds a SHA-256 checksum of its payload, is written
        to a temporary file *in the cache directory* (same filesystem,
        so the final rename cannot degrade to copy+delete), flushed and
        ``os.fsync``-ed, then moved into place with ``os.replace`` --
        concurrent readers and a crash mid-write can never observe a
        partial entry.
        """
        if self.cache_dir is None:
            return None
        path = self._path(category, key)
        shard_dir = os.path.dirname(path)
        os.makedirs(shard_dir, exist_ok=True)
        qdir = self.quarantine_dir()
        rebuilding = bool(
            qdir
            and os.path.exists(os.path.join(
                qdir, os.path.basename(path))))
        user_meta = meta if meta is not None else {}
        payload = dict(arrays or {})
        envelope = {
            "__checksum__": self._content_checksum(payload, user_meta),
            "format": CACHE_FORMAT_VERSION,
            "meta": user_meta,
        }
        payload[_META_KEY] = np.array(json.dumps(envelope))
        # The npz is fully written (and fsynced) *outside* the shard
        # lock; only the final rename and the eviction scan hold it.
        fd, tmp = tempfile.mkstemp(prefix=f"{_FILE_PREFIX}tmp-",
                                   dir=shard_dir)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            with self._lock(shard_dir, exclusive=True):
                os.replace(tmp, path)
                if self.max_bytes:
                    self._evict_shard(shard_dir,
                                      self.shard_index(key),
                                      protect=path)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return None
        self.writes += 1
        if rebuilding:
            self.rebuilds += 1
        return path

    # ------------------------------------------------------------------
    # LRU eviction
    # ------------------------------------------------------------------
    def _shard_budget(self):
        """Byte budget of one shard (the total split evenly)."""
        return self.max_bytes // max(1, self.shards or 1)

    def _evict_shard(self, shard_dir, index, protect=None):
        """Drop least-recently-used entries until the shard fits.

        Runs under the shard's *exclusive* lock: no reader holds the
        shared lock, so an entry currently being read can never be
        evicted.  The just-written entry (``protect``) is never evicted
        even when it alone exceeds the budget.  Cumulative eviction
        counts persist in the shard's stats file so a fresh process
        (``repro cache stats``) still reports them.
        """
        entries = []
        try:
            names = os.listdir(shard_dir)
        except OSError:
            return 0
        for name in names:
            if not (name.startswith(_FILE_PREFIX) and name.endswith(".npz")):
                continue
            path = os.path.join(shard_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        budget = self._shard_budget()
        evicted = 0
        entries.sort()  # oldest access first
        for _, size, path in entries:
            if total <= budget:
                break
            if path == protect:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self.evictions += evicted
            for _ in range(evicted):
                self._count_shard(index, "evictions")
            self._bump_persisted_evictions(shard_dir, evicted)
        return evicted

    def _shard_stats_path(self, shard_dir):
        return os.path.join(shard_dir, _SHARD_STATS_NAME)

    def _bump_persisted_evictions(self, shard_dir, count):
        """Add ``count`` to the shard's persisted eviction total.

        Called under the shard's exclusive lock, so the read-modify-
        write cannot race another evictor.
        """
        path = self._shard_stats_path(shard_dir)
        doc = self._read_persisted_stats(shard_dir)
        doc["evictions"] = int(doc.get("evictions", 0)) + int(count)
        try:
            fd, tmp = tempfile.mkstemp(prefix=".stats-tmp-", dir=shard_dir)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(tmp, path)
        except OSError:
            pass

    def _read_persisted_stats(self, shard_dir):
        try:
            with open(self._shard_stats_path(shard_dir),
                      encoding="utf-8") as handle:
                doc = json.load(handle)
            return doc if isinstance(doc, dict) else {}
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}

    def verify(self, repair=False):
        """Audit every disk entry; returns a summary dict.

        Each entry is fully read back and its checksum recomputed.  The
        summary maps ``checked``/``ok``/``legacy`` to counts and
        ``corrupt`` to a list of ``(path, reason)`` pairs.  With
        ``repair=True`` corrupt entries are quarantined on the spot (so
        the next lookup rebuilds them); without it the audit is
        read-only.  ``legacy`` counts pre-v4 entries that carry no
        checksum -- unreachable through current keys and left alone.
        """
        report = {"checked": 0, "ok": 0, "legacy": 0, "corrupt": [],
                  "quarantined": 0}
        for path in self._disk_entries():
            report["checked"] += 1
            try:
                with np.load(path, allow_pickle=False) as data:
                    meta_doc = json.loads(str(data[_META_KEY][()]))
                    has_envelope = (isinstance(meta_doc, dict)
                                    and "__checksum__" in meta_doc)
                self._read_entry(path)
            except CacheEntryDamaged as exc:
                report["corrupt"].append((path, str(exc)))
                if repair:
                    self._quarantine(path, f"verify: {exc}")
                    report["quarantined"] += 1
                continue
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile, json.JSONDecodeError,
                    UnicodeDecodeError) as exc:
                report["corrupt"].append((path, f"unreadable ({exc})"))
                if repair:
                    self._quarantine(path, f"verify: unreadable ({exc})")
                    report["quarantined"] += 1
                continue
            if has_envelope:
                report["ok"] += 1
            else:
                report["legacy"] += 1
        return report

    # ------------------------------------------------------------------
    # accounting + maintenance
    # ------------------------------------------------------------------
    def _disk_entries(self, directory=None):
        """Entry paths under ``directory`` (default: the whole tier).

        Sharded caches are walked shard by shard *plus* the flat root,
        so stats/clear/verify keep covering pre-sharding entries.
        """
        if self.cache_dir is None:
            return []
        dirs = ([directory] if directory is not None
                else [self.cache_dir] + ([] if not self.shards
                                         else self._shard_dirs()))
        out = []
        for base in dirs:
            if not os.path.isdir(base):
                continue
            for name in os.listdir(base):
                if name.startswith(_FILE_PREFIX) and name.endswith(".npz"):
                    out.append(os.path.join(base, name))
        return out

    @property
    def hits(self):
        """Total successful lookups across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_ratio(self):
        """Hits over total lookups (0.0 when nothing was looked up).

        Quarantined reads already count as misses (never as hits), so
        the ratio stays consistent through damage, ``verify --repair``
        and the rebuilds that follow.
        """
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def counters(self):
        """Snapshot of the lookup counters (plain dict)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "rebuilds": self.rebuilds,
            "evictions": self.evictions,
        }

    def shard_stats(self):
        """Per-shard entry counts, bytes and counters (list of dicts).

        ``hits``/``misses`` are this process's lookups; ``evictions``
        reads the persisted per-shard totals, so a fresh ``repro cache
        stats`` process still reports evictions performed earlier by
        the service or the pipeline.
        """
        out = []
        for index, shard_dir in enumerate(self._shard_dirs()):
            entries = self._disk_entries(shard_dir)
            size = 0
            for path in entries:
                try:
                    size += os.path.getsize(path)
                except OSError:
                    pass
            local = self._shard_counters.get(
                index, {"hits": 0, "misses": 0, "evictions": 0})
            persisted = self._read_persisted_stats(shard_dir)
            out.append({
                "shard": index,
                "dir": shard_dir,
                "entries": len(entries),
                "bytes": size,
                "hits": local["hits"],
                "misses": local["misses"],
                "evictions": int(persisted.get("evictions", 0)),
            })
        return out

    def _quarantine_entries(self):
        qdir = self.quarantine_dir()
        if qdir is None or not os.path.isdir(qdir):
            return []
        return [os.path.join(qdir, n) for n in os.listdir(qdir)
                if n.startswith(_FILE_PREFIX) and n.endswith(".npz")]

    def stats(self):
        """Entry counts, on-disk bytes and lookup counters."""
        entries = self._disk_entries()
        size = 0
        for path in entries:
            try:
                size += os.path.getsize(path)
            except OSError:
                pass
        out = {
            "cache_dir": self.cache_dir,
            "disk_entries": len(entries),
            "disk_bytes": size,
            "memory_entries": (0 if self._memory is None
                               else len(self._memory)),
            "quarantine_entries": len(self._quarantine_entries()),
            "shards": self.shards,
            "max_bytes": self.max_bytes,
        }
        out.update(self.counters())
        if self.shards:
            out["per_shard"] = self.shard_stats()
        return out

    def clear(self):
        """Drop both tiers; returns the number of disk entries removed."""
        removed = 0
        for path in self._disk_entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        if self._memory is not None:
            self._memory.clear()
        return removed

    def clear_memory(self):
        """Drop only the memory tier (used to simulate a fresh process)."""
        if self._memory is not None:
            self._memory.clear()


# ----------------------------------------------------------------------
# the process-global cache
# ----------------------------------------------------------------------
_GLOBAL_CACHE = None


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-artifacts``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-artifacts")


def _env_int(name):
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def get_cache():
    """The process-global cache (memory-only unless configured).

    The disk tier starts enabled only when ``REPRO_CACHE_DIR`` is set in
    the environment; the CLI and the pipeline enable it explicitly via
    :func:`configure_cache`.  ``REPRO_CACHE_SHARDS`` and
    ``REPRO_CACHE_MAX_BYTES`` opt the environment-configured cache into
    sharding and byte-budgeted LRU eviction.
    """
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ArtifactCache(
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            shards=_env_int("REPRO_CACHE_SHARDS"),
            max_bytes=_env_int("REPRO_CACHE_MAX_BYTES"))
    return _GLOBAL_CACHE


def set_cache(cache):
    """Swap the process-global cache; returns the previous one."""
    global _GLOBAL_CACHE
    old = _GLOBAL_CACHE
    _GLOBAL_CACHE = cache
    return old


def configure_cache(cache_dir=None, memory=True, shards=None,
                    max_bytes=None):
    """Install (and return) a fresh global cache with the given tiers."""
    set_cache(ArtifactCache(cache_dir=cache_dir, memory=memory,
                            shards=shards, max_bytes=max_bytes))
    return get_cache()
