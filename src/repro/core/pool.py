"""Rebuildable process pool + failure policy, shared by pipeline and
service.

A died worker breaks the whole ``ProcessPoolExecutor`` (every pending
future raises ``BrokenProcessPool``), and a wedged worker holds its
slot forever.  :class:`PoolHandle` wraps the executor so its owner can
throw a broken pool away and continue on a fresh one -- the entire
trick behind surviving crashes and timeouts, first built for the
parallel evaluation pipeline (``repro.reporting.runner``) and reused
verbatim by the solver service (``repro.service``).

:class:`FailurePolicy` decides what a failed unit of work does to the
rest of the run: abort, record-and-continue, or retry with exponential
backoff and deterministic jitter.  :func:`await_future` translates
infrastructure death (broken pool, wall-clock overrun) into the typed
errors the retry loop understands, leaving the handle ready to build a
fresh pool for the next attempt.
"""

from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.cache import ArtifactCache, set_cache
from repro.core.errors import ConfigurationError, ReproError
from repro.core.rng import make_rng
from repro.parallel.faults import WorkerCrashError


class StepTimeoutError(ReproError):
    """A unit of work exceeded its per-attempt wall-clock budget."""


@dataclass
class FailurePolicy:
    """What a failed unit of work does to the rest of the run.

    Parameters
    ----------
    mode:
        ``"fail_fast"`` aborts the run on the first failure,
        ``"continue"`` records the failure and keeps going,
        ``"retry"`` re-dispatches the work up to ``retries`` more
        times before recording it as failed.
    retries:
        Extra attempts per unit under ``"retry"`` (ignored otherwise).
    backoff:
        Base delay in seconds before attempt ``n+1``; the actual delay
        is ``backoff * 2**(n-1)`` plus a deterministic jitter in
        ``[0, backoff)`` derived from ``seed`` and the step index, so
        two retrying steps never thundering-herd the same moment twice.
    seed:
        Drives the jitter via :func:`~repro.core.rng.make_rng`.
    """

    MODES = ("fail_fast", "continue", "retry")

    mode: str = "retry"
    retries: int = 2
    backoff: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.mode not in self.MODES:
            raise ConfigurationError(
                f"failure policy mode {self.mode!r} not in {self.MODES}")
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ConfigurationError(
                f"backoff must be >= 0, got {self.backoff}")

    def attempts(self):
        """Total dispatches allowed per unit of work."""
        return 1 + (self.retries if self.mode == "retry" else 0)

    def delay(self, step_index, attempt):
        """Seconds to wait before dispatching ``attempt`` (>= 2)."""
        if self.backoff <= 0:
            return 0.0
        jitter = float(make_rng([self.seed, step_index, attempt])
                       .uniform(0.0, self.backoff))
        return self.backoff * 2.0 ** (attempt - 2) + jitter


def worker_init(cache_dir, shards=None, max_bytes=None):
    """Pool initializer: point the worker's global cache at the shared
    disk directory (fresh memory tier, fresh counters)."""
    set_cache(ArtifactCache(cache_dir=cache_dir, shards=shards,
                            max_bytes=max_bytes))


def make_pool(jobs, cache_dir, shards=None, max_bytes=None):
    """A ``ProcessPoolExecutor`` whose workers share one disk cache."""
    import multiprocessing

    try:
        # fork shares the parent's warmed memory tier for free and skips
        # re-import; unavailable on some platforms.
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        mp_context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context,
                               initializer=worker_init,
                               initargs=(cache_dir, shards, max_bytes))


class PoolHandle:
    """A rebuildable process pool.

    ``get()`` lazily builds the executor; ``rebuild()`` discards it
    (optionally killing wedged workers first) so the next ``get``
    starts fresh.  ``rebuilds`` counts how often that happened.
    """

    def __init__(self, jobs, cache_dir, shards=None, max_bytes=None):
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.shards = shards
        self.max_bytes = max_bytes
        self.pool = None
        self.rebuilds = 0

    def get(self):
        if self.pool is None:
            self.pool = make_pool(self.jobs, self.cache_dir,
                                  shards=self.shards,
                                  max_bytes=self.max_bytes)
        return self.pool

    def rebuild(self, kill=False):
        """Discard the current pool; the next ``get`` makes a new one."""
        if self.pool is not None:
            if kill:
                # A timed-out worker never returns on its own; reap it
                # hard.  ``_processes`` is private but there is no
                # public way to kill a pool's members.
                for proc in list((self.pool._processes or {}).values()):
                    try:
                        proc.kill()
                    except (OSError, AttributeError):
                        pass
            self.pool.shutdown(wait=not kill, cancel_futures=True)
            self.pool = None
            self.rebuilds += 1

    def shutdown(self):
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None


def await_future(future, handle, what, timeout=None):
    """Await one dispatched attempt, translating infrastructure death.

    A pool broken by a worker crash (or a future cancelled by a pool
    rebuild) becomes :class:`WorkerCrashError`; an attempt past
    ``timeout`` seconds becomes :class:`StepTimeoutError` after the
    wedged workers are killed.  Both leave ``handle`` ready to build a
    fresh pool for the retry.  ``what`` names the unit of work in the
    error message.
    """
    try:
        return future.result(timeout=timeout)
    except FutureTimeoutError:
        handle.rebuild(kill=True)
        raise StepTimeoutError(
            f"{what} exceeded its {timeout}s wall-clock budget") \
            from None
    except (BrokenProcessPool, CancelledError):
        handle.rebuild()
        raise WorkerCrashError(
            f"a worker process died while executing {what}") from None
