"""Versioned, checksummed, atomically-written snapshots.

The campaigns this repository reproduces -- long solver runs, multi-day
model integrations, the 14-figure report pipeline -- are exactly the
workloads that die to a preempted node or an operator Ctrl-C.  This
module is the storage layer of the resilience subsystem: a *checkpoint*
is a single ``.npz`` file holding

* the payload arrays (solver iterates, SSH fields, ...),
* a JSON metadata document (iteration counters, scalar solver state,
  event-ledger snapshots),
* an **envelope** recording the format version, a ``kind`` tag naming
  the producer (``"solver"``, ``"stepper"``), and a SHA-256 checksum
  over the canonical encoding of payload + metadata.

Write discipline mirrors the artifact cache: serialize to a temporary
file in the destination directory, ``flush`` + ``os.fsync``, then
``os.replace`` into place -- a crash mid-write can never leave a torn
checkpoint where a resume would find it.  Reads verify the envelope
(version, kind, checksum) and raise :class:`CheckpointError` on any
mismatch; a resume never silently continues from damaged state.

Consumers: :class:`~repro.solvers.base.IterativeSolver` (per-iteration
solver snapshots via :class:`CheckpointPolicy`) and
:class:`~repro.barotropic.stepper.BarotropicStepper` (per-step model
snapshots).  Both guarantee bit-identical resume: the restored run
produces exactly the iterates/fields an uninterrupted run would.
"""

import hashlib
import json
import os
import tempfile
import zipfile

import numpy as np

from repro.core.cache import canonical_bytes
from repro.core.errors import ReproError

#: Bump when the checkpoint payload layout changes; readers refuse
#: snapshots from other versions outright (resuming across format
#: changes cannot be bit-identical, so it must not be silent).
CHECKPOINT_FORMAT_VERSION = 1

#: npz member holding the JSON envelope.
_ENVELOPE_KEY = "__checkpoint__"

#: Filename suffix shared by every checkpoint this module writes.
CHECKPOINT_SUFFIX = ".ckpt.npz"


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or verified."""


def sanitize_meta(value):
    """Coerce nested values into JSON-serializable form.

    Numpy scalars become Python scalars, arrays and tuples become
    lists; NaN/Inf floats pass through (Python's JSON codec round-trips
    them).  Anything unrepresentable falls back to its ``repr`` --
    checkpoint metadata is bookkeeping, never measurements.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): sanitize_meta(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_meta(v) for v in value]
    return repr(value)


def _payload_checksum(arrays, meta):
    """SHA-256 over the canonical encoding of payload + metadata.

    ``canonical_bytes`` sorts dict items, so the digest is independent
    of insertion order; array dtype/shape/content are all covered.
    """
    h = hashlib.sha256()
    h.update(canonical_bytes({str(k): np.asarray(v)
                              for k, v in arrays.items()}))
    h.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
    return h.hexdigest()


def write_checkpoint(path, kind, arrays=None, meta=None):
    """Atomically write a checkpoint; returns the final path.

    ``arrays`` maps names to numpy arrays, ``meta`` is a JSON-able dict
    (NaN/Inf floats are allowed -- Python's JSON codec round-trips
    them).  The file only appears under ``path`` once fully written and
    fsynced.
    """
    arrays = dict(arrays or {})
    meta = dict(meta or {})
    if _ENVELOPE_KEY in arrays:
        raise CheckpointError(
            f"array name {_ENVELOPE_KEY!r} is reserved for the envelope")
    envelope = {
        "version": CHECKPOINT_FORMAT_VERSION,
        "kind": str(kind),
        "checksum": _payload_checksum(arrays, meta),
        "meta": meta,
    }
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    payload[_ENVELOPE_KEY] = np.array(json.dumps(envelope))

    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") \
            from exc
    return path


def read_checkpoint(path, kind=None):
    """Read and verify a checkpoint; returns ``(arrays, meta)``.

    Raises :class:`CheckpointError` when the file is missing, torn,
    carries a different format version, was written by a different
    producer than ``kind``, or fails its checksum.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                envelope = json.loads(str(data[_ENVELOPE_KEY][()]))
            except (KeyError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"checkpoint {path} has no valid envelope "
                    f"(not a checkpoint, or torn write): {exc}") from exc
            arrays = {name: data[name] for name in data.files
                      if name != _ENVELOPE_KEY}
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path} does not exist") \
            from None
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable (corrupt or truncated): "
            f"{exc}") from exc

    version = envelope.get("version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; this "
            f"code reads version {CHECKPOINT_FORMAT_VERSION} -- refusing "
            f"a resume that could not be bit-identical")
    if kind is not None and envelope.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} was written by {envelope.get('kind')!r}, "
            f"expected {kind!r}")
    meta = envelope.get("meta", {})
    expected = envelope.get("checksum")
    actual = _payload_checksum(arrays, meta)
    if actual != expected:
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check "
            f"(sha256 {actual[:12]}... != recorded {str(expected)[:12]}...)"
            " -- the file is corrupt; refusing to resume from it")
    return arrays, meta


def list_checkpoints(directory, prefix=""):
    """Checkpoint paths under ``directory``, oldest first.

    Ordering is by the zero-padded sequence number embedded in the
    filename (lexicographic == numeric for a fixed prefix), so callers
    can take ``[-1]`` for the most recent snapshot.
    """
    if not os.path.isdir(directory):
        return []
    names = [n for n in os.listdir(directory)
             if n.startswith(prefix) and n.endswith(CHECKPOINT_SUFFIX)]
    return [os.path.join(directory, n) for n in sorted(names)]


def latest_checkpoint(directory, prefix=""):
    """Most recent checkpoint path in ``directory`` or ``None``."""
    paths = list_checkpoints(directory, prefix=prefix)
    return paths[-1] if paths else None


class CheckpointPolicy:
    """When and where to snapshot a long-running loop.

    Parameters
    ----------
    directory:
        Destination for the snapshot files (created on first write).
    every:
        Write a checkpoint each time the loop counter is a multiple of
        ``every`` (0 disables periodic snapshots; ``on_failure`` can
        still fire).
    on_failure:
        Also snapshot when the loop stops abnormally (a diagnosed
        :class:`~repro.core.errors.ConvergenceError`), so a repaired
        configuration can resume without losing the completed
        iterations.
    keep:
        Retain at most this many periodic snapshots, pruning the oldest
        (0 keeps everything).  Failure snapshots are never pruned.
    prefix:
        Filename prefix distinguishing producers sharing a directory.
    """

    def __init__(self, directory, every=50, on_failure=True, keep=3,
                 prefix="solve"):
        if every < 0:
            raise CheckpointError(f"every must be >= 0, got {every}")
        if keep < 0:
            raise CheckpointError(f"keep must be >= 0, got {keep}")
        self.directory = os.path.abspath(directory)
        self.every = int(every)
        self.on_failure = bool(on_failure)
        self.keep = int(keep)
        self.prefix = str(prefix)
        #: Paths written by this policy instance, in order.
        self.written = []

    def due(self, iteration):
        """Whether a periodic snapshot is due after ``iteration``."""
        return self.every > 0 and iteration % self.every == 0

    def path_for(self, iteration, failure=False):
        tag = "fail-" if failure else ""
        return os.path.join(
            self.directory,
            f"{self.prefix}-{tag}{iteration:08d}{CHECKPOINT_SUFFIX}")

    def write(self, iteration, kind, arrays, meta, failure=False):
        """Write one snapshot and prune old periodic ones."""
        path = write_checkpoint(self.path_for(iteration, failure=failure),
                                kind, arrays, meta)
        self.written.append(path)
        if not failure:
            self._prune()
        return path

    def _prune(self):
        if self.keep <= 0:
            return
        periodic = [p for p in self.written
                    if f"{self.prefix}-fail-" not in os.path.basename(p)]
        for stale in periodic[:-self.keep]:
            try:
                os.remove(stale)
            except OSError:
                continue
            self.written.remove(stale)

    def latest(self):
        """Most recent snapshot on disk for this prefix (or ``None``)."""
        return latest_checkpoint(self.directory, prefix=self.prefix + "-")
