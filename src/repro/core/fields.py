"""Helpers for 2-D fields of shape ``(ny, nx)``.

These helpers encode the array conventions described in
:mod:`repro.core`: ``field[j, i]`` with ``j`` northward and ``i``
eastward.  The hot-path helpers (:func:`shift`, :func:`pad_with_zeros`)
are pure ``numpy`` slicing -- no Python-level loops -- because they sit
inside every stencil application.
"""

import numpy as np

from repro.core.errors import GridError

#: Compass offsets ``(dj, di)`` for each of the eight neighbor directions.
NEIGHBOR_OFFSETS = {
    "n": (1, 0),
    "s": (-1, 0),
    "e": (0, 1),
    "w": (0, -1),
    "ne": (1, 1),
    "nw": (1, -1),
    "se": (-1, 1),
    "sw": (-1, -1),
}

#: The direction opposite each compass direction.
OPPOSITE_DIRECTION = {
    "n": "s",
    "s": "n",
    "e": "w",
    "w": "e",
    "ne": "sw",
    "nw": "se",
    "se": "nw",
    "sw": "ne",
}


def pad_with_zeros(field, width=1):
    """Return ``field`` surrounded by ``width`` rings of zeros.

    Zero padding implements the closed (no-flux / land) lateral boundary
    used by the barotropic operator: values outside the domain never
    contribute to a stencil application.

    Parameters
    ----------
    field:
        Array of shape ``(ny, nx)``.
    width:
        Number of ghost rings to add on every side.

    Returns
    -------
    numpy.ndarray of shape ``(ny + 2*width, nx + 2*width)``.
    """
    if width < 0:
        raise GridError(f"padding width must be >= 0, got {width}")
    if field.ndim != 2:
        raise GridError(f"expected a 2-D field, got shape {field.shape}")
    ny, nx = field.shape
    out = np.zeros((ny + 2 * width, nx + 2 * width), dtype=field.dtype)
    out[width:width + ny, width:width + nx] = field
    return out


def shift(field, direction):
    """Return the neighbor values of every grid point in ``direction``.

    ``shift(x, "n")[j, i] == x[j + 1, i]`` where it exists and ``0``
    outside the domain -- i.e. the returned array holds, at each point,
    the value of its neighbor to the given compass direction, with the
    closed-boundary convention that out-of-domain neighbors are zero.

    This is the building block of the 9-point stencil application and is
    implemented with a single padded copy plus a view.
    """
    try:
        dj, di = NEIGHBOR_OFFSETS[direction]
    except KeyError:
        raise GridError(
            f"unknown direction {direction!r}; expected one of "
            f"{sorted(NEIGHBOR_OFFSETS)}"
        ) from None
    ny, nx = field.shape
    padded = pad_with_zeros(field, 1)
    return padded[1 + dj:1 + dj + ny, 1 + di:1 + di + nx]


def interior(field, width=1):
    """Return a view of ``field`` with ``width`` rings stripped."""
    if width == 0:
        return field
    return field[width:-width, width:-width]


def apply_mask(field, mask, out=None):
    """Zero ``field`` outside ``mask`` (``mask`` truthy on ocean points).

    Returns ``out`` (allocated if ``None``).  The masking multiply is
    deliberately explicit rather than using ``numpy.ma`` so the flop cost
    it represents (part of POP's masked global reduction, Eq. 2 of the
    paper) is visible to the instrumentation layer.
    """
    if out is None:
        out = np.empty_like(field)
    np.multiply(field, mask, out=out)
    return out


def allclose_masked(a, b, mask, rtol=1e-12, atol=1e-14):
    """``numpy.allclose`` restricted to points where ``mask`` is truthy."""
    m = np.asarray(mask, dtype=bool)
    return np.allclose(a[m], b[m], rtol=rtol, atol=atol)
