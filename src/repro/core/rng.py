"""Deterministic random-number plumbing.

Everything stochastic in this library (synthetic topography, wind
forcing, ensemble perturbations) flows through these helpers so that any
experiment is reproducible bit-for-bit from its seed.  Ensembles use
:func:`spawn_rngs` which derives statistically independent child
generators via ``numpy``'s ``SeedSequence.spawn``.
"""

import numpy as np


def make_rng(seed):
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be an ``int``, an existing ``Generator`` (returned
    unchanged, so APIs can accept either), or ``None`` (non-reproducible;
    only sensible for interactive exploration).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count):
    """Return ``count`` independent generators derived from ``seed``.

    The derivation uses ``SeedSequence.spawn`` so members of an ensemble
    never share streams regardless of ``count``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
