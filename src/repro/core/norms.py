"""Masked inner products and norms.

POP's global reductions always run the masking multiply before summation
so that land points never contribute (paper section 2.2: the global
reduction "contains a MPI_allreduce and a masking operation to exclude
land points").  The helpers here are the *serial* mathematical kernels;
the event-counting versions live in the solver contexts
(:mod:`repro.solvers.context`).
"""

import numpy as np


def masked_dot(a, b, mask):
    """Masked inner product ``sum(a * b)`` over ocean points only."""
    return float(np.sum(a * b * mask))


def masked_norm2(a, mask):
    """Masked Euclidean norm ``sqrt(sum(a^2))`` over ocean points."""
    return float(np.sqrt(np.sum(a * a * mask)))


def masked_norm_inf(a, mask):
    """Masked max-norm over ocean points (0 for an all-land mask)."""
    masked = np.abs(a * mask)
    return float(masked.max()) if masked.size else 0.0


def masked_rms(a, mask):
    """Root-mean-square of ``a`` over ocean points.

    Used by the port-verification RMSE diagnostic (paper section 6).
    """
    count = int(np.count_nonzero(mask))
    if count == 0:
        return 0.0
    return float(np.sqrt(np.sum(a * a * mask) / count))
