"""Shared low-level utilities used by every subsystem.

The :mod:`repro.core` package deliberately contains no ocean-modeling or
solver logic.  It provides the numeric conventions everything else builds
on:

* :mod:`repro.core.cache` -- the two-tier content-addressed artifact
  cache (memory + npz disk blobs) shared by preconditioner setup,
  eigenvalue estimation and the experiment pipeline,
* :mod:`repro.core.constants` -- physical and numerical constants,
* :mod:`repro.core.errors` -- the exception hierarchy,
* :mod:`repro.core.fields` -- 2-D field helpers (padding, shifting, masking),
* :mod:`repro.core.norms` -- masked inner products and norms,
* :mod:`repro.core.rng` -- deterministic random-generator plumbing,
* :mod:`repro.core.validation` -- argument-checking helpers.

Array convention
----------------
Every 2-D field in this code base is a C-contiguous ``numpy`` array of
shape ``(ny, nx)`` indexed as ``field[j, i]`` where ``j`` increases
*northward* and ``i`` increases *eastward*.  Neighbor shorthands follow
compass directions: ``N`` is ``j+1``, ``S`` is ``j-1``, ``E`` is ``i+1``
and ``W`` is ``i-1``.
"""

from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    QUARANTINE_DIRNAME,
    ArtifactCache,
    configure_cache,
    default_cache_dir,
    digest_of,
    get_cache,
    set_cache,
)
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointPolicy,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.constants import (
    EARTH_RADIUS_M,
    GRAVITY_M_S2,
    SECONDS_PER_DAY,
    DEFAULT_DTYPE,
)
from repro.core.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    DecompositionError,
    GridError,
    SolverError,
)
from repro.core.fields import (
    pad_with_zeros,
    shift,
    interior,
    apply_mask,
    allclose_masked,
)
from repro.core.norms import (
    masked_dot,
    masked_norm2,
    masked_norm_inf,
    masked_rms,
)
from repro.core.rng import make_rng, spawn_rngs

__all__ = [
    "CACHE_FORMAT_VERSION",
    "QUARANTINE_DIRNAME",
    "ArtifactCache",
    "configure_cache",
    "default_cache_dir",
    "digest_of",
    "get_cache",
    "set_cache",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointPolicy",
    "latest_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "write_checkpoint",
    "EARTH_RADIUS_M",
    "GRAVITY_M_S2",
    "SECONDS_PER_DAY",
    "DEFAULT_DTYPE",
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "DecompositionError",
    "GridError",
    "SolverError",
    "pad_with_zeros",
    "shift",
    "interior",
    "apply_mask",
    "allclose_masked",
    "masked_dot",
    "masked_norm2",
    "masked_norm_inf",
    "masked_rms",
    "make_rng",
    "spawn_rngs",
]
