"""Solve execution behind the service: worker pool + retry.

Batches built by the coalescer run through a :class:`ServiceExecutor`.
With ``jobs >= 1`` solves execute on the rebuildable
:class:`~repro.core.pool.PoolHandle` process pool shared with the
evaluation pipeline -- a died worker breaks only the attempt, the pool
is rebuilt and the attempt re-dispatched per the
:class:`~repro.core.pool.FailurePolicy`.  With ``jobs == 0`` solves
run on a single in-process thread (no fork, deterministic -- the mode
tests and the benchmark load generator use), where an injected crash
raises :class:`~repro.parallel.faults.WorkerCrashError` inline and
exercises the identical retry path.

The task unit (:func:`run_service_task`) is a plain picklable dict;
the worker rebuilds the grid from its name/scale/seed and funnels the
solve through :func:`~repro.experiments.common.measure_solver`, so
every result is content-addressed into the shared artifact cache --
a byte-identical re-request is a cache hit, not a re-solve.
"""

import asyncio
import os
import time
from concurrent.futures import CancelledError
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.pool import FailurePolicy, PoolHandle, StepTimeoutError
from repro.parallel.faults import WorkerCrashError


def _apply_injection(task, inline):
    """Honor a fault-injection directive (tests and chaos smoke only).

    ``{"sleep": s}`` delays the attempt; ``{"crash": N}`` kills the
    first ``N`` attempts -- hard (``os._exit``) in a worker process,
    as an inline :class:`WorkerCrashError` in thread mode.
    """
    inject = task.get("inject") or {}
    if inject.get("sleep"):
        time.sleep(float(inject["sleep"]))
    crashes = int(inject.get("crash", 0))
    if crashes and int(task.get("attempt", 1)) <= crashes:
        if inline:
            raise WorkerCrashError(
                f"injected crash on attempt {task.get('attempt', 1)}")
        os._exit(13)


def _execute_task(task, inline):
    from repro.experiments.common import get_cached_config, measure_solver

    _apply_injection(task, inline)
    config = get_cached_config(task["config"], scale=task["scale"],
                               seed=task["seed"])
    return measure_solver(
        config,
        solver=task["solver"],
        precond=task["precond"],
        tol=task["tol"],
        check_freq=task["check_freq"],
        max_iterations=task["max_iterations"],
        rhs=task["rhs"],
        engine=task.get("engine"),
        blocks=task.get("blocks"),
        resilience=task.get("resilience"),
        raise_on_failure=False,
    )


def run_service_task(task):
    """Execute one solve task in a pool worker process."""
    return _execute_task(task, inline=False)


def run_service_task_inline(task):
    """Execute one solve task on the in-process thread executor."""
    return _execute_task(task, inline=True)


class ServiceExecutor:
    """Run solve tasks with retry/timeout on a rebuildable pool.

    Parameters
    ----------
    jobs:
        Worker processes; 0 selects the single-thread inline mode.
    cache_dir, shards, max_bytes:
        Worker-side artifact-cache configuration (the workers share
        the service's disk cache; see
        :func:`~repro.core.pool.worker_init`).
    policy:
        :class:`FailurePolicy` governing retries (default: retry twice
        with 0.25 s backoff).
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = none).
        In process mode an overrun kills the workers and rebuilds the
        pool; in thread mode the attempt is abandoned (threads cannot
        be killed) and the timeout error still surfaces.
    """

    def __init__(self, jobs=0, cache_dir=None, shards=None,
                 max_bytes=None, policy=None, timeout=None):
        self.jobs = max(0, int(jobs))
        self.policy = policy if policy is not None else FailurePolicy()
        self.timeout = timeout
        self.retried = 0
        if self.jobs:
            self.handle = PoolHandle(self.jobs, cache_dir,
                                     shards=shards, max_bytes=max_bytes)
            self._threads = None
        else:
            self.handle = None
            self._threads = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service-solve")

    async def run(self, task):
        """Execute ``task`` with retries; returns its SolveResult."""
        attempts = self.policy.attempts()
        for attempt in range(1, attempts + 1):
            try:
                return await self._attempt(dict(task, attempt=attempt))
            except (WorkerCrashError, StepTimeoutError):
                if attempt >= attempts:
                    raise
                self.retried += 1
                delay = self.policy.delay(0, attempt + 1)
                if delay:
                    await asyncio.sleep(delay)
        raise WorkerCrashError("unreachable: retry loop exhausted")

    async def _attempt(self, task):
        loop = asyncio.get_running_loop()
        if self.handle is None:
            future = loop.run_in_executor(
                self._threads, run_service_task_inline, task)
        else:
            future = asyncio.wrap_future(
                self.handle.get().submit(run_service_task, task),
                loop=loop)
        try:
            return await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError:
            if self.handle is not None:
                self.handle.rebuild(kill=True)
            raise StepTimeoutError(
                f"solve attempt exceeded its {self.timeout}s "
                f"wall-clock budget") from None
        except (BrokenProcessPool, CancelledError):
            if self.handle is not None:
                self.handle.rebuild()
            raise WorkerCrashError(
                "a worker process died while solving") from None

    def stats(self):
        return {
            "jobs": self.jobs,
            "mode": "process" if self.jobs else "thread",
            "retried_attempts": self.retried,
            "pool_rebuilds": (self.handle.rebuilds if self.handle
                              else 0),
        }

    def shutdown(self):
        if self.handle is not None:
            self.handle.shutdown()
        if self._threads is not None:
            self._threads.shutdown(wait=True)
