"""The asyncio solver service: JSON over HTTP, stdlib only.

One process, one event loop, three moving parts wired together here:
the :class:`~repro.service.batching.Coalescer` groups compatible
in-flight requests into multi-RHS batches, the
:class:`~repro.service.executor.ServiceExecutor` runs each batch on a
rebuildable worker pool with retry, and the
:class:`~repro.service.jobs.JobTable` gives asynchronous clients
submit/status/result/stream semantics.  Single-flight dedup sits in
front of the coalescer: byte-identical concurrent requests share one
solve, and a bounded response memo answers byte-identical *repeat*
requests without re-entering the scheduler (the artifact cache would
make the re-solve cheap; the memo makes it free).

Endpoints
---------
====== ======================= =======================================
POST   /solve                  solve synchronously (coalesced)
POST   /jobs                   submit an async job; returns its id
GET    /jobs/<id>              job status
GET    /jobs/<id>/result       job response (409 while running)
GET    /jobs/<id>/stream       NDJSON lifecycle events until terminal
GET    /stats                  coalescer + cache + pool + job counters
GET    /healthz                liveness (+ draining flag)
====== ======================= =======================================

Shutdown: SIGTERM/SIGINT stop accepting connections, flush every
waiting batch, await all running solves and jobs, then exit -- no
accepted request is dropped (covered by the drain test).
"""

import asyncio
import json
import signal
import tempfile

import numpy as np

from repro.core.cache import get_cache
from repro.core.errors import ReproError
from repro.core.pool import FailurePolicy
from repro.reporting.serialize import solve_result_to_doc
from repro.service.batching import Coalescer
from repro.service.executor import ServiceExecutor
from repro.service.jobs import DONE, FAILED, JobTable
from repro.service.protocol import (
    DEFAULT_PRECOND,
    DEFAULT_SOLVER,
    ProtocolError,
    bucket_key,
    normalize_request,
    request_content_key,
    split_result,
)

#: stdout line announcing the bound address; the benchmark harness and
#: the subprocess tests wait for it.
READY_PREFIX = "repro-service ready"


class SolverService:
    """One solver-service process (construct, then ``await run()``)."""

    def __init__(self, host="127.0.0.1", port=0, jobs=0, max_batch=8,
                 max_wait_ms=25.0, blocks=(4, 4), engine=None,
                 tuned=True, retries=2, backoff=0.25, job_timeout=None,
                 memo_size=1024):
        self.host = host
        self.port = int(port)
        self.blocks = (int(blocks[0]), int(blocks[1]))
        self.engine = engine
        self.tuned = bool(tuned)
        cache = get_cache()
        cache_dir = cache.cache_dir
        if jobs and cache_dir is None:
            # Worker processes can only share solves through the disk
            # tier; give a memory-only cache an ephemeral directory.
            cache_dir = tempfile.mkdtemp(prefix="repro-service-cache-")
            cache.cache_dir = cache_dir
        self.executor = ServiceExecutor(
            jobs=jobs, cache_dir=cache_dir, shards=cache.shards or None,
            max_bytes=cache.max_bytes,
            policy=FailurePolicy(mode="retry", retries=int(retries),
                                 backoff=float(backoff)),
            timeout=job_timeout)
        self.coalescer = Coalescer(self._run_batch, max_batch=max_batch,
                                   max_wait_ms=max_wait_ms)
        self.jobs = JobTable()
        self.draining = False
        self.server = None
        self._stop = None
        self._inflight = {}
        self._memo = {}
        self._memo_order = []
        self._memo_size = int(memo_size)
        self._tuned_memo = {}
        self._handlers = set()
        self.counters = {"requests": 0, "errors": 0,
                         "dedup_inflight": 0, "dedup_memo": 0,
                         "tuned_applied": 0}
        self.resilience_counters = {
            "resilient_solves": 0, "replications": 0, "rollbacks": 0,
            "rank_deaths": 0, "sdc_detected": 0, "recoveries": 0}

    # ------------------------------------------------------------------
    # request pipeline: dedup -> coalesce -> execute -> split
    # ------------------------------------------------------------------
    async def handle_solve(self, doc, job=None):
        """Serve one solve request document; returns the response doc."""
        self.counters["requests"] += 1
        req = normalize_request(doc)
        self._resolve_choice(req)
        content_key = request_content_key(req)
        memo = self._memo.get(content_key)
        if memo is not None:
            self.counters["dedup_memo"] += 1
            return dict(memo, dedup=True)
        shared = self._inflight.get(content_key)
        if shared is not None:
            self.counters["dedup_inflight"] += 1
            if job is not None:
                job.add_event("deduplicated")
            response = await asyncio.shield(shared)
            return dict(response, dedup=True)
        future = asyncio.get_running_loop().create_future()
        self._inflight[content_key] = future
        try:
            if job is not None:
                job.add_event("scheduled")
            response = await self.coalescer.submit(bucket_key(req), req)
            if req["inject"] is None:
                self._memoize(content_key, response)
            future.set_result(response)
            return response
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed: waiters get their own copy
            raise
        finally:
            self._inflight.pop(content_key, None)

    async def _run_batch(self, key, reqs):
        """Coalescer runner: one bucket's requests -> one solve."""
        config = self._config_for(reqs[0])
        rhs_list = []
        for req in reqs:
            if req["rhs"] is None:
                from repro.experiments.common import reference_rhs

                req["rhs"] = reference_rhs(config)
            rhs_list.append(np.asarray(req["rhs"], dtype=np.float64))
        rhs = (rhs_list[0] if len(rhs_list) == 1
               else np.stack(rhs_list, axis=-1))
        inject = next((r["inject"] for r in reqs if r["inject"]), None)
        template = reqs[0]
        task = {
            "config": template["config"], "scale": template["scale"],
            "seed": template["seed"], "solver": template["solver"],
            "precond": template["precond"], "tol": template["tol"],
            "check_freq": template["check_freq"],
            "max_iterations": template["max_iterations"],
            "engine": template["engine"], "blocks": template["blocks"],
            "rhs": rhs, "inject": inject,
            "resilience": template["resilience"],
        }
        batch_result = await self.executor.run(task)
        self._count_resilience(batch_result)
        if len(reqs) == 1:
            results = [batch_result]
        else:
            results = [split_result(batch_result, j)
                       for j in range(len(reqs))]
        return [self._response_doc(req, res, len(reqs))
                for req, res in zip(reqs, results)]

    def _response_doc(self, req, result, batch):
        return {
            "status": "ok",
            "result": solve_result_to_doc(result),
            "solver": req["solver"],
            "precond": req["precond"],
            "engine": req["engine"],
            "tuned": bool(req.get("_tuned")),
            "batch": int(batch),
            "coalesced": batch > 1,
            "dedup": False,
        }

    def _count_resilience(self, batch_result):
        """Fold one solve's resilience summary into the service totals."""
        summary = (batch_result.extra or {}).get("resilience")
        if summary is None:
            return
        totals = self.resilience_counters
        totals["resilient_solves"] += 1
        totals["recoveries"] += len(summary.get("recoveries", []))
        for name in ("replications", "rollbacks", "rank_deaths",
                     "sdc_detected"):
            totals[name] += int(summary["counters"].get(name, 0))

    def _memoize(self, content_key, response):
        if content_key not in self._memo:
            self._memo_order.append(content_key)
        self._memo[content_key] = response
        while len(self._memo_order) > self._memo_size:
            self._memo.pop(self._memo_order.pop(0), None)

    # ------------------------------------------------------------------
    # tuned-choice auto-apply
    # ------------------------------------------------------------------
    def _config_for(self, req):
        from repro.experiments.common import get_cached_config

        return get_cached_config(req["config"], scale=req["scale"],
                                 seed=req["seed"])

    def _tuned_choice(self, req):
        """The persisted ``repro tune`` winner for the request's grid
        (memoized per grid; ``None`` when nothing was tuned)."""
        memo_key = (req["config"], req["scale"], req["seed"])
        if memo_key in self._tuned_memo:
            return self._tuned_memo[memo_key]
        choice = None
        try:
            from repro.parallel import decompose
            from repro.tuning import load_tuned_choice

            config = self._config_for(req)
            decomp = decompose(config.ny, config.nx, self.blocks[0],
                               self.blocks[1], mask=config.mask)
            choice = load_tuned_choice(config, decomp)
        except ReproError:
            choice = None
        self._tuned_memo[memo_key] = choice
        return choice

    def _resolve_choice(self, req):
        """Fill omitted solver/precond/engine from the tuned choice,
        the server defaults, or the documented fallbacks.

        Resolution order per field: explicit request value > the
        persisted ``repro tune`` winner (when the request left solver
        or precond open) > the server default.  ``blocks`` defaults to
        the server's ``--blocks`` whenever a decomposed engine ends up
        selected; with no engine it is cleared so the bucket and
        content keys stay canonical.
        """
        open_choice = req["solver"] is None or req["precond"] is None
        choice = (self._tuned_choice(req)
                  if self.tuned and open_choice else None)
        applied = False
        if req["solver"] is None:
            req["solver"] = ((choice or {}).get("solver")
                             or DEFAULT_SOLVER)
            applied = applied or bool(choice)
        if req["precond"] is None:
            req["precond"] = ((choice or {}).get("precond")
                              or DEFAULT_PRECOND)
            applied = applied or bool(choice)
        if req["engine"] is None:
            req["engine"] = ((choice or {}).get("engine")
                             if applied else None) or self.engine
        if req.get("resilience") is not None \
                and req["engine"] in (None, "serial"):
            # Buddy replication and ABFT live in the virtual machine,
            # which the serial context bypasses.
            req["engine"] = "perrank"
        if req["engine"] is None:
            req["blocks"] = None
        elif req["blocks"] is None:
            req["blocks"] = tuple((choice or {}).get("blocks")
                                  or self.blocks)
        req["_tuned"] = applied
        if applied:
            self.counters["tuned_applied"] += 1

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self):
        cache = get_cache()
        return {
            "service": dict(self.counters, draining=self.draining),
            "coalescer": self.coalescer.stats(),
            "executor": self.executor.stats(),
            "jobs": self.jobs.stats(),
            "cache": dict(cache.stats(), hit_ratio=cache.hit_ratio),
            "resilience": dict(self.resilience_counters),
        }

    def health(self):
        """Liveness document: worker-pool state + resilience tallies."""
        executor = self.executor.stats()
        pool = self.executor.handle
        workers_ok = True
        if pool is not None:
            workers_ok = not getattr(
                getattr(pool, "pool", None), "_broken", False)
        return {
            "ok": bool(workers_ok),
            "draining": self.draining,
            "workers": dict(executor, alive=bool(workers_ok)),
            "queue_depth": self.coalescer.stats()["queue_depth"],
            "resilience": dict(self.resilience_counters),
        }

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def start(self):
        self.server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def run(self, announce=print, install_signals=True):
        """Start, announce readiness, serve until SIGTERM, drain."""
        self._stop = asyncio.Event()
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_shutdown)
        if announce is not None:
            announce(f"{READY_PREFIX} host={self.host} "
                     f"port={self.port}", flush=True)
        await self._stop.wait()
        await self.shutdown()

    def request_shutdown(self):
        """Begin the graceful drain (signal handler entry point)."""
        self.draining = True
        if self._stop is not None:
            self._stop.set()

    async def shutdown(self):
        """Stop accepting, flush batches, await jobs, release workers."""
        self.draining = True
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        await self.coalescer.drain()
        await self.jobs.drain()
        while self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        self.executor.shutdown()

    async def _serve_connection(self, reader, writer):
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._handle_http(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_http(self, reader, writer):
        request_line = (await reader.readline()).decode(
            "latin-1").strip()
        if not request_line:
            return
        try:
            method, target, _version = request_line.split(None, 2)
        except ValueError:
            await _respond(writer, 400, {"error": "bad request line"})
            return
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        await self._route(writer, method.upper(), target, body)

    async def _route(self, writer, method, target, body):
        if method == "GET" and target == "/healthz":
            await _respond(writer, 200, self.health())
            return
        if method == "GET" and target == "/stats":
            await _respond(writer, 200, self.stats())
            return
        if method == "POST" and target in ("/solve", "/jobs"):
            if self.draining:
                await _respond(writer, 503, {"error": "draining"})
                return
            try:
                doc = json.loads(body.decode("utf-8") or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                await _respond(writer, 400,
                               {"error": f"invalid JSON: {err}"})
                return
            if target == "/solve":
                await self._route_solve(writer, doc)
            else:
                job = self.jobs.submit(
                    lambda j, d=doc: self.handle_solve(d, job=j))
                await _respond(writer, 202, job.describe())
            return
        if method == "GET" and target.startswith("/jobs/"):
            await self._route_job(writer, target)
            return
        await _respond(writer, 404,
                       {"error": f"no route {method} {target}"})

    async def _route_solve(self, writer, doc):
        try:
            response = await self.handle_solve(doc)
        except ProtocolError as err:
            self.counters["errors"] += 1
            await _respond(writer, 400, {"error": str(err)})
            return
        except ReproError as err:
            self.counters["errors"] += 1
            await _respond(writer, 500, {
                "error": f"{type(err).__name__}: {err}"})
            return
        await _respond(writer, 200, response)

    async def _route_job(self, writer, target):
        parts = target.strip("/").split("/")
        job = self.jobs.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            await _respond(writer, 404, {"error": "no such job"})
            return
        tail = parts[2] if len(parts) >= 3 else None
        if tail is None:
            await _respond(writer, 200, job.describe())
        elif tail == "result":
            if job.status == DONE:
                await _respond(writer, 200, job.response)
            elif job.status == FAILED:
                await _respond(writer, 500, job.describe())
            else:
                await _respond(writer, 409, job.describe())
        elif tail == "stream":
            # Chunked, zero-chunk terminated: the client must learn the
            # stream ended without waiting for a FIN -- worker processes
            # forked while this connection is open inherit a dup of its
            # fd, so closing the server-side socket alone does not
            # reliably reach the client.
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n")
            await writer.drain()
            async for event in self.jobs.stream(job):
                payload = json.dumps(event, sort_keys=True) \
                    .encode("utf-8") + b"\n"
                writer.write(f"{len(payload):x}\r\n".encode("latin-1")
                             + payload + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        else:
            await _respond(writer, 404, {"error": f"no route {tail!r}"})


async def _respond(writer, status, doc):
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 409: "Conflict",
              500: "Internal Server Error",
              503: "Service Unavailable"}.get(status, "OK")
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + body)
    await writer.drain()


def serve(host="127.0.0.1", port=0, jobs=0, max_batch=8,
          max_wait_ms=25.0, blocks=(4, 4), engine=None, tuned=True,
          retries=2, job_timeout=None, announce=print):
    """Blocking entry point: run a service until SIGTERM/SIGINT."""
    service = SolverService(host=host, port=port, jobs=jobs,
                            max_batch=max_batch, max_wait_ms=max_wait_ms,
                            blocks=blocks, engine=engine, tuned=tuned,
                            retries=retries, job_timeout=job_timeout)
    asyncio.run(service.run(announce=announce))
    return service
