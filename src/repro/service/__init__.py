"""Solver-as-a-service: async job engine with dynamic multi-RHS
batching over the content-addressed artifact cache.

See :mod:`repro.service.server` for the endpoint map and the
architecture overview; ``repro serve`` is the CLI entry point.
"""

from repro.service.batching import Coalescer
from repro.service.client import ServiceClient, ServiceError
from repro.service.executor import ServiceExecutor
from repro.service.jobs import JobTable
from repro.service.protocol import (
    ProtocolError,
    bucket_key,
    normalize_request,
    request_content_key,
    split_result,
)
from repro.service.server import READY_PREFIX, SolverService, serve

__all__ = [
    "Coalescer",
    "JobTable",
    "ProtocolError",
    "READY_PREFIX",
    "ServiceClient",
    "ServiceError",
    "ServiceExecutor",
    "SolverService",
    "bucket_key",
    "normalize_request",
    "request_content_key",
    "serve",
    "split_result",
]
