"""Dynamic request coalescing.

The :class:`Coalescer` groups submissions that share a bucket key into
one batch, bounded two ways: a batch dispatches as soon as it holds
``max_batch`` items, or ``max_wait_ms`` after its first item arrived,
whichever comes first.  A lone request therefore pays at most the
window; a burst of compatible requests pays (almost) one solve.

Batching is **load-adaptive**: when a bucket's window expires while an
earlier batch of the same key is still solving, the bucket is *held*
open instead of dispatched -- arrivals keep accumulating and the batch
goes out the moment the running one finishes (or immediately on
filling to ``max_batch``).  Under saturation the batch size therefore
grows toward ``max_batch`` instead of the scheduler queueing a string
of window-sized slivers behind a busy executor; an idle service still
dispatches within one window.

The runner callback receives ``(key, items)`` and must return one
result per item, in order; its exceptions propagate to every waiter of
that batch.  ``drain()`` dispatches everything still waiting and
awaits all in-flight runs -- the graceful-shutdown half of the
scheduler.
"""

import asyncio


class _Bucket:
    __slots__ = ("items", "futures", "timer", "held")

    def __init__(self):
        self.items = []
        self.futures = []
        self.timer = None
        self.held = False


class Coalescer:
    """Batch compatible submissions through one async runner.

    Parameters
    ----------
    runner:
        ``async (key, items) -> [result, ...]`` executing one batch.
    max_batch:
        Dispatch threshold; 1 disables coalescing (every submission
        runs alone, the no-coalescing baseline of the benchmark).
    max_wait_ms:
        Longest a submission waits for companions before its batch
        dispatches anyway.
    """

    def __init__(self, runner, max_batch=8, max_wait_ms=25.0):
        self.runner = runner
        self.max_batch = max(1, int(max_batch))
        self.max_wait = max(0.0, float(max_wait_ms)) / 1000.0
        self._buckets = {}
        self._running = set()
        self._inflight = {}  # key -> running batch count
        self.batch_sizes = {}  # size -> dispatch count
        self.submitted = 0
        self.held_windows = 0

    async def submit(self, key, item):
        """Enqueue ``item`` under ``key``; returns its batch result."""
        self.submitted += 1
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if self.max_batch == 1:
            self._dispatch_now(key, [item], [future])
            return await future
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            bucket.timer = loop.call_later(
                self.max_wait, self._window_expired, key, bucket)
        bucket.items.append(item)
        bucket.futures.append(future)
        if len(bucket.items) >= self.max_batch:
            self._flush(key, bucket)
        return await future

    def _window_expired(self, key, bucket):
        """Timer callback: dispatch, or hold while the key is busy."""
        bucket.timer = None
        if self._inflight.get(key):
            # An earlier batch of this bucket is still solving -- keep
            # the window open so arrivals pile into one fat batch that
            # dispatches the moment the running batch completes.
            bucket.held = True
            self.held_windows += 1
            return
        self._flush(key, bucket)

    def _flush(self, key, bucket):
        """Dispatch a bucket (window expired, filled, or released)."""
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
        if bucket.timer is not None:
            bucket.timer.cancel()
            bucket.timer = None
        if bucket.items:
            self._dispatch_now(key, bucket.items, bucket.futures)

    def _dispatch_now(self, key, items, futures):
        self.batch_sizes[len(items)] = \
            self.batch_sizes.get(len(items), 0) + 1
        self._inflight[key] = self._inflight.get(key, 0) + 1
        task = asyncio.ensure_future(self._run(key, items, futures))
        self._running.add(task)
        task.add_done_callback(self._running.discard)

    async def _run(self, key, items, futures):
        try:
            results = await self.runner(key, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(items)} items")
        except BaseException as exc:  # noqa: BLE001 - fan the error out
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self._release(key)
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)

    def _release(self, key):
        """A batch of ``key`` finished; dispatch its held bucket."""
        left = self._inflight.get(key, 1) - 1
        if left > 0:
            self._inflight[key] = left
            return
        self._inflight.pop(key, None)
        bucket = self._buckets.get(key)
        if bucket is not None and bucket.held:
            self._flush(key, bucket)

    async def drain(self):
        """Dispatch all waiting buckets and await in-flight batches."""
        for key, bucket in list(self._buckets.items()):
            self._flush(key, bucket)
        while self._running:
            await asyncio.gather(*list(self._running),
                                 return_exceptions=True)

    def stats(self):
        """Dispatch histogram + derived coalescing summary."""
        dispatched = sum(self.batch_sizes.values())
        batched = sum(size * n for size, n in self.batch_sizes.items())
        return {
            "submitted": self.submitted,
            "dispatched_batches": dispatched,
            "batched_requests": batched,
            "held_windows": self.held_windows,
            "queue_depth": sum(len(b.items)
                               for b in self._buckets.values()),
            "inflight_batches": len(self._running),
            "batch_size_histogram": {
                str(size): n
                for size, n in sorted(self.batch_sizes.items())},
            "mean_batch_size": (batched / dispatched if dispatched
                                else 0.0),
        }
