"""Wire protocol of the solver service.

A solve request is one JSON document; :func:`normalize_request` turns
it into a validated, fully-defaulted internal form.  Requests carrying
the same grid, operator, solver, preconditioner and tolerance fall
into the same *bucket* (:func:`bucket_key`) and may be coalesced into
one multi-RHS solve; byte-identical requests additionally share one
*content key* (:func:`request_content_key`) and are single-flighted.

Request fields
--------------
``config``          grid configuration name (required; e.g. ``"test"``)
``scale``           grid scale factor (default 1.0)
``seed``            grid seed (default ``None``)
``solver``          solver name, or ``None`` to use the tuned choice
``precond``         preconditioner spec, or ``None`` likewise
``tol``             relative tolerance (default 1e-12)
``check_freq``      convergence-check cadence (default 10)
``max_iterations``  iteration budget (default 2000)
``rhs``             base64 array document (see
                    :func:`repro.reporting.serialize.encode_array`)
                    or ``None`` for the deterministic reference RHS
``engine``          execution context: ``None`` (server default),
                    ``"serial"``, ``"perrank"`` or ``"batched"`` --
                    the batched engine amortizes per-iteration fixed
                    costs across coalesced multi-RHS columns
``blocks``          ``[by, bx]`` decomposition for a decomposed
                    engine (default: the server's ``--blocks``)
``inject``          fault-injection directive (tests only):
                    ``{"crash": N}`` crashes the first N attempts,
                    ``{"sleep": s}`` delays the worker.
``resilience``      in-solve fault-tolerance policy: ``true`` for the
                    defaults or an object with any of
                    ``replicate_every``/``abft``/``abft_every``/
                    ``rowsum_tol``/``crosscheck_tol``/``max_rollbacks``
                    (see
                    :class:`~repro.parallel.resilience.ResiliencePolicy`);
                    requires a virtual-machine engine.
"""

import numpy as np

from repro.core.cache import CACHE_FORMAT_VERSION, digest_of
from repro.core.errors import ConfigurationError
from repro.reporting.serialize import decode_array, encode_array
from repro.solvers.result import SolveResult

#: Solver names a request may carry (the measure_solver registry).
KNOWN_SOLVERS = ("chrongear", "pcsi", "pcg", "pipecg", "capcg")

#: Applied when a request omits solver/precond and no tuned choice is
#: persisted for the grid.
DEFAULT_SOLVER = "pcsi"
DEFAULT_PRECOND = "diagonal"

#: Execution engines a request may select (``None`` = server default).
KNOWN_ENGINES = ("serial", "perrank", "batched")


class ProtocolError(ConfigurationError):
    """A malformed or unserviceable request document."""


def normalize_request(doc):
    """Validate a request document into the internal form.

    Returns a dict with every field present and typed; ``rhs`` is a
    decoded ``(ny, nx)`` float64 array or ``None``.  Raises
    :class:`ProtocolError` on anything malformed.
    """
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object")
    config = doc.get("config")
    if not config or not isinstance(config, str):
        raise ProtocolError("request must name a grid 'config'")
    solver = doc.get("solver")
    if solver is not None:
        solver = str(solver).lower()
        if solver not in KNOWN_SOLVERS:
            raise ProtocolError(
                f"unknown solver {solver!r}; expected one of "
                f"{KNOWN_SOLVERS}")
    precond = doc.get("precond")
    if precond is not None:
        precond = str(precond)
    rhs = doc.get("rhs")
    if rhs is not None:
        try:
            rhs = np.asarray(decode_array(rhs), dtype=np.float64)
        except (KeyError, TypeError, ValueError) as err:
            raise ProtocolError(f"malformed rhs document: {err!r}") \
                from None
        if rhs.ndim != 2:
            raise ProtocolError(
                f"rhs must be a 2-d field, got shape {rhs.shape}")
    inject = doc.get("inject")
    if inject is not None and not isinstance(inject, dict):
        raise ProtocolError("inject must be an object")
    resilience = doc.get("resilience")
    if resilience is not None and resilience is not False:
        from repro.core.errors import SolverError
        from repro.parallel.resilience import ResiliencePolicy

        try:
            # Normalized to the full canonical policy dict so that
            # equivalent spellings (``true`` vs ``{}``) coalesce.
            resilience = ResiliencePolicy.from_any(resilience).to_dict()
        except SolverError as err:
            raise ProtocolError(
                f"malformed resilience policy: {err}") from None
    else:
        resilience = None
    engine = doc.get("engine")
    if engine is not None:
        engine = str(engine).lower()
        if engine not in KNOWN_ENGINES:
            raise ProtocolError(
                f"unknown engine {engine!r}; expected one of "
                f"{KNOWN_ENGINES}")
    blocks = doc.get("blocks")
    if blocks is not None:
        try:
            blocks = (int(blocks[0]), int(blocks[1]))
        except (TypeError, ValueError, IndexError):
            raise ProtocolError(
                "blocks must be a [by, bx] pair of integers") from None
        if len(blocks) != 2 or blocks[0] < 1 or blocks[1] < 1:
            raise ProtocolError("blocks must be two integers >= 1")
    try:
        seed = doc.get("seed")
        req = {
            "config": config,
            "scale": float(doc.get("scale", 1.0)),
            "seed": None if seed is None else int(seed),
            "solver": solver,
            "precond": precond,
            "tol": float(doc.get("tol", 1.0e-12)),
            "check_freq": int(doc.get("check_freq", 10)),
            "max_iterations": int(doc.get("max_iterations", 2000)),
            "rhs": rhs,
            "engine": engine,
            "blocks": blocks,
            "inject": inject,
            "resilience": resilience,
        }
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"malformed request field: {err}") from None
    if req["tol"] <= 0 or req["check_freq"] < 1 \
            or req["max_iterations"] < 1:
        raise ProtocolError(
            "tol must be > 0, check_freq and max_iterations >= 1")
    return req


def bucket_key(req):
    """Coalescing bucket of a normalized request.

    Requests in the same bucket share grid, operator, solver,
    preconditioner, tolerance and execution-engine settings, so their
    right-hand sides can ride one multi-RHS solve.
    ``solver``/``precond``/``engine``/``blocks`` must already be
    resolved (tuned choice and server defaults applied) by the caller.
    """
    resilience = req.get("resilience")
    return (req["config"], req["scale"], req["seed"], req["solver"],
            req["precond"], req["tol"], req["check_freq"],
            req["max_iterations"], req["engine"], req["blocks"],
            None if resilience is None
            else tuple(sorted(resilience.items())))


def request_content_key(req):
    """Content digest of a normalized request (single-flight identity).

    Two requests share a content key iff every solve-relevant field --
    including the RHS bytes -- is identical, in which case their
    responses are interchangeable.  Requests carrying an injection
    directive never dedupe (the directive changes worker behavior).
    """
    from repro.experiments.common import rhs_digest

    parts = [CACHE_FORMAT_VERSION, "service-request", bucket_key(req)]
    parts.append(None if req["rhs"] is None else rhs_digest(req["rhs"]))
    if req["inject"]:
        parts.append(repr(sorted(req["inject"].items())))
    return digest_of(*parts)


def split_result(batch, column):
    """Column ``column`` of a multi-RHS :class:`SolveResult` as a
    standalone single-RHS result.

    The solution slice, iteration count, convergence flag and both
    norms are the per-column truth recorded by the batched loop --
    bit-identical to a standalone solve of that column (the PR-6
    guarantee).  The event ledgers and residual history describe the
    *batch* loop, not any one column, so they are left empty here;
    ``extra`` records the batch provenance instead.
    """
    from repro.solvers.health import SolverDiagnosis

    extra = batch.extra
    nrhs = int(extra.get("multi_rhs", 1))
    diagnosis = None
    diag_doc = extra.get("per_rhs_diagnosis", {}).get(str(column))
    if diag_doc is not None:
        diagnosis = SolverDiagnosis.from_dict(diag_doc)
    x = np.asarray(batch.x)
    if x.ndim == 3:
        x = np.ascontiguousarray(x[:, :, column])
    return SolveResult(
        x=x,
        iterations=int(extra["per_rhs_iterations"][column]),
        converged=bool(extra["per_rhs_converged"][column]),
        residual_norm=float(extra["per_rhs_residual_norm"][column]),
        b_norm=float(extra["per_rhs_b_norm"][column]),
        residual_history=[],
        solver=batch.solver,
        preconditioner=batch.preconditioner,
        events={},
        setup_events={},
        extra={"from_batch": nrhs, "batch_column": int(column)},
        diagnosis=diagnosis,
    )


__all__ = [
    "DEFAULT_PRECOND",
    "DEFAULT_SOLVER",
    "KNOWN_ENGINES",
    "KNOWN_SOLVERS",
    "ProtocolError",
    "bucket_key",
    "decode_array",
    "encode_array",
    "normalize_request",
    "request_content_key",
    "split_result",
]
