"""A small blocking client for the solver service (stdlib urllib).

Used by the benchmark load generator, the tests, and anyone scripting
against a running ``repro serve`` -- one class, one method per
endpoint, JSON in / JSON out.  :meth:`ServiceClient.solve_result`
decodes a response's ``result`` document back into a bit-exact
:class:`~repro.solvers.result.SolveResult`.
"""

import json
import urllib.error
import urllib.request

from repro.core.errors import ReproError
from repro.reporting.serialize import encode_array, solve_result_from_doc


class ServiceError(ReproError):
    """The service answered with an error status."""

    def __init__(self, status, doc):
        super().__init__(f"HTTP {status}: {doc.get('error', doc)}")
        self.status = status
        self.doc = doc


class ServiceClient:
    """Talk to one solver-service instance."""

    def __init__(self, host="127.0.0.1", port=8723, timeout=120.0):
        self.base = f"http://{host}:{int(port)}"
        self.timeout = timeout

    def _request(self, method, path, doc=None):
        data = None
        headers = {"Accept": "application/json"}
        if doc is not None:
            data = json.dumps(doc).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as err:
            body = err.read().decode("utf-8", "replace")
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                payload = {"error": body}
            raise ServiceError(err.code, payload) from None

    # -- endpoints -----------------------------------------------------
    def healthz(self):
        return self._request("GET", "/healthz")

    def stats(self):
        return self._request("GET", "/stats")

    def solve(self, request):
        """Synchronous solve; returns the response document."""
        return self._request("POST", "/solve", request)

    def submit(self, request):
        """Submit an async job; returns the job document."""
        return self._request("POST", "/jobs", request)

    def job_status(self, job_id):
        return self._request("GET", f"/jobs/{job_id}")

    def job_result(self, job_id):
        return self._request("GET", f"/jobs/{job_id}/result")

    def stream(self, job_id):
        """Yield the job's NDJSON lifecycle events as dicts."""
        req = urllib.request.Request(
            f"{self.base}/jobs/{job_id}/stream", method="GET")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    # -- helpers -------------------------------------------------------
    @staticmethod
    def solve_result(response):
        """The response's ``result`` as a :class:`SolveResult`."""
        return solve_result_from_doc(response["result"])

    @staticmethod
    def make_request(config="test", rhs=None, **fields):
        """Assemble a request document (encodes a numpy ``rhs``)."""
        doc = {"config": config}
        if rhs is not None:
            doc["rhs"] = encode_array(rhs)
        doc.update(fields)
        return doc
