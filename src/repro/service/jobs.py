"""Async job table: submit / status / result / stream.

A job is one solve request executed asynchronously: ``POST /jobs``
returns an id immediately, the solve runs through the same coalescer
as synchronous requests, and clients either poll
``GET /jobs/<id>`` / ``GET /jobs/<id>/result`` or follow
``GET /jobs/<id>/stream`` -- an NDJSON feed of the job's lifecycle
events (``queued``, ``running``, ``done``/``failed``) that ends when
the job reaches a terminal state.

Jobs survive until explicitly pruned (bounded by ``keep``, oldest
finished jobs dropped first), so a client may fetch a result long
after completion.  ``drain()`` awaits every unfinished job -- the
graceful-shutdown contract: SIGTERM stops *accepting* work but every
accepted job still completes and remains fetchable until the process
exits.
"""

import asyncio
import itertools

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

TERMINAL = (DONE, FAILED)


class Job:
    """One asynchronous solve and its observable lifecycle."""

    def __init__(self, job_id):
        self.id = job_id
        self.status = QUEUED
        self.events = []
        self.response = None
        self.error = None
        self.task = None
        self._changed = asyncio.Event()
        self.add_event(QUEUED)

    def add_event(self, event, **fields):
        entry = {"seq": len(self.events), "job": self.id,
                 "event": event, "status": self.status}
        entry.update(fields)
        self.events.append(entry)
        self._changed.set()
        self._changed = asyncio.Event()

    def describe(self):
        doc = {"job": self.id, "status": self.status,
               "events": len(self.events)}
        if self.error is not None:
            doc["error"] = self.error
        return doc

    async def wait_changed(self):
        await self._changed.wait()


class JobTable:
    """All jobs of one service process."""

    def __init__(self, keep=1024):
        self.keep = int(keep)
        self.jobs = {}
        self._ids = itertools.count(1)

    def submit(self, coro_factory):
        """Create a job running ``coro_factory(job)``; returns the job.

        The factory receives the job (to mark it running) and must
        return the response document for a successful solve.
        """
        job = Job(f"job-{next(self._ids)}")
        self.jobs[job.id] = job
        job.task = asyncio.ensure_future(self._run(job, coro_factory))
        self._prune()
        return job

    async def _run(self, job, coro_factory):
        try:
            job.status = RUNNING
            job.add_event(RUNNING)
            job.response = await coro_factory(job)
            job.status = DONE
            job.add_event(DONE)
        except asyncio.CancelledError:
            job.status = FAILED
            job.error = "cancelled"
            job.add_event(FAILED, error=job.error)
            raise
        except Exception as exc:  # noqa: BLE001 - job boundary
            job.status = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            job.add_event(FAILED, error=job.error)

    def get(self, job_id):
        return self.jobs.get(job_id)

    async def stream(self, job):
        """Yield the job's events as they happen, then stop.

        Replays history first, so a late subscriber still sees the
        full lifecycle.
        """
        cursor = 0
        while True:
            while cursor < len(job.events):
                yield job.events[cursor]
                cursor += 1
            if job.status in TERMINAL:
                return
            await job.wait_changed()

    async def drain(self):
        """Await every unfinished job (graceful shutdown)."""
        pending = [job.task for job in self.jobs.values()
                   if job.task is not None and not job.task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def _prune(self):
        if len(self.jobs) <= self.keep:
            return
        finished = [job_id for job_id, job in self.jobs.items()
                    if job.status in TERMINAL]
        for job_id in finished[:len(self.jobs) - self.keep]:
            del self.jobs[job_id]

    def stats(self):
        counts = {}
        for job in self.jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return {"jobs": len(self.jobs), "by_status": counts}
