"""The fused numpy backend: precompiled, scratch-reusing hot paths.

Same arithmetic as the numpy reference -- bit-for-bit -- executed with
far fewer interpreter dispatches and zero per-step allocations.  The
wins, in order of importance:

* **Precompiled marching programs.**  Each anti-diagonal step of the
  EVP marching recurrence is compiled at ``prepare_evp`` time into flat
  gather/scatter index arrays over one 1-D buffer holding the padded
  state *and* the right-hand side ``y`` (copied in once per solve).  A
  step then executes as five numpy calls regardless of the stencil's
  term count: a single ``take`` for the right-hand side and all
  neighbor terms at once, one multiply by the pre-gathered
  coefficients (the rhs row multiplies by an exact ``1.0``), one
  ``np.subtract.reduce``, one multiply by ``1/ne`` and one scatter.
  The reference needs ~3 calls plus two temporaries *per term*.
* **Order-preserving reduction.**  ``np.subtract.reduce`` over the
  stacked ``(terms + 1, B, L)`` scratch is a strict sequential left
  fold (subtraction is not reorderable, so numpy cannot apply pairwise
  regrouping), which reproduces the reference's term-by-term
  ``rhs -= vals * p[src]`` order exactly -- this is what keeps the
  backend bit-identical while fusing the loop.
* **Fused edge residuals.**  The north and east unmarched equations
  are evaluated together through one flat index program (they are
  elementwise independent, so fusing the two edge loops cannot change
  any result bit).  The sign identity ``-((y - t0) - t1 - ...) ==
  ((-y) + t0) + t1 + ...`` (IEEE negation is exact and rounding is
  sign-symmetric) lets the same subtract-reduce kernel serve here too.
* **Scratch reuse everywhere.**  Padded marching states, gather
  stacks, right-hand-side buffers and the stencil matvec's per-term
  product buffer are allocated once per shape group and reused; the
  hot loop performs no allocations at all.

Multi-RHS batches reuse the *same* flat index programs over a working
buffer with a trailing ``nrhs`` axis: the ``take`` gathers whole rows
of columns at once, the coefficient rows broadcast over the trailing
axis, and the subtract-reduce stays a strict left fold per element --
so each column's bits match the single-RHS program exactly while the
dispatch cost is paid once for the whole batch.  Per-``nrhs`` scratch
is pooled on the plan.

The ring correction itself (LU-derived ``W^-1`` applied as a batched
matmul) lives on the engine and is shared by every backend -- see
:meth:`EVPTileEngine.ring_correction`.
"""

import numpy as np

from repro.kernels.base import KernelBackend, validate_evp_shapes


class _MarchStep:
    """One anti-diagonal step compiled to flat-index form."""

    __slots__ = ("g_idx", "vals", "inv_ne", "tgt_idx", "gather", "rhs")

    def __init__(self, g_idx, vals, inv_ne, tgt_idx, gather, rhs):
        self.g_idx = g_idx      # (T+1, B, L) intp into the combined buffer
        self.vals = vals        # (T+1, B, L) coefficients (row 0 is 1.0)
        self.inv_ne = inv_ne    # (B, L)
        self.tgt_idx = tgt_idx  # (B, L) intp into the state region
        self.gather = gather    # (T+1, B, L) shared scratch
        self.rhs = rhs          # (B, L) shared scratch


class _MultiScratch:
    """Per-``nrhs`` working set: the trailing-axis buffer plus scratch.

    The index programs are ``nrhs``-independent; only the working
    buffers change shape, so a plan keeps one of these per distinct
    batch width it has seen.  The step coefficients are materialized
    once with the trailing axis expanded (``vals``, ``invs``,
    ``e_vals``): a same-shape contiguous multiply beats numpy's
    broadcast of a ``(..., 1)`` view on every iteration, and repeating
    a value along a new axis changes no products.
    """

    __slots__ = ("buf", "gathers", "rhss", "vals", "invs",
                 "e_gather", "e_vals", "f")

    def __init__(self, plan, b, k, nrhs):
        self.buf = np.zeros((plan.buf.shape[0], nrhs))

        def expand(a):
            return np.ascontiguousarray(
                np.broadcast_to(a[..., None], a.shape + (nrhs,)))

        gather_pool = {}
        rhs_pool = {}
        self.gathers = []
        self.rhss = []
        self.vals = []
        self.invs = []
        for step in plan.steps:
            rows, _, length = step.g_idx.shape
            gkey = (rows, length)
            if gkey not in gather_pool:
                gather_pool[gkey] = np.empty((rows, b, length, nrhs))
            if length not in rhs_pool:
                rhs_pool[length] = np.empty((b, length, nrhs))
            self.gathers.append(gather_pool[gkey])
            self.rhss.append(rhs_pool[length])
            self.vals.append(expand(step.vals))
            self.invs.append(expand(step.inv_ne))
        self.e_gather = np.empty((plan.e_gidx.shape[0], b, k, nrhs))
        self.e_vals = expand(plan.e_vals)
        self.f = np.empty((b, k, nrhs))


class _StackedStencilProgram:
    """Flat-index multi-RHS program for :meth:`stencil_apply_stacked`.

    The nine coefficient rows are stacked (center first, then the
    neighbors in the shared MAC order) with the center row *negated*:
    ``(-c) * x`` equals ``-(c * x)`` bit-for-bit, so one strict
    left-fold ``np.subtract.reduce`` followed by a negation reproduces
    the reference accumulation ``c*x + n*xn + s*xs + ...`` exactly --
    the same sign identity the fused edge residuals rely on.  One
    ``take`` / one multiply / one reduce / one negate replace the nine
    multiplies and eight adds of the view-walking path, with the
    coefficients pre-expanded along the trailing ``nrhs`` axis.
    """

    __slots__ = ("coeffs", "g_idx", "vals", "gather", "res")

    #: Same order as the view-walking path (and ``_COEFF_ORDER``).
    ORDER = (("c", 0, 0), ("n", 1, 0), ("s", -1, 0), ("e", 0, 1),
             ("w", 0, -1), ("ne", 1, 1), ("nw", 1, -1), ("se", -1, 1),
             ("sw", -1, -1))

    def __init__(self, coeffs, stack_shape, h, bny, bnx):
        p, pny, pnx, nrhs = stack_shape
        #: Pins the cache key: programs are looked up by ``id(coeffs)``
        #: and revalidated with an ``is`` check against this reference.
        self.coeffs = coeffs
        jj, ii = np.mgrid[0:bny, 0:bnx]
        boff = (np.arange(p, dtype=np.intp) * (pny * pnx))[:, None]
        idx_rows = []
        val_rows = []
        for name, dj, di in self.ORDER:
            src = ((h + dj + jj) * pnx + (h + di + ii)).ravel()
            idx_rows.append(boff + src)
            val_rows.append(np.asarray(coeffs[name]).reshape(p, bny * bnx))
        g_idx = np.stack(idx_rows)
        vals = np.stack(val_rows)
        vals[0] = -vals[0]  # IEEE negation is exact; see class docstring
        self.g_idx = np.ascontiguousarray(
            g_idx[..., None] * nrhs + np.arange(nrhs, dtype=np.intp))
        self.vals = np.ascontiguousarray(
            np.broadcast_to(vals[..., None], vals.shape + (nrhs,)))
        self.gather = np.empty(self.g_idx.shape)
        self.res = np.empty(self.g_idx.shape[1:])

    def run(self, stack, out):
        gather = self.gather
        stack.reshape(-1).take(self.g_idx, out=gather, mode="clip")
        np.multiply(gather, self.vals, out=gather)
        np.subtract.reduce(gather, axis=0, out=self.res)
        np.negative(self.res, out=self.res)
        out[...] = self.res.reshape(out.shape)
        return out


class _EvpPlan:
    """Precompiled marching/edge programs plus scratch for one engine.

    The working array ``buf`` concatenates the flat padded states of all
    tiles (``buf[:split]``) with the flat right-hand sides
    (``buf[split:]``, copied in once per solve).  Having both in one
    buffer lets every marching step gather its rhs *and* all neighbor
    terms with a single ``take``; the rhs row of ``vals`` is ``1.0``,
    whose multiply is IEEE-exact, so the fused gather changes no bits.
    """

    __slots__ = ("steps", "e_gidx", "e_vals", "e_gather", "f",
                 "ring_idx", "buf", "split", "n_interior", "multi")

    def __init__(self, engine):
        b, my, mx = engine.batch, engine.my, engine.mx
        width = mx + 2
        n_pad = (my + 2) * width
        n_int = my * mx
        split = b * n_pad
        boff_y = split + (np.arange(b, dtype=np.intp) * n_int)[:, None]
        boff_p = (np.arange(b, dtype=np.intp) * n_pad)[:, None]

        # -- marching steps --------------------------------------------
        # Scratch is shared between steps of equal (terms, length) so a
        # plan holds O(distinct shapes) buffers, not O(steps).
        gather_pool = {}
        rhs_pool = {}
        self.steps = []
        for y_src, inv_ne, target, terms in engine._march_steps:
            rows = len(terms) + 1
            length = y_src.shape[0]
            gkey = (rows, length)
            if gkey not in gather_pool:
                gather_pool[gkey] = np.empty((rows, b, length))
            if length not in rhs_pool:
                rhs_pool[length] = np.empty((b, length))
            g_idx = np.empty((rows, b, length), dtype=np.intp)
            vals = np.empty((rows, b, length))
            g_idx[0] = boff_y + np.asarray(y_src, dtype=np.intp)
            vals[0] = 1.0
            for t, (tvals, p_src) in enumerate(terms):
                g_idx[t + 1] = boff_p + np.asarray(p_src, dtype=np.intp)
                vals[t + 1] = tvals
            self.steps.append(_MarchStep(
                g_idx=g_idx,
                vals=vals,
                inv_ne=np.ascontiguousarray(inv_ne),
                tgt_idx=boff_p + np.asarray(target, dtype=np.intp),
                gather=gather_pool[gkey],
                rhs=rhs_pool[length],
            ))

        # -- edge residuals (north then east, as in the reference) -----
        north_tx = np.arange(mx, dtype=np.intp)
        east_ty = np.arange(my - 1, dtype=np.intp)
        # y indices of the unmarched equation centers, north then east.
        y_src = np.concatenate([
            (my - 1) * mx + north_tx,
            east_ty * mx + (mx - 1),
        ])
        term_rows = [boff_y + y_src]
        val_rows = [np.ones((b, engine.k))]
        for name, dj, di in list(engine.terms) + [("ne", 1, 1)]:
            coeff = engine.coeffs[name]
            src = np.concatenate([
                (my + dj) * width + (north_tx + 1 + di),
                (east_ty + 1 + dj) * width + (mx + di),
            ])
            term_rows.append(boff_p + src)
            val_rows.append(np.concatenate(
                [coeff[:, my - 1, :], coeff[:, :my - 1, mx - 1]], axis=1))
        self.e_gidx = np.ascontiguousarray(np.stack(term_rows))
        self.e_vals = np.ascontiguousarray(np.stack(val_rows))
        self.e_gather = np.empty((self.e_gidx.shape[0], b, engine.k))
        self.f = np.empty((b, engine.k))

        # -- ring scatter and the combined working buffer --------------
        self.ring_idx = boff_p + (
            engine._ring_rows * width + engine._ring_cols
        ).astype(np.intp)
        self.buf = np.zeros(split + b * n_int)
        self.split = split
        self.n_interior = n_int
        #: Per-``nrhs`` :class:`_MultiScratch`, built on first use.
        self.multi = {}

    def multi_scratch(self, b, k, nrhs):
        ms = self.multi.get(nrhs)
        if ms is None:
            ms = _MultiScratch(self, b, k, nrhs)
            self.multi[nrhs] = ms
        return ms


def _run_march(plan, buf):
    """Execute the precompiled marching program on the combined buffer.

    Every elementwise operation matches the reference sweep's sequence
    (gather rhs, subtract the terms in order, multiply by ``1/ne``,
    scatter), so the filled state is bit-identical to
    ``EVPTileEngine._march``.
    """
    take = buf.take
    for step in plan.steps:
        gather = step.gather
        take(step.g_idx, out=gather, mode="clip")
        np.multiply(gather, step.vals, out=gather)
        np.subtract.reduce(gather, axis=0, out=step.rhs)
        np.multiply(step.rhs, step.inv_ne, out=step.rhs)
        buf[step.tgt_idx] = step.rhs


def _run_edges(plan, buf):
    """Edge residuals through the same subtract-reduce kernel."""
    gather = plan.e_gather
    buf.take(plan.e_gidx, out=gather, mode="clip")
    np.multiply(gather, plan.e_vals, out=gather)
    np.subtract.reduce(gather, axis=0, out=plan.f)
    np.negative(plan.f, out=plan.f)
    return plan.f


def _run_march_multi(plan, ms):
    """Marching program over the ``(N, nrhs)`` buffer.

    Identical left-fold arithmetic per column -- the coefficient rows
    broadcast over the trailing axis, so each column executes exactly
    the single-RHS operation sequence.
    """
    buf = ms.buf
    for step, gather, rhs, vals, inv in zip(plan.steps, ms.gathers,
                                            ms.rhss, ms.vals, ms.invs):
        np.take(buf, step.g_idx, axis=0, out=gather, mode="clip")
        np.multiply(gather, vals, out=gather)
        np.subtract.reduce(gather, axis=0, out=rhs)
        np.multiply(rhs, inv, out=rhs)
        buf[step.tgt_idx] = rhs


def _run_edges_multi(plan, ms):
    """Edge residuals over the ``(N, nrhs)`` buffer."""
    gather = ms.e_gather
    np.take(ms.buf, plan.e_gidx, axis=0, out=gather, mode="clip")
    np.multiply(gather, ms.e_vals, out=gather)
    np.subtract.reduce(gather, axis=0, out=ms.f)
    np.negative(ms.f, out=ms.f)
    return ms.f


class FusedKernels(KernelBackend):
    """Fused numpy backend (see module docstring)."""

    name = "fused"
    deterministic = True

    def __init__(self, xp=None):
        super().__init__(xp)
        self._tmp = {}
        #: Precompiled :class:`_StackedStencilProgram` per stacked
        #: coefficient set and batch geometry.
        self._stencil_multi = {}

    def _scratch(self, shape, dtype):
        key = (shape, np.dtype(dtype).str)
        buf = self._tmp.get(key)
        if buf is None:
            buf = self.xp.empty(shape, dtype=dtype)
            self._tmp[key] = buf
        return buf

    # ------------------------------------------------------------------
    # nine-point stencil: reference MAC order, per-term products landing
    # in a reused buffer instead of fresh temporaries.
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, padded, out):
        xp = self.xp
        t = self._scratch(x.shape, x.dtype)
        cv = (lambda c: c[..., None]) if x.ndim == 3 else (lambda c: c)
        xp.multiply(cv(coeffs.c), x, out=out)
        for coeff, view in (
            (coeffs.n, padded[2:, 1:-1]), (coeffs.s, padded[:-2, 1:-1]),
            (coeffs.e, padded[1:-1, 2:]), (coeffs.w, padded[1:-1, :-2]),
            (coeffs.ne, padded[2:, 2:]), (coeffs.nw, padded[2:, :-2]),
            (coeffs.se, padded[:-2, 2:]), (coeffs.sw, padded[:-2, :-2]),
        ):
            xp.multiply(cv(coeff), view, out=t)
            out += t
        return out

    def stencil_apply_local(self, coeffs, local, h, out):
        xp = self.xp
        bny, bnx = out.shape[:2]
        t = self._scratch(out.shape, out.dtype)
        cv = (lambda c: c[..., None]) if local.ndim == 3 else (lambda c: c)

        def view(dj, di):
            return local[h + dj:h + dj + bny, h + di:h + di + bnx]

        xp.multiply(cv(coeffs.c), view(0, 0), out=out)
        for name, dj, di in (("n", 1, 0), ("s", -1, 0), ("e", 0, 1),
                             ("w", 0, -1), ("ne", 1, 1), ("nw", 1, -1),
                             ("se", -1, 1), ("sw", -1, -1)):
            xp.multiply(cv(getattr(coeffs, name)), view(dj, di), out=t)
            out += t
        return out

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        xp = self.xp
        if (stack.ndim == 4 and xp is np and stack.flags.c_contiguous
                and stack.dtype == np.float64):
            key = (id(coeffs), stack.shape, h, bny, bnx)
            prog = self._stencil_multi.get(key)
            if prog is None or prog.coeffs is not coeffs:
                prog = _StackedStencilProgram(coeffs, stack.shape,
                                              h, bny, bnx)
                self._stencil_multi[key] = prog
            return prog.run(stack, out)
        t = self._scratch((stack.shape[0], bny, bnx) + stack.shape[3:],
                          out.dtype)
        cv = (lambda c: c[..., None]) if stack.ndim == 4 else (lambda c: c)

        def view(dj, di):
            return stack[:, h + dj:h + dj + bny, h + di:h + di + bnx]

        xp.multiply(cv(coeffs["c"]), view(0, 0), out=out)
        for name, dj, di in (("n", 1, 0), ("s", -1, 0), ("e", 0, 1),
                             ("w", 0, -1), ("ne", 1, 1), ("nw", 1, -1),
                             ("se", -1, 1), ("sw", -1, -1)):
            xp.multiply(cv(coeffs[name]), view(dj, di), out=t)
            out += t
        return out

    # ------------------------------------------------------------------
    # EVP tile solves
    # ------------------------------------------------------------------
    def prepare_evp(self, engine):
        return _EvpPlan(engine)

    def evp_solve(self, engine, plan, y, out=None):
        y = validate_evp_shapes(engine, y)
        b, my, mx = engine.batch, engine.my, engine.mx
        if y.ndim == 4:
            return self._evp_solve_multi(engine, plan, y, out)
        buf, split = plan.buf, plan.split
        state = buf[:split]
        buf[split:] = y.reshape(b * plan.n_interior)
        state.fill(0.0)
        _run_march(plan, buf)
        f = _run_edges(plan, buf)
        ring = engine.ring_correction(f)
        state.fill(0.0)
        buf[plan.ring_idx] = ring
        _run_march(plan, buf)
        x = state.reshape(b, my + 2, mx + 2)[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out

    def _evp_solve_multi(self, engine, plan, y, out):
        b, my, mx = engine.batch, engine.my, engine.mx
        nrhs = y.shape[3]
        ms = plan.multi_scratch(b, engine.k, nrhs)
        buf, split = ms.buf, plan.split
        state = buf[:split]
        buf[split:] = y.reshape(b * plan.n_interior, nrhs)
        state.fill(0.0)
        _run_march_multi(plan, ms)
        f = _run_edges_multi(plan, ms)
        ring = engine.ring_correction(f)
        state.fill(0.0)
        buf[plan.ring_idx] = ring
        _run_march_multi(plan, ms)
        x = state.reshape(b, my + 2, mx + 2, nrhs)[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out
