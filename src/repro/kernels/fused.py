"""The fused numpy backend: precompiled, scratch-reusing hot paths.

Same arithmetic as the numpy reference -- bit-for-bit -- executed with
far fewer interpreter dispatches and zero per-step allocations.  The
wins, in order of importance:

* **Precompiled marching programs.**  Each anti-diagonal step of the
  EVP marching recurrence is compiled at ``prepare_evp`` time into flat
  gather/scatter index arrays over one 1-D buffer holding the padded
  state *and* the right-hand side ``y`` (copied in once per solve).  A
  step then executes as five numpy calls regardless of the stencil's
  term count: a single ``take`` for the right-hand side and all
  neighbor terms at once, one multiply by the pre-gathered
  coefficients (the rhs row multiplies by an exact ``1.0``), one
  ``np.subtract.reduce``, one multiply by ``1/ne`` and one scatter.
  The reference needs ~3 calls plus two temporaries *per term*.
* **Order-preserving reduction.**  ``np.subtract.reduce`` over the
  stacked ``(terms + 1, B, L)`` scratch is a strict sequential left
  fold (subtraction is not reorderable, so numpy cannot apply pairwise
  regrouping), which reproduces the reference's term-by-term
  ``rhs -= vals * p[src]`` order exactly -- this is what keeps the
  backend bit-identical while fusing the loop.
* **Fused edge residuals.**  The north and east unmarched equations
  are evaluated together through one flat index program (they are
  elementwise independent, so fusing the two edge loops cannot change
  any result bit).  The sign identity ``-((y - t0) - t1 - ...) ==
  ((-y) + t0) + t1 + ...`` (IEEE negation is exact and rounding is
  sign-symmetric) lets the same subtract-reduce kernel serve here too.
* **Scratch reuse everywhere.**  Padded marching states, gather
  stacks, right-hand-side buffers and the stencil matvec's per-term
  product buffer are allocated once per shape group and reused; the
  hot loop performs no allocations at all.

The ring correction itself (LU-derived ``W^-1`` applied as a batched
matmul) lives on the engine and is shared by every backend -- see
:meth:`EVPTileEngine.ring_correction`.
"""

import numpy as np

from repro.kernels.base import KernelBackend, validate_evp_shapes


class _MarchStep:
    """One anti-diagonal step compiled to flat-index form."""

    __slots__ = ("g_idx", "vals", "inv_ne", "tgt_idx", "gather", "rhs")

    def __init__(self, g_idx, vals, inv_ne, tgt_idx, gather, rhs):
        self.g_idx = g_idx      # (T+1, B, L) intp into the combined buffer
        self.vals = vals        # (T+1, B, L) coefficients (row 0 is 1.0)
        self.inv_ne = inv_ne    # (B, L)
        self.tgt_idx = tgt_idx  # (B, L) intp into the state region
        self.gather = gather    # (T+1, B, L) shared scratch
        self.rhs = rhs          # (B, L) shared scratch


class _EvpPlan:
    """Precompiled marching/edge programs plus scratch for one engine.

    The working array ``buf`` concatenates the flat padded states of all
    tiles (``buf[:split]``) with the flat right-hand sides
    (``buf[split:]``, copied in once per solve).  Having both in one
    buffer lets every marching step gather its rhs *and* all neighbor
    terms with a single ``take``; the rhs row of ``vals`` is ``1.0``,
    whose multiply is IEEE-exact, so the fused gather changes no bits.
    """

    __slots__ = ("steps", "e_gidx", "e_vals", "e_gather", "f",
                 "ring_idx", "buf", "split", "n_interior")

    def __init__(self, engine):
        b, my, mx = engine.batch, engine.my, engine.mx
        width = mx + 2
        n_pad = (my + 2) * width
        n_int = my * mx
        split = b * n_pad
        boff_y = split + (np.arange(b, dtype=np.intp) * n_int)[:, None]
        boff_p = (np.arange(b, dtype=np.intp) * n_pad)[:, None]

        # -- marching steps --------------------------------------------
        # Scratch is shared between steps of equal (terms, length) so a
        # plan holds O(distinct shapes) buffers, not O(steps).
        gather_pool = {}
        rhs_pool = {}
        self.steps = []
        for y_src, inv_ne, target, terms in engine._march_steps:
            rows = len(terms) + 1
            length = y_src.shape[0]
            gkey = (rows, length)
            if gkey not in gather_pool:
                gather_pool[gkey] = np.empty((rows, b, length))
            if length not in rhs_pool:
                rhs_pool[length] = np.empty((b, length))
            g_idx = np.empty((rows, b, length), dtype=np.intp)
            vals = np.empty((rows, b, length))
            g_idx[0] = boff_y + np.asarray(y_src, dtype=np.intp)
            vals[0] = 1.0
            for t, (tvals, p_src) in enumerate(terms):
                g_idx[t + 1] = boff_p + np.asarray(p_src, dtype=np.intp)
                vals[t + 1] = tvals
            self.steps.append(_MarchStep(
                g_idx=g_idx,
                vals=vals,
                inv_ne=np.ascontiguousarray(inv_ne),
                tgt_idx=boff_p + np.asarray(target, dtype=np.intp),
                gather=gather_pool[gkey],
                rhs=rhs_pool[length],
            ))

        # -- edge residuals (north then east, as in the reference) -----
        north_tx = np.arange(mx, dtype=np.intp)
        east_ty = np.arange(my - 1, dtype=np.intp)
        # y indices of the unmarched equation centers, north then east.
        y_src = np.concatenate([
            (my - 1) * mx + north_tx,
            east_ty * mx + (mx - 1),
        ])
        term_rows = [boff_y + y_src]
        val_rows = [np.ones((b, engine.k))]
        for name, dj, di in list(engine.terms) + [("ne", 1, 1)]:
            coeff = engine.coeffs[name]
            src = np.concatenate([
                (my + dj) * width + (north_tx + 1 + di),
                (east_ty + 1 + dj) * width + (mx + di),
            ])
            term_rows.append(boff_p + src)
            val_rows.append(np.concatenate(
                [coeff[:, my - 1, :], coeff[:, :my - 1, mx - 1]], axis=1))
        self.e_gidx = np.ascontiguousarray(np.stack(term_rows))
        self.e_vals = np.ascontiguousarray(np.stack(val_rows))
        self.e_gather = np.empty((self.e_gidx.shape[0], b, engine.k))
        self.f = np.empty((b, engine.k))

        # -- ring scatter and the combined working buffer --------------
        self.ring_idx = boff_p + (
            engine._ring_rows * width + engine._ring_cols
        ).astype(np.intp)
        self.buf = np.zeros(split + b * n_int)
        self.split = split
        self.n_interior = n_int


def _run_march(plan, buf):
    """Execute the precompiled marching program on the combined buffer.

    Every elementwise operation matches the reference sweep's sequence
    (gather rhs, subtract the terms in order, multiply by ``1/ne``,
    scatter), so the filled state is bit-identical to
    ``EVPTileEngine._march``.
    """
    take = buf.take
    for step in plan.steps:
        gather = step.gather
        take(step.g_idx, out=gather, mode="clip")
        np.multiply(gather, step.vals, out=gather)
        np.subtract.reduce(gather, axis=0, out=step.rhs)
        np.multiply(step.rhs, step.inv_ne, out=step.rhs)
        buf[step.tgt_idx] = step.rhs


def _run_edges(plan, buf):
    """Edge residuals through the same subtract-reduce kernel."""
    gather = plan.e_gather
    buf.take(plan.e_gidx, out=gather, mode="clip")
    np.multiply(gather, plan.e_vals, out=gather)
    np.subtract.reduce(gather, axis=0, out=plan.f)
    np.negative(plan.f, out=plan.f)
    return plan.f


class FusedKernels(KernelBackend):
    """Fused numpy backend (see module docstring)."""

    name = "fused"
    deterministic = True

    def __init__(self):
        self._tmp = {}

    def _scratch(self, shape, dtype):
        key = (shape, np.dtype(dtype).str)
        buf = self._tmp.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._tmp[key] = buf
        return buf

    # ------------------------------------------------------------------
    # nine-point stencil: reference MAC order, per-term products landing
    # in a reused buffer instead of fresh temporaries.
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, xp, out):
        t = self._scratch(x.shape, x.dtype)
        np.multiply(coeffs.c, x, out=out)
        for coeff, view in (
            (coeffs.n, xp[2:, 1:-1]), (coeffs.s, xp[:-2, 1:-1]),
            (coeffs.e, xp[1:-1, 2:]), (coeffs.w, xp[1:-1, :-2]),
            (coeffs.ne, xp[2:, 2:]), (coeffs.nw, xp[2:, :-2]),
            (coeffs.se, xp[:-2, 2:]), (coeffs.sw, xp[:-2, :-2]),
        ):
            np.multiply(coeff, view, out=t)
            out += t
        return out

    def stencil_apply_local(self, coeffs, local, h, out):
        bny, bnx = out.shape
        t = self._scratch((bny, bnx), out.dtype)

        def view(dj, di):
            return local[h + dj:h + dj + bny, h + di:h + di + bnx]

        np.multiply(coeffs.c, view(0, 0), out=out)
        for name, dj, di in (("n", 1, 0), ("s", -1, 0), ("e", 0, 1),
                             ("w", 0, -1), ("ne", 1, 1), ("nw", 1, -1),
                             ("se", -1, 1), ("sw", -1, -1)):
            np.multiply(getattr(coeffs, name), view(dj, di), out=t)
            out += t
        return out

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        t = self._scratch((stack.shape[0], bny, bnx), out.dtype)

        def view(dj, di):
            return stack[:, h + dj:h + dj + bny, h + di:h + di + bnx]

        np.multiply(coeffs["c"], view(0, 0), out=out)
        for name, dj, di in (("n", 1, 0), ("s", -1, 0), ("e", 0, 1),
                             ("w", 0, -1), ("ne", 1, 1), ("nw", 1, -1),
                             ("se", -1, 1), ("sw", -1, -1)):
            np.multiply(coeffs[name], view(dj, di), out=t)
            out += t
        return out

    # ------------------------------------------------------------------
    # EVP tile solves
    # ------------------------------------------------------------------
    def prepare_evp(self, engine):
        return _EvpPlan(engine)

    def evp_solve(self, engine, plan, y, out=None):
        y = validate_evp_shapes(engine, y)
        b, my, mx = engine.batch, engine.my, engine.mx
        buf, split = plan.buf, plan.split
        state = buf[:split]
        buf[split:] = y.reshape(b * plan.n_interior)
        state.fill(0.0)
        _run_march(plan, buf)
        f = _run_edges(plan, buf)
        ring = engine.ring_correction(f)
        state.fill(0.0)
        buf[plan.ring_idx] = ring
        _run_march(plan, buf)
        x = state.reshape(b, my + 2, mx + 2)[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out
