"""The numpy reference backend.

Straightforward vectorized numpy: the stencil matvec as nine
slice-multiply-accumulate passes, the EVP solve as the engine's
reference marching sweep (`EVPTileEngine._march`) with per-step fancy
indexing.  Every other backend is validated against this one -- the
deterministic backends bit-for-bit, numba to 1e-12 relative.

The coefficient application order (center, compass, corners -- the
module-level tuple in :mod:`repro.operators.blocked`) is part of the
reference semantics: all deterministic backends must accumulate in the
same order, since floating-point addition does not commute in the last
bit.
"""

import numpy as np

from repro.kernels.base import KernelBackend, validate_evp_shapes


class NumpyKernels(KernelBackend):
    """Reference implementations (see module docstring)."""

    name = "numpy"
    deterministic = True

    # ------------------------------------------------------------------
    # nine-point stencil
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, xp, out):
        np.multiply(coeffs.c, x, out=out)
        out += coeffs.n * xp[2:, 1:-1]
        out += coeffs.s * xp[:-2, 1:-1]
        out += coeffs.e * xp[1:-1, 2:]
        out += coeffs.w * xp[1:-1, :-2]
        out += coeffs.ne * xp[2:, 2:]
        out += coeffs.nw * xp[2:, :-2]
        out += coeffs.se * xp[:-2, 2:]
        out += coeffs.sw * xp[:-2, :-2]
        return out

    def stencil_apply_local(self, coeffs, local, h, out):
        bny, bnx = out.shape

        def view(dj, di):
            return local[h + dj:h + dj + bny, h + di:h + di + bnx]

        np.multiply(coeffs.c, view(0, 0), out=out)
        out += coeffs.n * view(1, 0)
        out += coeffs.s * view(-1, 0)
        out += coeffs.e * view(0, 1)
        out += coeffs.w * view(0, -1)
        out += coeffs.ne * view(1, 1)
        out += coeffs.nw * view(1, -1)
        out += coeffs.se * view(-1, 1)
        out += coeffs.sw * view(-1, -1)
        return out

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        def view(dj, di):
            return stack[:, h + dj:h + dj + bny, h + di:h + di + bnx]

        np.multiply(coeffs["c"], view(0, 0), out=out)
        out += coeffs["n"] * view(1, 0)
        out += coeffs["s"] * view(-1, 0)
        out += coeffs["e"] * view(0, 1)
        out += coeffs["w"] * view(0, -1)
        out += coeffs["ne"] * view(1, 1)
        out += coeffs["nw"] * view(1, -1)
        out += coeffs["se"] * view(-1, 1)
        out += coeffs["sw"] * view(-1, -1)
        return out

    # ------------------------------------------------------------------
    # EVP tile solves
    # ------------------------------------------------------------------
    def evp_solve(self, engine, plan, y, out=None):
        """March -> edge residuals -> ring correction -> march again."""
        y = validate_evp_shapes(engine, y)
        b, my, mx = engine.batch, engine.my, engine.mx
        p = np.zeros((b, my + 2, mx + 2))
        engine._march(p, y)
        f = engine._edge_residuals(p, y)
        ring = engine.ring_correction(f)
        p2 = np.zeros((b, my + 2, mx + 2))
        p2[:, engine._ring_rows, engine._ring_cols] = ring
        engine._march(p2, y)
        x = p2[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out
