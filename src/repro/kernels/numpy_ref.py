"""The numpy reference backend.

Straightforward vectorized numpy: the stencil matvec as nine
slice-multiply-accumulate passes, the EVP solve as the engine's
reference marching sweep (`EVPTileEngine._march`) with per-step fancy
indexing.  Every other backend is validated against this one -- the
deterministic backends bit-for-bit, numba to 1e-12 relative.

The coefficient application order (center, compass, corners -- the
module-level tuple in :mod:`repro.operators.blocked`) is part of the
reference semantics: all deterministic backends must accumulate in the
same order, since floating-point addition does not commute in the last
bit.

Multi-RHS batches ride a trailing ``nrhs`` axis: the slice programs are
unchanged except that the 2-D coefficient arrays gain an explicit
trailing broadcast axis, so every element of every column sees exactly
the operation sequence the single-RHS path performs -- batched results
are bit-identical per column.

All array math is routed through ``self.xp`` (numpy unless an
alternative array module was bound), so the same programs run on GPU
array modules.
"""

import numpy as np

from repro.kernels.base import KernelBackend, validate_evp_shapes


class NumpyKernels(KernelBackend):
    """Reference implementations (see module docstring)."""

    name = "numpy"
    deterministic = True

    # ------------------------------------------------------------------
    # nine-point stencil
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, padded, out):
        xp = self.xp
        cv = (lambda c: c[..., None]) if x.ndim == 3 else (lambda c: c)
        xp.multiply(cv(coeffs.c), x, out=out)
        out += cv(coeffs.n) * padded[2:, 1:-1]
        out += cv(coeffs.s) * padded[:-2, 1:-1]
        out += cv(coeffs.e) * padded[1:-1, 2:]
        out += cv(coeffs.w) * padded[1:-1, :-2]
        out += cv(coeffs.ne) * padded[2:, 2:]
        out += cv(coeffs.nw) * padded[2:, :-2]
        out += cv(coeffs.se) * padded[:-2, 2:]
        out += cv(coeffs.sw) * padded[:-2, :-2]
        return out

    def stencil_apply_local(self, coeffs, local, h, out):
        xp = self.xp
        bny, bnx = out.shape[:2]
        cv = (lambda c: c[..., None]) if local.ndim == 3 else (lambda c: c)

        def view(dj, di):
            return local[h + dj:h + dj + bny, h + di:h + di + bnx]

        xp.multiply(cv(coeffs.c), view(0, 0), out=out)
        out += cv(coeffs.n) * view(1, 0)
        out += cv(coeffs.s) * view(-1, 0)
        out += cv(coeffs.e) * view(0, 1)
        out += cv(coeffs.w) * view(0, -1)
        out += cv(coeffs.ne) * view(1, 1)
        out += cv(coeffs.nw) * view(1, -1)
        out += cv(coeffs.se) * view(-1, 1)
        out += cv(coeffs.sw) * view(-1, -1)
        return out

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        xp = self.xp
        cv = (lambda c: c[..., None]) if stack.ndim == 4 else (lambda c: c)

        def view(dj, di):
            return stack[:, h + dj:h + dj + bny, h + di:h + di + bnx]

        xp.multiply(cv(coeffs["c"]), view(0, 0), out=out)
        out += cv(coeffs["n"]) * view(1, 0)
        out += cv(coeffs["s"]) * view(-1, 0)
        out += cv(coeffs["e"]) * view(0, 1)
        out += cv(coeffs["w"]) * view(0, -1)
        out += cv(coeffs["ne"]) * view(1, 1)
        out += cv(coeffs["nw"]) * view(1, -1)
        out += cv(coeffs["se"]) * view(-1, 1)
        out += cv(coeffs["sw"]) * view(-1, -1)
        return out

    # ------------------------------------------------------------------
    # EVP tile solves
    # ------------------------------------------------------------------
    def evp_solve(self, engine, plan, y, out=None):
        """March -> edge residuals -> ring correction -> march again."""
        xp = self.xp
        y = validate_evp_shapes(engine, y)
        b, my, mx = engine.batch, engine.my, engine.mx
        trailing = y.shape[3:]
        march = engine._march_multi if trailing else engine._march
        edges = engine._edge_residuals_multi if trailing else engine._edge_residuals
        p = xp.zeros((b, my + 2, mx + 2) + trailing)
        march(p, y)
        f = edges(p, y)
        ring = engine.ring_correction(f)
        p2 = xp.zeros((b, my + 2, mx + 2) + trailing)
        p2[:, engine._ring_rows, engine._ring_cols] = ring
        march(p2, y)
        x = p2[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out
