"""The kernel-backend interface.

A *kernel backend* is a pluggable implementation of the two per-iteration
hot paths of the reproduction:

* the nine-point stencil matrix-vector product (the paper's ``9 n^2``
  computation term), in its global, per-rank-local and stacked forms,
* the EVP tile solve (the paper's ``14 n^2`` preconditioner apply):
  two marching sweeps plus the edge-residual evaluation.

Backends change *execution strategy only* -- never the arithmetic.  The
``deterministic`` flag records the contract: a deterministic backend
performs bit-for-bit the same IEEE operation sequence as the numpy
reference, so solver iterates are bit-identical under it.  The optional
``numba`` backend relaxes this to a small round-off drift (different
but valid evaluation of the same formulas; the parity suite bounds it
at 1e-12 relative).

Pieces that must stay backend-independent -- the EVP influence-matrix
construction and its LU-based ring correction -- live on
:class:`~repro.precond.evp.EVPTileEngine` itself and are *not* routed
through the backend (see the engine's docstrings).

Per-engine precompiled state (flat gather indices, scratch buffers) is
produced by :meth:`KernelBackend.prepare_evp` and handed back to every
``evp_solve`` call, so backends never key caches on engine identity.
"""

import numpy as np


class KernelBackend:
    """Base class for kernel backends (see module docstring).

    ``xp`` is the array-module namespace the backend computes with --
    numpy by default, or a GPU module (CuPy, ``jax.numpy``) resolved by
    :func:`repro.kernels.resolve_array_module`.  Backends route their
    array allocations and elementwise programs through ``self.xp`` so
    the same code runs unchanged on device arrays; with ``xp = numpy``
    every operation is literally the pre-existing numpy call, so the
    default path stays bit-identical.
    """

    #: Registry name ("numpy", "fused", "numba").
    name = "abstract"

    #: Whether results are bit-identical to the numpy reference.
    deterministic = True

    #: Whether the backend can run in this process (numba flips this
    #: to False when the import fails; the registry reports why).
    available = True

    #: Human-readable reason when ``available`` is False.
    unavailable_reason = None

    def __init__(self, xp=None):
        #: Array-module namespace (numpy unless a GPU module was bound).
        self.xp = np if xp is None else xp

    # ------------------------------------------------------------------
    # nine-point stencil
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, padded, out):
        """Global ``out = A @ x``.

        ``padded`` is the caller-managed ``(ny + 2, nx + 2[, nrhs])``
        padded copy of ``x`` (zero border, interior already filled);
        ``out`` is preallocated and never aliases ``x``/``padded``.
        A trailing ``nrhs`` axis, when present, batches independent
        right-hand sides through one vectorized pass.
        """
        raise NotImplementedError

    def stencil_apply_local(self, coeffs, local, h, out):
        """``A @ x`` on one rank's interior, neighbors read from halos.

        ``local`` has shape ``(bny + 2h, bnx + 2h[, nrhs])``; ``out`` is
        the preallocated ``(bny, bnx[, nrhs])`` interior result.
        """
        raise NotImplementedError

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        """``A @ x`` over a ``(p, bny + 2h, bnx + 2h[, nrhs])`` stack.

        ``coeffs`` is a dict of nine stacked ``(p, bny, bnx)``
        coefficient arrays; ``out`` is the preallocated ``(p, bny,
        bnx[, nrhs])`` interior stack (may be a strided view).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # EVP tile solves
    # ------------------------------------------------------------------
    def prepare_evp(self, engine):
        """Build per-shape-group precompiled state for ``evp_solve``.

        Called once per :class:`~repro.precond.evp.EVPTileEngine` after
        its influence matrices exist.  The returned object is opaque to
        the engine and passed back verbatim.  ``None`` (the default)
        means the backend needs no precompiled state.
        """
        return None

    def evp_solve(self, engine, plan, y, out=None):
        """Solve ``B_i x_i = y_i`` for every tile in the engine's batch.

        ``y`` has shape ``(B, my, mx)`` or ``(B, my, mx, nrhs)`` for a
        multi-RHS batch; writes/returns ``x`` of the same shape.  Must
        call ``engine.ring_correction`` for the ring update so the
        correction stays backend-independent.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def describe(self):
        """One-line summary for CLI/benchmark output."""
        kind = "bit-identical" if self.deterministic else "round-off drift"
        return f"{self.name} ({kind})"

    def __repr__(self):
        return f"<KernelBackend {self.name}>"


def validate_evp_shapes(engine, y):
    """Shared argument check for ``evp_solve`` implementations.

    Accepts the ``(B, my, mx)`` single-RHS shape or the
    ``(B, my, mx, nrhs)`` multi-RHS batch.
    """
    expect = (engine.batch, engine.my, engine.mx)
    ok = y.shape == expect or (y.ndim == 4 and y.shape[:3] == expect)
    if not ok:
        from repro.core.errors import SolverError

        raise SolverError(
            f"expected y of shape {expect} or {expect + ('nrhs',)}, "
            f"got {y.shape}"
        )
    return np.ascontiguousarray(y, dtype=np.float64)
