"""Pluggable kernel backends for the solver hot paths.

The per-iteration cost of the reproduction concentrates in two places:
the nine-point stencil matvec (the paper's ``9 n^2`` computation term)
and the EVP preconditioner apply (the ``14 n^2`` marching solve).  This
package makes their *implementation* selectable while guaranteeing the
*arithmetic* stays fixed:

``numpy``
    The vectorized reference -- readable, allocation-light, the oracle
    every other backend is validated against.
``fused``
    Same IEEE operation sequence, executed through precompiled
    flat-index programs with reused scratch (see
    :mod:`repro.kernels.fused`).  Bit-identical to ``numpy`` and the
    default under ``auto`` when numba is absent.
``numba``
    Optional nopython JIT loops; only available when ``numba`` is
    installed.  Results may drift from the reference in the last bits
    (bounded at 1e-12 relative by the parity suite).

Selection
---------
Every entry point that touches a hot path accepts ``kernels=`` -- a
backend name, a :class:`~repro.kernels.base.KernelBackend` instance, or
``None``.  ``None`` consults the ``REPRO_KERNELS`` environment variable
and then defaults to ``"auto"``, which picks the fastest *available*
backend (numba > fused > numpy).  Requesting an unknown name raises
:class:`~repro.core.errors.KernelError` listing the choices; requesting
``numba`` without numba installed raises with the import failure --
only ``auto`` falls back silently.

Array modules
-------------
Backends are *array-module generic*: every backend carries an ``xp``
namespace (numpy by default) through which it allocates and operates on
arrays, so the same batched index programs run unchanged on GPU array
modules.  :func:`resolve_array_module` maps a name (``numpy``,
``cupy``, ``jax``) -- or the ``REPRO_ARRAY_MODULE`` environment
variable -- to a namespace.  A GPU module that fails to import degrades
to numpy with a single clear warning (the import error is preserved in
the message); an unknown name raises :class:`KernelError`.

The EVP influence matrices are deliberately *not* backend work: they
are built once by the engine's deterministic reference sweep, so cached
artifacts (and the ring correction derived from them) are identical no
matter which backend later consumes them.
"""

import importlib
import os
import warnings

import numpy as np

from repro.core.errors import KernelError
from repro.kernels.base import KernelBackend
from repro.kernels.fused import FusedKernels
from repro.kernels.numba_jit import NUMBA_AVAILABLE, NumbaKernels
from repro.kernels.numpy_ref import NumpyKernels

__all__ = [
    "KernelBackend",
    "NumpyKernels",
    "FusedKernels",
    "NumbaKernels",
    "KernelError",
    "NUMBA_AVAILABLE",
    "KERNEL_CHOICES",
    "ARRAY_MODULE_CHOICES",
    "available_backends",
    "get_backend",
    "resolve_kernels",
    "resolve_array_module",
    "reset_warned_array_modules",
]

#: Environment variable consulted when no explicit backend is given.
KERNELS_ENV = "REPRO_KERNELS"

#: Environment variable naming the array module backends compute with.
ARRAY_MODULE_ENV = "REPRO_ARRAY_MODULE"

#: Recognized array-module names.  ``numpy`` is always available; the
#: GPU modules are imported lazily and fall back to numpy (with one
#: warning) when absent.
ARRAY_MODULE_CHOICES = ("numpy", "cupy", "jax")

#: Import paths for the optional array modules (the namespace exposing
#: the numpy-compatible API, not necessarily the top-level package).
_ARRAY_MODULE_IMPORTS = {"cupy": "cupy", "jax": "jax.numpy"}

#: Names we already warned about, so the degradation message is emitted
#: exactly once per process however many resolutions happen.
_WARNED_ARRAY_MODULES = set()


def reset_warned_array_modules():
    """Forget which array-module fallback warnings were already emitted.

    The warn-once set is process-global state: once a fallback warning
    for (say) ``cupy`` fires, every later resolution in the process --
    including unrelated test cases -- stays silent.  Test suites (and
    long-lived services that want to re-surface the degradation after a
    reconfiguration) call this to re-arm the warning; it never touches
    backend singletons or their scratch caches.
    """
    _WARNED_ARRAY_MODULES.clear()


def resolve_array_module(name=None):
    """Resolve an array-module name to a numpy-compatible namespace.

    ``None`` consults ``$REPRO_ARRAY_MODULE`` and defaults to numpy.
    ``cupy``/``jax`` are imported lazily; if the import fails the
    resolution *degrades to numpy* with a single clear warning so
    CPU-only hosts keep working.  Unknown names raise
    :class:`KernelError`.
    """
    if name is None:
        name = os.environ.get(ARRAY_MODULE_ENV) or "numpy"
    if not isinstance(name, str):
        # Already a module/namespace: trust the caller.
        return name
    name = name.lower()
    if name == "numpy":
        return np
    if name not in _ARRAY_MODULE_IMPORTS:
        raise KernelError(
            f"unknown array module {name!r}; expected one of "
            f"{', '.join(ARRAY_MODULE_CHOICES)}"
        )
    try:
        return importlib.import_module(_ARRAY_MODULE_IMPORTS[name])
    except ImportError as exc:
        if name not in _WARNED_ARRAY_MODULES:
            _WARNED_ARRAY_MODULES.add(name)
            warnings.warn(
                f"array module {name!r} is unavailable ({exc}); "
                f"falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        return np

#: ``auto`` preference order: fastest first, skipping unavailable ones.
AUTO_ORDER = ("numba", "fused", "numpy")

#: Singleton backend instances (scratch caches live on them, so a
#: process shares one instance per backend).
_BACKENDS = {
    "numpy": NumpyKernels(),
    "fused": FusedKernels(),
    "numba": NumbaKernels(),
}

#: Valid ``--kernels`` values, in CLI display order.
KERNEL_CHOICES = ("auto",) + tuple(_BACKENDS)


def available_backends():
    """Names of the backends usable in this process, in auto order."""
    return tuple(name for name in AUTO_ORDER if _BACKENDS[name].available)


def _with_array_module(backend, xp=None):
    """Bind ``backend`` to the requested array module.

    The numpy-``xp`` singletons are shared (their scratch caches make a
    process-wide instance worthwhile); a non-numpy module gets a fresh
    instance so device scratch never mixes with host scratch.
    """
    module = resolve_array_module(xp)
    if module is np:
        return backend
    return type(backend)(xp=module)


def get_backend(name, xp=None):
    """The backend registered under ``name`` (exact, no resolution).

    Raises :class:`KernelError` for unknown names and for known but
    unavailable backends (with the reason).  ``xp`` optionally names the
    array module the returned instance computes with.
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{', '.join(KERNEL_CHOICES)}"
        )
    if not backend.available:
        raise KernelError(
            f"kernel backend {name!r} is unavailable: "
            f"{backend.unavailable_reason}; install the optional "
            f"dependency or select 'auto' to fall back"
        )
    return _with_array_module(backend, xp)


def resolve_kernels(kernels=None, xp=None):
    """Resolve a ``kernels=`` argument to a usable backend instance.

    ``None`` -> ``$REPRO_KERNELS`` or ``"auto"``; ``"auto"`` -> the
    first available backend in :data:`AUTO_ORDER`; a name -> that
    backend (raising if unknown/unavailable); a backend instance ->
    itself.  ``xp`` optionally names the array module (default:
    ``$REPRO_ARRAY_MODULE`` or numpy) the backend computes with.
    """
    if isinstance(kernels, KernelBackend):
        if not kernels.available:
            raise KernelError(
                f"kernel backend {kernels.name!r} is unavailable: "
                f"{kernels.unavailable_reason}"
            )
        return kernels
    name = kernels
    if name is None:
        name = os.environ.get(KERNELS_ENV) or "auto"
    name = str(name).lower()
    if name == "auto":
        for candidate in AUTO_ORDER:
            if _BACKENDS[candidate].available:
                return _with_array_module(_BACKENDS[candidate], xp)
        raise KernelError("no kernel backend is available")
    return get_backend(name, xp)
