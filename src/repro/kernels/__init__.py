"""Pluggable kernel backends for the solver hot paths.

The per-iteration cost of the reproduction concentrates in two places:
the nine-point stencil matvec (the paper's ``9 n^2`` computation term)
and the EVP preconditioner apply (the ``14 n^2`` marching solve).  This
package makes their *implementation* selectable while guaranteeing the
*arithmetic* stays fixed:

``numpy``
    The vectorized reference -- readable, allocation-light, the oracle
    every other backend is validated against.
``fused``
    Same IEEE operation sequence, executed through precompiled
    flat-index programs with reused scratch (see
    :mod:`repro.kernels.fused`).  Bit-identical to ``numpy`` and the
    default under ``auto`` when numba is absent.
``numba``
    Optional nopython JIT loops; only available when ``numba`` is
    installed.  Results may drift from the reference in the last bits
    (bounded at 1e-12 relative by the parity suite).

Selection
---------
Every entry point that touches a hot path accepts ``kernels=`` -- a
backend name, a :class:`~repro.kernels.base.KernelBackend` instance, or
``None``.  ``None`` consults the ``REPRO_KERNELS`` environment variable
and then defaults to ``"auto"``, which picks the fastest *available*
backend (numba > fused > numpy).  Requesting an unknown name raises
:class:`~repro.core.errors.KernelError` listing the choices; requesting
``numba`` without numba installed raises with the import failure --
only ``auto`` falls back silently.

The EVP influence matrices are deliberately *not* backend work: they
are built once by the engine's deterministic reference sweep, so cached
artifacts (and the ring correction derived from them) are identical no
matter which backend later consumes them.
"""

import os

from repro.core.errors import KernelError
from repro.kernels.base import KernelBackend
from repro.kernels.fused import FusedKernels
from repro.kernels.numba_jit import NUMBA_AVAILABLE, NumbaKernels
from repro.kernels.numpy_ref import NumpyKernels

__all__ = [
    "KernelBackend",
    "NumpyKernels",
    "FusedKernels",
    "NumbaKernels",
    "KernelError",
    "NUMBA_AVAILABLE",
    "KERNEL_CHOICES",
    "available_backends",
    "get_backend",
    "resolve_kernels",
]

#: Environment variable consulted when no explicit backend is given.
KERNELS_ENV = "REPRO_KERNELS"

#: ``auto`` preference order: fastest first, skipping unavailable ones.
AUTO_ORDER = ("numba", "fused", "numpy")

#: Singleton backend instances (scratch caches live on them, so a
#: process shares one instance per backend).
_BACKENDS = {
    "numpy": NumpyKernels(),
    "fused": FusedKernels(),
    "numba": NumbaKernels(),
}

#: Valid ``--kernels`` values, in CLI display order.
KERNEL_CHOICES = ("auto",) + tuple(_BACKENDS)


def available_backends():
    """Names of the backends usable in this process, in auto order."""
    return tuple(name for name in AUTO_ORDER if _BACKENDS[name].available)


def get_backend(name):
    """The backend registered under ``name`` (exact, no resolution).

    Raises :class:`KernelError` for unknown names and for known but
    unavailable backends (with the reason).
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{', '.join(KERNEL_CHOICES)}"
        )
    if not backend.available:
        raise KernelError(
            f"kernel backend {name!r} is unavailable: "
            f"{backend.unavailable_reason}; install the optional "
            f"dependency or select 'auto' to fall back"
        )
    return backend


def resolve_kernels(kernels=None):
    """Resolve a ``kernels=`` argument to a usable backend instance.

    ``None`` -> ``$REPRO_KERNELS`` or ``"auto"``; ``"auto"`` -> the
    first available backend in :data:`AUTO_ORDER`; a name -> that
    backend (raising if unknown/unavailable); a backend instance ->
    itself.
    """
    if isinstance(kernels, KernelBackend):
        if not kernels.available:
            raise KernelError(
                f"kernel backend {kernels.name!r} is unavailable: "
                f"{kernels.unavailable_reason}"
            )
        return kernels
    name = kernels
    if name is None:
        name = os.environ.get(KERNELS_ENV) or "auto"
    name = str(name).lower()
    if name == "auto":
        for candidate in AUTO_ORDER:
            if _BACKENDS[candidate].available:
                return _BACKENDS[candidate]
        raise KernelError("no kernel backend is available")
    return get_backend(name)
