"""Optional numba JIT backend (guarded import).

When ``numba`` is importable, the stencil matvec and the EVP marching
sweep compile to nopython machine-code loops: one fused
multiply-accumulate per grid point with no intermediate arrays at all.
When it is not (the default container has no numba), this module still
imports cleanly and registers an *unavailable* backend, so the registry
can explain the situation instead of raising ``ImportError`` at import
time; ``auto`` resolution simply skips it.

Numerics: the scalar loops evaluate the same formulas in the same term
order as the reference, but scalar accumulation versus numpy's
array-at-a-time temporaries can differ in the last bits (and numba may
contract to FMA on some targets).  The backend is therefore marked
non-deterministic; the parity suite bounds its drift at 1e-12 relative
against the reference, and the EVP influence matrices are *never* built
through it (they are constructed by the engine's deterministic
reference sweep, so cached artifacts stay backend-independent).
"""

import numpy as np

from repro.kernels.base import KernelBackend, validate_evp_shapes

try:
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR = None
except ImportError as exc:  # pragma: no cover - exercised without numba
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = str(exc)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised in the numba CI leg

    @njit(cache=True)
    def _stencil_point(c, n, s, e, w, ne, nw, se, sw, xp, j, i, hj, hi):
        acc = c[j, i] * xp[hj, hi]
        acc += n[j, i] * xp[hj + 1, hi]
        acc += s[j, i] * xp[hj - 1, hi]
        acc += e[j, i] * xp[hj, hi + 1]
        acc += w[j, i] * xp[hj, hi - 1]
        acc += ne[j, i] * xp[hj + 1, hi + 1]
        acc += nw[j, i] * xp[hj + 1, hi - 1]
        acc += se[j, i] * xp[hj - 1, hi + 1]
        acc += sw[j, i] * xp[hj - 1, hi - 1]
        return acc

    @njit(cache=True)
    def _stencil_2d(c, n, s, e, w, ne, nw, se, sw, xp, h, out):
        ny, nx = out.shape
        for j in range(ny):
            for i in range(nx):
                out[j, i] = _stencil_point(
                    c, n, s, e, w, ne, nw, se, sw, xp, j, i, j + h, i + h)
        return out

    @njit(cache=True)
    def _stencil_stacked(c, n, s, e, w, ne, nw, se, sw, stack, h, out):
        p, ny, nx = out.shape
        for r in range(p):
            for j in range(ny):
                for i in range(nx):
                    out[r, j, i] = _stencil_point(
                        c[r], n[r], s[r], e[r], w[r], ne[r], nw[r],
                        se[r], sw[r], stack[r], j, i, j + h, i + h)
        return out

    @njit(cache=True)
    def _evp_march(p, y, c, n, s, e, w, nw, se, sw, ne):
        batch = p.shape[0]
        my = y.shape[1]
        mx = y.shape[2]
        # Row-major order satisfies the marching data dependencies: the
        # value written at (ty+2, tx+2) only reads rows <= ty+2 at
        # columns already filled (or ring/zero cells).
        for b in range(batch):
            for ty in range(my - 1):
                for tx in range(mx - 1):
                    acc = y[b, ty, tx]
                    acc -= c[b, ty, tx] * p[b, ty + 1, tx + 1]
                    acc -= n[b, ty, tx] * p[b, ty + 2, tx + 1]
                    acc -= s[b, ty, tx] * p[b, ty, tx + 1]
                    acc -= e[b, ty, tx] * p[b, ty + 1, tx + 2]
                    acc -= w[b, ty, tx] * p[b, ty + 1, tx]
                    acc -= nw[b, ty, tx] * p[b, ty + 2, tx]
                    acc -= se[b, ty, tx] * p[b, ty, tx + 2]
                    acc -= sw[b, ty, tx] * p[b, ty, tx]
                    p[b, ty + 2, tx + 2] = acc * (1.0 / ne[b, ty, tx])
        return p

    @njit(cache=True)
    def _evp_edges(p, y, c, n, s, e, w, nw, se, sw, ne, f):
        batch = p.shape[0]
        my = y.shape[1]
        mx = y.shape[2]
        for b in range(batch):
            ty = my - 1
            for tx in range(mx):
                acc = -y[b, ty, tx]
                acc += c[b, ty, tx] * p[b, ty + 1, tx + 1]
                acc += n[b, ty, tx] * p[b, ty + 2, tx + 1]
                acc += s[b, ty, tx] * p[b, ty, tx + 1]
                acc += e[b, ty, tx] * p[b, ty + 1, tx + 2]
                acc += w[b, ty, tx] * p[b, ty + 1, tx]
                acc += nw[b, ty, tx] * p[b, ty + 2, tx]
                acc += se[b, ty, tx] * p[b, ty, tx + 2]
                acc += sw[b, ty, tx] * p[b, ty, tx]
                acc += ne[b, ty, tx] * p[b, ty + 2, tx + 2]
                f[b, tx] = acc
            tx = mx - 1
            for ty in range(my - 1):
                acc = -y[b, ty, tx]
                acc += c[b, ty, tx] * p[b, ty + 1, tx + 1]
                acc += n[b, ty, tx] * p[b, ty + 2, tx + 1]
                acc += s[b, ty, tx] * p[b, ty, tx + 1]
                acc += e[b, ty, tx] * p[b, ty + 1, tx + 2]
                acc += w[b, ty, tx] * p[b, ty + 1, tx]
                acc += nw[b, ty, tx] * p[b, ty + 2, tx]
                acc += se[b, ty, tx] * p[b, ty, tx + 2]
                acc += sw[b, ty, tx] * p[b, ty, tx]
                acc += ne[b, ty, tx] * p[b, ty + 2, tx + 2]
                f[b, mx + ty] = acc
        return f


else:
    def _missing(*_args, **_kwargs):
        raise RuntimeError(
            "the numba kernel backend was invoked without numba installed; "
            "resolve backends through repro.kernels.resolve_kernels"
        )

    _stencil_2d = _stencil_stacked = _evp_march = _evp_edges = _missing


_COEFF_ORDER = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")

#: Marching passes coefficients in this order (ne last, it divides).
_MARCH_ORDER = ("c", "n", "s", "e", "w", "nw", "se", "sw", "ne")


class NumbaKernels(KernelBackend):
    """JIT-compiled backend; unavailable when numba is not installed."""

    name = "numba"
    deterministic = False
    available = NUMBA_AVAILABLE
    unavailable_reason = (
        None if NUMBA_AVAILABLE
        else "numba is not installed"
        + (f" ({NUMBA_IMPORT_ERROR})" if NUMBA_IMPORT_ERROR else "")
    )

    # ------------------------------------------------------------------
    # Multi-RHS batches (a trailing ``nrhs`` axis) loop column by column
    # through the compiled single-RHS loops on contiguous copies, so the
    # batched path reproduces the backend's own single-RHS arithmetic
    # stream exactly.
    # ------------------------------------------------------------------
    def stencil_apply(self, coeffs, x, padded, out):
        if x.ndim == 3:
            for j in range(x.shape[-1]):
                out[..., j] = _stencil_2d(
                    coeffs.c, coeffs.n, coeffs.s, coeffs.e, coeffs.w,
                    coeffs.ne, coeffs.nw, coeffs.se, coeffs.sw,
                    np.ascontiguousarray(padded[..., j]), 1,
                    np.empty(out.shape[:2]))
            return out
        return _stencil_2d(coeffs.c, coeffs.n, coeffs.s, coeffs.e,
                           coeffs.w, coeffs.ne, coeffs.nw, coeffs.se,
                           coeffs.sw, padded, 1, out)

    def stencil_apply_local(self, coeffs, local, h, out):
        if local.ndim == 3:
            for j in range(local.shape[-1]):
                out[..., j] = _stencil_2d(
                    coeffs.c, coeffs.n, coeffs.s, coeffs.e, coeffs.w,
                    coeffs.ne, coeffs.nw, coeffs.se, coeffs.sw,
                    np.ascontiguousarray(local[..., j]), h,
                    np.empty(out.shape[:2]))
            return out
        return _stencil_2d(coeffs.c, coeffs.n, coeffs.s, coeffs.e,
                           coeffs.w, coeffs.ne, coeffs.nw, coeffs.se,
                           coeffs.sw, local, h, out)

    def stencil_apply_stacked(self, coeffs, stack, h, bny, bnx, out):
        args = tuple(np.ascontiguousarray(coeffs[name])
                     for name in _COEFF_ORDER)
        if stack.ndim == 4:
            for j in range(stack.shape[-1]):
                out[..., j] = _stencil_stacked(
                    *args, np.ascontiguousarray(stack[..., j]), h,
                    np.empty((stack.shape[0], bny, bnx)))
            return out
        return _stencil_stacked(*args, stack, h, out)

    # ------------------------------------------------------------------
    def prepare_evp(self, engine):
        # Contiguous copies of all nine coefficient stacks, in marching
        # order (zero arrays included: the scalar loop pays one fused
        # multiply-add for them, cheaper than branching).
        return tuple(np.ascontiguousarray(engine.coeffs[name])
                     for name in _MARCH_ORDER)

    def evp_solve(self, engine, plan, y, out=None):
        y = validate_evp_shapes(engine, y)
        b, my, mx = engine.batch, engine.my, engine.mx
        if y.ndim == 4:
            nrhs = y.shape[3]
            if out is None:
                out = np.empty((b, my, mx, nrhs))
            for j in range(nrhs):
                out[..., j] = self.evp_solve(
                    engine, plan, np.ascontiguousarray(y[..., j]))
            return out
        c, n, s, e, w, nw, se, sw, ne = plan
        p = np.zeros((b, my + 2, mx + 2))
        _evp_march(p, y, c, n, s, e, w, nw, se, sw, ne)
        f = np.empty((b, engine.k))
        _evp_edges(p, y, c, n, s, e, w, nw, se, sw, ne, f)
        ring = engine.ring_correction(f)
        p[...] = 0.0
        p[:, engine._ring_rows, engine._ring_cols] = ring
        _evp_march(p, y, c, n, s, e, w, nw, se, sw, ne)
        x = p[:, 1:my + 1, 1:mx + 1]
        if out is None:
            return x.copy()
        out[...] = x
        return out
