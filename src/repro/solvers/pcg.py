"""Textbook preconditioned conjugate gradients.

The pre-ChronGear baseline: mathematically the same Krylov iteration as
ChronGear but with *two* separate global reductions per iteration
(``r^T z`` and ``p^T q``).  Kept so experiments can show the lineage
diagonal-PCG -> ChronGear (halve the reductions) -> P-CSI (eliminate
them).
"""

import math

import numpy as np

from repro.core.errors import BreakdownError
from repro.solvers.base import IterativeSolver


class PCGSolver(IterativeSolver):
    """Classic PCG: two reductions per iteration."""

    name = "pcg"

    def _setup(self, b, x):
        ctx = self.context
        r = ctx.residual(b, x, phase="setup")
        z = ctx.precond(r, phase="setup")
        p = ctx.copy(z)
        rho = ctx.dot(r, z, phase="setup")
        return {"x": x, "r": r, "p": p, "rho": rho, "b": b}

    def _iterate(self, state, k):
        ctx = self.context
        p = state["p"]
        q = ctx.matvec(p)
        pq = ctx.dot(p, q)                      # reduction #1
        if isinstance(pq, np.ndarray):
            return self._iterate_multi(state, pq, p, q)
        if not math.isfinite(pq):
            raise BreakdownError(
                f"PCG breakdown: p^T A p is {pq} -- iterate is poisoned")
        if pq == 0.0:
            if state["rho"] == 0.0:
                # Exact zero residual: already solved; no-op iteration.
                return
            raise BreakdownError("PCG breakdown: p^T A p vanished")
        alpha = state["rho"] / pq
        ctx.axpy(alpha, p, state["x"])
        ctx.axpy(-alpha, q, state["r"])
        z = ctx.precond(state["r"])
        rho_new = ctx.dot(state["r"], z)        # reduction #2
        if not math.isfinite(rho_new):
            raise BreakdownError(
                f"PCG breakdown: r^T z is {rho_new} -- iterate is poisoned")
        if state["rho"] == 0.0:
            raise BreakdownError("PCG breakdown: rho vanished")
        beta = rho_new / state["rho"]
        ctx.xpay(z, beta, p)                    # p = z + beta p
        state["rho"] = rho_new

    def _iterate_multi(self, state, pq, p, q):
        """Batched recurrences, one ``(nrhs,)`` entry per column.

        Live columns run the exact scalar arithmetic elementwise (bit-
        identical to standalone solves); an exactly solved column
        (``pq = rho = 0``) freezes itself through zero coefficients, and
        a non-finite reduction poisons only its own column, which the
        next convergence check diagnoses.  A vanished ``p^T A p`` or
        ``rho`` on a live column is an SPD violation and raises the same
        :class:`BreakdownError` the scalar path would.
        """
        ctx = self.context
        rho = np.asarray(state["rho"], dtype=np.float64)
        noop = (pq == 0.0) & (rho == 0.0)
        if bool(noop.all()):
            return
        if bool(np.any((pq == 0.0) & ~noop & np.isfinite(pq))):
            raise BreakdownError("PCG breakdown: p^T A p vanished")
        alpha = np.where(noop, 0.0, rho / np.where(noop, 1.0, pq))
        ctx.axpy(alpha, p, state["x"])
        ctx.axpy(-alpha, q, state["r"])
        z = ctx.precond(state["r"])
        rho_new = ctx.dot(state["r"], z)        # reduction #2
        if bool(np.any((rho == 0.0) & ~noop & np.isfinite(rho_new))):
            raise BreakdownError("PCG breakdown: rho vanished")
        beta = np.where(noop, 0.0, rho_new / np.where(noop, 1.0, rho))
        ctx.xpay(z, beta, p)                    # p = z + beta p
        state["rho"] = np.where(noop, rho, rho_new)
