"""Textbook preconditioned conjugate gradients.

The pre-ChronGear baseline: mathematically the same Krylov iteration as
ChronGear but with *two* separate global reductions per iteration
(``r^T z`` and ``p^T q``).  Kept so experiments can show the lineage
diagonal-PCG -> ChronGear (halve the reductions) -> P-CSI (eliminate
them).
"""

import math

from repro.core.errors import BreakdownError
from repro.solvers.base import IterativeSolver


class PCGSolver(IterativeSolver):
    """Classic PCG: two reductions per iteration."""

    name = "pcg"

    def _setup(self, b, x):
        ctx = self.context
        r = ctx.residual(b, x, phase="setup")
        z = ctx.precond(r, phase="setup")
        p = ctx.copy(z)
        rho = ctx.dot(r, z, phase="setup")
        return {"x": x, "r": r, "p": p, "rho": rho, "b": b}

    def _iterate(self, state, k):
        ctx = self.context
        p = state["p"]
        q = ctx.matvec(p)
        pq = ctx.dot(p, q)                      # reduction #1
        if not math.isfinite(pq):
            raise BreakdownError(
                f"PCG breakdown: p^T A p is {pq} -- iterate is poisoned")
        if pq == 0.0:
            if state["rho"] == 0.0:
                # Exact zero residual: already solved; no-op iteration.
                return
            raise BreakdownError("PCG breakdown: p^T A p vanished")
        alpha = state["rho"] / pq
        ctx.axpy(alpha, p, state["x"])
        ctx.axpy(-alpha, q, state["r"])
        z = ctx.precond(state["r"])
        rho_new = ctx.dot(state["r"], z)        # reduction #2
        if not math.isfinite(rho_new):
            raise BreakdownError(
                f"PCG breakdown: r^T z is {rho_new} -- iterate is poisoned")
        if state["rho"] == 0.0:
            raise BreakdownError("PCG breakdown: rho vanished")
        beta = rho_new / state["rho"]
        ctx.xpay(z, beta, p)                    # p = z + beta p
        state["rho"] = rho_new
