"""The Chronopoulos-Gear solver (paper Algorithm 1).

ChronGear (D'Azevedo, Eijkhout & Romine 1999) is a rearranged
preconditioned conjugate gradient that fuses the two inner products of
classical PCG -- ``rho = r^T r'`` and ``delta = z^T r'`` -- into a
*single* ``MPI_Allreduce`` per iteration, at the cost of one extra
vector recurrence.  It is the CESM POP default solver this paper
improves upon.

Per-iteration event profile (the paper's Eq. 2, diagonal M):

* computation: 15 n^2 flop units
  (9 matvec + 4 vector updates + 2 inner-product multiplies),
* preconditioning: ``M``'s cost (1 n^2 diagonal, ~14 n^2 simplified EVP),
* boundary: one halo update,
* reduction: one fused all-reduce + 2 n^2 masking flops
  (+ one extra reduction at each convergence check).
"""

import math

import numpy as np

from repro.core.errors import BreakdownError
from repro.solvers.base import IterativeSolver


class ChronGearSolver(IterativeSolver):
    """Preconditioned CG with fused reductions (POP's default)."""

    name = "chrongear"

    def _setup(self, b, x):
        ctx = self.context
        # r0 = b - B x0 (one matvec; skipped cheaply for the common
        # x0 = 0 case would change the event stream, so always compute).
        r = ctx.residual(b, x, phase="setup")
        s = ctx.new_vector()
        p = ctx.new_vector()
        return {
            "x": x, "r": r, "s": s, "p": p,
            "rho": 1.0, "sigma": 0.0,
            "b": b,
        }

    def _iterate(self, state, k):
        ctx = self.context
        # step 4: r' = M^-1 r_{k-1}
        r_prime = ctx.precond(state["r"])
        # step 5-6: z = B r' followed by the halo update
        z = ctx.matvec(r_prime)
        # steps 7-9: fused global reduction for rho and delta
        rho, delta = ctx.dot_pair(state["r"], r_prime, z, r_prime)
        if isinstance(rho, np.ndarray):
            return self._iterate_multi(state, rho, delta, r_prime, z)
        if not (math.isfinite(rho) and math.isfinite(delta)):
            raise BreakdownError(
                f"ChronGear breakdown: non-finite reduction "
                f"(rho={rho}, delta={delta}) -- iterate is poisoned"
            )
        if rho == 0.0 and delta == 0.0:
            # Exact zero residual (zero RHS or an exact initial guess):
            # the system is already solved; leave the state untouched so
            # the next convergence check reports success.
            return
        # steps 10-12: scalar recurrences
        rho_old = state["rho"]
        if rho_old == 0.0:
            raise BreakdownError(
                "ChronGear breakdown: rho vanished (operator or "
                "preconditioner is not SPD on the ocean subspace)"
            )
        beta = rho / rho_old
        sigma = delta - beta * beta * state["sigma"]
        if sigma == 0.0:
            raise BreakdownError("ChronGear breakdown: sigma vanished")
        alpha = rho / sigma
        # steps 13-16: the four vector recurrences
        ctx.xpay(r_prime, beta, state["s"])   # s = r' + beta s
        ctx.xpay(z, beta, state["p"])         # p = z + beta p
        ctx.axpy(alpha, state["s"], state["x"])    # x += alpha s
        ctx.axpy(-alpha, state["p"], state["r"])   # r -= alpha p
        state["rho"] = rho
        state["sigma"] = sigma

    def _iterate_multi(self, state, rho, delta, r_prime, z):
        """Batched scalar recurrences: one ``(nrhs,)`` entry per column.

        Each active column runs the exact scalar arithmetic (``beta =
        rho / rho_old`` etc. are elementwise), so its iterates stay
        bit-identical to a standalone solve.  Column-local anomalies are
        handled per column:

        * an exact zero residual (``rho = delta = 0``) freezes that
          column's ``x``/``r``/``rho``/``sigma`` via zero coefficients,
          so the next convergence check reports it converged;
        * a non-finite reduction poisons only its own column (all vector
          updates are column-independent), which the next check diagnoses
          as a per-column non-finite residual.

        Only batch-wide SPD violations (``rho_old`` or ``sigma``
        vanishing on a live column) raise :class:`BreakdownError`, the
        same verdict the scalar path gives.
        """
        ctx = self.context
        noop = (rho == 0.0) & (delta == 0.0)
        if bool(noop.all()):
            # Every active column is exactly solved; leave the state
            # untouched so the next convergence check reports success.
            return
        rho_old = np.asarray(state["rho"], dtype=np.float64)
        sigma_old = np.asarray(state["sigma"], dtype=np.float64)
        if bool(np.any((rho_old == 0.0) & ~noop & np.isfinite(rho))):
            raise BreakdownError(
                "ChronGear breakdown: rho vanished (operator or "
                "preconditioner is not SPD on the ocean subspace)"
            )
        beta = np.where(noop, 0.0, rho / np.where(noop, 1.0, rho_old))
        sigma = delta - beta * beta * sigma_old
        if bool(np.any((sigma == 0.0) & ~noop & np.isfinite(sigma))):
            raise BreakdownError("ChronGear breakdown: sigma vanished")
        alpha = np.where(noop, 0.0, rho / np.where(noop, 1.0, sigma))
        ctx.xpay(r_prime, beta, state["s"])   # s = r' + beta s
        ctx.xpay(z, beta, state["p"])         # p = z + beta p
        ctx.axpy(alpha, state["s"], state["x"])    # x += alpha s
        ctx.axpy(-alpha, state["p"], state["r"])   # r -= alpha p
        state["rho"] = np.where(noop, rho_old, rho)
        state["sigma"] = np.where(noop, sigma_old, sigma)
