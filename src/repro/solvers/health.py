"""Structured solver-health diagnoses.

The guarded convergence loop in :mod:`repro.solvers.base` never lets a
solve fail silently: every abnormal stop -- a non-finite right-hand
side, a residual that exploded past the divergence threshold, a
breakdown inside an iteration, or a plain exhausted budget -- is
condensed into a :class:`SolverDiagnosis` attached both to the partial
:class:`~repro.solvers.result.SolveResult` and to the
:class:`~repro.core.errors.ConvergenceError` (when one is raised).

Downstream consumers:

* :class:`~repro.solvers.csi.PCSISolver` keys its recovery policy off
  :data:`RECOVERABLE_KINDS` (bad Chebyshev bounds manifest as
  ``diverged`` or ``nonfinite_residual``),
* the report runner records per-step diagnoses instead of crashing,
* the fault-injection tests (``tests/test_faults.py``) assert every
  injected fault surfaces as exactly one of these kinds.
"""

import math
from dataclasses import dataclass, field

#: The solve never started: ``b`` or ``x0`` carried NaN/Inf on ocean
#: points (e.g. an upstream model state blew up, or an injected fault
#: corrupted the right-hand side).
NONFINITE_INPUT = "nonfinite_input"

#: A checked residual norm came back NaN/Inf -- the iteration has been
#: poisoned (overflowed divergence, corrupted halo ring, perturbed
#: reduction partial, ...).
NONFINITE_RESIDUAL = "nonfinite_residual"

#: The residual norm grew past ``divergence_factor * |b|`` across
#: consecutive convergence checks -- the signature of a Chebyshev
#: interval that excludes part of the spectrum (bad Lanczos bounds).
DIVERGED = "diverged"

#: An iteration raised :class:`~repro.core.errors.BreakdownError`
#: (vanished or non-finite inner products in the CG-family solvers).
BREAKDOWN = "breakdown"

#: The iteration budget ran out while the residual was still finite and
#: (not catastrophically) above tolerance -- the classic slow-solve
#: failure, as opposed to the pathological kinds above.
BUDGET_EXHAUSTED = "budget_exhausted"

#: A simulated rank died mid-solve and the rollback budget of the
#: resilience layer (buddy replication) was exhausted before the solve
#: could complete; individual *recovered* rank deaths appear as
#: recovery records in ``extra["resilience"]``, not as failures.
RANK_LOST = "rank_lost"

#: An ABFT check (halo checksum, matvec row sum, residual cross-check)
#: detected silent data corruption and the rollback budget ran out.
SDC_DETECTED = "sdc_detected"

#: Every kind a diagnosis may carry.
DIAGNOSIS_KINDS = (NONFINITE_INPUT, NONFINITE_RESIDUAL, DIVERGED,
                   BREAKDOWN, BUDGET_EXHAUSTED, RANK_LOST, SDC_DETECTED)

#: Kinds the P-CSI recovery policy retries on: all three are how bad
#: eigenvalue bounds (or a transient data corruption) present, and all
#: three can be cured by widening the interval / restarting.  A budget
#: exhaustion or garbage input is not retried -- more iterations of the
#: same configuration would fail the same way.
RECOVERABLE_KINDS = frozenset({NONFINITE_RESIDUAL, DIVERGED, BREAKDOWN})


@dataclass
class SolverDiagnosis:
    """Why a solve stopped abnormally.

    Attributes
    ----------
    kind:
        One of :data:`DIAGNOSIS_KINDS`.
    solver:
        Name of the solver that stopped (``"pcsi"``, ``"chrongear"``...).
    message:
        Human-readable one-liner.
    iteration:
        Loop iteration at which the condition was detected (0 for entry
        checks).
    residual_norm:
        Last known residual norm (may be NaN/Inf -- that can be the
        finding itself).
    b_norm:
        Right-hand-side norm (the relative-tolerance reference).
    data:
        Kind-specific details: the divergence threshold, the offending
        check history, recovery-attempt counters, ...
    """

    kind: str
    solver: str
    message: str
    iteration: int = 0
    residual_norm: float = float("nan")
    b_norm: float = float("nan")
    data: dict = field(default_factory=dict)

    @property
    def recoverable(self):
        """Whether the P-CSI recovery policy may retry on this kind."""
        return self.kind in RECOVERABLE_KINDS

    def describe(self):
        """One-line human-readable summary."""
        return (f"[{self.kind}] {self.solver} @ iteration "
                f"{self.iteration}: {self.message}")

    def to_dict(self):
        """JSON-safe dict (NaN/Inf become strings, numpy scalars cast)."""
        return {
            "kind": self.kind,
            "recoverable": self.recoverable,
            "solver": self.solver,
            "message": self.message,
            "iteration": int(self.iteration),
            "residual_norm": _json_float(self.residual_norm),
            "b_norm": _json_float(self.b_norm),
            "data": {str(k): _json_value(v) for k, v in self.data.items()},
        }

    @classmethod
    def from_dict(cls, doc):
        """Rebuild a diagnosis from :meth:`to_dict` output.

        The inverse of the JSON-safe encoding: ``'nan'``/``'inf'``
        strings parse back into the floats they stood for.
        ``recoverable`` is derived, so a stored value is ignored.
        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        documents.
        """
        return cls(
            kind=str(doc["kind"]),
            solver=str(doc["solver"]),
            message=str(doc["message"]),
            iteration=int(doc["iteration"]),
            residual_norm=_parse_float(doc["residual_norm"]),
            b_norm=_parse_float(doc["b_norm"]),
            data=dict(doc.get("data", {})),
        )


def _parse_float(value):
    """Undo :func:`_json_float`: repr strings become floats again."""
    return float(value)


def _json_float(value):
    value = float(value)
    return value if math.isfinite(value) else repr(value)


def _json_value(value):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return _json_float(value)
    if isinstance(value, dict):
        return {str(k): _json_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_value(v) for v in value]
    try:  # numpy scalars
        return _json_value(value.item())
    except AttributeError:
        return repr(value)
