"""Shared machinery for spectrally-parameterized solvers.

Both P-CSI (paper Alg. 2) and the s-step CA-PCG run Chebyshev
recurrences over the spectral interval ``[nu, mu]`` of the
preconditioned operator ``M^-1 A``, and both fail the same way when the
interval excludes part of the spectrum: eigenvalues above ``mu`` are
amplified by the residual (or basis) polynomial and the iteration
diverges geometrically.  :class:`SpectralBoundedSolver` factors out
everything those solvers share beyond the iteration itself:

* **Eigenbound acquisition** -- user-supplied ``(nu, mu)`` or a Lanczos
  estimation at first solve, memoized across instances and processes by
  the artifact cache (:mod:`repro.solvers.lanczos`), with safety-factor
  widening.
* **The recovery policy** -- when the guarded convergence loop diagnoses
  a recoverable failure (divergence, non-finite residual, breakdown),
  the solve widens the interval (``nu_safety``/``mu_safety`` backoff),
  reruns Lanczos with more steps and a fresh start vector, and retries
  up to ``max_recoveries`` times.  Every failed attempt's events and the
  re-estimation are re-charged to the ``"recovery"`` ledger phase so
  modeled timings stay honest; ``fallback="chrongear"`` chains to the
  reduction-based solver as the last resort, mirroring how POP would
  fall back in production.
* **Checkpoint hooks** -- the interval and Lanczos configuration live
  outside the loop state dict, but a resumed run (and any recovery
  re-estimation after it) depends on them bit-for-bit.

Subclasses implement ``_setup``/``_iterate`` and call
:meth:`_ensure_bounds` during setup.
"""

from repro.core.errors import ConvergenceError, SolverError
from repro.parallel.events import EventCounts
from repro.solvers.base import IterativeSolver
from repro.solvers.chrongear import ChronGearSolver
from repro.solvers.lanczos import estimate_eigenbounds


class SpectralBoundedSolver(IterativeSolver):
    """Base class for solvers driven by a spectral interval of ``M^-1 A``.

    Parameters (beyond :class:`IterativeSolver`'s)
    ----------
    eig_bounds:
        Optional ``(nu, mu)`` for the preconditioned spectrum.  When
        omitted, a Lanczos estimation runs once at first solve and is
        cached for subsequent solves (POP reuses the bounds for the
        whole run since ``A`` is fixed).
    lanczos_tol, lanczos_steps, lanczos_seed:
        Lanczos stopping control (paper tol: 0.15).  ``lanczos_steps``
        forces a fixed step count (the Figure 3 sweep).
    nu_safety, mu_safety:
        Interval widening factors applied to the Lanczos estimates.
    bounds_cache:
        Optional :class:`~repro.core.cache.ArtifactCache` memoizing the
        raw Lanczos estimates across solver instances and processes; on
        a hit the recorded estimation events are replayed into the
        ledger, so modeled timings are unchanged (see
        :func:`~repro.solvers.lanczos.estimate_eigenbounds`).
    max_recoveries:
        Recovery attempts after a diagnosed divergence / non-finite
        residual / breakdown (see the module docstring).  ``0`` disables
        recovery.
    nu_backoff, mu_backoff:
        Per-recovery widening of the safety factors: ``nu_safety *=
        nu_backoff`` (pushing the lower bound further down) and
        ``mu_safety *= mu_backoff`` (pushing the upper bound further
        up).  User-supplied ``eig_bounds`` are widened directly by the
        same factors.
    fallback:
        ``"chrongear"`` chains to :class:`ChronGearSolver` on the same
        context once recoveries are exhausted; ``None`` (default)
        re-raises instead.
    """

    def __init__(self, context, eig_bounds=None, lanczos_tol=0.15,
                 lanczos_steps=None, lanczos_seed=0,
                 nu_safety=0.5, mu_safety=1.05, bounds_cache=None,
                 max_recoveries=2, nu_backoff=0.5, mu_backoff=1.5,
                 fallback=None, **kwargs):
        super().__init__(context, **kwargs)
        if eig_bounds is not None:
            nu, mu = float(eig_bounds[0]), float(eig_bounds[1])
            self._check_bounds(nu, mu)
            self._bounds = (nu, mu)
            self._lanczos_info = None
        else:
            self._bounds = None
            self._lanczos_info = None
        self._user_bounds = eig_bounds is not None
        self.lanczos_tol = lanczos_tol
        self.lanczos_steps = lanczos_steps
        self.lanczos_seed = lanczos_seed
        self.nu_safety = nu_safety
        self.mu_safety = mu_safety
        self.bounds_cache = bounds_cache
        if max_recoveries < 0:
            raise SolverError(
                f"max_recoveries must be >= 0, got {max_recoveries}")
        if not (0.0 < nu_backoff < 1.0):
            raise SolverError(
                f"nu_backoff must be in (0, 1), got {nu_backoff}")
        if mu_backoff < 1.0:
            raise SolverError(
                f"mu_backoff must be >= 1, got {mu_backoff}")
        if fallback not in (None, "chrongear"):
            raise SolverError(
                f"unknown fallback {fallback!r}; expected None or "
                f"'chrongear'")
        self.max_recoveries = int(max_recoveries)
        self.nu_backoff = float(nu_backoff)
        self.mu_backoff = float(mu_backoff)
        self.fallback = fallback
        self._lanczos_max_steps = 60
        # The as-configured recovery knobs.  _widen_interval mutates the
        # live attributes while a recovery is in flight; solve() resets
        # them from this snapshot when it returns, so the *next* solve
        # on the same instance starts from the configured interval
        # policy instead of the widened one.
        self._configured_recovery = {
            "nu_safety": self.nu_safety,
            "mu_safety": self.mu_safety,
            "lanczos_steps": self.lanczos_steps,
            "lanczos_max_steps": self._lanczos_max_steps,
        }

    @staticmethod
    def _check_bounds(nu, mu):
        if not (0.0 < nu < mu):
            raise SolverError(
                f"need 0 < nu < mu for the Chebyshev interval, got "
                f"[{nu}, {mu}]"
            )

    @property
    def eig_bounds(self):
        """The spectral interval in use (``None`` before first solve)."""
        return self._bounds

    def _injected_bound_skew(self, nu, mu):
        """Apply any eigenbound fault injectors attached to the VM."""
        vm = getattr(self.context, "vm", None)
        for fault in getattr(vm, "faults", ()) or ():
            nu, mu = fault.on_eigenbounds(nu, mu)
        return nu, mu

    def _ensure_bounds(self):
        if self._bounds is None:
            # The spectral interval of M^-1 A does not depend on the
            # right-hand side, so the Lanczos run always executes in
            # scalar (single-column) mode -- a multi-RHS solve estimates
            # once and shares the bounds across every column, exactly
            # like a sequence of single-RHS solves would.
            ctx = self.context
            saved_nrhs = ctx.nrhs
            ctx.nrhs = None
            try:
                nu, mu, info = estimate_eigenbounds(
                    ctx, tol=self.lanczos_tol,
                    steps=self.lanczos_steps, seed=self.lanczos_seed,
                    max_steps=self._lanczos_max_steps,
                    nu_safety=self.nu_safety, mu_safety=self.mu_safety,
                    phase="setup", cache=self.bounds_cache,
                )
            finally:
                ctx.nrhs = saved_nrhs
            nu, mu = self._injected_bound_skew(nu, mu)
            self._check_bounds(nu, mu)
            self._bounds = (nu, mu)
            self._lanczos_info = info
        return self._bounds

    # ------------------------------------------------------------------
    # recovery policy
    # ------------------------------------------------------------------
    def solve(self, b, x0=None, checkpoint=None, resume_from=None,
              resilience=None):
        """Guarded solve with divergence recovery (module docstring)."""
        if self.max_recoveries == 0 and self.fallback is None:
            return super().solve(b, x0, checkpoint=checkpoint,
                                 resume_from=resume_from,
                                 resilience=resilience)

        ledger = self.context.ledger
        diagnoses = []
        recovery_counts = EventCounts()
        attempt = 0
        try:
            return self._solve_with_recovery(
                b, x0, checkpoint, resume_from, ledger, diagnoses,
                recovery_counts, attempt, resilience)
        finally:
            # Recovery widening must not leak into the next solve on
            # this instance: the widened *bounds* are kept (POP reuses
            # them, they are the cure), but the safety factors and
            # Lanczos budget go back to their configured values.
            self._reset_recovery_config()

    def _reset_recovery_config(self):
        """Restore the configured safety factors and Lanczos budget."""
        cfg = self._configured_recovery
        self.nu_safety = cfg["nu_safety"]
        self.mu_safety = cfg["mu_safety"]
        self.lanczos_steps = cfg["lanczos_steps"]
        self._lanczos_max_steps = cfg["lanczos_max_steps"]

    def _solve_with_recovery(self, b, x0, checkpoint, resume_from,
                             ledger, diagnoses, recovery_counts, attempt,
                             resilience=None):
        while True:
            snapshot = ledger.snapshot()
            error = None
            try:
                result = super().solve(b, x0, checkpoint=checkpoint,
                                       resume_from=resume_from,
                                       resilience=resilience)
            except ConvergenceError as exc:
                error = exc
                result = exc.result
                diagnosis = exc.diagnosis
            else:
                diagnosis = None if result.converged else result.diagnosis
            # A recovery retry restarts from scratch with fresh bounds:
            # re-resuming the failed trajectory would replay the same
            # divergence the widened interval is meant to escape.
            resume_from = None

            recoverable = diagnosis is not None and diagnosis.recoverable
            if not recoverable:
                # Success, or a failure retrying cannot cure.
                self._attach_recovery(result, diagnoses, recovery_counts)
                if error is not None:
                    raise error
                return result

            diagnoses.append(diagnosis)
            recovery_counts = recovery_counts + ledger.transfer(
                snapshot, "recovery")
            if attempt < self.max_recoveries:
                attempt += 1
                try:
                    recovery_counts = recovery_counts + \
                        self._widen_interval(attempt)
                except (ConvergenceError, SolverError) as exc:
                    # The re-estimation itself broke (e.g. a persistent
                    # fault corrupts every Lanczos run too): recovery is
                    # hopeless, surface the original failure.
                    diagnosis.data["recovery_error"] = str(exc)
                    if self.fallback is not None:
                        return self._run_fallback(b, x0, diagnoses,
                                                  recovery_counts,
                                                  resilience)
                    self._attach_recovery(result, diagnoses,
                                          recovery_counts)
                    if error is not None:
                        raise error from exc
                    return result
                continue
            if self.fallback is not None:
                return self._run_fallback(b, x0, diagnoses,
                                          recovery_counts, resilience)
            # Recoveries exhausted: surface the last failure, annotated.
            self._attach_recovery(result, diagnoses, recovery_counts)
            if error is not None:
                raise error
            return result

    def _widen_interval(self, attempt):
        """Back the safety factors off and refresh the bounds.

        Estimated bounds are re-estimated by a longer Lanczos run with a
        fresh start vector; user-supplied bounds are widened in place.
        Returns the :class:`EventCounts` the re-estimation charged to
        the ``"recovery"`` phase.
        """
        self.nu_safety *= self.nu_backoff
        self.mu_safety *= self.mu_backoff
        if self._user_bounds:
            nu, mu = self._bounds
            self._bounds = (nu * self.nu_backoff, mu * self.mu_backoff)
            return EventCounts()
        ledger = self.context.ledger
        self._lanczos_max_steps *= 2
        steps = None
        if self.lanczos_steps is not None:
            steps = int(self.lanczos_steps) * 2
            self.lanczos_steps = steps
        elif self._lanczos_info is not None:
            steps = min(2 * int(self._lanczos_info["steps"]),
                        self._lanczos_max_steps)
        snapshot = ledger.snapshot()
        nu, mu, info = estimate_eigenbounds(
            self.context, tol=self.lanczos_tol, steps=steps,
            max_steps=self._lanczos_max_steps,
            seed=_recovery_seed(self.lanczos_seed, attempt),
            nu_safety=self.nu_safety, mu_safety=self.mu_safety,
            phase="recovery", cache=self.bounds_cache,
        )
        nu, mu = self._injected_bound_skew(nu, mu)
        self._check_bounds(nu, mu)
        self._bounds = (nu, mu)
        self._lanczos_info = info
        # The estimation charged most events to "recovery" directly, but
        # some primitives split part of their cost to fixed phases (e.g.
        # global_dot's product-and-sum is always "computation"); sweep
        # those into the recovery bucket so the ledger and the result
        # agree on what the recovery cost.
        direct = ledger.since(snapshot).get("recovery", EventCounts())
        return direct + ledger.transfer(snapshot, "recovery")

    def _run_fallback(self, b, x0, diagnoses, recovery_counts,
                      resilience=None):
        """Chain to ChronGear on the same context (the POP fallback)."""
        solver = ChronGearSolver(
            self.context, tol=self.tol,
            max_iterations=self.max_iterations,
            check_freq=self.check_freq,
            raise_on_failure=self.raise_on_failure,
            stagnation_checks=self.stagnation_checks,
            divergence_factor=self.divergence_factor,
        )
        try:
            result = solver.solve(b, x0, resilience=resilience)
        except ConvergenceError as exc:
            if exc.result is not None:
                exc.result.extra["fallback_from"] = self.name
                self._attach_recovery(exc.result, diagnoses,
                                      recovery_counts)
            raise
        result.extra["fallback_from"] = self.name
        self._attach_recovery(result, diagnoses, recovery_counts)
        return result

    def _attach_recovery(self, result, diagnoses, recovery_counts):
        """Record recovery history and cost on a final result."""
        if result is None or not diagnoses:
            return
        result.extra["recoveries"] = len(diagnoses)
        result.extra["recovery_diagnoses"] = [d.to_dict()
                                              for d in diagnoses]
        if any(vars(recovery_counts).values()):
            result.setup_events["recovery"] = (
                result.setup_events.get("recovery", EventCounts())
                + recovery_counts)

    # ------------------------------------------------------------------
    # checkpoint hooks: the Chebyshev interval and Lanczos configuration
    # live outside the loop state dict, but a resumed run (and any
    # recovery re-estimation after it) depends on them bit-for-bit.
    # ------------------------------------------------------------------
    def _snapshot_solver_meta(self):
        return {
            "bounds": list(self._bounds) if self._bounds is not None
            else None,
            "user_bounds": self._user_bounds,
            "nu_safety": self.nu_safety,
            "mu_safety": self.mu_safety,
            "lanczos_seed": self.lanczos_seed,
            "lanczos_steps": self.lanczos_steps,
            "lanczos_max_steps": self._lanczos_max_steps,
            "lanczos_info_steps": (self._lanczos_info["steps"]
                                   if self._lanczos_info else None),
        }

    def _restore_solver_meta(self, meta):
        bounds = meta.get("bounds")
        if bounds is not None:
            self._bounds = (float(bounds[0]), float(bounds[1]))
        self._user_bounds = bool(meta.get("user_bounds",
                                          self._user_bounds))
        self.nu_safety = float(meta.get("nu_safety", self.nu_safety))
        self.mu_safety = float(meta.get("mu_safety", self.mu_safety))
        if meta.get("lanczos_seed") is not None:
            self.lanczos_seed = meta["lanczos_seed"]
        self.lanczos_steps = meta.get("lanczos_steps", self.lanczos_steps)
        self._lanczos_max_steps = int(meta.get("lanczos_max_steps",
                                               self._lanczos_max_steps))
        info_steps = meta.get("lanczos_info_steps")
        if info_steps is not None and self._lanczos_info is None:
            self._lanczos_info = {"steps": int(info_steps)}


def _recovery_seed(base_seed, attempt):
    """A fresh, deterministic Lanczos seed for recovery ``attempt``."""
    try:
        return int(base_seed) + 104729 * attempt  # 104729: the 10000th prime
    except (TypeError, ValueError):
        return attempt
