"""Barotropic linear solvers (the paper's core algorithms).

* :mod:`repro.solvers.context` -- the vector-space abstraction solvers
  are written against: :class:`SerialContext` (global arrays, event
  counts derived from the decomposition) and
  :class:`DistributedContext` (real per-rank execution over the virtual
  machine); both record the same event stream.
* :mod:`repro.solvers.result` -- the :class:`SolveResult` record.
* :mod:`repro.solvers.chrongear` -- Chronopoulos-Gear PCG (paper Alg. 1,
  POP's default).
* :mod:`repro.solvers.csi` -- the Preconditioned Classical Stiefel
  Iteration, P-CSI (paper Alg. 2).
* :mod:`repro.solvers.pcg` -- textbook PCG (two reductions/iteration),
  the pre-ChronGear baseline.
* :mod:`repro.solvers.pipecg` -- pipelined CG (Ghysels & Vanroose 2014,
  the related-work alternative: overlap the reduction instead of
  removing it).
* :mod:`repro.solvers.capcg` -- s-step communication-avoiding PCG
  (one Gram reduction per ``s`` iterations over a Chebyshev basis).
* :mod:`repro.solvers.spectral` -- shared eigenbound acquisition and
  divergence-recovery machinery for P-CSI and CA-PCG.
* :mod:`repro.solvers.lanczos` -- eigenvalue-bound estimation for
  P-CSI's Chebyshev interval (paper section 3).
* :mod:`repro.solvers.health` -- structured diagnoses for abnormal
  stops (the guarded convergence loop's vocabulary).
"""

from repro.solvers.context import SolverContext, SerialContext, DistributedContext
from repro.solvers.result import SolveResult
from repro.solvers.health import (
    SolverDiagnosis,
    DIAGNOSIS_KINDS,
    RECOVERABLE_KINDS,
    NONFINITE_INPUT,
    NONFINITE_RESIDUAL,
    DIVERGED,
    BREAKDOWN,
    BUDGET_EXHAUSTED,
    RANK_LOST,
    SDC_DETECTED,
)
from repro.solvers.base import IterativeSolver
from repro.solvers.pcg import PCGSolver
from repro.solvers.pipecg import PipeCGSolver
from repro.solvers.chrongear import ChronGearSolver
from repro.solvers.csi import PCSISolver
from repro.solvers.spectral import SpectralBoundedSolver
from repro.solvers.capcg import CAPCGSolver
from repro.solvers.lanczos import LanczosEstimator, estimate_eigenbounds

__all__ = [
    "SolverContext",
    "SerialContext",
    "DistributedContext",
    "SolveResult",
    "IterativeSolver",
    "PCGSolver",
    "PipeCGSolver",
    "ChronGearSolver",
    "PCSISolver",
    "SpectralBoundedSolver",
    "CAPCGSolver",
    "LanczosEstimator",
    "estimate_eigenbounds",
    "SolverDiagnosis",
    "DIAGNOSIS_KINDS",
    "RECOVERABLE_KINDS",
    "NONFINITE_INPUT",
    "NONFINITE_RESIDUAL",
    "DIVERGED",
    "BREAKDOWN",
    "BUDGET_EXHAUSTED",
    "RANK_LOST",
    "SDC_DETECTED",
    "make_solver",
    "SOLVER_REGISTRY",
]

SOLVER_REGISTRY = {
    "pcg": PCGSolver,
    "chrongear": ChronGearSolver,
    "pcsi": PCSISolver,
    "csi": PCSISolver,
    "pipecg": PipeCGSolver,
    "capcg": CAPCGSolver,
}


def make_solver(kind, context, **kwargs):
    """Factory: instantiate a solver by name over ``context``."""
    kind = kind.lower()
    if kind not in SOLVER_REGISTRY:
        raise ValueError(
            f"unknown solver {kind!r}; known: {sorted(SOLVER_REGISTRY)}"
        )
    return SOLVER_REGISTRY[kind](context, **kwargs)
