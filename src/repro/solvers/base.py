"""Shared scaffolding for the iterative solvers.

Handles the pieces the paper holds fixed across solvers so comparisons
are fair (section 5.2): the convergence criterion (masked residual
2-norm vs a tolerance relative to ``|b|``), the *check frequency* (POP
checks every 10 iterations -- each check is an extra global reduction,
which is P-CSI's only reduction), and the iteration budget.

Guardrails
----------
The convergence loop is *guarded*: it refuses non-finite inputs at
entry, exits immediately for a zero right-hand side, watches every
checked residual norm for NaN/Inf and for divergence (growth past
``divergence_factor * |b|`` across consecutive checks), and converts
in-iteration breakdowns (:class:`~repro.core.errors.BreakdownError`)
into structured failures.  Every abnormal stop produces a
:class:`~repro.solvers.health.SolverDiagnosis` and a *partial*
:class:`~repro.solvers.result.SolveResult` -- iterate, residual
history, setup and loop events -- attached to the
:class:`~repro.core.errors.ConvergenceError` (or returned directly with
``raise_on_failure=False``), so no diagnostic the ledger collected is
ever discarded.

The guardrail checks reuse residual norms the solver already reduced
and local ``isfinite`` scans of data already in memory; they add no
communication or ledger events, so modeled timings and engine parity
are unaffected.

Checkpoint/restart
------------------
``solve`` accepts a :class:`~repro.core.checkpoint.CheckpointPolicy`
(``checkpoint=``) and a snapshot path (``resume_from=``).  A snapshot
captures the *complete* loop state -- every context vector exported to
global layout, the scalar recurrence state, the residual history, the
guardrail counters, the per-phase event ledger so far, and
solver-specific state (P-CSI's Chebyshev interval and Lanczos
configuration) -- so a resumed solve replays the exact arithmetic the
uninterrupted run would have performed: the final
:class:`~repro.solvers.result.SolveResult` (iterate, iteration count,
residual history, event stream) is **bit-identical** on every engine
and kernel backend.  Vectors round-trip through
``context.to_global``/``from_global`` (pure data movement), which also
makes snapshots engine-portable: a checkpoint written under the
batched engine resumes under per-rank (and vice versa) while staying
bit-identical, since those engines share one arithmetic stream.  A
serial-context snapshot resumes under the virtual machine too, but
the continued run then follows the distributed reduction ordering --
bit-identity holds per arithmetic stream, not across them.

Snapshots are refused on mismatch: a different solver, grid shape,
right-hand side (content digest), tolerance or check frequency raises
:class:`~repro.core.checkpoint.CheckpointError` instead of silently
producing a non-reproducible run.
"""

import abc

import numpy as np

from repro.core.cache import digest_of
from repro.core.checkpoint import (
    CheckpointError,
    read_checkpoint,
    sanitize_meta,
)
from repro.core.constants import (
    DEFAULT_CONVERGENCE_CHECK_FREQ,
    DEFAULT_SOLVER_TOLERANCE,
)
from repro.core.errors import BreakdownError, ConvergenceError, SolverError
from repro.solvers.health import (
    BREAKDOWN,
    BUDGET_EXHAUSTED,
    DIVERGED,
    NONFINITE_INPUT,
    NONFINITE_RESIDUAL,
    SolverDiagnosis,
)
from repro.solvers.result import SolveResult


class IterativeSolver(abc.ABC):
    """Base class for ChronGear, P-CSI and PCG.

    Parameters
    ----------
    context:
        A :class:`~repro.solvers.context.SolverContext`.
    tol:
        Convergence tolerance; the solve stops when
        ``|r| <= tol * |b|``.  POP's default is ``1e-13`` (paper
        section 6).  A zero right-hand side returns ``x = 0`` with
        ``iterations=0`` immediately (``extra["zero_rhs"]``).
    max_iterations:
        Iteration budget; exceeded budgets raise
        :class:`~repro.core.errors.ConvergenceError` unless
        ``raise_on_failure=False``.
    check_freq:
        Iterations between convergence checks (paper: 10).  Each check
        costs one global reduction.
    raise_on_failure:
        Return the non-converged result instead of raising when False.
        Guardrail stops (non-finite residual, divergence, breakdown)
        honor the same switch; either way the result carries its
        :class:`~repro.solvers.health.SolverDiagnosis`.
    stagnation_checks:
        Stop early when the checked residual norm has not improved over
        this many consecutive checks -- the explicit residual
        ``b - A x`` has a round-off floor (~eps * |A||x|), and asking
        for a tolerance below it would otherwise burn the whole
        iteration budget.  A stagnated stop sets ``extra["stagnated"]``
        and reports ``converged`` by the usual criterion -- stagnation
        is a round-off floor, not a failure, so it *returns* the result
        even with ``raise_on_failure=True``.  ``0`` disables the
        detector.
    divergence_factor:
        Declare divergence when the checked residual norm exceeds
        ``divergence_factor * |b|`` on consecutive checks while still
        growing.  ``0`` disables the detector.
    """

    #: Name used in experiment tables; subclasses override.
    name = "iterative"

    #: Consecutive above-threshold, still-growing checks that confirm
    #: divergence (one spike at a check boundary is not a verdict).
    divergence_checks = 2

    def __init__(self, context, tol=DEFAULT_SOLVER_TOLERANCE,
                 max_iterations=10000,
                 check_freq=DEFAULT_CONVERGENCE_CHECK_FREQ,
                 raise_on_failure=True, stagnation_checks=5,
                 divergence_factor=1.0e4):
        if tol <= 0:
            raise SolverError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
        if check_freq < 1:
            raise SolverError(f"check_freq must be >= 1, got {check_freq}")
        if divergence_factor < 0:
            raise SolverError(
                f"divergence_factor must be >= 0, got {divergence_factor}")
        self.context = context
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_freq = int(check_freq)
        self.raise_on_failure = bool(raise_on_failure)
        self.stagnation_checks = int(stagnation_checks)
        self.divergence_factor = float(divergence_factor)

    # ------------------------------------------------------------------
    def solve(self, b, x0=None, checkpoint=None, resume_from=None):
        """Solve ``A x = b``.

        ``b`` and ``x0`` are global ``(ny, nx)`` arrays (``x0`` defaults
        to zero).  Values on land are ignored (masked).  Returns a
        :class:`~repro.solvers.result.SolveResult`; abnormal stops raise
        a :class:`~repro.core.errors.ConvergenceError` carrying the
        partial result and a structured diagnosis (see the module
        docstring).

        ``checkpoint`` is an optional
        :class:`~repro.core.checkpoint.CheckpointPolicy`: the loop
        snapshots its full state every ``policy.every`` iterations (and
        on diagnosed failure when ``policy.on_failure``).
        ``resume_from`` names a snapshot to continue from instead of
        running setup; the resumed run is bit-identical to an
        uninterrupted one (see the module docstring).
        """
        ctx = self.context
        ledger = ctx.ledger
        mask = ctx.mask

        entry_diag = self._check_entry(b, x0, mask)
        if entry_diag is not None:
            return self._fail_before_setup(entry_diag, b, x0, mask)

        # np.where, not multiplication: NaN * 0 is NaN, so a (legitimate)
        # non-finite land value would survive `b * mask` and poison the
        # solve the entry guard just vetted.
        b_masked = np.where(mask, b, 0.0)
        b_digest = digest_of("solve-checkpoint", b_masked)

        if resume_from is not None:
            (state, history, loop, acct,
             b_norm) = self._restore_checkpoint(resume_from, b_digest)
            threshold = self.tol * b_norm
            iterations = loop["iterations"]
            res_norm = loop["res_norm"]
            checked_at = loop["checked_at"]
            best_norm = loop["best_norm"]
            checks_without_progress = loop["checks_without_progress"]
            prev_checked = loop["prev_checked"]
            growing_past_limit = loop["growing_past_limit"]
        else:
            b_vec = ctx.from_global(b_masked)
            if x0 is None:
                x_vec = ctx.new_vector()
            else:
                x_vec = ctx.from_global(np.where(mask, x0, 0.0))

            before_setup = ledger.snapshot()
            b_norm = ctx.norm2(b_vec, phase="setup")
            if b_norm == 0.0:
                # Zero RHS: the exact solution of the SPD system is
                # x = 0; running even ``check_freq`` iterations to
                # discover that wastes halo exchanges and reductions.
                after_setup = ledger.snapshot()
                return SolveResult(
                    x=ctx.to_global(ctx.new_vector()),
                    iterations=0, converged=True,
                    residual_norm=0.0, b_norm=0.0,
                    residual_history=[],
                    solver=self.name,
                    preconditioner=ctx.preconditioner.name,
                    events={},
                    setup_events=_diff(after_setup, before_setup),
                    extra={"zero_rhs": True},
                )
            threshold = self.tol * b_norm
            try:
                state = self._setup(b_vec, x_vec)
            except BreakdownError as exc:
                diagnosis = SolverDiagnosis(
                    kind=BREAKDOWN, solver=self.name,
                    message=f"setup: {exc}", iteration=0, b_norm=b_norm,
                )
                result = SolveResult(
                    x=ctx.to_global(x_vec),
                    iterations=0, converged=False,
                    residual_norm=float("nan"), b_norm=b_norm,
                    residual_history=[], solver=self.name,
                    preconditioner=ctx.preconditioner.name,
                    events={},
                    setup_events=_diff(ledger.snapshot(), before_setup),
                    extra={"diagnosis": diagnosis.to_dict()},
                    diagnosis=diagnosis,
                )
                return self._raise_or_return(diagnosis, result)
            after_setup = ledger.snapshot()
            acct = {"after_setup": after_setup,
                    "before_setup": before_setup,
                    "setup_events": None, "loop_base": {},
                    "b_digest": b_digest}

            history = []
            iterations = 0
            res_norm = float("inf")
            checked_at = -1
            best_norm = float("inf")
            checks_without_progress = 0
            prev_checked = None
            growing_past_limit = 0

        converged = False
        stagnated = False
        diagnosis = None
        divergence_limit = (self.divergence_factor * b_norm
                            if self.divergence_factor > 0 else float("inf"))

        def loop_meta():
            # Reads the *current* local values when invoked (closure):
            # everything the loop needs to continue exactly where it
            # stopped.
            return {
                "iterations": iterations,
                "res_norm": res_norm,
                "checked_at": checked_at,
                "best_norm": best_norm,
                "checks_without_progress": checks_without_progress,
                "prev_checked": prev_checked,
                "growing_past_limit": growing_past_limit,
            }

        while iterations < self.max_iterations:
            iterations += 1
            try:
                self._iterate(state, iterations)
            except BreakdownError as exc:
                diagnosis = SolverDiagnosis(
                    kind=BREAKDOWN, solver=self.name,
                    message=str(exc), iteration=iterations,
                    residual_norm=res_norm, b_norm=b_norm,
                )
                break
            if iterations % self.check_freq == 0:
                res_norm = self._residual_norm(state)
                checked_at = iterations
                history.append((iterations, res_norm))
                if not np.isfinite(res_norm):
                    diagnosis = SolverDiagnosis(
                        kind=NONFINITE_RESIDUAL, solver=self.name,
                        message=f"checked residual norm is {res_norm}",
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                        data={"last_finite_norm": prev_checked},
                    )
                    break
                if res_norm <= threshold:
                    converged = True
                    break
                if (res_norm > divergence_limit
                        and prev_checked is not None
                        and res_norm > prev_checked):
                    growing_past_limit += 1
                    if growing_past_limit >= self.divergence_checks:
                        diagnosis = SolverDiagnosis(
                            kind=DIVERGED, solver=self.name,
                            message=(
                                f"|r| = {res_norm:.3e} grew past "
                                f"{self.divergence_factor:g} * |b| = "
                                f"{divergence_limit:.3e} over "
                                f"{growing_past_limit + 1} consecutive "
                                f"checks"),
                            iteration=iterations, residual_norm=res_norm,
                            b_norm=b_norm,
                            data={
                                "divergence_factor": self.divergence_factor,
                                "limit": divergence_limit,
                                "history_tail": history[-4:],
                            },
                        )
                        break
                else:
                    growing_past_limit = 0
                prev_checked = res_norm
                if res_norm < best_norm * (1.0 - 1e-6):
                    best_norm = res_norm
                    checks_without_progress = 0
                else:
                    checks_without_progress += 1
                    if (self.stagnation_checks
                            and checks_without_progress
                            >= self.stagnation_checks):
                        stagnated = True
                        break
            if checkpoint is not None and checkpoint.due(iterations):
                self._write_checkpoint(checkpoint, state, history,
                                       loop_meta(), acct, b_norm)

        if diagnosis is not None:
            return self._fail(diagnosis, state, history, loop_meta(),
                              b_norm, acct, checkpoint=checkpoint)

        if not converged:
            if checked_at != iterations:
                res_norm = self._residual_norm(state)
                history.append((iterations, res_norm))
                if not np.isfinite(res_norm):
                    diagnosis = SolverDiagnosis(
                        kind=NONFINITE_RESIDUAL, solver=self.name,
                        message=f"final residual norm is {res_norm}",
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                    )
                    return self._fail(diagnosis, state, history,
                                      loop_meta(), b_norm, acct,
                                      checkpoint=checkpoint)
            converged = res_norm <= threshold
            if not converged and not stagnated:
                diagnosis = SolverDiagnosis(
                    kind=BUDGET_EXHAUSTED, solver=self.name,
                    message=(
                        f"failed to reach |r| <= {threshold:.3e} after "
                        f"{iterations} iterations (|r| = {res_norm:.3e})"),
                    iteration=iterations, residual_norm=res_norm,
                    b_norm=b_norm,
                    data={"threshold": threshold,
                          "max_iterations": self.max_iterations},
                )
                return self._fail(diagnosis, state, history, loop_meta(),
                                  b_norm, acct, checkpoint=checkpoint)
        if stagnated:
            # Stagnation is a round-off floor, not a failure: record it
            # and return the result as documented.
            state.setdefault("extra", {})["stagnated"] = True

        return self._build_result(state, history, iterations, converged,
                                  res_norm, b_norm, acct)

    # ------------------------------------------------------------------
    # guardrail plumbing
    # ------------------------------------------------------------------
    def _check_entry(self, b, x0, mask):
        """Entry guard: NaN/Inf on ocean points of ``b`` or ``x0``."""
        for label, arr in (("b", b), ("x0", x0)):
            if arr is None:
                continue
            values = np.asarray(arr)[mask]
            if not np.all(np.isfinite(values)):
                bad = int(np.count_nonzero(~np.isfinite(values)))
                return SolverDiagnosis(
                    kind=NONFINITE_INPUT, solver=self.name,
                    message=(f"{label} carries {bad} non-finite ocean "
                             f"value(s) at solve entry"),
                    iteration=0,
                    data={"operand": label, "count": bad},
                )
        return None

    def _fail_before_setup(self, diagnosis, b, x0, mask):
        """Fail with a minimal partial result (no solver state yet)."""
        x = np.zeros_like(np.asarray(b, dtype=np.float64)) if x0 is None \
            else np.where(mask, np.asarray(x0, dtype=np.float64), 0.0)
        result = SolveResult(
            x=x, iterations=0, converged=False,
            residual_norm=float("nan"), b_norm=float("nan"),
            residual_history=[], solver=self.name,
            preconditioner=self.context.preconditioner.name,
            events={}, setup_events={},
            extra={"diagnosis": diagnosis.to_dict()},
            diagnosis=diagnosis,
        )
        return self._raise_or_return(diagnosis, result)

    def _fail(self, diagnosis, state, history, loop, b_norm, acct,
              checkpoint=None):
        """Build the partial result for an abnormal stop and raise or
        return it according to ``raise_on_failure``.

        The diagnosis always carries the last *finite* checked residual
        and the per-phase event ledger at the point of failure, so a
        checkpoint-resume after diagnosis loses no accounting.  When a
        checkpoint policy with ``on_failure`` is attached, the full loop
        state is snapshotted before raising.
        """
        diagnosis.data.setdefault("last_finite_residual",
                                  _last_finite(history))
        diagnosis.data.setdefault(
            "ledger",
            {name: dict(vars(c)) for name, c in self._loop_events(
                acct).items()})
        if checkpoint is not None and checkpoint.on_failure:
            try:
                self._write_checkpoint(checkpoint, state, history, loop,
                                       acct, b_norm, failure=diagnosis)
            except CheckpointError:
                # A failing snapshot must not mask the solver failure.
                pass
        result = self._build_result(state, history, loop["iterations"],
                                    False, loop["res_norm"], b_norm,
                                    acct, diagnosis=diagnosis)
        return self._raise_or_return(diagnosis, result)

    def _raise_or_return(self, diagnosis, result):
        if self.raise_on_failure:
            raise ConvergenceError(
                diagnosis.describe(),
                iterations=result.iterations,
                residual_norm=result.residual_norm,
                result=result, diagnosis=diagnosis,
            )
        return result

    def _setup_events(self, acct):
        """Setup-phase events: measured here, or carried by a resume."""
        if acct["setup_events"] is not None:
            return dict(acct["setup_events"])
        return _diff(acct["after_setup"], acct["before_setup"])

    def _loop_events(self, acct):
        """Loop events so far: pre-resume base + everything since."""
        return _add_events(acct["loop_base"],
                           self.context.ledger.since(acct["after_setup"]))

    def _build_result(self, state, history, iterations, converged,
                      res_norm, b_norm, acct, diagnosis=None):
        ctx = self.context
        extra = dict(state.get("extra", {}))
        if diagnosis is not None:
            extra["diagnosis"] = diagnosis.to_dict()
        return SolveResult(
            x=ctx.to_global(state["x"]),
            iterations=iterations,
            converged=converged,
            residual_norm=res_norm,
            b_norm=b_norm,
            residual_history=history,
            solver=self.name,
            preconditioner=ctx.preconditioner.name,
            events=self._loop_events(acct),
            setup_events=self._setup_events(acct),
            extra=extra,
            diagnosis=diagnosis,
        )

    # ------------------------------------------------------------------
    # checkpoint/restart plumbing
    # ------------------------------------------------------------------
    def _snapshot_solver_meta(self):
        """Solver-specific state to checkpoint (hook; JSON-able dict).

        Subclasses whose behavior depends on state outside the loop
        ``state`` dict (P-CSI's Chebyshev interval, Lanczos seeds and
        step counts) override this and :meth:`_restore_solver_meta`.
        """
        return {}

    def _restore_solver_meta(self, meta):
        """Restore what :meth:`_snapshot_solver_meta` captured (hook)."""

    def _write_checkpoint(self, policy, state, history, loop, acct,
                          b_norm, failure=None):
        """Snapshot the complete loop state through ``policy``."""
        ctx = self.context
        arrays = {}
        scalars = {}
        for name, value in state.items():
            if name == "extra":
                continue
            if value is None or isinstance(value, (bool, int, float)):
                scalars[name] = value
            elif isinstance(value, np.generic):
                scalars[name] = value.item()
            else:
                # Context vectors export to the engine-independent
                # global layout -- snapshots resume on any engine.
                arrays[f"vec_{name}"] = ctx.to_global(value)
        meta = {
            "solver": self.name,
            "preconditioner": ctx.preconditioner.name,
            "shape": [int(s) for s in ctx.mask.shape],
            "b_digest": acct["b_digest"],
            "b_norm": float(b_norm),
            "tol": self.tol,
            "check_freq": self.check_freq,
            "scalars": sanitize_meta(scalars),
            "extra": sanitize_meta(state.get("extra", {})),
            "solver_state": sanitize_meta(self._snapshot_solver_meta()),
            "history": [[int(i), float(r)] for i, r in history],
            "loop": sanitize_meta(loop),
            "setup_events": _events_to_meta(self._setup_events(acct)),
            "loop_events": _events_to_meta(self._loop_events(acct)),
            "failure": failure.to_dict() if failure is not None else None,
        }
        return policy.write(loop["iterations"], "solver", arrays, meta,
                            failure=failure is not None)

    def _restore_checkpoint(self, path, b_digest):
        """Load and verify a snapshot; returns the resumed loop state."""
        arrays, meta = read_checkpoint(path, kind="solver")
        ctx = self.context
        if meta.get("solver") != self.name:
            raise CheckpointError(
                f"checkpoint {path} belongs to solver "
                f"{meta.get('solver')!r}, not {self.name!r}")
        if tuple(meta.get("shape", ())) != tuple(ctx.mask.shape):
            raise CheckpointError(
                f"checkpoint {path} grid shape {meta.get('shape')} does "
                f"not match context {list(ctx.mask.shape)}")
        if meta.get("b_digest") != b_digest:
            raise CheckpointError(
                f"checkpoint {path} was written for a different "
                f"right-hand side -- resuming would not reproduce the "
                f"original solve")
        for knob in ("tol", "check_freq"):
            if meta.get(knob) != getattr(self, knob):
                raise CheckpointError(
                    f"checkpoint {path} was written with "
                    f"{knob}={meta.get(knob)!r}, this solver uses "
                    f"{getattr(self, knob)!r}; a resumed run would not "
                    f"be bit-identical")
        state = {}
        for name, value in arrays.items():
            if name.startswith("vec_"):
                state[name[4:]] = ctx.from_global(value)
        state.update(meta.get("scalars", {}))
        state["extra"] = dict(meta.get("extra", {}))
        self._restore_solver_meta(meta.get("solver_state", {}))
        history = [(int(i), float(r)) for i, r in meta.get("history", [])]
        loop = dict(meta["loop"])
        acct = {
            "after_setup": ctx.ledger.snapshot(),
            "before_setup": None,
            "setup_events": _events_from_meta(meta["setup_events"]),
            "loop_base": _events_from_meta(meta["loop_events"]),
            "b_digest": b_digest,
        }
        return state, history, loop, acct, float(meta["b_norm"])

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(self, b, x):
        """Initialize solver state; returns a dict with at least
        ``x`` (current iterate) and ``r`` (current residual)."""

    @abc.abstractmethod
    def _iterate(self, state, k):
        """Perform iteration ``k`` in place on ``state``.

        May raise :class:`~repro.core.errors.BreakdownError`; the
        guarded loop converts it into a diagnosed failure carrying the
        partial result."""

    def _residual_norm(self, state):
        """Masked residual 2-norm (one global reduction -- the
        convergence check the paper charges to all solvers)."""
        return self.context.norm2(state["r"], phase="reduction")


def _diff(after, before):
    """Per-phase difference of two ledger snapshots."""
    from repro.parallel.events import EventCounts

    out = {}
    for name in set(after) | set(before):
        a = after.get(name, EventCounts())
        b = before.get(name, EventCounts())
        out[name] = EventCounts(
            flops=a.flops - b.flops,
            halo_exchanges=a.halo_exchanges - b.halo_exchanges,
            halo_words=a.halo_words - b.halo_words,
            allreduces=a.allreduces - b.allreduces,
            allreduce_words=a.allreduce_words - b.allreduce_words,
        )
    return out


def _add_events(base, delta):
    """Per-phase sum of two event dicts (either may be empty)."""
    from repro.parallel.events import EventCounts

    if not base:
        return dict(delta)
    out = dict(base)
    for name, counts in delta.items():
        out[name] = out.get(name, EventCounts()) + counts
    return out


def _events_to_meta(events):
    """Event dict -> JSON-able nested dict (checkpoint metadata)."""
    return {name: dict(vars(counts)) for name, counts in events.items()}


def _events_from_meta(meta):
    """Inverse of :func:`_events_to_meta`."""
    from repro.parallel.events import EventCounts

    return {name: EventCounts(**{k: int(v) for k, v in counts.items()})
            for name, counts in meta.items()}


def _last_finite(history):
    """Last finite residual norm in a check history (or ``None``)."""
    for _iteration, value in reversed(history):
        if np.isfinite(value):
            return float(value)
    return None
