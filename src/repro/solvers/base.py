"""Shared scaffolding for the iterative solvers.

Handles the pieces the paper holds fixed across solvers so comparisons
are fair (section 5.2): the convergence criterion (masked residual
2-norm vs a tolerance relative to ``|b|``), the *check frequency* (POP
checks every 10 iterations -- each check is an extra global reduction,
which is P-CSI's only reduction), and the iteration budget.
"""

import abc

from repro.core.constants import (
    DEFAULT_CONVERGENCE_CHECK_FREQ,
    DEFAULT_SOLVER_TOLERANCE,
)
from repro.core.errors import ConvergenceError, SolverError
from repro.solvers.result import SolveResult


class IterativeSolver(abc.ABC):
    """Base class for ChronGear, P-CSI and PCG.

    Parameters
    ----------
    context:
        A :class:`~repro.solvers.context.SolverContext`.
    tol:
        Convergence tolerance; the solve stops when
        ``|r| <= tol * |b|`` (or ``tol`` absolute if ``b`` is zero).
        POP's default is ``1e-13`` (paper section 6).
    max_iterations:
        Iteration budget; exceeded budgets raise
        :class:`~repro.core.errors.ConvergenceError` unless
        ``raise_on_failure=False``.
    check_freq:
        Iterations between convergence checks (paper: 10).  Each check
        costs one global reduction.
    raise_on_failure:
        Return the non-converged result instead of raising when False.
    stagnation_checks:
        Stop early when the checked residual norm has not improved over
        this many consecutive checks -- the explicit residual
        ``b - A x`` has a round-off floor (~eps * |A||x|), and asking
        for a tolerance below it would otherwise burn the whole
        iteration budget.  A stagnated stop sets ``extra["stagnated"]``
        and reports ``converged`` by the usual criterion.  ``0``
        disables the detector.
    """

    #: Name used in experiment tables; subclasses override.
    name = "iterative"

    def __init__(self, context, tol=DEFAULT_SOLVER_TOLERANCE,
                 max_iterations=10000,
                 check_freq=DEFAULT_CONVERGENCE_CHECK_FREQ,
                 raise_on_failure=True, stagnation_checks=5):
        if tol <= 0:
            raise SolverError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
        if check_freq < 1:
            raise SolverError(f"check_freq must be >= 1, got {check_freq}")
        self.context = context
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_freq = int(check_freq)
        self.raise_on_failure = bool(raise_on_failure)
        self.stagnation_checks = int(stagnation_checks)

    # ------------------------------------------------------------------
    def solve(self, b, x0=None):
        """Solve ``A x = b``.

        ``b`` and ``x0`` are global ``(ny, nx)`` arrays (``x0`` defaults
        to zero).  Values on land are ignored (masked).  Returns a
        :class:`~repro.solvers.result.SolveResult`.
        """
        ctx = self.context
        ledger = ctx.ledger
        mask = ctx.mask

        b_vec = ctx.from_global(b * mask)
        if x0 is None:
            x_vec = ctx.new_vector()
        else:
            x_vec = ctx.from_global(x0 * mask)

        before_setup = ledger.snapshot()
        b_norm = ctx.norm2(b_vec, phase="setup")
        threshold = self.tol * b_norm if b_norm > 0.0 else self.tol
        state = self._setup(b_vec, x_vec)
        after_setup = ledger.snapshot()

        history = []
        converged = False
        iterations = 0
        res_norm = float("inf")

        checked_at = -1
        best_norm = float("inf")
        checks_without_progress = 0
        stagnated = False
        while iterations < self.max_iterations:
            iterations += 1
            self._iterate(state, iterations)
            if iterations % self.check_freq == 0:
                res_norm = self._residual_norm(state)
                checked_at = iterations
                history.append((iterations, res_norm))
                if res_norm <= threshold:
                    converged = True
                    break
                if res_norm < best_norm * (1.0 - 1e-6):
                    best_norm = res_norm
                    checks_without_progress = 0
                else:
                    checks_without_progress += 1
                    if (self.stagnation_checks
                            and checks_without_progress
                            >= self.stagnation_checks):
                        stagnated = True
                        break

        if not converged:
            if checked_at != iterations:
                res_norm = self._residual_norm(state)
                history.append((iterations, res_norm))
            converged = res_norm <= threshold
            if not converged and self.raise_on_failure:
                reason = "stagnated at" if stagnated else "failed to reach"
                raise ConvergenceError(
                    f"{self.name} {reason} |r| <= {threshold:.3e} after "
                    f"{iterations} iterations (|r| = {res_norm:.3e})",
                    iterations=iterations, residual_norm=res_norm,
                )
        if stagnated:
            state.setdefault("extra", {})["stagnated"] = True

        events = ledger.since(after_setup)
        setup_events = _diff(after_setup, before_setup)
        return SolveResult(
            x=ctx.to_global(state["x"]),
            iterations=iterations,
            converged=converged,
            residual_norm=res_norm,
            b_norm=b_norm,
            residual_history=history,
            solver=self.name,
            preconditioner=ctx.preconditioner.name,
            events=events,
            setup_events=setup_events,
            extra=dict(state.get("extra", {})),
        )

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(self, b, x):
        """Initialize solver state; returns a dict with at least
        ``x`` (current iterate) and ``r`` (current residual)."""

    @abc.abstractmethod
    def _iterate(self, state, k):
        """Perform iteration ``k`` in place on ``state``."""

    def _residual_norm(self, state):
        """Masked residual 2-norm (one global reduction -- the
        convergence check the paper charges to all solvers)."""
        return self.context.norm2(state["r"], phase="reduction")


def _diff(after, before):
    """Per-phase difference of two ledger snapshots."""
    from repro.parallel.events import EventCounts

    out = {}
    for name in set(after) | set(before):
        a = after.get(name, EventCounts())
        b = before.get(name, EventCounts())
        out[name] = EventCounts(
            flops=a.flops - b.flops,
            halo_exchanges=a.halo_exchanges - b.halo_exchanges,
            halo_words=a.halo_words - b.halo_words,
            allreduces=a.allreduces - b.allreduces,
            allreduce_words=a.allreduce_words - b.allreduce_words,
        )
    return out
