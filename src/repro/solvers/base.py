"""Shared scaffolding for the iterative solvers.

Handles the pieces the paper holds fixed across solvers so comparisons
are fair (section 5.2): the convergence criterion (masked residual
2-norm vs a tolerance relative to ``|b|``), the *check frequency* (POP
checks every 10 iterations -- each check is an extra global reduction,
which is P-CSI's only reduction), and the iteration budget.

Guardrails
----------
The convergence loop is *guarded*: it refuses non-finite inputs at
entry, exits immediately for a zero right-hand side, watches every
checked residual norm for NaN/Inf and for divergence (growth past
``divergence_factor * |b|`` across consecutive checks), and converts
in-iteration breakdowns (:class:`~repro.core.errors.BreakdownError`)
into structured failures.  Every abnormal stop produces a
:class:`~repro.solvers.health.SolverDiagnosis` and a *partial*
:class:`~repro.solvers.result.SolveResult` -- iterate, residual
history, setup and loop events -- attached to the
:class:`~repro.core.errors.ConvergenceError` (or returned directly with
``raise_on_failure=False``), so no diagnostic the ledger collected is
ever discarded.

The guardrail checks reuse residual norms the solver already reduced
and local ``isfinite`` scans of data already in memory; they add no
communication or ledger events, so modeled timings and engine parity
are unaffected.

Checkpoint/restart
------------------
``solve`` accepts a :class:`~repro.core.checkpoint.CheckpointPolicy`
(``checkpoint=``) and a snapshot path (``resume_from=``).  A snapshot
captures the *complete* loop state -- every context vector exported to
global layout, the scalar recurrence state, the residual history, the
guardrail counters, the per-phase event ledger so far, and
solver-specific state (P-CSI's Chebyshev interval and Lanczos
configuration) -- so a resumed solve replays the exact arithmetic the
uninterrupted run would have performed: the final
:class:`~repro.solvers.result.SolveResult` (iterate, iteration count,
residual history, event stream) is **bit-identical** on every engine
and kernel backend.  Vectors round-trip through
``context.to_global``/``from_global`` (pure data movement), which also
makes snapshots engine-portable: a checkpoint written under the
batched engine resumes under per-rank (and vice versa) while staying
bit-identical, since those engines share one arithmetic stream.  A
serial-context snapshot resumes under the virtual machine too, but
the continued run then follows the distributed reduction ordering --
bit-identity holds per arithmetic stream, not across them.

Snapshots are refused on mismatch: a different solver, grid shape,
right-hand side (content digest), tolerance or check frequency raises
:class:`~repro.core.checkpoint.CheckpointError` instead of silently
producing a non-reproducible run.
"""

import abc

import numpy as np

from repro.core.cache import digest_of
from repro.core.checkpoint import (
    CheckpointError,
    read_checkpoint,
    sanitize_meta,
)
from repro.core.constants import (
    DEFAULT_CONVERGENCE_CHECK_FREQ,
    DEFAULT_SOLVER_TOLERANCE,
)
from repro.core.errors import BreakdownError, ConvergenceError, SolverError
from repro.parallel.resilience import ResilienceEvent, ResilienceRuntime
from repro.solvers.health import (
    BREAKDOWN,
    BUDGET_EXHAUSTED,
    DIVERGED,
    NONFINITE_INPUT,
    NONFINITE_RESIDUAL,
    SolverDiagnosis,
)
from repro.solvers.result import SolveResult


class IterativeSolver(abc.ABC):
    """Base class for ChronGear, P-CSI and PCG.

    Parameters
    ----------
    context:
        A :class:`~repro.solvers.context.SolverContext`.
    tol:
        Convergence tolerance; the solve stops when
        ``|r| <= tol * |b|``.  POP's default is ``1e-13`` (paper
        section 6).  A zero right-hand side returns ``x = 0`` with
        ``iterations=0`` immediately (``extra["zero_rhs"]``).
    max_iterations:
        Iteration budget; exceeded budgets raise
        :class:`~repro.core.errors.ConvergenceError` unless
        ``raise_on_failure=False``.
    check_freq:
        Iterations between convergence checks (paper: 10).  Each check
        costs one global reduction.
    raise_on_failure:
        Return the non-converged result instead of raising when False.
        Guardrail stops (non-finite residual, divergence, breakdown)
        honor the same switch; either way the result carries its
        :class:`~repro.solvers.health.SolverDiagnosis`.
    stagnation_checks:
        Stop early when the checked residual norm has not improved over
        this many consecutive checks -- the explicit residual
        ``b - A x`` has a round-off floor (~eps * |A||x|), and asking
        for a tolerance below it would otherwise burn the whole
        iteration budget.  A stagnated stop sets ``extra["stagnated"]``
        and reports ``converged`` by the usual criterion -- stagnation
        is a round-off floor, not a failure, so it *returns* the result
        even with ``raise_on_failure=True``.  ``0`` disables the
        detector.
    divergence_factor:
        Declare divergence when the checked residual norm exceeds
        ``divergence_factor * |b|`` on consecutive checks while still
        growing.  ``0`` disables the detector.
    """

    #: Name used in experiment tables; subclasses override.
    name = "iterative"

    #: Consecutive above-threshold, still-growing checks that confirm
    #: divergence (one spike at a check boundary is not a verdict).
    divergence_checks = 2

    def __init__(self, context, tol=DEFAULT_SOLVER_TOLERANCE,
                 max_iterations=10000,
                 check_freq=DEFAULT_CONVERGENCE_CHECK_FREQ,
                 raise_on_failure=True, stagnation_checks=5,
                 divergence_factor=1.0e4):
        if tol <= 0:
            raise SolverError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
        if check_freq < 1:
            raise SolverError(f"check_freq must be >= 1, got {check_freq}")
        if divergence_factor < 0:
            raise SolverError(
                f"divergence_factor must be >= 0, got {divergence_factor}")
        self.context = context
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_freq = int(check_freq)
        self.raise_on_failure = bool(raise_on_failure)
        self.stagnation_checks = int(stagnation_checks)
        self.divergence_factor = float(divergence_factor)
        self._active_resilience = None

    # ------------------------------------------------------------------
    def solve(self, b, x0=None, checkpoint=None, resume_from=None,
              resilience=None):
        """Solve ``A x = b``.

        ``b`` and ``x0`` are global ``(ny, nx)`` arrays (``x0`` defaults
        to zero).  Values on land are ignored (masked).  Returns a
        :class:`~repro.solvers.result.SolveResult`; abnormal stops raise
        a :class:`~repro.core.errors.ConvergenceError` carrying the
        partial result and a structured diagnosis (see the module
        docstring).

        ``checkpoint`` is an optional
        :class:`~repro.core.checkpoint.CheckpointPolicy`: the loop
        snapshots its full state every ``policy.every`` iterations (and
        on diagnosed failure when ``policy.on_failure``).
        ``resume_from`` names a snapshot to continue from instead of
        running setup; the resumed run is bit-identical to an
        uninterrupted one (see the module docstring).

        ``resilience`` enables the in-solve fault-tolerance layer
        (``True``, a dict of :class:`~repro.parallel.resilience.
        ResiliencePolicy` fields, or a policy object): the loop
        replicates its state to buddy ranks at the policy's cadence,
        runs the ABFT corruption checks, and recovers rank deaths and
        detected corruption by rolling back to the last verified
        replica instead of failing the solve -- recoveries are recorded
        in ``result.extra["resilience"]``.  Requires a distributed
        (virtual-machine) context.

        **Multi-RHS batches**: ``b`` may also be a list/tuple of
        ``(ny, nx)`` fields or a single ``(ny, nx, nrhs)`` array -- the
        solve then runs all columns through one batched iteration loop
        (see :meth:`_solve_multi`) and returns a result whose ``x`` is
        ``(ny, nx, nrhs)`` with per-column accounting in ``extra``.
        """
        runtime = None
        if resilience is not None:
            runtime = ResilienceRuntime.create(resilience, self.context)
        try:
            return self._solve_guarded(b, x0, checkpoint, resume_from,
                                       runtime)
        finally:
            if runtime is not None:
                runtime.detach()
                self._active_resilience = None

    def _attach_resilience(self, runtime, state, meta, history):
        """Bind the runtime to the vm and capture the initial replica."""
        runtime.attach()
        self._active_resilience = runtime
        runtime.capture(state, meta, len(history),
                        solver_meta=self._snapshot_solver_meta())

    def _solve_guarded(self, b, x0, checkpoint, resume_from, runtime):
        if isinstance(b, (list, tuple)):
            b = np.stack([np.asarray(col, dtype=np.float64) for col in b],
                         axis=-1)
        b = np.asarray(b)
        if b.ndim == 3:
            return self._solve_multi(b, x0=x0, checkpoint=checkpoint,
                                     resume_from=resume_from,
                                     runtime=runtime)
        ctx = self.context
        ledger = ctx.ledger
        mask = ctx.mask

        entry_diag = self._check_entry(b, x0, mask)
        if entry_diag is not None:
            return self._fail_before_setup(entry_diag, b, x0, mask)

        # np.where, not multiplication: NaN * 0 is NaN, so a (legitimate)
        # non-finite land value would survive `b * mask` and poison the
        # solve the entry guard just vetted.
        b_masked = np.where(mask, b, 0.0)
        b_digest = digest_of("solve-checkpoint", b_masked)

        if resume_from is not None:
            (state, history, loop, acct,
             b_norm) = self._restore_checkpoint(resume_from, b_digest)
            threshold = self.tol * b_norm
            iterations = loop["iterations"]
            res_norm = loop["res_norm"]
            checked_at = loop["checked_at"]
            best_norm = loop["best_norm"]
            checks_without_progress = loop["checks_without_progress"]
            prev_checked = loop["prev_checked"]
            growing_past_limit = loop["growing_past_limit"]
        else:
            b_vec = ctx.from_global(b_masked)
            if x0 is None:
                x_vec = ctx.new_vector()
            else:
                x_vec = ctx.from_global(np.where(mask, x0, 0.0))

            before_setup = ledger.snapshot()
            b_norm = ctx.norm2(b_vec, phase="setup")
            if b_norm == 0.0:
                # Zero RHS: the exact solution of the SPD system is
                # x = 0; running even ``check_freq`` iterations to
                # discover that wastes halo exchanges and reductions.
                after_setup = ledger.snapshot()
                return SolveResult(
                    x=ctx.to_global(ctx.new_vector()),
                    iterations=0, converged=True,
                    residual_norm=0.0, b_norm=0.0,
                    residual_history=[],
                    solver=self.name,
                    preconditioner=ctx.preconditioner.name,
                    events={},
                    setup_events=_diff(after_setup, before_setup),
                    extra={"zero_rhs": True},
                )
            threshold = self.tol * b_norm
            try:
                state = self._setup(b_vec, x_vec)
            except BreakdownError as exc:
                diagnosis = SolverDiagnosis(
                    kind=BREAKDOWN, solver=self.name,
                    message=f"setup: {exc}", iteration=0, b_norm=b_norm,
                )
                result = SolveResult(
                    x=ctx.to_global(x_vec),
                    iterations=0, converged=False,
                    residual_norm=float("nan"), b_norm=b_norm,
                    residual_history=[], solver=self.name,
                    preconditioner=ctx.preconditioner.name,
                    events={},
                    setup_events=_diff(ledger.snapshot(), before_setup),
                    extra={"diagnosis": diagnosis.to_dict()},
                    diagnosis=diagnosis,
                )
                return self._raise_or_return(diagnosis, result)
            after_setup = ledger.snapshot()
            acct = {"after_setup": after_setup,
                    "before_setup": before_setup,
                    "setup_events": None, "loop_base": {},
                    "b_digest": b_digest}

            history = []
            iterations = 0
            res_norm = float("inf")
            checked_at = -1
            best_norm = float("inf")
            checks_without_progress = 0
            prev_checked = None
            growing_past_limit = 0

        converged = False
        stagnated = False
        diagnosis = None
        divergence_limit = (self.divergence_factor * b_norm
                            if self.divergence_factor > 0 else float("inf"))

        def loop_meta():
            # Reads the *current* local values when invoked (closure):
            # everything the loop needs to continue exactly where it
            # stopped.
            return {
                "iterations": iterations,
                "res_norm": res_norm,
                "checked_at": checked_at,
                "best_norm": best_norm,
                "checks_without_progress": checks_without_progress,
                "prev_checked": prev_checked,
                "growing_past_limit": growing_past_limit,
            }

        if runtime is not None:
            self._attach_resilience(runtime, state, loop_meta(), history)

        while iterations < self.max_iterations:
            iterations += 1
            try:
                try:
                    self._iterate(state, iterations)
                except BreakdownError as exc:
                    if runtime is not None and runtime.intercept(
                            "breakdown", iterations):
                        # A transient corruption often presents as a
                        # breakdown (non-finite inner products); roll
                        # back once and replay -- a genuine numerical
                        # breakdown recurs and takes the normal path.
                        raise runtime.suspect(
                            f"breakdown suspected as corruption: {exc}",
                            detail={"check": "breakdown"}) from exc
                    diagnosis = SolverDiagnosis(
                        kind=BREAKDOWN, solver=self.name,
                        message=str(exc), iteration=iterations,
                        residual_norm=res_norm, b_norm=b_norm,
                    )
                    break
                if iterations % self.check_freq == 0:
                    res_norm = self._residual_norm(state)
                    checked_at = iterations
                    history.append((iterations, res_norm))
                    if not np.isfinite(res_norm):
                        if runtime is not None and runtime.intercept(
                                "nonfinite", iterations):
                            raise runtime.suspect(
                                f"checked residual norm is {res_norm}; "
                                f"suspected corruption",
                                detail={"check": "nonfinite_residual"})
                        diagnosis = SolverDiagnosis(
                            kind=NONFINITE_RESIDUAL, solver=self.name,
                            message=f"checked residual norm is {res_norm}",
                            iteration=iterations, residual_norm=res_norm,
                            b_norm=b_norm,
                            data={"last_finite_norm": prev_checked},
                        )
                        break
                    if res_norm <= threshold:
                        converged = True
                        break
                    if (res_norm > divergence_limit
                            and prev_checked is not None
                            and res_norm > prev_checked):
                        growing_past_limit += 1
                        if growing_past_limit >= self.divergence_checks:
                            diagnosis = SolverDiagnosis(
                                kind=DIVERGED, solver=self.name,
                                message=(
                                    f"|r| = {res_norm:.3e} grew past "
                                    f"{self.divergence_factor:g} * |b| = "
                                    f"{divergence_limit:.3e} over "
                                    f"{growing_past_limit + 1} consecutive "
                                    f"checks"),
                                iteration=iterations,
                                residual_norm=res_norm,
                                b_norm=b_norm,
                                data={
                                    "divergence_factor":
                                        self.divergence_factor,
                                    "limit": divergence_limit,
                                    "history_tail": history[-4:],
                                },
                            )
                            break
                    else:
                        growing_past_limit = 0
                    prev_checked = res_norm
                    if res_norm < best_norm * (1.0 - 1e-6):
                        best_norm = res_norm
                        checks_without_progress = 0
                    else:
                        checks_without_progress += 1
                        if (self.stagnation_checks
                                and checks_without_progress
                                >= self.stagnation_checks):
                            stagnated = True
                            break
                    if runtime is not None and runtime.capture_due(
                            iterations):
                        # Verify (residual cross-check), then replicate:
                        # a replica only ever copies vetted state.
                        runtime.verify_and_capture(
                            state, loop_meta(), len(history),
                            solver_meta=self._snapshot_solver_meta())
            except ResilienceEvent as event:
                if runtime is None:
                    raise
                restored = runtime.rollback(event, iterations)
                if restored is None:
                    diagnosis = SolverDiagnosis(
                        kind=runtime.kind_of(event), solver=self.name,
                        message=(
                            f"{event} (rollback budget of "
                            f"{runtime.policy.max_rollbacks} exhausted)"),
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                        data={"rollbacks":
                              runtime.counters["rollbacks"],
                              **event.detail},
                    )
                    break
                state, meta, solver_meta, hist_len = restored
                self._restore_solver_meta(solver_meta or {})
                del history[hist_len:]
                iterations = meta["iterations"]
                res_norm = meta["res_norm"]
                checked_at = meta["checked_at"]
                best_norm = meta["best_norm"]
                checks_without_progress = meta["checks_without_progress"]
                prev_checked = meta["prev_checked"]
                growing_past_limit = meta["growing_past_limit"]
                continue
            if checkpoint is not None and checkpoint.due(iterations):
                self._write_checkpoint(checkpoint, state, history,
                                       loop_meta(), acct, b_norm)

        if diagnosis is not None:
            return self._fail(diagnosis, state, history, loop_meta(),
                              b_norm, acct, checkpoint=checkpoint)

        if not converged:
            if checked_at != iterations:
                res_norm = self._residual_norm(state)
                history.append((iterations, res_norm))
                if not np.isfinite(res_norm):
                    diagnosis = SolverDiagnosis(
                        kind=NONFINITE_RESIDUAL, solver=self.name,
                        message=f"final residual norm is {res_norm}",
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                    )
                    return self._fail(diagnosis, state, history,
                                      loop_meta(), b_norm, acct,
                                      checkpoint=checkpoint)
            converged = res_norm <= threshold
            if not converged and not stagnated:
                diagnosis = SolverDiagnosis(
                    kind=BUDGET_EXHAUSTED, solver=self.name,
                    message=(
                        f"failed to reach |r| <= {threshold:.3e} after "
                        f"{iterations} iterations (|r| = {res_norm:.3e})"),
                    iteration=iterations, residual_norm=res_norm,
                    b_norm=b_norm,
                    data={"threshold": threshold,
                          "max_iterations": self.max_iterations},
                )
                return self._fail(diagnosis, state, history, loop_meta(),
                                  b_norm, acct, checkpoint=checkpoint)
        if stagnated:
            # Stagnation is a round-off floor, not a failure: record it
            # and return the result as documented.
            state.setdefault("extra", {})["stagnated"] = True

        return self._build_result(state, history, iterations, converged,
                                  res_norm, b_norm, acct)

    # ------------------------------------------------------------------
    # guardrail plumbing
    # ------------------------------------------------------------------
    def _check_entry(self, b, x0, mask):
        """Entry guard: NaN/Inf on ocean points of ``b`` or ``x0``."""
        for label, arr in (("b", b), ("x0", x0)):
            if arr is None:
                continue
            values = np.asarray(arr)[mask]
            if not np.all(np.isfinite(values)):
                bad = int(np.count_nonzero(~np.isfinite(values)))
                return SolverDiagnosis(
                    kind=NONFINITE_INPUT, solver=self.name,
                    message=(f"{label} carries {bad} non-finite ocean "
                             f"value(s) at solve entry"),
                    iteration=0,
                    data={"operand": label, "count": bad},
                )
        return None

    def _fail_before_setup(self, diagnosis, b, x0, mask):
        """Fail with a minimal partial result (no solver state yet)."""
        x = np.zeros_like(np.asarray(b, dtype=np.float64)) if x0 is None \
            else np.where(mask, np.asarray(x0, dtype=np.float64), 0.0)
        result = SolveResult(
            x=x, iterations=0, converged=False,
            residual_norm=float("nan"), b_norm=float("nan"),
            residual_history=[], solver=self.name,
            preconditioner=self.context.preconditioner.name,
            events={}, setup_events={},
            extra={"diagnosis": diagnosis.to_dict()},
            diagnosis=diagnosis,
        )
        return self._raise_or_return(diagnosis, result)

    def _fail(self, diagnosis, state, history, loop, b_norm, acct,
              checkpoint=None):
        """Build the partial result for an abnormal stop and raise or
        return it according to ``raise_on_failure``.

        The diagnosis always carries the last *finite* checked residual
        and the per-phase event ledger at the point of failure, so a
        checkpoint-resume after diagnosis loses no accounting.  When a
        checkpoint policy with ``on_failure`` is attached, the full loop
        state is snapshotted before raising.
        """
        diagnosis.data.setdefault("last_finite_residual",
                                  _last_finite(history))
        diagnosis.data.setdefault(
            "ledger",
            {name: dict(vars(c)) for name, c in self._loop_events(
                acct).items()})
        if checkpoint is not None and checkpoint.on_failure:
            try:
                self._write_checkpoint(checkpoint, state, history, loop,
                                       acct, b_norm, failure=diagnosis)
            except CheckpointError:
                # A failing snapshot must not mask the solver failure.
                pass
        result = self._build_result(state, history, loop["iterations"],
                                    False, loop["res_norm"], b_norm,
                                    acct, diagnosis=diagnosis)
        return self._raise_or_return(diagnosis, result)

    def _raise_or_return(self, diagnosis, result):
        if self.raise_on_failure:
            raise ConvergenceError(
                diagnosis.describe(),
                iterations=result.iterations,
                residual_norm=result.residual_norm,
                result=result, diagnosis=diagnosis,
            )
        return result

    def _setup_events(self, acct):
        """Setup-phase events: measured here, or carried by a resume."""
        if acct["setup_events"] is not None:
            return dict(acct["setup_events"])
        return _diff(acct["after_setup"], acct["before_setup"])

    def _loop_events(self, acct):
        """Loop events so far: pre-resume base + everything since."""
        return _add_events(acct["loop_base"],
                           self.context.ledger.since(acct["after_setup"]))

    def _build_result(self, state, history, iterations, converged,
                      res_norm, b_norm, acct, diagnosis=None):
        ctx = self.context
        extra = dict(state.get("extra", {}))
        if diagnosis is not None:
            extra["diagnosis"] = diagnosis.to_dict()
        runtime = getattr(self, "_active_resilience", None)
        if runtime is not None:
            extra["resilience"] = runtime.summary()
        return SolveResult(
            x=ctx.to_global(state["x"]),
            iterations=iterations,
            converged=converged,
            residual_norm=res_norm,
            b_norm=b_norm,
            residual_history=history,
            solver=self.name,
            preconditioner=ctx.preconditioner.name,
            events=self._loop_events(acct),
            setup_events=self._setup_events(acct),
            extra=extra,
            diagnosis=diagnosis,
        )

    # ------------------------------------------------------------------
    # checkpoint/restart plumbing
    # ------------------------------------------------------------------
    def _snapshot_solver_meta(self):
        """Solver-specific state to checkpoint (hook; JSON-able dict).

        Subclasses whose behavior depends on state outside the loop
        ``state`` dict (P-CSI's Chebyshev interval, Lanczos seeds and
        step counts) override this and :meth:`_restore_solver_meta`.
        """
        return {}

    def _restore_solver_meta(self, meta):
        """Restore what :meth:`_snapshot_solver_meta` captured (hook)."""

    def _write_checkpoint(self, policy, state, history, loop, acct,
                          b_norm, failure=None):
        """Snapshot the complete loop state through ``policy``."""
        ctx = self.context
        arrays = {}
        scalars = {}
        for name, value in state.items():
            if name == "extra":
                continue
            if value is None or isinstance(value, (bool, int, float)):
                scalars[name] = value
            elif isinstance(value, np.generic):
                scalars[name] = value.item()
            else:
                # Context vectors export to the engine-independent
                # global layout -- snapshots resume on any engine.
                arrays[f"vec_{name}"] = ctx.to_global(value)
        meta = {
            "solver": self.name,
            "preconditioner": ctx.preconditioner.name,
            "shape": [int(s) for s in ctx.mask.shape],
            "b_digest": acct["b_digest"],
            "b_norm": float(b_norm),
            "tol": self.tol,
            "check_freq": self.check_freq,
            "scalars": sanitize_meta(scalars),
            "extra": sanitize_meta(state.get("extra", {})),
            "solver_state": sanitize_meta(self._snapshot_solver_meta()),
            "precond_state": sanitize_meta(
                ctx.preconditioner.snapshot_meta()),
            "history": [[int(i), float(r)] for i, r in history],
            "loop": sanitize_meta(loop),
            "setup_events": _events_to_meta(self._setup_events(acct)),
            "loop_events": _events_to_meta(self._loop_events(acct)),
            "failure": failure.to_dict() if failure is not None else None,
        }
        return policy.write(loop["iterations"], "solver", arrays, meta,
                            failure=failure is not None)

    def _restore_checkpoint(self, path, b_digest):
        """Load and verify a snapshot; returns the resumed loop state."""
        arrays, meta = read_checkpoint(path, kind="solver")
        ctx = self.context
        if meta.get("solver") != self.name:
            raise CheckpointError(
                f"checkpoint {path} belongs to solver "
                f"{meta.get('solver')!r}, not {self.name!r}")
        if tuple(meta.get("shape", ())) != tuple(ctx.mask.shape):
            raise CheckpointError(
                f"checkpoint {path} grid shape {meta.get('shape')} does "
                f"not match context {list(ctx.mask.shape)}")
        if meta.get("b_digest") != b_digest:
            raise CheckpointError(
                f"checkpoint {path} was written for a different "
                f"right-hand side -- resuming would not reproduce the "
                f"original solve")
        for knob in ("tol", "check_freq"):
            if meta.get(knob) != getattr(self, knob):
                raise CheckpointError(
                    f"checkpoint {path} was written with "
                    f"{knob}={meta.get(knob)!r}, this solver uses "
                    f"{getattr(self, knob)!r}; a resumed run would not "
                    f"be bit-identical")
        state = {}
        for name, value in arrays.items():
            if name.startswith("vec_"):
                state[name[4:]] = ctx.from_global(value)
        state.update(meta.get("scalars", {}))
        state["extra"] = dict(meta.get("extra", {}))
        self._restore_solver_meta(meta.get("solver_state", {}))
        ctx.preconditioner.restore_meta(meta.get("precond_state") or {})
        history = [(int(i), float(r)) for i, r in meta.get("history", [])]
        loop = dict(meta["loop"])
        acct = {
            "after_setup": ctx.ledger.snapshot(),
            "before_setup": None,
            "setup_events": _events_from_meta(meta["setup_events"]),
            "loop_base": _events_from_meta(meta["loop_events"]),
            "b_digest": b_digest,
        }
        return state, history, loop, acct, float(meta["b_norm"])

    # ------------------------------------------------------------------
    # multi-RHS batched solve
    # ------------------------------------------------------------------
    def _solve_multi(self, b, x0=None, checkpoint=None, resume_from=None,
                     runtime=None):
        """Solve ``A x_j = b_j`` for every column of a ``(ny, nx, nrhs)``
        batch through **one** iteration loop.

        All columns share each halo exchange, stencil application,
        preconditioner application and (fused, ``nrhs``-word) global
        reduction, which is where the batching speedup comes from.  Per
        column, the arithmetic stream is *bit-identical* to a standalone
        single-RHS solve on the same engine and kernel backend: every
        elementwise update broadcasts scalar-identical coefficients over
        the trailing axis, and reductions run per column on contiguous
        copies.

        The guarded-loop semantics apply per column: a column converges,
        diverges, stagnates, or goes non-finite on its own, is frozen
        into the output at the iteration where that happened (its exact
        iteration count lands in ``extra["per_rhs_iterations"]``), and
        the remaining columns are *compacted* so later iterations do no
        work for finished columns.  Zero-RHS columns exit at iteration 0.
        A :class:`BreakdownError` raised by the batched recurrence is a
        batch-level verdict (SPD violation) and fails all still-active
        columns.

        The result's scalar fields summarize the batch (worst residual
        norm, max iterations, ``converged`` = all columns converged);
        ``extra`` carries the per-column truth, including a
        ``per_rhs_diagnosis`` dict for failed columns.  With
        ``raise_on_failure`` the first failing column's diagnosis is
        raised, carrying the full batch result.
        """
        ctx = self.context
        ledger = ctx.ledger
        mask = ctx.mask
        nrhs = int(b.shape[2])
        if b.shape[:2] != mask.shape:
            raise SolverError(
                f"multi-RHS b has grid shape {b.shape[:2]}, context "
                f"expects {mask.shape}")
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)
            if x0.ndim == 2:
                # One shared initial guess for every column.
                x0 = np.repeat(x0[:, :, None], nrhs, axis=2)
            if x0.shape != b.shape:
                raise SolverError(
                    f"x0 batch shape {x0.shape} does not match b shape "
                    f"{b.shape}")

        entry_diag = self._check_entry(b, x0, mask)
        if entry_diag is not None:
            x = (np.zeros_like(b, dtype=np.float64) if x0 is None
                 else np.where(mask[..., None], x0, 0.0))
            result = SolveResult(
                x=x, iterations=0, converged=False,
                residual_norm=float("nan"), b_norm=float("nan"),
                residual_history=[], solver=self.name,
                preconditioner=ctx.preconditioner.name,
                events={}, setup_events={},
                extra={"diagnosis": entry_diag.to_dict()},
                diagnosis=entry_diag,
            )
            return self._raise_or_return(entry_diag, result)

        b_masked = np.where(mask[..., None], b, 0.0)
        b_digest = digest_of("solve-checkpoint", b_masked)

        # Full-width outputs, indexed by original column id.
        x_full = np.zeros(mask.shape + (nrhs,))
        per_iter = np.zeros(nrhs, dtype=np.int64)
        per_conv = np.zeros(nrhs, dtype=bool)
        per_norm = np.zeros(nrhs)
        per_stag = np.zeros(nrhs, dtype=bool)
        per_hist = [[] for _ in range(nrhs)]
        per_diag = {}

        saved_nrhs = ctx.nrhs
        try:
            if resume_from is not None:
                (state, acct, b_norms_all, active, loop, outputs,
                 histories) = self._restore_checkpoint_multi(
                     resume_from, b_digest, nrhs)
                x_full, per_iter, per_conv, per_norm, per_stag = outputs
                per_hist, per_diag, history = histories
                iterations = loop["iterations"]
                checked_at = loop["checked_at"]
                res_norms = loop["res_norms"]
                best = loop["best"]
                cwp = loop["cwp"]
                prev = loop["prev"]
                growing = loop["growing"]
                b_norms = b_norms_all[active]
                thresholds = self.tol * b_norms
            else:
                ctx.nrhs = nrhs
                before_setup = ledger.snapshot()
                b_vec_full = ctx.from_global(b_masked)
                b_norms_all = ctx.norm2(b_vec_full, phase="setup")
                zero = b_norms_all == 0.0
                # Zero columns: the exact solution of the SPD system is
                # x = 0; they exit here, at iteration 0.
                per_conv[zero] = True
                active = np.flatnonzero(~zero)
                if active.size == 0:
                    after_setup = ledger.snapshot()
                    return SolveResult(
                        x=x_full, iterations=0, converged=True,
                        residual_norm=0.0, b_norm=0.0,
                        residual_history=[], solver=self.name,
                        preconditioner=ctx.preconditioner.name,
                        events={},
                        setup_events=_diff(after_setup, before_setup),
                        extra=self._multi_extra(
                            {}, nrhs, per_iter, per_conv, per_norm,
                            per_stag, per_diag, b_norms_all),
                    )
                if active.size < nrhs:
                    ctx.nrhs = int(active.size)
                    b_vec = ctx.compact(b_vec_full, active)
                else:
                    b_vec = b_vec_full
                if x0 is None:
                    x_vec = ctx.new_vector()
                else:
                    x_vec = ctx.from_global(np.ascontiguousarray(
                        np.where(mask[..., None], x0, 0.0)[..., active]))
                b_norms = b_norms_all[active]
                thresholds = self.tol * b_norms
                try:
                    state = self._setup(b_vec, x_vec)
                except BreakdownError as exc:
                    diagnosis = SolverDiagnosis(
                        kind=BREAKDOWN, solver=self.name,
                        message=f"setup: {exc}", iteration=0,
                        b_norm=float(np.max(b_norms_all)),
                    )
                    result = SolveResult(
                        x=x_full, iterations=0, converged=False,
                        residual_norm=float("nan"),
                        b_norm=float(np.max(b_norms_all)),
                        residual_history=[], solver=self.name,
                        preconditioner=ctx.preconditioner.name,
                        events={},
                        setup_events=_diff(ledger.snapshot(),
                                           before_setup),
                        extra={"diagnosis": diagnosis.to_dict()},
                        diagnosis=diagnosis,
                    )
                    return self._raise_or_return(diagnosis, result)
                after_setup = ledger.snapshot()
                acct = {"after_setup": after_setup,
                        "before_setup": before_setup,
                        "setup_events": None, "loop_base": {},
                        "b_digest": b_digest}
                history = []
                iterations = 0
                checked_at = -1
                res_norms = np.full(active.size, np.inf)
                best = np.full(active.size, np.inf)
                cwp = np.zeros(active.size, dtype=np.int64)
                prev = np.full(active.size, np.nan)
                growing = np.zeros(active.size, dtype=np.int64)

            div_limits = (self.divergence_factor * b_norms
                          if self.divergence_factor > 0
                          else np.full(active.size, np.inf))

            def freeze(pos, col, norm):
                x_full[..., col] = xg[..., pos]
                per_iter[col] = iterations
                per_norm[col] = norm

            def loop_meta_multi():
                return {
                    "iterations": iterations,
                    "checked_at": checked_at,
                    "active": active,
                    "b_norms": b_norms,
                    "thresholds": thresholds,
                    "div_limits": div_limits,
                    "res_norms": res_norms,
                    "best": best,
                    "cwp": cwp,
                    "prev": prev,
                    "growing": growing,
                    "x_full": x_full,
                    "per_iter": per_iter,
                    "per_conv": per_conv,
                    "per_norm": per_norm,
                    "per_stag": per_stag,
                    "per_diag": dict(per_diag),
                    "per_hist_len": [len(h) for h in per_hist],
                    "nrhs_active": int(active.size),
                }

            if runtime is not None:
                self._attach_resilience(runtime, state, loop_meta_multi(),
                                        history)

            while active.size and iterations < self.max_iterations:
                iterations += 1
                try:
                    try:
                        self._iterate(state, iterations)
                    except BreakdownError as exc:
                        if runtime is not None and runtime.intercept(
                                "breakdown", iterations):
                            raise runtime.suspect(
                                f"breakdown suspected as corruption: "
                                f"{exc}",
                                detail={"check": "breakdown"}) from exc
                        # Batch-level verdict: the recurrence broke for
                        # the whole batch (SPD violation); every
                        # still-active column fails with its own
                        # BREAKDOWN diagnosis.
                        xg = ctx.to_global(state["x"])
                        for pos, col in enumerate(active):
                            col = int(col)
                            freeze(pos, col, res_norms[pos])
                            per_diag[col] = SolverDiagnosis(
                                kind=BREAKDOWN, solver=self.name,
                                message=str(exc), iteration=iterations,
                                residual_norm=float(res_norms[pos]),
                                b_norm=float(b_norms[pos]),
                                data={"column": col},
                            )
                        active = active[:0]
                        break
                    if iterations % self.check_freq == 0:
                        res_norms = np.asarray(self._residual_norm(state))
                        checked_at = iterations
                        history.append(
                            (iterations, float(np.max(res_norms))))
                        for pos, col in enumerate(active):
                            per_hist[int(col)].append(
                                (iterations, float(res_norms[pos])))
                        # Per-column guardrails -- the exact scalar-loop
                        # semantics, vectorized over the active columns.
                        nonfin = ~np.isfinite(res_norms)
                        if (runtime is not None and nonfin.any()
                                and runtime.intercept("nonfinite",
                                                      iterations)):
                            raise runtime.suspect(
                                f"{int(nonfin.sum())} column(s) checked "
                                f"non-finite; suspected corruption",
                                detail={"check": "nonfinite_residual"})
                        conv = ~nonfin & (res_norms <= thresholds)
                        live = ~nonfin & ~conv
                        grow = (live & (res_norms > div_limits)
                                & ~np.isnan(prev) & (res_norms > prev))
                        growing[grow] += 1
                        growing[live & ~grow] = 0
                        div = live & (growing >= self.divergence_checks)
                        upd = live & ~div
                        prev[upd] = res_norms[upd]
                        improved = upd & (res_norms < best * (1.0 - 1e-6))
                        best[improved] = res_norms[improved]
                        cwp[improved] = 0
                        cwp[upd & ~improved] += 1
                        if self.stagnation_checks:
                            stag = (upd & ~improved
                                    & (cwp >= self.stagnation_checks))
                        else:
                            stag = np.zeros(active.size, dtype=bool)
                        finished = nonfin | conv | div | stag
                        if finished.any():
                            xg = ctx.to_global(state["x"])
                            for pos in np.flatnonzero(finished):
                                col = int(active[pos])
                                freeze(pos, col, res_norms[pos])
                                per_conv[col] = bool(conv[pos])
                                per_stag[col] = bool(stag[pos])
                                if nonfin[pos]:
                                    per_diag[col] = SolverDiagnosis(
                                        kind=NONFINITE_RESIDUAL,
                                        solver=self.name,
                                        message=(
                                            f"column {col}: checked "
                                            f"residual norm is "
                                            f"{res_norms[pos]}"),
                                        iteration=iterations,
                                        residual_norm=float(
                                            res_norms[pos]),
                                        b_norm=float(b_norms[pos]),
                                        data={
                                            "column": col,
                                            "last_finite_norm":
                                                _last_finite(
                                                    per_hist[col]),
                                        },
                                    )
                                elif div[pos]:
                                    per_diag[col] = SolverDiagnosis(
                                        kind=DIVERGED, solver=self.name,
                                        message=(
                                            f"column {col}: |r| = "
                                            f"{res_norms[pos]:.3e} grew "
                                            f"past "
                                            f"{self.divergence_factor:g}"
                                            f" * |b| = "
                                            f"{div_limits[pos]:.3e} over "
                                            f"{int(growing[pos]) + 1} "
                                            f"consecutive checks"),
                                        iteration=iterations,
                                        residual_norm=float(
                                            res_norms[pos]),
                                        b_norm=float(b_norms[pos]),
                                        data={
                                            "column": col,
                                            "divergence_factor":
                                                self.divergence_factor,
                                            "limit": float(
                                                div_limits[pos]),
                                            "history_tail":
                                                per_hist[col][-4:],
                                        },
                                    )
                            keep = np.flatnonzero(~finished)
                            old_width = int(active.size)
                            active = active[keep]
                            b_norms = b_norms[keep]
                            thresholds = thresholds[keep]
                            div_limits = div_limits[keep]
                            res_norms = res_norms[keep]
                            best = best[keep]
                            cwp = cwp[keep]
                            prev = prev[keep]
                            growing = growing[keep]
                            if active.size:
                                ctx.nrhs = int(active.size)
                                self._compact_state(state, keep,
                                                    old_width)
                        if (runtime is not None and active.size
                                and runtime.capture_due(iterations)):
                            runtime.verify_and_capture(
                                state, loop_meta_multi(), len(history),
                                solver_meta=self._snapshot_solver_meta())
                except ResilienceEvent as event:
                    if runtime is None:
                        raise
                    restored = runtime.rollback(event, iterations)
                    if restored is None:
                        # Rollback budget exhausted: fail every
                        # still-active column with a resilience kind.
                        xg = ctx.to_global(state["x"])
                        for pos, col in enumerate(active):
                            col = int(col)
                            freeze(pos, col, res_norms[pos])
                            per_diag[col] = SolverDiagnosis(
                                kind=runtime.kind_of(event),
                                solver=self.name,
                                message=(
                                    f"{event} (rollback budget of "
                                    f"{runtime.policy.max_rollbacks} "
                                    f"exhausted)"),
                                iteration=iterations,
                                residual_norm=float(res_norms[pos]),
                                b_norm=float(b_norms[pos]),
                                data={"column": col,
                                      "rollbacks":
                                          runtime.counters["rollbacks"],
                                      **event.detail},
                            )
                        active = active[:0]
                        break
                    state, meta, solver_meta, hist_len = restored
                    self._restore_solver_meta(solver_meta or {})
                    del history[hist_len:]
                    iterations = meta["iterations"]
                    checked_at = meta["checked_at"]
                    active = meta["active"]
                    b_norms = meta["b_norms"]
                    thresholds = meta["thresholds"]
                    div_limits = meta["div_limits"]
                    res_norms = meta["res_norms"]
                    best = meta["best"]
                    cwp = meta["cwp"]
                    prev = meta["prev"]
                    growing = meta["growing"]
                    x_full = meta["x_full"]
                    per_iter = meta["per_iter"]
                    per_conv = meta["per_conv"]
                    per_norm = meta["per_norm"]
                    per_stag = meta["per_stag"]
                    per_diag.clear()
                    per_diag.update(meta["per_diag"])
                    for hist, length in zip(per_hist,
                                            meta["per_hist_len"]):
                        del hist[length:]
                    ctx.nrhs = int(meta["nrhs_active"])
                    continue
                if (checkpoint is not None and active.size
                        and checkpoint.due(iterations)):
                    self._write_checkpoint_multi(
                        checkpoint, state, acct, b_norms_all, active,
                        iterations, checked_at, history, res_norms,
                        best, cwp, prev, growing, x_full, per_iter,
                        per_conv, per_norm, per_stag, per_hist, per_diag)

            if active.size:
                # Budget exhausted with columns still running: one final
                # explicit check, then freeze the holdouts.
                if checked_at != iterations:
                    res_norms = np.asarray(self._residual_norm(state))
                    history.append((iterations, float(np.max(res_norms))))
                    for pos, col in enumerate(active):
                        per_hist[int(col)].append(
                            (iterations, float(res_norms[pos])))
                conv = np.isfinite(res_norms) & (res_norms <= thresholds)
                xg = ctx.to_global(state["x"])
                for pos, col in enumerate(active):
                    col = int(col)
                    freeze(pos, col, res_norms[pos])
                    per_conv[col] = bool(conv[pos])
                    if conv[pos]:
                        continue
                    if not np.isfinite(res_norms[pos]):
                        per_diag[col] = SolverDiagnosis(
                            kind=NONFINITE_RESIDUAL, solver=self.name,
                            message=(f"column {col}: final residual "
                                     f"norm is {res_norms[pos]}"),
                            iteration=iterations,
                            residual_norm=float(res_norms[pos]),
                            b_norm=float(b_norms[pos]),
                            data={"column": col},
                        )
                    else:
                        per_diag[col] = SolverDiagnosis(
                            kind=BUDGET_EXHAUSTED, solver=self.name,
                            message=(
                                f"column {col}: failed to reach |r| <= "
                                f"{thresholds[pos]:.3e} after "
                                f"{iterations} iterations (|r| = "
                                f"{res_norms[pos]:.3e})"),
                            iteration=iterations,
                            residual_norm=float(res_norms[pos]),
                            b_norm=float(b_norms[pos]),
                            data={"column": col,
                                  "threshold": float(thresholds[pos]),
                                  "max_iterations": self.max_iterations},
                        )

            extra = self._multi_extra(
                dict(state.get("extra", {})), nrhs, per_iter, per_conv,
                per_norm, per_stag, per_diag, b_norms_all)
            if runtime is not None:
                extra["resilience"] = runtime.summary()
            batch_diag = per_diag[min(per_diag)] if per_diag else None
            result = SolveResult(
                x=x_full, iterations=int(iterations),
                converged=bool(per_conv.all()),
                residual_norm=float(np.max(per_norm)),
                b_norm=float(np.max(b_norms_all)),
                residual_history=history,
                solver=self.name,
                preconditioner=ctx.preconditioner.name,
                events=self._loop_events(acct),
                setup_events=self._setup_events(acct),
                extra=extra,
                diagnosis=batch_diag,
            )
            if batch_diag is not None:
                return self._raise_or_return(batch_diag, result)
            return result
        finally:
            ctx.nrhs = saved_nrhs

    def _multi_extra(self, extra, nrhs, per_iter, per_conv, per_norm,
                     per_stag, per_diag, b_norms_all):
        """The per-column accounting block of a multi-RHS result."""
        extra["multi_rhs"] = int(nrhs)
        extra["per_rhs_iterations"] = [int(v) for v in per_iter]
        extra["per_rhs_converged"] = [bool(v) for v in per_conv]
        extra["per_rhs_residual_norm"] = [float(v) for v in per_norm]
        extra["per_rhs_b_norm"] = [float(v) for v in b_norms_all]
        zero_cols = [int(c) for c in np.flatnonzero(b_norms_all == 0.0)]
        if zero_cols:
            extra["zero_rhs_columns"] = zero_cols
            if len(zero_cols) == nrhs:
                extra["zero_rhs"] = True
        if per_stag.any():
            extra["stagnated"] = True
            extra["stagnated_columns"] = [
                int(c) for c in np.flatnonzero(per_stag)]
        if per_diag:
            extra["per_rhs_diagnosis"] = {
                str(col): diag.to_dict()
                for col, diag in sorted(per_diag.items())}
            extra["diagnosis"] = per_diag[min(per_diag)].to_dict()
        return extra

    def _compact_state(self, state, keep, old_width):
        """Drop finished columns from every entry of the loop state.

        Context vectors compact through :meth:`SolverContext.compact`
        (pure data movement); ``(old_width,)`` recurrence arrays (the
        batched rho/sigma/...) compact by indexing; true scalars pass
        through untouched.
        """
        ctx = self.context
        for name, value in list(state.items()):
            if name == "extra":
                continue
            if (isinstance(value, np.ndarray) and value.ndim == 1
                    and value.shape[0] == old_width):
                state[name] = value[keep]
            elif self._is_context_vector(value):
                state[name] = ctx.compact(value, keep)

    @staticmethod
    def _is_context_vector(value):
        """A multi-RHS context vector: BlockField or (ny, nx, k) array."""
        if hasattr(value, "locals_"):
            return True
        return isinstance(value, np.ndarray) and value.ndim == 3

    def _write_checkpoint_multi(self, policy, state, acct, b_norms_all,
                                active, iterations, checked_at, history,
                                res_norms, best, cwp, prev, growing,
                                x_full, per_iter, per_conv, per_norm,
                                per_stag, per_hist, per_diag):
        """Snapshot the complete multi-RHS loop state."""
        ctx = self.context
        n_act = int(active.size)
        arrays = {
            "x_full": x_full, "b_norms_all": b_norms_all,
            "active": np.asarray(active, dtype=np.int64),
            "per_iter": per_iter, "per_conv": per_conv,
            "per_norm": per_norm, "per_stag": per_stag,
            "res_norms": res_norms, "best": best, "cwp": cwp,
            "prev": prev, "growing": growing,
        }
        scalars = {}
        for name, value in state.items():
            if name == "extra":
                continue
            if value is None or isinstance(value, (bool, int, float)):
                scalars[name] = value
            elif isinstance(value, np.generic):
                scalars[name] = value.item()
            elif (isinstance(value, np.ndarray) and value.ndim == 1
                    and value.shape[0] == n_act):
                arrays[f"col_{name}"] = value
            else:
                arrays[f"vec_{name}"] = ctx.to_global(value)
        meta = {
            "solver": self.name,
            "preconditioner": ctx.preconditioner.name,
            "shape": [int(s) for s in ctx.mask.shape],
            "nrhs": int(b_norms_all.shape[0]),
            "b_digest": acct["b_digest"],
            "tol": self.tol,
            "check_freq": self.check_freq,
            "scalars": sanitize_meta(scalars),
            "extra": sanitize_meta(state.get("extra", {})),
            "solver_state": sanitize_meta(self._snapshot_solver_meta()),
            "precond_state": sanitize_meta(
                ctx.preconditioner.snapshot_meta()),
            "history": [[int(i), float(r)] for i, r in history],
            "per_history": [[[int(i), float(r)] for i, r in h]
                            for h in per_hist],
            "per_diagnosis": {str(c): d.to_dict()
                              for c, d in per_diag.items()},
            "loop": {"iterations": int(iterations),
                     "checked_at": int(checked_at)},
            "setup_events": _events_to_meta(self._setup_events(acct)),
            "loop_events": _events_to_meta(self._loop_events(acct)),
        }
        return policy.write(int(iterations), "solver_multi", arrays, meta)

    def _restore_checkpoint_multi(self, path, b_digest, nrhs):
        """Load and verify a multi-RHS snapshot."""
        arrays, meta = read_checkpoint(path, kind="solver_multi")
        ctx = self.context
        if meta.get("solver") != self.name:
            raise CheckpointError(
                f"checkpoint {path} belongs to solver "
                f"{meta.get('solver')!r}, not {self.name!r}")
        if tuple(meta.get("shape", ())) != tuple(ctx.mask.shape):
            raise CheckpointError(
                f"checkpoint {path} grid shape {meta.get('shape')} does "
                f"not match context {list(ctx.mask.shape)}")
        if int(meta.get("nrhs", -1)) != int(nrhs):
            raise CheckpointError(
                f"checkpoint {path} holds {meta.get('nrhs')} RHS "
                f"columns, this solve has {nrhs}")
        if meta.get("b_digest") != b_digest:
            raise CheckpointError(
                f"checkpoint {path} was written for a different "
                f"right-hand side batch -- resuming would not reproduce "
                f"the original solve")
        for knob in ("tol", "check_freq"):
            if meta.get(knob) != getattr(self, knob):
                raise CheckpointError(
                    f"checkpoint {path} was written with "
                    f"{knob}={meta.get(knob)!r}, this solver uses "
                    f"{getattr(self, knob)!r}; a resumed run would not "
                    f"be bit-identical")
        active = np.asarray(arrays["active"], dtype=np.intp)
        ctx.nrhs = int(active.size) if active.size else None
        state = {}
        for name, value in arrays.items():
            if name.startswith("vec_"):
                state[name[4:]] = ctx.from_global(value)
            elif name.startswith("col_"):
                state[name[4:]] = np.array(value, dtype=np.float64)
        state.update(meta.get("scalars", {}))
        state["extra"] = dict(meta.get("extra", {}))
        self._restore_solver_meta(meta.get("solver_state", {}))
        ctx.preconditioner.restore_meta(meta.get("precond_state") or {})
        loop = {
            "iterations": int(meta["loop"]["iterations"]),
            "checked_at": int(meta["loop"]["checked_at"]),
            "res_norms": np.array(arrays["res_norms"]),
            "best": np.array(arrays["best"]),
            "cwp": np.array(arrays["cwp"], dtype=np.int64),
            "prev": np.array(arrays["prev"]),
            "growing": np.array(arrays["growing"], dtype=np.int64),
        }
        acct = {
            "after_setup": ctx.ledger.snapshot(),
            "before_setup": None,
            "setup_events": _events_from_meta(meta["setup_events"]),
            "loop_base": _events_from_meta(meta["loop_events"]),
            "b_digest": b_digest,
        }
        outputs = (
            np.array(arrays["x_full"]),
            np.array(arrays["per_iter"], dtype=np.int64),
            np.array(arrays["per_conv"], dtype=bool),
            np.array(arrays["per_norm"]),
            np.array(arrays["per_stag"], dtype=bool),
        )
        per_hist = [[(int(i), float(r)) for i, r in h]
                    for h in meta.get("per_history", [])]
        while len(per_hist) < nrhs:
            per_hist.append([])
        per_diag = {int(c): _diagnosis_from_dict(d)
                    for c, d in meta.get("per_diagnosis", {}).items()}
        history = [(int(i), float(r)) for i, r in meta.get("history", [])]
        histories = (per_hist, per_diag, history)
        return (state, acct, np.array(arrays["b_norms_all"]), active,
                loop, outputs, histories)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(self, b, x):
        """Initialize solver state; returns a dict with at least
        ``x`` (current iterate) and ``r`` (current residual)."""

    @abc.abstractmethod
    def _iterate(self, state, k):
        """Perform iteration ``k`` in place on ``state``.

        May raise :class:`~repro.core.errors.BreakdownError`; the
        guarded loop converts it into a diagnosed failure carrying the
        partial result."""

    def _residual_norm(self, state):
        """Masked residual 2-norm (one global reduction -- the
        convergence check the paper charges to all solvers)."""
        return self.context.norm2(state["r"], phase="reduction")


def _diff(after, before):
    """Per-phase difference of two ledger snapshots."""
    from repro.parallel.events import EventCounts

    out = {}
    for name in set(after) | set(before):
        a = after.get(name, EventCounts())
        b = before.get(name, EventCounts())
        out[name] = EventCounts(
            flops=a.flops - b.flops,
            halo_exchanges=a.halo_exchanges - b.halo_exchanges,
            halo_words=a.halo_words - b.halo_words,
            allreduces=a.allreduces - b.allreduces,
            allreduce_words=a.allreduce_words - b.allreduce_words,
        )
    return out


def _add_events(base, delta):
    """Per-phase sum of two event dicts (either may be empty)."""
    from repro.parallel.events import EventCounts

    if not base:
        return dict(delta)
    out = dict(base)
    for name, counts in delta.items():
        out[name] = out.get(name, EventCounts()) + counts
    return out


def _events_to_meta(events):
    """Event dict -> JSON-able nested dict (checkpoint metadata)."""
    return {name: dict(vars(counts)) for name, counts in events.items()}


def _events_from_meta(meta):
    """Inverse of :func:`_events_to_meta`."""
    from repro.parallel.events import EventCounts

    return {name: EventCounts(**{k: int(v) for k, v in counts.items()})
            for name, counts in meta.items()}


def _last_finite(history):
    """Last finite residual norm in a check history (or ``None``)."""
    for _iteration, value in reversed(history):
        if np.isfinite(value):
            return float(value)
    return None


def _diagnosis_from_dict(payload):
    """Rebuild a :class:`SolverDiagnosis` from its ``to_dict()`` form.

    Checkpoint metadata round-trips through JSON, so the float fields
    may come back as strings like ``"nan"``; coerce defensively.
    """
    def _float(value, default):
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    return SolverDiagnosis(
        kind=str(payload.get("kind", "")),
        solver=str(payload.get("solver", "")),
        message=str(payload.get("message", "")),
        iteration=int(payload.get("iteration", 0)),
        residual_norm=_float(payload.get("residual_norm"), float("nan")),
        b_norm=_float(payload.get("b_norm"), float("nan")),
        data=dict(payload.get("data", {})),
    )
