"""Shared scaffolding for the iterative solvers.

Handles the pieces the paper holds fixed across solvers so comparisons
are fair (section 5.2): the convergence criterion (masked residual
2-norm vs a tolerance relative to ``|b|``), the *check frequency* (POP
checks every 10 iterations -- each check is an extra global reduction,
which is P-CSI's only reduction), and the iteration budget.

Guardrails
----------
The convergence loop is *guarded*: it refuses non-finite inputs at
entry, exits immediately for a zero right-hand side, watches every
checked residual norm for NaN/Inf and for divergence (growth past
``divergence_factor * |b|`` across consecutive checks), and converts
in-iteration breakdowns (:class:`~repro.core.errors.BreakdownError`)
into structured failures.  Every abnormal stop produces a
:class:`~repro.solvers.health.SolverDiagnosis` and a *partial*
:class:`~repro.solvers.result.SolveResult` -- iterate, residual
history, setup and loop events -- attached to the
:class:`~repro.core.errors.ConvergenceError` (or returned directly with
``raise_on_failure=False``), so no diagnostic the ledger collected is
ever discarded.

The guardrail checks reuse residual norms the solver already reduced
and local ``isfinite`` scans of data already in memory; they add no
communication or ledger events, so modeled timings and engine parity
are unaffected.
"""

import abc

import numpy as np

from repro.core.constants import (
    DEFAULT_CONVERGENCE_CHECK_FREQ,
    DEFAULT_SOLVER_TOLERANCE,
)
from repro.core.errors import BreakdownError, ConvergenceError, SolverError
from repro.solvers.health import (
    BREAKDOWN,
    BUDGET_EXHAUSTED,
    DIVERGED,
    NONFINITE_INPUT,
    NONFINITE_RESIDUAL,
    SolverDiagnosis,
)
from repro.solvers.result import SolveResult


class IterativeSolver(abc.ABC):
    """Base class for ChronGear, P-CSI and PCG.

    Parameters
    ----------
    context:
        A :class:`~repro.solvers.context.SolverContext`.
    tol:
        Convergence tolerance; the solve stops when
        ``|r| <= tol * |b|``.  POP's default is ``1e-13`` (paper
        section 6).  A zero right-hand side returns ``x = 0`` with
        ``iterations=0`` immediately (``extra["zero_rhs"]``).
    max_iterations:
        Iteration budget; exceeded budgets raise
        :class:`~repro.core.errors.ConvergenceError` unless
        ``raise_on_failure=False``.
    check_freq:
        Iterations between convergence checks (paper: 10).  Each check
        costs one global reduction.
    raise_on_failure:
        Return the non-converged result instead of raising when False.
        Guardrail stops (non-finite residual, divergence, breakdown)
        honor the same switch; either way the result carries its
        :class:`~repro.solvers.health.SolverDiagnosis`.
    stagnation_checks:
        Stop early when the checked residual norm has not improved over
        this many consecutive checks -- the explicit residual
        ``b - A x`` has a round-off floor (~eps * |A||x|), and asking
        for a tolerance below it would otherwise burn the whole
        iteration budget.  A stagnated stop sets ``extra["stagnated"]``
        and reports ``converged`` by the usual criterion -- stagnation
        is a round-off floor, not a failure, so it *returns* the result
        even with ``raise_on_failure=True``.  ``0`` disables the
        detector.
    divergence_factor:
        Declare divergence when the checked residual norm exceeds
        ``divergence_factor * |b|`` on consecutive checks while still
        growing.  ``0`` disables the detector.
    """

    #: Name used in experiment tables; subclasses override.
    name = "iterative"

    #: Consecutive above-threshold, still-growing checks that confirm
    #: divergence (one spike at a check boundary is not a verdict).
    divergence_checks = 2

    def __init__(self, context, tol=DEFAULT_SOLVER_TOLERANCE,
                 max_iterations=10000,
                 check_freq=DEFAULT_CONVERGENCE_CHECK_FREQ,
                 raise_on_failure=True, stagnation_checks=5,
                 divergence_factor=1.0e4):
        if tol <= 0:
            raise SolverError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
        if check_freq < 1:
            raise SolverError(f"check_freq must be >= 1, got {check_freq}")
        if divergence_factor < 0:
            raise SolverError(
                f"divergence_factor must be >= 0, got {divergence_factor}")
        self.context = context
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_freq = int(check_freq)
        self.raise_on_failure = bool(raise_on_failure)
        self.stagnation_checks = int(stagnation_checks)
        self.divergence_factor = float(divergence_factor)

    # ------------------------------------------------------------------
    def solve(self, b, x0=None):
        """Solve ``A x = b``.

        ``b`` and ``x0`` are global ``(ny, nx)`` arrays (``x0`` defaults
        to zero).  Values on land are ignored (masked).  Returns a
        :class:`~repro.solvers.result.SolveResult`; abnormal stops raise
        a :class:`~repro.core.errors.ConvergenceError` carrying the
        partial result and a structured diagnosis (see the module
        docstring).
        """
        ctx = self.context
        ledger = ctx.ledger
        mask = ctx.mask

        entry_diag = self._check_entry(b, x0, mask)
        if entry_diag is not None:
            return self._fail_before_setup(entry_diag, b, x0, mask)

        # np.where, not multiplication: NaN * 0 is NaN, so a (legitimate)
        # non-finite land value would survive `b * mask` and poison the
        # solve the entry guard just vetted.
        b_vec = ctx.from_global(np.where(mask, b, 0.0))
        if x0 is None:
            x_vec = ctx.new_vector()
        else:
            x_vec = ctx.from_global(np.where(mask, x0, 0.0))

        before_setup = ledger.snapshot()
        b_norm = ctx.norm2(b_vec, phase="setup")
        if b_norm == 0.0:
            # Zero RHS: the exact solution of the SPD system is x = 0;
            # running even ``check_freq`` iterations to discover that
            # wastes halo exchanges and reductions.
            after_setup = ledger.snapshot()
            return SolveResult(
                x=ctx.to_global(ctx.new_vector()),
                iterations=0, converged=True,
                residual_norm=0.0, b_norm=0.0,
                residual_history=[],
                solver=self.name,
                preconditioner=ctx.preconditioner.name,
                events={},
                setup_events=_diff(after_setup, before_setup),
                extra={"zero_rhs": True},
            )
        threshold = self.tol * b_norm
        try:
            state = self._setup(b_vec, x_vec)
        except BreakdownError as exc:
            diagnosis = SolverDiagnosis(
                kind=BREAKDOWN, solver=self.name,
                message=f"setup: {exc}", iteration=0, b_norm=b_norm,
            )
            result = SolveResult(
                x=ctx.to_global(x_vec),
                iterations=0, converged=False,
                residual_norm=float("nan"), b_norm=b_norm,
                residual_history=[], solver=self.name,
                preconditioner=ctx.preconditioner.name,
                events={},
                setup_events=_diff(ledger.snapshot(), before_setup),
                extra={"diagnosis": diagnosis.to_dict()},
                diagnosis=diagnosis,
            )
            return self._raise_or_return(diagnosis, result)
        after_setup = ledger.snapshot()

        history = []
        converged = False
        iterations = 0
        res_norm = float("inf")

        checked_at = -1
        best_norm = float("inf")
        checks_without_progress = 0
        stagnated = False
        diagnosis = None
        prev_checked = None
        growing_past_limit = 0
        divergence_limit = (self.divergence_factor * b_norm
                            if self.divergence_factor > 0 else float("inf"))
        while iterations < self.max_iterations:
            iterations += 1
            try:
                self._iterate(state, iterations)
            except BreakdownError as exc:
                diagnosis = SolverDiagnosis(
                    kind=BREAKDOWN, solver=self.name,
                    message=str(exc), iteration=iterations,
                    residual_norm=res_norm, b_norm=b_norm,
                )
                break
            if iterations % self.check_freq == 0:
                res_norm = self._residual_norm(state)
                checked_at = iterations
                history.append((iterations, res_norm))
                if not np.isfinite(res_norm):
                    diagnosis = SolverDiagnosis(
                        kind=NONFINITE_RESIDUAL, solver=self.name,
                        message=f"checked residual norm is {res_norm}",
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                        data={"last_finite_norm": prev_checked},
                    )
                    break
                if res_norm <= threshold:
                    converged = True
                    break
                if (res_norm > divergence_limit
                        and prev_checked is not None
                        and res_norm > prev_checked):
                    growing_past_limit += 1
                    if growing_past_limit >= self.divergence_checks:
                        diagnosis = SolverDiagnosis(
                            kind=DIVERGED, solver=self.name,
                            message=(
                                f"|r| = {res_norm:.3e} grew past "
                                f"{self.divergence_factor:g} * |b| = "
                                f"{divergence_limit:.3e} over "
                                f"{growing_past_limit + 1} consecutive "
                                f"checks"),
                            iteration=iterations, residual_norm=res_norm,
                            b_norm=b_norm,
                            data={
                                "divergence_factor": self.divergence_factor,
                                "limit": divergence_limit,
                                "history_tail": history[-4:],
                            },
                        )
                        break
                else:
                    growing_past_limit = 0
                prev_checked = res_norm
                if res_norm < best_norm * (1.0 - 1e-6):
                    best_norm = res_norm
                    checks_without_progress = 0
                else:
                    checks_without_progress += 1
                    if (self.stagnation_checks
                            and checks_without_progress
                            >= self.stagnation_checks):
                        stagnated = True
                        break

        if diagnosis is not None:
            return self._fail(diagnosis, state, history, iterations,
                              res_norm, b_norm, after_setup, before_setup)

        if not converged:
            if checked_at != iterations:
                res_norm = self._residual_norm(state)
                history.append((iterations, res_norm))
                if not np.isfinite(res_norm):
                    diagnosis = SolverDiagnosis(
                        kind=NONFINITE_RESIDUAL, solver=self.name,
                        message=f"final residual norm is {res_norm}",
                        iteration=iterations, residual_norm=res_norm,
                        b_norm=b_norm,
                    )
                    return self._fail(diagnosis, state, history, iterations,
                                      res_norm, b_norm, after_setup,
                                      before_setup)
            converged = res_norm <= threshold
            if not converged and not stagnated:
                diagnosis = SolverDiagnosis(
                    kind=BUDGET_EXHAUSTED, solver=self.name,
                    message=(
                        f"failed to reach |r| <= {threshold:.3e} after "
                        f"{iterations} iterations (|r| = {res_norm:.3e})"),
                    iteration=iterations, residual_norm=res_norm,
                    b_norm=b_norm,
                    data={"threshold": threshold,
                          "max_iterations": self.max_iterations},
                )
                return self._fail(diagnosis, state, history, iterations,
                                  res_norm, b_norm, after_setup,
                                  before_setup)
        if stagnated:
            # Stagnation is a round-off floor, not a failure: record it
            # and return the result as documented.
            state.setdefault("extra", {})["stagnated"] = True

        return self._build_result(state, history, iterations, converged,
                                  res_norm, b_norm, after_setup,
                                  before_setup)

    # ------------------------------------------------------------------
    # guardrail plumbing
    # ------------------------------------------------------------------
    def _check_entry(self, b, x0, mask):
        """Entry guard: NaN/Inf on ocean points of ``b`` or ``x0``."""
        for label, arr in (("b", b), ("x0", x0)):
            if arr is None:
                continue
            values = np.asarray(arr)[mask]
            if not np.all(np.isfinite(values)):
                bad = int(np.count_nonzero(~np.isfinite(values)))
                return SolverDiagnosis(
                    kind=NONFINITE_INPUT, solver=self.name,
                    message=(f"{label} carries {bad} non-finite ocean "
                             f"value(s) at solve entry"),
                    iteration=0,
                    data={"operand": label, "count": bad},
                )
        return None

    def _fail_before_setup(self, diagnosis, b, x0, mask):
        """Fail with a minimal partial result (no solver state yet)."""
        x = np.zeros_like(np.asarray(b, dtype=np.float64)) if x0 is None \
            else np.where(mask, np.asarray(x0, dtype=np.float64), 0.0)
        result = SolveResult(
            x=x, iterations=0, converged=False,
            residual_norm=float("nan"), b_norm=float("nan"),
            residual_history=[], solver=self.name,
            preconditioner=self.context.preconditioner.name,
            events={}, setup_events={},
            extra={"diagnosis": diagnosis.to_dict()},
            diagnosis=diagnosis,
        )
        return self._raise_or_return(diagnosis, result)

    def _fail(self, diagnosis, state, history, iterations, res_norm,
              b_norm, after_setup, before_setup):
        """Build the partial result for an abnormal stop and raise or
        return it according to ``raise_on_failure``."""
        result = self._build_result(state, history, iterations, False,
                                    res_norm, b_norm, after_setup,
                                    before_setup, diagnosis=diagnosis)
        return self._raise_or_return(diagnosis, result)

    def _raise_or_return(self, diagnosis, result):
        if self.raise_on_failure:
            raise ConvergenceError(
                diagnosis.describe(),
                iterations=result.iterations,
                residual_norm=result.residual_norm,
                result=result, diagnosis=diagnosis,
            )
        return result

    def _build_result(self, state, history, iterations, converged,
                      res_norm, b_norm, after_setup, before_setup,
                      diagnosis=None):
        ctx = self.context
        extra = dict(state.get("extra", {}))
        if diagnosis is not None:
            extra["diagnosis"] = diagnosis.to_dict()
        return SolveResult(
            x=ctx.to_global(state["x"]),
            iterations=iterations,
            converged=converged,
            residual_norm=res_norm,
            b_norm=b_norm,
            residual_history=history,
            solver=self.name,
            preconditioner=ctx.preconditioner.name,
            events=ctx.ledger.since(after_setup),
            setup_events=_diff(after_setup, before_setup),
            extra=extra,
            diagnosis=diagnosis,
        )

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(self, b, x):
        """Initialize solver state; returns a dict with at least
        ``x`` (current iterate) and ``r`` (current residual)."""

    @abc.abstractmethod
    def _iterate(self, state, k):
        """Perform iteration ``k`` in place on ``state``.

        May raise :class:`~repro.core.errors.BreakdownError`; the
        guarded loop converts it into a diagnosed failure carrying the
        partial result."""

    def _residual_norm(self, state):
        """Masked residual 2-norm (one global reduction -- the
        convergence check the paper charges to all solvers)."""
        return self.context.norm2(state["r"], phase="reduction")


def _diff(after, before):
    """Per-phase difference of two ledger snapshots."""
    from repro.parallel.events import EventCounts

    out = {}
    for name in set(after) | set(before):
        a = after.get(name, EventCounts())
        b = before.get(name, EventCounts())
        out[name] = EventCounts(
            flops=a.flops - b.flops,
            halo_exchanges=a.halo_exchanges - b.halo_exchanges,
            halo_words=a.halo_words - b.halo_words,
            allreduces=a.allreduces - b.allreduces,
            allreduce_words=a.allreduce_words - b.allreduce_words,
        )
    return out
