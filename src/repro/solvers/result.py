"""The record every solver run returns."""

from dataclasses import dataclass, field


@dataclass
class SolveResult:
    """Outcome of one linear solve.

    Attributes
    ----------
    x:
        The solution as a *global* ``(ny, nx)`` array (distributed runs
        are gathered before returning).
    iterations:
        Iterations executed (ChronGear/P-CSI loop trips).
    converged:
        Whether the convergence criterion was met within the budget.
    residual_norm:
        Masked 2-norm of the final residual.
    b_norm:
        Masked 2-norm of the right-hand side (the relative-tolerance
        reference).
    residual_history:
        ``[(iteration, residual_norm), ...]`` at each convergence check.
    solver, preconditioner:
        Names, for experiment tables.
    events:
        Per-phase :class:`~repro.parallel.events.EventCounts` recorded
        during the iteration loop (excludes one-time setup).
    setup_events:
        Per-phase counts recorded during solver setup (initial residual,
        Lanczos estimation, ...).
    extra:
        Solver-specific diagnostics (e.g. P-CSI's eigenvalue bounds and
        Lanczos step count).
    diagnosis:
        ``None`` for a healthy solve; a
        :class:`~repro.solvers.health.SolverDiagnosis` when the guarded
        convergence loop stopped the solve abnormally (a JSON-safe copy
        also lands in ``extra["diagnosis"]``).
    """

    x: object
    iterations: int
    converged: bool
    residual_norm: float
    b_norm: float
    residual_history: list = field(default_factory=list)
    solver: str = ""
    preconditioner: str = ""
    events: dict = field(default_factory=dict)
    setup_events: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    diagnosis: object = None

    @property
    def relative_residual(self):
        """``|r| / |b|`` (inf if b is zero and r is not)."""
        if self.b_norm > 0.0:
            return self.residual_norm / self.b_norm
        return 0.0 if self.residual_norm == 0.0 else float("inf")

    def describe(self):
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        if self.diagnosis is not None:
            status += f" ({self.diagnosis.kind})"
        return (
            f"{self.solver}+{self.preconditioner}: {status} in "
            f"{self.iterations} iterations, |r|/|b| = {self.relative_residual:.2e}"
        )
