"""Pipelined conjugate gradients (Ghysels & Vanroose 2014).

The paper's related-work section discusses this alternative route to
hiding reduction latency: instead of *removing* the inner products (the
P-CSI approach), pipelined CG rearranges the recurrences so the single
fused all-reduce can **overlap** the matrix-vector product of the same
iteration.  The algorithm keeps CG's convergence behavior (modulo a
mild extra round-off sensitivity from the longer recurrences) while the
reduction latency only costs ``max(T_matvec+halo, T_allreduce)`` per
iteration instead of their sum.

Implemented here as an extension beyond the paper's own solvers so the
three strategies can be compared within one framework:

* ChronGear -- fuse the reductions (one blocking all-reduce/iter),
* PipeCG    -- overlap the reduction (one non-blocking all-reduce/iter),
* P-CSI     -- eliminate the reductions.

Event accounting: the overlapped reduction is recorded with the
dedicated phase ``"reduction_overlap"`` so the machine-model pricing can
apply the overlap discount (see
:func:`repro.perfmodel.timing.phase_times_overlapped`).

Algorithm (Ghysels & Vanroose 2014, preconditioned variant)::

    r0 = b - A x0; u0 = M^-1 r0; w0 = A u0
    loop:
      gamma = (r, u); delta = (w, u)       } one fused reduction, can
      m = M^-1 w; n = A m                  } overlap with these applies
      beta = gamma / gamma_old (0 first); alpha = gamma/(delta - beta*gamma/alpha_old)
      z <- n + beta z;  q <- m + beta q;  p <- u + beta p;  s <- w + beta s
      x <- x + alpha p; r <- r - alpha s; u <- u - alpha q; w <- w - alpha z

Per-iteration cost: one matvec, one preconditioner apply, 8 vector
updates, 2 fused inner products -- more flops than ChronGear (the price
of the overlap), fewer synchronization stalls.
"""

import math

import numpy as np

from repro.core.errors import BreakdownError, SolverError
from repro.solvers.base import IterativeSolver


class PipeCGSolver(IterativeSolver):
    """Preconditioned pipelined CG (reduction overlaps the matvec).

    The longer recurrences make the auxiliary vectors drift from their
    definitions in finite precision -- noticeably so with block
    preconditioners whose application carries its own round-off (EVP
    marching) -- so the solver performs the standard *residual
    replacement* (recompute ``r``, ``u``, ``w`` from their definitions)
    every ``replace_freq`` iterations (default 10, matching the
    convergence-check cadence; ~10% extra work).  Each replacement costs
    one extra matvec + preconditioner apply and is recorded in the event
    stream.
    """

    name = "pipecg"

    def __init__(self, context, replace_freq=10, **kwargs):
        super().__init__(context, **kwargs)
        if replace_freq < 1:
            raise SolverError(f"replace_freq must be >= 1, got {replace_freq}")
        self.replace_freq = int(replace_freq)

    def _setup(self, b, x):
        ctx = self.context
        r = ctx.residual(b, x, phase="setup")
        u = ctx.precond(r, phase="setup")
        w = ctx.matvec(u, phase="setup")
        return {
            "x": x, "r": r, "u": u, "w": w,
            "z": ctx.new_vector(), "q": ctx.new_vector(),
            "p": ctx.new_vector(), "s": ctx.new_vector(),
            "gamma": None, "alpha": None,
            "b": b,
        }

    def _iterate(self, state, k):
        ctx = self.context
        r, u, w = state["r"], state["u"], state["w"]

        # The fused reduction; in the real implementation it is issued
        # non-blocking and completed after the preconditioner+matvec
        # below -- recorded under the overlapped phase.
        gamma, delta = ctx.dot_pair(r, u, w, u, phase="reduction_overlap")

        # Work the reduction hides behind:
        m = ctx.precond(w)
        n = ctx.matvec(m)

        if isinstance(gamma, np.ndarray):
            return self._iterate_multi(state, k, gamma, delta, m, n)

        if not (math.isfinite(gamma) and math.isfinite(delta)):
            raise BreakdownError(
                f"PipeCG breakdown: non-finite reduction "
                f"(gamma={gamma}, delta={delta}) -- iterate is poisoned")
        if gamma == 0.0 and delta == 0.0:
            return  # exact zero residual; already solved
        if state["gamma"] is None:
            beta = 0.0
            alpha = gamma / delta
        else:
            if state["gamma"] == 0.0:
                raise BreakdownError("PipeCG breakdown: gamma vanished")
            beta = gamma / state["gamma"]
            denom = delta - beta * gamma / state["alpha"]
            if denom == 0.0:
                raise BreakdownError(
                    "PipeCG breakdown: denominator vanished")
            alpha = gamma / denom

        ctx.xpay(n, beta, state["z"])        # z = n + beta z
        ctx.xpay(m, beta, state["q"])        # q = m + beta q
        ctx.xpay(u, beta, state["p"])        # p = u + beta p
        ctx.xpay(w, beta, state["s"])        # s = w + beta s
        ctx.axpy(alpha, state["p"], state["x"])
        ctx.axpy(-alpha, state["s"], r)
        ctx.axpy(-alpha, state["q"], u)
        ctx.axpy(-alpha, state["z"], w)

        state["gamma"] = gamma
        state["alpha"] = alpha

        if k % self.replace_freq == 0:
            # Residual replacement: resynchronize the recursively
            # updated vectors with their definitions.
            state["r"] = ctx.residual(state["b"], state["x"])
            state["u"] = ctx.precond(state["r"])
            state["w"] = ctx.matvec(state["u"])

    def _iterate_multi(self, state, k, gamma, delta, m, n):
        """Batched recurrences, one ``(nrhs,)`` entry per column.

        Live columns run the exact scalar coefficient arithmetic
        elementwise, so each column's iterate is bit-identical to a
        standalone solve; an exactly solved column (``gamma = delta =
        0``) freezes its ``x``/``r`` through zero coefficients (the
        auxiliary vectors keep updating, which is harmless), and a
        non-finite reduction poisons only its own column, which the
        next convergence check diagnoses.  A vanished ``gamma`` or
        recurrence denominator on a live column is an SPD violation and
        raises the same :class:`BreakdownError` the scalar path would.
        """
        ctx = self.context
        r, u, w = state["r"], state["u"], state["w"]
        noop = (gamma == 0.0) & (delta == 0.0)
        live = ~noop
        if state["gamma"] is None:
            if bool(np.any(live & (delta == 0.0) & np.isfinite(gamma))):
                raise BreakdownError(
                    "PipeCG breakdown: denominator vanished")
            beta = np.zeros_like(gamma)
            alpha = np.where(live,
                             gamma / np.where(live, delta, 1.0), 0.0)
        else:
            gamma_old = np.asarray(state["gamma"], dtype=np.float64)
            alpha_old = np.asarray(state["alpha"], dtype=np.float64)
            if bool(np.any(live & (gamma_old == 0.0)
                           & np.isfinite(gamma))):
                raise BreakdownError("PipeCG breakdown: gamma vanished")
            beta = np.where(live,
                            gamma / np.where(live, gamma_old, 1.0), 0.0)
            # Live columns always carry alpha_old != 0 (a zero alpha
            # would have tripped the gamma check one iteration earlier).
            denom = delta - beta * gamma / np.where(live, alpha_old, 1.0)
            if bool(np.any(live & (denom == 0.0) & np.isfinite(gamma))):
                raise BreakdownError(
                    "PipeCG breakdown: denominator vanished")
            alpha = np.where(live,
                             gamma / np.where(live, denom, 1.0), 0.0)

        ctx.xpay(n, beta, state["z"])        # z = n + beta z
        ctx.xpay(m, beta, state["q"])        # q = m + beta q
        ctx.xpay(u, beta, state["p"])        # p = u + beta p
        ctx.xpay(w, beta, state["s"])        # s = w + beta s
        ctx.axpy(alpha, state["p"], state["x"])
        ctx.axpy(-alpha, state["s"], r)
        ctx.axpy(-alpha, state["q"], u)
        ctx.axpy(-alpha, state["z"], w)

        if state["gamma"] is None:
            state["gamma"] = gamma
            state["alpha"] = alpha
        else:
            state["gamma"] = np.where(live, gamma, state["gamma"])
            state["alpha"] = np.where(live, alpha, state["alpha"])

        if k % self.replace_freq == 0:
            state["r"] = ctx.residual(state["b"], state["x"])
            state["u"] = ctx.precond(state["r"])
            state["w"] = ctx.matvec(state["u"])
