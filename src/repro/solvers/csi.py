"""P-CSI: the Preconditioned Classical Stiefel Iteration (paper Alg. 2).

A Chebyshev-type iteration over the spectral interval ``[nu, mu]`` of
``M^-1 A``: iteration coefficients come from the Chebyshev three-term
recurrence (Stiefel 1958; revisited by Gutknecht & Roellin 2002), so --
unlike any CG variant -- **no inner products are needed inside the
loop**.  The only global reductions left are the periodic convergence
checks.  That is the paper's central scalability lever: per-iteration
cost has no ``log p`` term (Eq. 3 vs Eq. 2).

Per-iteration event profile (diagonal M):

* computation: 12 n^2 flop units (9 matvec-with-residual + 2 dx update
  + 1 x update),
* preconditioning: ``M``'s cost,
* boundary: one halo update,
* reduction: only at convergence checks (every ``check_freq``
  iterations).

Trade-off: P-CSI needs somewhat more iterations than ChronGear for the
same tolerance (Chebyshev is optimal for the *interval*, CG adapts to
the discrete spectrum), so it loses at small core counts and wins big at
large ones -- reproduced by experiments E7/E9/E12.

Eigenvalue bounds, their Lanczos estimation and caching, and the
divergence recovery policy (widen the interval, re-estimate, retry,
optionally fall back to ChronGear) are shared with the s-step CA-PCG
solver through :class:`~repro.solvers.spectral.SpectralBoundedSolver`
-- see that module's docstring for the failure-mode discussion.
"""

from repro.solvers.spectral import SpectralBoundedSolver


class PCSISolver(SpectralBoundedSolver):
    """Preconditioned Classical Stiefel Iteration.

    See :class:`~repro.solvers.spectral.SpectralBoundedSolver` for the
    eigenbound, recovery and checkpoint parameters.
    """

    name = "pcsi"

    # ------------------------------------------------------------------
    def _setup(self, b, x):
        ctx = self.context
        nu, mu = self._ensure_bounds()

        alpha = 2.0 / (mu - nu)
        beta = (mu + nu) / (mu - nu)
        gamma = beta / alpha
        omega0 = 2.0 / gamma

        # r0 = b - B x0 ; dx0 = gamma^-1 M^-1 r0 ; x1 = x0 + dx0 ;
        # r1 = b - B x1
        r = ctx.residual(b, x, phase="setup")
        dx = ctx.precond(r, phase="setup")
        ctx.scale(1.0 / gamma, dx, phase="setup")
        ctx.axpy(1.0, dx, x, phase="setup")
        r = ctx.residual(b, x, phase="setup")

        extra = {"nu": nu, "mu": mu}
        if self._lanczos_info is not None:
            extra["lanczos_steps"] = self._lanczos_info["steps"]
        return {
            "x": x, "r": r, "dx": dx, "b": b,
            "alpha": alpha, "gamma": gamma, "omega": omega0,
            "extra": extra,
        }

    def _iterate(self, state, k):
        ctx = self.context
        alpha = state["alpha"]
        gamma = state["gamma"]
        # step 5: the iterated Chebyshev weight
        omega = 1.0 / (gamma - state["omega"] / (4.0 * alpha * alpha))
        # step 6: preconditioning (block-local, no communication)
        r_prime = ctx.precond(state["r"])
        # step 7: dx = omega r' + (gamma omega - 1) dx
        ctx.combine(omega, r_prime, gamma * omega - 1.0, state["dx"])
        # step 8: x += dx
        ctx.axpy(1.0, state["dx"], state["x"])
        # steps 9-10: residual recompute (matvec) + halo update
        state["r"] = ctx.residual(state["b"], state["x"])
        state["omega"] = omega
