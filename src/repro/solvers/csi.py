"""P-CSI: the Preconditioned Classical Stiefel Iteration (paper Alg. 2).

A Chebyshev-type iteration over the spectral interval ``[nu, mu]`` of
``M^-1 A``: iteration coefficients come from the Chebyshev three-term
recurrence (Stiefel 1958; revisited by Gutknecht & Roellin 2002), so --
unlike any CG variant -- **no inner products are needed inside the
loop**.  The only global reductions left are the periodic convergence
checks.  That is the paper's central scalability lever: per-iteration
cost has no ``log p`` term (Eq. 3 vs Eq. 2).

Per-iteration event profile (diagonal M):

* computation: 12 n^2 flop units (9 matvec-with-residual + 2 dx update
  + 1 x update),
* preconditioning: ``M``'s cost,
* boundary: one halo update,
* reduction: only at convergence checks (every ``check_freq``
  iterations).

Trade-off: P-CSI needs somewhat more iterations than ChronGear for the
same tolerance (Chebyshev is optimal for the *interval*, CG adapts to
the discrete spectrum), so it loses at small core counts and wins big at
large ones -- reproduced by experiments E7/E9/E12.

Eigenvalue bounds can be supplied directly or estimated at setup by the
:mod:`~repro.solvers.lanczos` machinery (recorded as setup events).
"""

from repro.core.errors import SolverError
from repro.solvers.base import IterativeSolver
from repro.solvers.lanczos import estimate_eigenbounds


class PCSISolver(IterativeSolver):
    """Preconditioned Classical Stiefel Iteration.

    Parameters (beyond :class:`IterativeSolver`'s)
    ----------
    eig_bounds:
        Optional ``(nu, mu)`` for the preconditioned spectrum.  When
        omitted, a Lanczos estimation runs once at first solve and is
        cached for subsequent solves (POP reuses the bounds for the
        whole run since ``A`` is fixed).
    lanczos_tol, lanczos_steps, lanczos_seed:
        Lanczos stopping control (paper tol: 0.15).  ``lanczos_steps``
        forces a fixed step count (the Figure 3 sweep).
    nu_safety, mu_safety:
        Interval widening factors applied to the Lanczos estimates.
    bounds_cache:
        Optional :class:`~repro.core.cache.ArtifactCache` memoizing the
        raw Lanczos estimates across solver instances and processes; on
        a hit the recorded estimation events are replayed into the
        ledger, so modeled timings are unchanged (see
        :func:`~repro.solvers.lanczos.estimate_eigenbounds`).
    """

    name = "pcsi"

    def __init__(self, context, eig_bounds=None, lanczos_tol=0.15,
                 lanczos_steps=None, lanczos_seed=0,
                 nu_safety=0.5, mu_safety=1.05, bounds_cache=None, **kwargs):
        super().__init__(context, **kwargs)
        if eig_bounds is not None:
            nu, mu = float(eig_bounds[0]), float(eig_bounds[1])
            self._check_bounds(nu, mu)
            self._bounds = (nu, mu)
            self._lanczos_info = None
        else:
            self._bounds = None
            self._lanczos_info = None
        self.lanczos_tol = lanczos_tol
        self.lanczos_steps = lanczos_steps
        self.lanczos_seed = lanczos_seed
        self.nu_safety = nu_safety
        self.mu_safety = mu_safety
        self.bounds_cache = bounds_cache

    @staticmethod
    def _check_bounds(nu, mu):
        if not (0.0 < nu < mu):
            raise SolverError(
                f"need 0 < nu < mu for the Chebyshev interval, got "
                f"[{nu}, {mu}]"
            )

    @property
    def eig_bounds(self):
        """The spectral interval in use (``None`` before first solve)."""
        return self._bounds

    def _ensure_bounds(self):
        if self._bounds is None:
            nu, mu, info = estimate_eigenbounds(
                self.context, tol=self.lanczos_tol,
                steps=self.lanczos_steps, seed=self.lanczos_seed,
                nu_safety=self.nu_safety, mu_safety=self.mu_safety,
                phase="setup", cache=self.bounds_cache,
            )
            self._check_bounds(nu, mu)
            self._bounds = (nu, mu)
            self._lanczos_info = info
        return self._bounds

    # ------------------------------------------------------------------
    def _setup(self, b, x):
        ctx = self.context
        nu, mu = self._ensure_bounds()

        alpha = 2.0 / (mu - nu)
        beta = (mu + nu) / (mu - nu)
        gamma = beta / alpha
        omega0 = 2.0 / gamma

        # r0 = b - B x0 ; dx0 = gamma^-1 M^-1 r0 ; x1 = x0 + dx0 ;
        # r1 = b - B x1
        r = ctx.residual(b, x, phase="setup")
        dx = ctx.precond(r, phase="setup")
        _scale(ctx, dx, 1.0 / gamma, phase="setup")
        ctx.axpy(1.0, dx, x, phase="setup")
        r = ctx.residual(b, x, phase="setup")

        extra = {"nu": nu, "mu": mu}
        if self._lanczos_info is not None:
            extra["lanczos_steps"] = self._lanczos_info["steps"]
        return {
            "x": x, "r": r, "dx": dx, "b": b,
            "alpha": alpha, "gamma": gamma, "omega": omega0,
            "extra": extra,
        }

    def _iterate(self, state, k):
        ctx = self.context
        alpha = state["alpha"]
        gamma = state["gamma"]
        # step 5: the iterated Chebyshev weight
        omega = 1.0 / (gamma - state["omega"] / (4.0 * alpha * alpha))
        # step 6: preconditioning (block-local, no communication)
        r_prime = ctx.precond(state["r"])
        # step 7: dx = omega r' + (gamma omega - 1) dx
        ctx.combine(omega, r_prime, gamma * omega - 1.0, state["dx"])
        # step 8: x += dx
        ctx.axpy(1.0, state["dx"], state["x"])
        # steps 9-10: residual recompute (matvec) + halo update
        state["r"] = ctx.residual(state["b"], state["x"])
        state["omega"] = omega


def _scale(ctx, v, factor, phase="computation"):
    """``v *= factor`` through context primitives."""
    ctx.axpy(factor - 1.0, ctx.copy(v), v, phase=phase)
