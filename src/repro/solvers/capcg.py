"""CA-PCG: communication-avoiding s-step preconditioned CG.

Textbook PCG pays two global reductions per iteration and ChronGear one
-- a ``log p`` latency term that dominates the barotropic solve at scale
(paper Eq. 2, Figure 2).  The s-step reformulation (Chronopoulos &
Gear 1989; Carson & Demmel's CA-KSMs; D'Ambra et al.'s Chebyshev-basis
variant) removes the per-iteration reductions entirely: per *outer*
iteration it

1. builds a ``2s+1``-vector Krylov basis ``V = [p, ..., rho_s(C) p,
   z, ..., rho_{s-1}(C) z]`` of the preconditioned operator
   ``C = M^-1 A`` (seeded with the carried-over search direction ``p``
   and preconditioned residual ``z``),
2. assembles the Gram system ``N = V^T (A V)``, ``g = V^T r0`` with
   **one** batched block dot -- a single ``reduction`` event
   (:meth:`~repro.solvers.context.SolverContext.dot_block`) carrying the
   whole ``(2s+1) x (2s+2)`` payload, and
3. advances ``s`` CG steps through small dense recurrences on the
   coordinate vectors -- no communication at all.

Net: ``1/s`` reductions per iteration (plus convergence checks), versus
PCG's 2, ChronGear's 1 fused, and PipeCG's 1 overlapped, while the
iterates remain those of plain PCG in exact arithmetic.

**Chebyshev basis.**  The naive monomial basis ``[p, Cp, C^2 p, ...]``
loses rank in floating point once ``kappa(C)^{j}`` outruns the mantissa.
Scaled-and-shifted Chebyshev polynomials on the spectral interval
``[nu, mu]`` of ``C`` keep the basis condition number flat in ``s``:

.. math::

   v_1 = (C - \\theta I) v_0 / \\delta, \\qquad
   v_{j+1} = 2 (C - \\theta I) v_j / \\delta - v_{j-1}

with ``theta = (mu + nu)/2``, ``delta = (mu - nu)/2``.  The same
Lanczos eigenbounds P-CSI uses (persisted in the artifact cache) supply
the shift/scale, and by construction ``C v_j`` is *exactly* a known
tridiagonal combination of basis vectors -- the basis-change matrix
``B`` the dense recurrences use to update the ``z`` coordinates.

**Batched basis build.**  The P- and Z-block recurrences are
independent, so each build round stacks both into one width-2 multi-RHS
vector (width ``2 nrhs`` for batched solves) and runs a single stacked
matvec + ``apply_stack`` preconditioner application -- the PR-6
multi-RHS kernel paths.  Per outer iteration: ``s`` stacked rounds, one
extra matvec for ``A P_s``, and one for the residual replacement --
``s + 2`` halo exchanges for ``s`` CG steps.

**Failure modes.**  A too-narrow interval (bad Lanczos bounds) or an
over-ambitious ``s`` surfaces as a lost-SPD Gram system (``p^T N p <=
0``), a vanished ``rho``, or a diverging residual -- all folded into the
guarded loop as :class:`~repro.core.errors.BreakdownError` /
divergence diagnoses, and all recoverable: the shared
:class:`~repro.solvers.spectral.SpectralBoundedSolver` policy widens
the interval, re-estimates, retries, and optionally falls back to
ChronGear.

**Checkpointing.**  Mid-block state is the basis itself, so snapshots
use a dedicated ``"capcg"`` checkpoint kind carrying every basis column
(engine-portable global layout), the Gram system, the coordinate
vectors and the inner-step index; a resumed run is bit-identical.
Multi-RHS CA-PCG solves run, converge and compact per column like every
other solver, but do not support checkpointing (the per-column basis
freeze is not snapshot-stable); a clear error is raised instead.
"""

import numpy as np

from repro.core.checkpoint import (
    CheckpointError,
    read_checkpoint,
    sanitize_meta,
)
from repro.core.errors import BreakdownError, SolverError
from repro.solvers.base import _events_from_meta, _events_to_meta
from repro.solvers.spectral import SpectralBoundedSolver


class CAPCGSolver(SpectralBoundedSolver):
    """s-step communication-avoiding PCG with a Chebyshev basis.

    Parameters (beyond :class:`SpectralBoundedSolver`'s)
    ----------
    sstep:
        CG steps advanced per Gram reduction (the paper-family ``s``).
        ``s = 1`` degenerates to PCG with a single fused reduction;
        useful mostly for validation.  Large ``s`` trades reduction
        count against basis conditioning -- 2-8 is the practical range.
    replace_freq:
        Outer iterations between residual replacements (recompute
        ``r = b - A x`` instead of trusting the coordinate update).
        Default 1: replace at every basis rebuild, which costs one
        matvec per ``s`` iterations and keeps the attainable accuracy at
        PCG's level.  ``0`` disables replacement.

    Resilience
    ----------
    Under an in-solve resilience policy (``solve(resilience=...)``),
    buddy replicas are captured at convergence-check boundaries, where
    :meth:`_residual_norm` has already *materialized* the iterate from
    the coordinate recurrence (``synced == jj``) -- i.e. at
    epoch-consistent points of the s-step schedule.  A rollback
    therefore resumes from the start of a basis epoch, never from a
    half-advanced coordinate state.
    """

    name = "capcg"

    #: Dedicated checkpoint kind: snapshots carry the basis state.
    CHECKPOINT_KIND = "capcg"

    #: Keys of the dense (coordinate-space) state arrays.
    _DENSE_KEYS = ("N", "g", "pc", "zc", "ac")

    def __init__(self, context, sstep=4, replace_freq=1, **kwargs):
        super().__init__(context, **kwargs)
        if sstep < 1:
            raise SolverError(f"sstep must be >= 1, got {sstep}")
        if replace_freq < 0:
            raise SolverError(
                f"replace_freq must be >= 0, got {replace_freq}")
        self.sstep = int(sstep)
        self.replace_freq = int(replace_freq)
        self._b_cache = None

    # ------------------------------------------------------------------
    # the Chebyshev basis
    # ------------------------------------------------------------------
    def _basis_change_matrix(self, theta, delta):
        """``B`` with ``C V = V B`` column-exact for the basis blocks.

        ``C v_0 = theta v_0 + delta v_1`` and ``C v_j = (delta/2)
        v_{j-1} + theta v_j + (delta/2) v_{j+1}`` inside each block; the
        last column of each block is never multiplied (the coordinate
        degrees stay inside the basis by construction) and is left zero.
        """
        s = self.sstep
        m = 2 * s + 1
        B = np.zeros((m, m))
        for off, ncols in ((0, s + 1), (s + 1, s)):
            if ncols > 1:
                B[off, off] = theta
                B[off + 1, off] = delta
            for i in range(1, ncols - 1):
                B[off + i - 1, off + i] = 0.5 * delta
                B[off + i, off + i] = theta
                B[off + i + 1, off + i] = 0.5 * delta
        return B

    def _B(self, state):
        key = (state["theta"], state["delta"])
        if self._b_cache is None or self._b_cache[0] != key:
            self._b_cache = (key, self._basis_change_matrix(*key))
        return self._b_cache[1]

    def _start_epoch(self, state, p, z, phase="computation"):
        """(Re)build the basis from seeds ``p``/``z`` and reset coords.

        The build routes through the stacked multi-RHS paths: each of
        the ``s`` rounds runs ONE batched matvec and ONE batched
        preconditioner application over the width-2 (or width-``2w``)
        stack ``[P_j | Z_j]``, then one extra single matvec supplies
        ``A P_s``.  The Gram system is assembled with a single
        :meth:`dot_block` -- one ``reduction`` event for the whole
        epoch's ``s`` CG steps.
        """
        ctx = self.context
        s = self.sstep
        nu, mu = self._bounds
        theta = 0.5 * (mu + nu)
        delta = 0.5 * (mu - nu)
        state["theta"] = theta
        state["delta"] = delta
        w = ctx.nrhs  # width of one basis column (None = scalar)

        cur = ctx.stack_columns([p, z])  # [P_0 | Z_0]
        pairs = [cur]
        wpairs = []
        prev = None
        for _ in range(s):
            t = ctx.matvec(cur, phase=phase)        # [A P_j | A Z_j]
            wpairs.append(t)
            u = ctx.precond(t, phase=(phase if phase == "setup"
                                      else "preconditioning"))
            # Every pair is retained as basis columns, so each round
            # writes a fresh buffer (no in-place reuse of v_{j-1}).
            nxt = ctx.copy(u)
            if prev is None:
                # v_1 = (C - theta) v_0 / delta
                ctx.axpy(-theta, cur, nxt, phase=phase)
                ctx.scale(1.0 / delta, nxt, phase=phase)
            else:
                # v_{j+1} = (2/delta)(C - theta) v_j - v_{j-1}
                ctx.scale(2.0 / delta, nxt, phase=phase)
                ctx.axpy(-2.0 * theta / delta, cur, nxt, phase=phase)
                ctx.axpy(-1.0, prev, nxt, phase=phase)
            prev = cur
            cur = nxt
            pairs.append(cur)

        widths = (w, w)
        cols = [ctx.split_columns(pair, widths) for pair in pairs]
        P = [c[0] for c in cols]                     # P_0 .. P_s
        Z = [c[1] for c in cols[:s]]                 # Z_0 .. Z_{s-1}
        WP, WZ = [], []
        for t in wpairs:
            a_, b_ = ctx.split_columns(t, widths)
            WP.append(a_)
            WZ.append(b_)
        WP.append(ctx.matvec(P[s], phase=phase))     # the A P_s column
        V = P + Z
        W = WP + WZ

        # N = V^T (A V), g = V^T r0: ONE batched block dot -- a single
        # reduction event per s inner iterations.
        red_phase = "setup" if phase == "setup" else "reduction"
        M = ctx.dot_block(V, W + [state["r0"]], phase=red_phase)
        m = len(V)
        state["V"] = V
        state["W"] = W
        state["N"] = np.ascontiguousarray(M[:, :m])
        state["g"] = np.ascontiguousarray(M[:, m])

        # Coordinates: p' = e_0 (P-seed), z' = e_{s+1} (Z-seed), a = 0;
        # rho = r^T z = g[s+1] -- free, no extra reduction.
        if w is None:
            pc = np.zeros(m)
            zc = np.zeros(m)
            ac = np.zeros(m)
            pc[0] = 1.0
            zc[s + 1] = 1.0
            rho = float(state["g"][s + 1])
        else:
            pc = np.zeros((m, w))
            zc = np.zeros((m, w))
            ac = np.zeros((m, w))
            pc[0, :] = 1.0
            zc[s + 1, :] = 1.0
            rho = state["g"][s + 1].copy()
        state["pc"] = pc
        state["zc"] = zc
        state["ac"] = ac
        state["rho"] = rho
        state["jj"] = 0
        state["synced"] = 0

    # ------------------------------------------------------------------
    # materialization: coordinates -> vectors
    # ------------------------------------------------------------------
    def _materialize(self, state):
        """``x = x0 + V a``, ``r = r0 - W a`` into ``state["x"]/["r"]``."""
        ctx = self.context
        x = ctx.copy(state["x0"])
        r = ctx.copy(state["r0"])
        for a_i, vi, wi in zip(state["ac"], state["V"], state["W"]):
            if np.all(a_i == 0.0):
                continue
            ctx.axpy(a_i, vi, x)
            ctx.axpy(-a_i, wi, r)
        state["x"] = x
        state["r"] = r
        state["synced"] = state["jj"]

    def _combination(self, state, coeffs):
        """A fresh vector ``V @ coeffs`` (used for the carried-over p)."""
        ctx = self.context
        out = ctx.new_vector()
        for c_i, vi in zip(coeffs, state["V"]):
            if np.all(c_i == 0.0):
                continue
            ctx.axpy(c_i, vi, out)
        return out

    def _residual_norm(self, state):
        if state["synced"] != state["jj"]:
            self._materialize(state)
        return self.context.norm2(state["r"], phase="reduction")

    # ------------------------------------------------------------------
    # the guarded-loop hooks
    # ------------------------------------------------------------------
    def _setup(self, b, x):
        ctx = self.context
        nu, mu = self._ensure_bounds()
        r = ctx.residual(b, x, phase="setup")
        state = {
            "x": x, "r": r, "b": b,
            "x0": ctx.copy(x), "r0": ctx.copy(r),
            "outer": 0,
            "extra": {"nu": nu, "mu": mu, "sstep": self.sstep},
        }
        if self._lanczos_info is not None:
            state["extra"]["lanczos_steps"] = self._lanczos_info["steps"]
        z = ctx.precond(r, phase="setup")
        # First CG step: p = z; both blocks seeded from z.  The first
        # basis (and its Gram reduction) is setup cost.
        self._start_epoch(state, p=z, z=z, phase="setup")
        return state

    def _rebuild(self, state):
        """Close the finished epoch and open the next one."""
        ctx = self.context
        if state["synced"] != state["jj"]:
            self._materialize(state)
        p = self._combination(state, state["pc"])
        state["outer"] += 1
        if self.replace_freq and state["outer"] % self.replace_freq == 0:
            # Residual replacement: resynchronize r with its definition
            # (one matvec per s iterations, no reduction).
            state["r"] = ctx.residual(state["b"], state["x"])
        state["x0"] = ctx.copy(state["x"])
        state["r0"] = ctx.copy(state["r"])
        z = ctx.precond(state["r"])
        self._start_epoch(state, p=p, z=z)

    def _iterate(self, state, k):
        if state["jj"] >= self.sstep:
            self._rebuild(state)
        if isinstance(state["rho"], np.ndarray):
            self._dense_step_multi(state)
        else:
            self._dense_step(state)
        state["jj"] += 1
        state["synced"] = -1

    @staticmethod
    def _advance_coords(N, g, Bm, pc, zc, ac, rho):
        """One CG step on contiguous coordinate vectors.

        Updates ``zc``/``ac`` in place, returns ``(pc_new, rho_new)``.
        Shared verbatim by the scalar and per-column multi-RHS paths so
        each batched column's coefficient stream is bit-identical to a
        standalone solve.
        """
        pq = float(pc @ (N @ pc))
        if not np.isfinite(pq):
            raise BreakdownError(
                f"CA-PCG breakdown: p^T A p is {pq} in the s-step basis "
                f"-- iterate is poisoned")
        if pq == 0.0:
            raise BreakdownError("CA-PCG breakdown: p^T A p vanished")
        if pq < 0.0:
            raise BreakdownError(
                f"CA-PCG breakdown: p^T A p = {pq:.3e} < 0 -- the "
                f"Chebyshev basis lost positive definiteness (bad "
                f"eigenbounds or s too large)")
        alpha = rho / pq
        ac += alpha * pc
        zc -= alpha * (Bm @ pc)
        # rho' = r^T z = (r0 - W a)^T V z' = g.z' - a.(N^T z')
        rho_new = float(g @ zc - ac @ (N.T @ zc))
        if not np.isfinite(rho_new):
            raise BreakdownError(
                f"CA-PCG breakdown: r^T z is {rho_new} -- iterate is "
                f"poisoned")
        beta = rho_new / rho
        return zc + beta * pc, rho_new

    def _dense_step(self, state):
        """One CG step in basis coordinates -- no communication."""
        m = state["pc"].shape[0]
        # ~5 m^2 dense flops, replicated on every rank (not critical-
        # path scaling, but recorded for honesty).
        self.context.ledger.record_flops("computation", 5 * m * m)
        if state["rho"] == 0.0:
            # Exact zero residual (M is SPD, so r^T M^-1 r = 0 iff
            # r = 0): freeze until the convergence check confirms it.
            return
        state["pc"], state["rho"] = self._advance_coords(
            state["N"], state["g"], self._B(state),
            state["pc"], state["zc"], state["ac"], state["rho"])

    def _dense_step_multi(self, state):
        """Batched dense recurrences, one column per RHS.

        Each live column runs :meth:`_advance_coords` on contiguous
        per-column copies -- the exact scalar arithmetic, so every
        column's iterate stays bit-identical to a standalone solve.  An
        exactly solved column (``rho = 0``) freezes itself; a breakdown
        in any column is a batch-level verdict, exactly as a standalone
        solve of that column would fail.
        """
        N, g = state["N"], state["g"]
        Bm = self._B(state)
        pc, zc, ac = state["pc"], state["zc"], state["ac"]
        rho = np.asarray(state["rho"], dtype=np.float64)
        m, w = pc.shape
        self.context.ledger.record_flops("computation", 5 * m * m * w)

        for j in range(w):
            if rho[j] == 0.0:
                continue
            Nj = np.ascontiguousarray(N[:, :, j])
            gj = np.ascontiguousarray(g[:, j])
            pcj = np.ascontiguousarray(pc[:, j])
            zcj = np.ascontiguousarray(zc[:, j])
            acj = np.ascontiguousarray(ac[:, j])
            pcj, rho[j] = self._advance_coords(Nj, gj, Bm, pcj, zcj,
                                               acj, float(rho[j]))
            pc[:, j] = pcj
            zc[:, j] = zcj
            ac[:, j] = acj
        state["rho"] = rho

    # ------------------------------------------------------------------
    # multi-RHS compaction
    # ------------------------------------------------------------------
    def _compact_state(self, state, keep, old_width):
        dense = {key: state.pop(key) for key in self._DENSE_KEYS}
        V = state.pop("V")
        W = state.pop("W")
        super()._compact_state(state, keep, old_width)
        ctx = self.context
        state["V"] = [ctx.compact(v, keep) for v in V]
        state["W"] = [ctx.compact(v, keep) for v in W]
        for key, value in dense.items():
            state[key] = np.ascontiguousarray(value[..., keep])

    # ------------------------------------------------------------------
    # checkpoint/restart: a dedicated kind carrying the basis state
    # ------------------------------------------------------------------
    def _write_checkpoint(self, policy, state, history, loop, acct,
                          b_norm, failure=None):
        ctx = self.context
        arrays = {}
        for name in ("x", "r", "x0", "r0", "b"):
            arrays[f"vec_{name}"] = ctx.to_global(state[name])
        for i, v in enumerate(state["V"]):
            arrays[f"basis_V_{i}"] = ctx.to_global(v)
        for i, v in enumerate(state["W"]):
            arrays[f"basis_W_{i}"] = ctx.to_global(v)
        for name in self._DENSE_KEYS:
            arrays[f"dense_{name}"] = np.asarray(state[name],
                                                 dtype=np.float64)
        scalars = {
            "rho": float(state["rho"]),
            "jj": int(state["jj"]),
            "outer": int(state["outer"]),
            "synced": int(state["synced"]),
            "theta": float(state["theta"]),
            "delta": float(state["delta"]),
        }
        meta = {
            "solver": self.name,
            "preconditioner": ctx.preconditioner.name,
            "shape": [int(s) for s in ctx.mask.shape],
            "b_digest": acct["b_digest"],
            "b_norm": float(b_norm),
            "tol": self.tol,
            "check_freq": self.check_freq,
            "sstep": self.sstep,
            "basis_size": len(state["V"]),
            "scalars": sanitize_meta(scalars),
            "extra": sanitize_meta(state.get("extra", {})),
            "solver_state": sanitize_meta(self._snapshot_solver_meta()),
            "history": [[int(i), float(r)] for i, r in history],
            "loop": sanitize_meta(loop),
            "setup_events": _events_to_meta(self._setup_events(acct)),
            "loop_events": _events_to_meta(self._loop_events(acct)),
            "failure": failure.to_dict() if failure is not None else None,
        }
        return policy.write(loop["iterations"], self.CHECKPOINT_KIND,
                            arrays, meta, failure=failure is not None)

    def _restore_checkpoint(self, path, b_digest):
        arrays, meta = read_checkpoint(path, kind=self.CHECKPOINT_KIND)
        ctx = self.context
        if meta.get("solver") != self.name:
            raise CheckpointError(
                f"checkpoint {path} belongs to solver "
                f"{meta.get('solver')!r}, not {self.name!r}")
        if tuple(meta.get("shape", ())) != tuple(ctx.mask.shape):
            raise CheckpointError(
                f"checkpoint {path} grid shape {meta.get('shape')} does "
                f"not match context {list(ctx.mask.shape)}")
        if meta.get("b_digest") != b_digest:
            raise CheckpointError(
                f"checkpoint {path} was written for a different "
                f"right-hand side -- resuming would not reproduce the "
                f"original solve")
        for knob in ("tol", "check_freq", "sstep"):
            if meta.get(knob) != getattr(self, knob):
                raise CheckpointError(
                    f"checkpoint {path} was written with "
                    f"{knob}={meta.get(knob)!r}, this solver uses "
                    f"{getattr(self, knob)!r}; a resumed run would not "
                    f"be bit-identical")
        m = int(meta["basis_size"])
        state = {}
        for name in ("x", "r", "x0", "r0", "b"):
            state[name] = ctx.from_global(arrays[f"vec_{name}"])
        state["V"] = [ctx.from_global(arrays[f"basis_V_{i}"])
                      for i in range(m)]
        state["W"] = [ctx.from_global(arrays[f"basis_W_{i}"])
                      for i in range(m)]
        for name in self._DENSE_KEYS:
            state[name] = np.array(arrays[f"dense_{name}"],
                                   dtype=np.float64)
        state.update(meta.get("scalars", {}))
        state["jj"] = int(state["jj"])
        state["outer"] = int(state["outer"])
        state["synced"] = int(state["synced"])
        state["extra"] = dict(meta.get("extra", {}))
        self._restore_solver_meta(meta.get("solver_state", {}))
        history = [(int(i), float(r)) for i, r in meta.get("history", [])]
        loop = dict(meta["loop"])
        acct = {
            "after_setup": ctx.ledger.snapshot(),
            "before_setup": None,
            "setup_events": _events_from_meta(meta["setup_events"]),
            "loop_base": _events_from_meta(meta["loop_events"]),
            "b_digest": b_digest,
        }
        return state, history, loop, acct, float(meta["b_norm"])

    def _write_checkpoint_multi(self, *args, **kwargs):
        raise CheckpointError(
            "multi-RHS CA-PCG solves do not support checkpointing (the "
            "per-column basis freeze is not snapshot-stable); "
            "checkpoint single-RHS solves or use another solver")

    def _restore_checkpoint_multi(self, *args, **kwargs):
        raise CheckpointError(
            "multi-RHS CA-PCG solves do not support checkpoint resume; "
            "resume the single-RHS solves individually")
