"""Solver contexts: the vector space the algorithms are written against.

Each solver (ChronGear, P-CSI, PCG) is implemented exactly once, against
this small set of primitives:

=================  ====================================================
``matvec``         ``y = A x`` (halo update + stencil; 9 flop units/pt)
``precond``        ``z = M^-1 r`` (block/point local; preconditioner's
                   own flop accounting)
``dot``            masked global inner product (1 unit/pt computation +
                   1 unit/pt reduction masking + one all-reduce)
``dot_pair``       two inner products fused into one all-reduce (the
                   ChronGear trick)
``axpy``           ``y += alpha * x`` (1 unit/pt)
``xpay``           ``y = x + beta * y`` (1 unit/pt)
``combine``        ``y = a * x + b * y`` (2 units/pt; P-CSI's dx update)
``scale``          ``v *= factor`` (1 unit/pt; P-CSI setup, Lanczos
                   normalization)
``sub``            ``out = a - b`` (folded into the matvec's cost --
                   the paper counts ``r = b - Bx`` as the 9 n^2 matvec)
=================  ====================================================

Two interchangeable implementations exist:

* :class:`SerialContext` operates on global ``(ny, nx)`` arrays; halo
  and reduction events are *derived* from the attached decomposition
  (the algorithm's results are bit-identical to a 1-rank run, and the
  event stream matches what the distributed context would record).
  This is the fast path used by the large experiments.
* :class:`DistributedContext` operates on
  :class:`~repro.parallel.halo.BlockField` values over a
  :class:`~repro.parallel.vm.VirtualMachine`: real halo exchanges, real
  per-rank arithmetic, real rank-ordered reductions.  Used to validate
  the substrate and the communication accounting.

The test suite asserts both contexts drive every solver to (near)
identical iterates, and that their event ledgers agree exactly on
communication counts.
"""

import abc

import numpy as np

from repro.core.errors import SolverError
from repro.core.norms import masked_dot
from repro.kernels import resolve_kernels
from repro.operators.blocked import BlockedOperator
from repro.operators.stencil_op import MATVEC_FLOPS_PER_POINT, apply_stencil
from repro.parallel.events import EventLedger
from repro.parallel.reduction import binomial_tree_depth


class SolverContext(abc.ABC):
    """Abstract solver context (see module docstring).

    ``kernels`` selects the backend executing the matvec hot path (see
    :mod:`repro.kernels`); the preconditioner carries its own backend
    choice.  Deterministic backends leave all iterates bit-identical.
    """

    def __init__(self, stencil, preconditioner, ledger=None, kernels=None):
        self.stencil = stencil
        self.preconditioner = preconditioner
        self.kernels = resolve_kernels(kernels)
        self.ledger = ledger if ledger is not None else EventLedger()
        self.mask = np.asarray(stencil.mask, dtype=bool)
        #: Trailing batch width for multi-RHS solves.  ``None`` (the
        #: default) keeps the scalar 2-D vector layout; solvers set it
        #: during a batched solve so :meth:`new_vector` allocates the
        #: active column count (it shrinks as columns converge).
        self.nrhs = None

    # -- vectors -------------------------------------------------------
    @abc.abstractmethod
    def new_vector(self):
        """A zero vector."""

    @abc.abstractmethod
    def copy(self, v):
        """An independent copy of ``v``."""

    @abc.abstractmethod
    def from_global(self, array):
        """Import a global ``(ny, nx)`` array as a context vector."""

    @abc.abstractmethod
    def to_global(self, v):
        """Export a context vector as a global ``(ny, nx)`` array."""

    # -- operator ------------------------------------------------------
    @abc.abstractmethod
    def matvec(self, x, out=None, phase="computation"):
        """``out = A x`` (includes the halo update of ``x``)."""

    def residual(self, b, x, out=None, phase="computation"):
        """``out = b - A x``; charged as one matvec (paper convention)."""
        ax = self.matvec(x, phase=phase)
        return self._sub(b, ax, out=out)

    @abc.abstractmethod
    def _sub(self, a, b, out=None):
        """``out = a - b`` (cost folded into the producing matvec)."""

    def precond(self, r, out=None, phase="preconditioning"):
        """``out = M^-1 r``."""
        out = self._apply_precond(r, out)
        self.ledger.record_flops(phase,
                                 self._vec_width(r) * self._precond_flops())
        return out

    def _vec_width(self, v):
        """Trailing batch width of a context vector (1 when scalar)."""
        return self._width(v)

    def _precond_flops(self):
        """Critical-rank flops of one preconditioner application.

        When the preconditioner was built without a decomposition (e.g.
        a point-local preconditioner reused across contexts) its
        whole-grid cost is rescaled to this context's critical block, so
        serial and distributed runs record identical event streams.
        """
        pre = self.preconditioner
        if pre.decomp is None and getattr(self, "decomp", None) is not None:
            ny, nx = self.stencil.shape
            per_point = pre.apply_flops() / float(ny * nx)
            return int(round(per_point * self.critical_points))
        return pre.apply_flops()

    @abc.abstractmethod
    def _apply_precond(self, r, out):
        ...

    # -- reductions ----------------------------------------------------
    @abc.abstractmethod
    def dot(self, a, b, phase="reduction"):
        """Masked global inner product."""

    @abc.abstractmethod
    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        """Two masked inner products fused into one all-reduce."""

    def norm2(self, v, phase="reduction"):
        """Masked 2-norm via one reduction.

        For a multi-RHS vector this is a ``(nrhs,)`` array of per-column
        norms (one fused all-reduce), each bit-identical to the scalar
        path's value for that column.
        """
        value = self.dot(v, v, phase=phase)
        if isinstance(value, np.ndarray):
            return np.sqrt(np.maximum(value, 0.0))
        return float(np.sqrt(max(value, 0.0)))

    @abc.abstractmethod
    def dot_block(self, xs, ys, phase="reduction"):
        """All pairwise masked inner products in **one** all-reduce.

        ``xs`` and ``ys`` are sequences of context vectors; the result
        is a ``(len(xs), len(ys))`` array with ``out[i, j] =
        <xs[i], ys[j]>`` (trailing ``(nrhs,)`` axis for multi-RHS
        vectors).  Every pair's local partial rides a single fused
        all-reduce of ``len(xs) * len(ys) [* nrhs]`` words -- the
        communication-avoiding Gram-matrix assembly: one ``reduction``
        event regardless of how many inner products it carries.
        """

    def gram(self, vs, ws=None, phase="reduction"):
        """Gram matrix ``V^T W`` (or ``V^T V``) via :meth:`dot_block`.

        The s-step CA-PCG entry point: assembling the whole Gram system
        costs exactly one global reduction.
        """
        return self.dot_block(vs, vs if ws is None else ws, phase=phase)

    # -- column stacking (pure data movement, no events) ----------------
    @abc.abstractmethod
    def stack_columns(self, vs):
        """Concatenate vectors into one multi-RHS vector (copies).

        Scalar vectors contribute one column each; multi-RHS vectors
        contribute their full width.  This is how the s-step basis build
        routes independent recurrences through the batched multi-RHS
        kernel paths (stacked stencil program, ``apply_stack``
        preconditioning): one halo exchange and one stencil sweep serve
        all stacked columns.
        """

    @abc.abstractmethod
    def split_columns(self, v, widths):
        """Inverse of :meth:`stack_columns`: split off contiguous column
        groups.  ``widths`` is a sequence whose entries are ``None``
        (emit a scalar vector from one column) or an int ``w`` (emit a
        width-``w`` multi-RHS vector).  Pure data movement.
        """

    # -- multi-RHS support ---------------------------------------------
    @abc.abstractmethod
    def compact(self, v, keep):
        """Drop converged columns: keep only ``v[..., keep]``.

        ``keep`` is an integer index array into the current column set.
        Pure data movement -- the surviving columns' bits are untouched,
        which is what keeps early-exit batches identical to full-width
        ones.
        """

    @staticmethod
    def _width(v):
        """Trailing batch width of an array (1 for scalar 2-D layout)."""
        return v.shape[2] if getattr(v, "ndim", 2) == 3 else 1

    # -- elementwise updates -------------------------------------------
    @abc.abstractmethod
    def axpy(self, alpha, x, y, phase="computation"):
        """``y += alpha * x`` in place; returns ``y``."""

    @abc.abstractmethod
    def xpay(self, x, beta, y, phase="computation"):
        """``y = x + beta * y`` in place; returns ``y``."""

    @abc.abstractmethod
    def combine(self, a, x, b, y, phase="computation"):
        """``y = a * x + b * y`` in place; returns ``y``."""

    @abc.abstractmethod
    def scale(self, factor, v, phase="computation"):
        """``v *= factor`` in place; returns ``v``."""

    # -- topology ------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_ranks(self):
        """Simulated rank count ``p``."""

    @property
    @abc.abstractmethod
    def critical_points(self):
        """Grid points on the critical-path rank (the paper's ``n^2``)."""

    def reduction_tree_depth(self):
        """``ceil(log2 p)`` -- the latency multiplier of an all-reduce."""
        return binomial_tree_depth(self.num_ranks)


# ======================================================================
class SerialContext(SolverContext):
    """Global-array context with decomposition-derived event accounting.

    Parameters
    ----------
    stencil:
        The operator :class:`~repro.grid.stencil.StencilCoeffs`.
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`.
    decomp:
        Optional decomposition; when given, halo/reduction events are
        recorded exactly as the distributed context over the same
        decomposition would record them.  ``None`` means one rank.
    """

    def __init__(self, stencil, preconditioner, decomp=None, ledger=None,
                 kernels=None):
        super().__init__(stencil, preconditioner, ledger, kernels=kernels)
        self.decomp = decomp
        self._mask_f = self.mask.astype(np.float64)
        # Scratch for axpy/combine: ``y += alpha * x`` would materialize
        # ``alpha * x`` afresh on every call in the solver hot loop; the
        # out=-based path reuses this buffer instead.
        self._scratch = None
        if decomp is not None:
            if decomp.ny != stencil.shape[0] or decomp.nx != stencil.shape[1]:
                raise SolverError(
                    f"decomposition grid ({decomp.ny}, {decomp.nx}) does not "
                    f"match stencil {stencil.shape}"
                )
            self._critical = decomp.max_block_points()
            self._halo_words = decomp.halo_words_per_exchange()
            self._p = decomp.num_active
        else:
            self._critical = stencil.shape[0] * stencil.shape[1]
            self._halo_words = 0
            self._p = 1

    # -- vectors -------------------------------------------------------
    def new_vector(self):
        if self.nrhs is None:
            return np.zeros(self.stencil.shape)
        return np.zeros(self.stencil.shape + (self.nrhs,))

    def copy(self, v):
        return v.copy()

    def from_global(self, array):
        return np.array(array, dtype=np.float64)

    def to_global(self, v):
        return v.copy()

    def compact(self, v, keep):
        return np.ascontiguousarray(v[..., keep])

    # -- operator ------------------------------------------------------
    def matvec(self, x, out=None, phase="computation"):
        w = self._width(x)
        out = apply_stencil(self.stencil, x, out=out, kernels=self.kernels)
        self.ledger.record_flops(phase,
                                 w * MATVEC_FLOPS_PER_POINT * self._critical)
        # The halo-update *event* is recorded even for a 1-rank context
        # (with zero payload): event counts are the solver's algorithmic
        # signature, and experiment sweeps rescale the payload to each
        # target decomposition.  The machine model prices halo events at
        # zero when p == 1.  A multi-RHS batch moves nrhs-fold payload in
        # the same single exchange.
        self.ledger.record_halo("boundary", words=w * self._halo_words)
        return out

    def _sub(self, a, b, out=None):
        if out is None:
            out = np.empty_like(a)
        np.subtract(a, b, out=out)
        return out

    def _apply_precond(self, r, out):
        return self.preconditioner.apply_global(r, out=out)

    # -- reductions ----------------------------------------------------
    def _dot_columns(self, a, b):
        """Per-column masked dots of a multi-RHS pair, shape ``(nrhs,)``.

        Each column is reduced on a *contiguous* copy so the pairwise
        summation blocking (and hence every bit of the result) matches
        the scalar path exactly; a strided reduction over the batch
        layout could legally re-block the accumulation.
        """
        nrhs = a.shape[2]
        value = np.empty(nrhs)
        for j in range(nrhs):
            value[j] = masked_dot(np.ascontiguousarray(a[..., j]),
                                  np.ascontiguousarray(b[..., j]),
                                  self._mask_f)
        return value

    def dot(self, a, b, phase="reduction"):
        if a.ndim == 3:
            value = self._dot_columns(a, b)
            nrhs = a.shape[2]
            self.ledger.record_flops("computation", nrhs * self._critical)
            self.ledger.record_flops(phase, nrhs * self._critical)
            # All columns' partials ride one fused all-reduce.
            self.ledger.record_allreduce(phase, words=nrhs)
            return value
        value = masked_dot(a, b, self._mask_f)
        self.ledger.record_flops("computation", self._critical)
        self.ledger.record_flops(phase, self._critical)
        self.ledger.record_allreduce(phase, words=1)
        return value

    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        if a1.ndim == 3:
            v1 = self._dot_columns(a1, b1)
            v2 = self._dot_columns(a2, b2)
            nrhs = a1.shape[2]
            self.ledger.record_flops("computation", 2 * nrhs * self._critical)
            self.ledger.record_flops(phase, 2 * nrhs * self._critical)
            self.ledger.record_allreduce(phase, words=2 * nrhs)
            return v1, v2
        v1 = masked_dot(a1, b1, self._mask_f)
        v2 = masked_dot(a2, b2, self._mask_f)
        self.ledger.record_flops("computation", 2 * self._critical)
        self.ledger.record_flops(phase, 2 * self._critical)
        self.ledger.record_allreduce(phase, words=2)
        return v1, v2

    def dot_block(self, xs, ys, phase="reduction"):
        xs = list(xs)
        ys = list(ys)
        multi = xs[0].ndim == 3
        w = xs[0].shape[2] if multi else 1
        shape = (len(xs), len(ys)) + ((w,) if multi else ())
        out = np.empty(shape)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                if multi:
                    out[i, j] = self._dot_columns(x, y)
                else:
                    out[i, j] = masked_dot(x, y, self._mask_f)
        n_words = len(xs) * len(ys) * w
        self.ledger.record_flops("computation", n_words * self._critical)
        self.ledger.record_flops(phase, n_words * self._critical)
        # The whole Gram block rides ONE fused all-reduce.
        self.ledger.record_allreduce(phase, words=n_words)
        return out

    # -- column stacking -----------------------------------------------
    def stack_columns(self, vs):
        cols = [v[..., None] if v.ndim == 2 else v for v in vs]
        return np.ascontiguousarray(np.concatenate(cols, axis=2))

    def split_columns(self, v, widths):
        out = []
        start = 0
        for w in widths:
            if w is None:
                out.append(np.ascontiguousarray(v[..., start]))
                start += 1
            else:
                out.append(np.ascontiguousarray(v[..., start:start + w]))
                start += int(w)
        return out

    # -- elementwise ---------------------------------------------------
    def _get_scratch(self, like):
        if self._scratch is None or self._scratch.shape != like.shape \
                or self._scratch.dtype != like.dtype:
            self._scratch = np.empty_like(like)
        return self._scratch

    # Coefficients may be scalars or per-column ``(nrhs,)`` arrays --
    # numpy's right-aligned broadcasting lines those up with the
    # trailing RHS axis, and the per-element arithmetic is identical to
    # the scalar path either way.
    def axpy(self, alpha, x, y, phase="computation"):
        s = self._get_scratch(x)
        np.multiply(x, alpha, out=s)
        y += s
        self.ledger.record_flops(phase, self._width(y) * self._critical)
        return y

    def xpay(self, x, beta, y, phase="computation"):
        y *= beta
        y += x
        self.ledger.record_flops(phase, self._width(y) * self._critical)
        return y

    def combine(self, a, x, b, y, phase="computation"):
        y *= b
        s = self._get_scratch(x)
        np.multiply(x, a, out=s)
        y += s
        self.ledger.record_flops(phase, 2 * self._width(y) * self._critical)
        return y

    def scale(self, factor, v, phase="computation"):
        v *= factor
        self.ledger.record_flops(phase, self._width(v) * self._critical)
        return v

    # -- topology ------------------------------------------------------
    @property
    def num_ranks(self):
        return self._p

    @property
    def critical_points(self):
        return self._critical


# ======================================================================
class DistributedContext(SolverContext):
    """Block-field context over a :class:`VirtualMachine`.

    Under the per-rank engine every operation really happens rank by
    rank: halo exchanges move strips between block arrays, reductions
    combine per-rank partials in rank order, and elementwise updates
    loop over block interiors.  Under the batched engine
    (``vm.engine == "batched"``) the same operations run as single
    vectorized numpy calls over the stacked ``(p, bny, bnx)`` layout --
    bit-identical results, identical event streams.
    """

    def __init__(self, stencil, preconditioner, vm, kernels=None):
        super().__init__(stencil, preconditioner, ledger=vm.ledger,
                         kernels=kernels)
        self.vm = vm
        self.decomp = vm.decomp
        self.operator = BlockedOperator(stencil, vm.decomp,
                                        kernels=self.kernels)
        self._critical = vm.max_block_points
        # Scratch stack for the batched axpy/combine (avoids a fresh
        # ``alpha * x`` temporary per call in the solver hot loop).
        self._scratch = None

    def _batched(self, *fields):
        return self.vm.is_batched and all(f.is_stacked for f in fields)

    def _get_scratch(self, like):
        if self._scratch is None or self._scratch.shape != like.shape \
                or self._scratch.dtype != like.dtype:
            self._scratch = np.empty(like.shape, dtype=like.dtype)
        return self._scratch

    # -- vectors -------------------------------------------------------
    def new_vector(self):
        return self.vm.zeros(nrhs=self.nrhs)

    def copy(self, v):
        return v.copy()

    def from_global(self, array):
        return self.vm.scatter(np.asarray(array, dtype=np.float64))

    def to_global(self, v):
        return self.vm.gather(v)

    def compact(self, v, keep):
        keep = np.asarray(keep, dtype=np.intp)
        out = self.vm.zeros(nrhs=int(keep.size))
        if v.is_stacked and out.is_stacked:
            out.stack[...] = v.stack[..., keep]
        else:
            for rank in range(self.vm.num_ranks):
                out.locals_[rank][...] = v.locals_[rank][..., keep]
        return out

    def _vec_width(self, v):
        return v.nrhs or 1

    # -- operator ------------------------------------------------------
    def matvec(self, x, out=None, phase="computation"):
        w = x.nrhs or 1
        self.vm.exchange(x)
        if out is None:
            out = self.vm.zeros(nrhs=x.nrhs)
        self.operator.apply(x, out)
        self.ledger.record_flops(phase,
                                 w * MATVEC_FLOPS_PER_POINT * self._critical)
        resilience = self.vm.resilience
        if resilience is not None:
            resilience.on_matvec(x, out)
        return out

    def _sub(self, a, b, out=None):
        if out is None:
            out = self.vm.zeros(nrhs=a.nrhs)
        if self._batched(a, b, out):
            np.subtract(a.interior_stack(), b.interior_stack(),
                        out=out.interior_stack())
            return out
        for rank in range(self.vm.num_ranks):
            np.subtract(a.interior(rank), b.interior(rank),
                        out=out.interior(rank))
        return out

    def _apply_precond(self, r, out):
        if out is None:
            out = self.vm.zeros(nrhs=r.nrhs)
        if self._batched(r, out):
            # The interior stack is a strided view; apply_stack
            # implementations write through it elementwise.
            self.preconditioner.apply_stack(r.interior_stack(),
                                            out=out.interior_stack())
            return out
        for rank in range(self.vm.num_ranks):
            self.preconditioner.apply_block(rank, r.interior(rank),
                                            out=out.interior(rank))
        return out

    # -- reductions ----------------------------------------------------
    def dot(self, a, b, phase="reduction"):
        return self.vm.global_dot(a, b, phase=phase)

    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        return self.vm.global_dot_pair(a1, b1, a2, b2, phase=phase)

    def dot_block(self, xs, ys, phase="reduction"):
        return self.vm.global_dot_block(xs, ys, phase=phase)

    # -- column stacking -----------------------------------------------
    def stack_columns(self, vs):
        widths = [v.nrhs or 1 for v in vs]
        out = self.vm.zeros(nrhs=sum(widths))
        start = 0
        for v, w in zip(vs, widths):
            for rank in range(self.vm.num_ranks):
                dst = out.locals_[rank]
                src = v.locals_[rank]
                if v.nrhs is None:
                    dst[..., start] = src
                else:
                    dst[..., start:start + w] = src
            start += w
        return out

    def split_columns(self, v, widths):
        out = []
        start = 0
        for w in widths:
            piece = self.vm.zeros(nrhs=w)
            span = 1 if w is None else int(w)
            for rank in range(self.vm.num_ranks):
                src = v.locals_[rank]
                if w is None:
                    piece.locals_[rank][...] = src[..., start]
                else:
                    piece.locals_[rank][...] = src[..., start:start + span]
            out.append(piece)
            start += span
        return out

    # -- elementwise ---------------------------------------------------
    # Coefficients may be scalars or per-column ``(nrhs,)`` arrays; the
    # trailing RHS axis lines up with numpy's right-aligned
    # broadcasting in both the stacked and per-rank layouts.
    def axpy(self, alpha, x, y, phase="computation"):
        if self._batched(x, y):
            xi = x.interior_stack()
            s = self._get_scratch(xi)
            np.multiply(xi, alpha, out=s)
            y.interior_stack()[...] += s
        else:
            for rank in range(self.vm.num_ranks):
                y.interior(rank)[...] += alpha * x.interior(rank)
        self.ledger.record_flops(phase, self._vec_width(y) * self._critical)
        return y

    def xpay(self, x, beta, y, phase="computation"):
        if self._batched(x, y):
            yi = y.interior_stack()
            yi *= beta
            yi += x.interior_stack()
        else:
            for rank in range(self.vm.num_ranks):
                yi = y.interior(rank)
                yi *= beta
                yi += x.interior(rank)
        self.ledger.record_flops(phase, self._vec_width(y) * self._critical)
        return y

    def combine(self, a, x, b, y, phase="computation"):
        if self._batched(x, y):
            yi = y.interior_stack()
            yi *= b
            xi = x.interior_stack()
            s = self._get_scratch(xi)
            np.multiply(xi, a, out=s)
            yi += s
        else:
            for rank in range(self.vm.num_ranks):
                yi = y.interior(rank)
                yi *= b
                yi += a * x.interior(rank)
        self.ledger.record_flops(phase, 2 * self._vec_width(y) * self._critical)
        return y

    def scale(self, factor, v, phase="computation"):
        if self._batched(v):
            v.interior_stack()[...] *= factor
        else:
            for rank in range(self.vm.num_ranks):
                v.interior(rank)[...] *= factor
        self.ledger.record_flops(phase, self._vec_width(v) * self._critical)
        return v

    # -- topology ------------------------------------------------------
    @property
    def num_ranks(self):
        return self.vm.num_ranks

    @property
    def critical_points(self):
        return self._critical
