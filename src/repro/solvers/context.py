"""Solver contexts: the vector space the algorithms are written against.

Each solver (ChronGear, P-CSI, PCG) is implemented exactly once, against
this small set of primitives:

=================  ====================================================
``matvec``         ``y = A x`` (halo update + stencil; 9 flop units/pt)
``precond``        ``z = M^-1 r`` (block/point local; preconditioner's
                   own flop accounting)
``dot``            masked global inner product (1 unit/pt computation +
                   1 unit/pt reduction masking + one all-reduce)
``dot_pair``       two inner products fused into one all-reduce (the
                   ChronGear trick)
``axpy``           ``y += alpha * x`` (1 unit/pt)
``xpay``           ``y = x + beta * y`` (1 unit/pt)
``combine``        ``y = a * x + b * y`` (2 units/pt; P-CSI's dx update)
``scale``          ``v *= factor`` (1 unit/pt; P-CSI setup, Lanczos
                   normalization)
``sub``            ``out = a - b`` (folded into the matvec's cost --
                   the paper counts ``r = b - Bx`` as the 9 n^2 matvec)
=================  ====================================================

Two interchangeable implementations exist:

* :class:`SerialContext` operates on global ``(ny, nx)`` arrays; halo
  and reduction events are *derived* from the attached decomposition
  (the algorithm's results are bit-identical to a 1-rank run, and the
  event stream matches what the distributed context would record).
  This is the fast path used by the large experiments.
* :class:`DistributedContext` operates on
  :class:`~repro.parallel.halo.BlockField` values over a
  :class:`~repro.parallel.vm.VirtualMachine`: real halo exchanges, real
  per-rank arithmetic, real rank-ordered reductions.  Used to validate
  the substrate and the communication accounting.

The test suite asserts both contexts drive every solver to (near)
identical iterates, and that their event ledgers agree exactly on
communication counts.
"""

import abc

import numpy as np

from repro.core.errors import SolverError
from repro.core.norms import masked_dot
from repro.kernels import resolve_kernels
from repro.operators.blocked import BlockedOperator
from repro.operators.stencil_op import MATVEC_FLOPS_PER_POINT, apply_stencil
from repro.parallel.events import EventLedger
from repro.parallel.reduction import binomial_tree_depth


class SolverContext(abc.ABC):
    """Abstract solver context (see module docstring).

    ``kernels`` selects the backend executing the matvec hot path (see
    :mod:`repro.kernels`); the preconditioner carries its own backend
    choice.  Deterministic backends leave all iterates bit-identical.
    """

    def __init__(self, stencil, preconditioner, ledger=None, kernels=None):
        self.stencil = stencil
        self.preconditioner = preconditioner
        self.kernels = resolve_kernels(kernels)
        self.ledger = ledger if ledger is not None else EventLedger()
        self.mask = np.asarray(stencil.mask, dtype=bool)

    # -- vectors -------------------------------------------------------
    @abc.abstractmethod
    def new_vector(self):
        """A zero vector."""

    @abc.abstractmethod
    def copy(self, v):
        """An independent copy of ``v``."""

    @abc.abstractmethod
    def from_global(self, array):
        """Import a global ``(ny, nx)`` array as a context vector."""

    @abc.abstractmethod
    def to_global(self, v):
        """Export a context vector as a global ``(ny, nx)`` array."""

    # -- operator ------------------------------------------------------
    @abc.abstractmethod
    def matvec(self, x, out=None, phase="computation"):
        """``out = A x`` (includes the halo update of ``x``)."""

    def residual(self, b, x, out=None, phase="computation"):
        """``out = b - A x``; charged as one matvec (paper convention)."""
        ax = self.matvec(x, phase=phase)
        return self._sub(b, ax, out=out)

    @abc.abstractmethod
    def _sub(self, a, b, out=None):
        """``out = a - b`` (cost folded into the producing matvec)."""

    def precond(self, r, out=None, phase="preconditioning"):
        """``out = M^-1 r``."""
        out = self._apply_precond(r, out)
        self.ledger.record_flops(phase, self._precond_flops())
        return out

    def _precond_flops(self):
        """Critical-rank flops of one preconditioner application.

        When the preconditioner was built without a decomposition (e.g.
        a point-local preconditioner reused across contexts) its
        whole-grid cost is rescaled to this context's critical block, so
        serial and distributed runs record identical event streams.
        """
        pre = self.preconditioner
        if pre.decomp is None and getattr(self, "decomp", None) is not None:
            ny, nx = self.stencil.shape
            per_point = pre.apply_flops() / float(ny * nx)
            return int(round(per_point * self.critical_points))
        return pre.apply_flops()

    @abc.abstractmethod
    def _apply_precond(self, r, out):
        ...

    # -- reductions ----------------------------------------------------
    @abc.abstractmethod
    def dot(self, a, b, phase="reduction"):
        """Masked global inner product."""

    @abc.abstractmethod
    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        """Two masked inner products fused into one all-reduce."""

    def norm2(self, v, phase="reduction"):
        """Masked 2-norm via one reduction."""
        return float(np.sqrt(max(self.dot(v, v, phase=phase), 0.0)))

    # -- elementwise updates -------------------------------------------
    @abc.abstractmethod
    def axpy(self, alpha, x, y, phase="computation"):
        """``y += alpha * x`` in place; returns ``y``."""

    @abc.abstractmethod
    def xpay(self, x, beta, y, phase="computation"):
        """``y = x + beta * y`` in place; returns ``y``."""

    @abc.abstractmethod
    def combine(self, a, x, b, y, phase="computation"):
        """``y = a * x + b * y`` in place; returns ``y``."""

    @abc.abstractmethod
    def scale(self, factor, v, phase="computation"):
        """``v *= factor`` in place; returns ``v``."""

    # -- topology ------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_ranks(self):
        """Simulated rank count ``p``."""

    @property
    @abc.abstractmethod
    def critical_points(self):
        """Grid points on the critical-path rank (the paper's ``n^2``)."""

    def reduction_tree_depth(self):
        """``ceil(log2 p)`` -- the latency multiplier of an all-reduce."""
        return binomial_tree_depth(self.num_ranks)


# ======================================================================
class SerialContext(SolverContext):
    """Global-array context with decomposition-derived event accounting.

    Parameters
    ----------
    stencil:
        The operator :class:`~repro.grid.stencil.StencilCoeffs`.
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`.
    decomp:
        Optional decomposition; when given, halo/reduction events are
        recorded exactly as the distributed context over the same
        decomposition would record them.  ``None`` means one rank.
    """

    def __init__(self, stencil, preconditioner, decomp=None, ledger=None,
                 kernels=None):
        super().__init__(stencil, preconditioner, ledger, kernels=kernels)
        self.decomp = decomp
        self._mask_f = self.mask.astype(np.float64)
        # Scratch for axpy/combine: ``y += alpha * x`` would materialize
        # ``alpha * x`` afresh on every call in the solver hot loop; the
        # out=-based path reuses this buffer instead.
        self._scratch = None
        if decomp is not None:
            if decomp.ny != stencil.shape[0] or decomp.nx != stencil.shape[1]:
                raise SolverError(
                    f"decomposition grid ({decomp.ny}, {decomp.nx}) does not "
                    f"match stencil {stencil.shape}"
                )
            self._critical = decomp.max_block_points()
            self._halo_words = decomp.halo_words_per_exchange()
            self._p = decomp.num_active
        else:
            self._critical = stencil.shape[0] * stencil.shape[1]
            self._halo_words = 0
            self._p = 1

    # -- vectors -------------------------------------------------------
    def new_vector(self):
        return np.zeros(self.stencil.shape)

    def copy(self, v):
        return v.copy()

    def from_global(self, array):
        return np.array(array, dtype=np.float64)

    def to_global(self, v):
        return v.copy()

    # -- operator ------------------------------------------------------
    def matvec(self, x, out=None, phase="computation"):
        out = apply_stencil(self.stencil, x, out=out, kernels=self.kernels)
        self.ledger.record_flops(phase, MATVEC_FLOPS_PER_POINT * self._critical)
        # The halo-update *event* is recorded even for a 1-rank context
        # (with zero payload): event counts are the solver's algorithmic
        # signature, and experiment sweeps rescale the payload to each
        # target decomposition.  The machine model prices halo events at
        # zero when p == 1.
        self.ledger.record_halo("boundary", words=self._halo_words)
        return out

    def _sub(self, a, b, out=None):
        if out is None:
            out = np.empty_like(a)
        np.subtract(a, b, out=out)
        return out

    def _apply_precond(self, r, out):
        return self.preconditioner.apply_global(r, out=out)

    # -- reductions ----------------------------------------------------
    def dot(self, a, b, phase="reduction"):
        value = masked_dot(a, b, self._mask_f)
        self.ledger.record_flops("computation", self._critical)
        self.ledger.record_flops(phase, self._critical)
        self.ledger.record_allreduce(phase, words=1)
        return value

    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        v1 = masked_dot(a1, b1, self._mask_f)
        v2 = masked_dot(a2, b2, self._mask_f)
        self.ledger.record_flops("computation", 2 * self._critical)
        self.ledger.record_flops(phase, 2 * self._critical)
        self.ledger.record_allreduce(phase, words=2)
        return v1, v2

    # -- elementwise ---------------------------------------------------
    def _get_scratch(self, like):
        if self._scratch is None or self._scratch.shape != like.shape \
                or self._scratch.dtype != like.dtype:
            self._scratch = np.empty_like(like)
        return self._scratch

    def axpy(self, alpha, x, y, phase="computation"):
        s = self._get_scratch(x)
        np.multiply(x, alpha, out=s)
        y += s
        self.ledger.record_flops(phase, self._critical)
        return y

    def xpay(self, x, beta, y, phase="computation"):
        y *= beta
        y += x
        self.ledger.record_flops(phase, self._critical)
        return y

    def combine(self, a, x, b, y, phase="computation"):
        y *= b
        s = self._get_scratch(x)
        np.multiply(x, a, out=s)
        y += s
        self.ledger.record_flops(phase, 2 * self._critical)
        return y

    def scale(self, factor, v, phase="computation"):
        v *= factor
        self.ledger.record_flops(phase, self._critical)
        return v

    # -- topology ------------------------------------------------------
    @property
    def num_ranks(self):
        return self._p

    @property
    def critical_points(self):
        return self._critical


# ======================================================================
class DistributedContext(SolverContext):
    """Block-field context over a :class:`VirtualMachine`.

    Under the per-rank engine every operation really happens rank by
    rank: halo exchanges move strips between block arrays, reductions
    combine per-rank partials in rank order, and elementwise updates
    loop over block interiors.  Under the batched engine
    (``vm.engine == "batched"``) the same operations run as single
    vectorized numpy calls over the stacked ``(p, bny, bnx)`` layout --
    bit-identical results, identical event streams.
    """

    def __init__(self, stencil, preconditioner, vm, kernels=None):
        super().__init__(stencil, preconditioner, ledger=vm.ledger,
                         kernels=kernels)
        self.vm = vm
        self.decomp = vm.decomp
        self.operator = BlockedOperator(stencil, vm.decomp,
                                        kernels=self.kernels)
        self._critical = vm.max_block_points
        # Scratch stack for the batched axpy/combine (avoids a fresh
        # ``alpha * x`` temporary per call in the solver hot loop).
        self._scratch = None

    def _batched(self, *fields):
        return self.vm.is_batched and all(f.is_stacked for f in fields)

    def _get_scratch(self, like):
        if self._scratch is None or self._scratch.shape != like.shape \
                or self._scratch.dtype != like.dtype:
            self._scratch = np.empty(like.shape, dtype=like.dtype)
        return self._scratch

    # -- vectors -------------------------------------------------------
    def new_vector(self):
        return self.vm.zeros()

    def copy(self, v):
        return v.copy()

    def from_global(self, array):
        return self.vm.scatter(np.asarray(array, dtype=np.float64))

    def to_global(self, v):
        return self.vm.gather(v)

    # -- operator ------------------------------------------------------
    def matvec(self, x, out=None, phase="computation"):
        self.vm.exchange(x)
        if out is None:
            out = self.vm.zeros()
        self.operator.apply(x, out)
        self.ledger.record_flops(phase, MATVEC_FLOPS_PER_POINT * self._critical)
        return out

    def _sub(self, a, b, out=None):
        if out is None:
            out = self.vm.zeros()
        if self._batched(a, b, out):
            np.subtract(a.interior_stack(), b.interior_stack(),
                        out=out.interior_stack())
            return out
        for rank in range(self.vm.num_ranks):
            np.subtract(a.interior(rank), b.interior(rank),
                        out=out.interior(rank))
        return out

    def _apply_precond(self, r, out):
        if out is None:
            out = self.vm.zeros()
        if self._batched(r, out):
            # The interior stack is a strided view; apply_stack
            # implementations write through it elementwise.
            self.preconditioner.apply_stack(r.interior_stack(),
                                            out=out.interior_stack())
            return out
        for rank in range(self.vm.num_ranks):
            self.preconditioner.apply_block(rank, r.interior(rank),
                                            out=out.interior(rank))
        return out

    # -- reductions ----------------------------------------------------
    def dot(self, a, b, phase="reduction"):
        return self.vm.global_dot(a, b, phase=phase)

    def dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        return self.vm.global_dot_pair(a1, b1, a2, b2, phase=phase)

    # -- elementwise ---------------------------------------------------
    def axpy(self, alpha, x, y, phase="computation"):
        if self._batched(x, y):
            xi = x.interior_stack()
            s = self._get_scratch(xi)
            np.multiply(xi, alpha, out=s)
            y.interior_stack()[...] += s
        else:
            for rank in range(self.vm.num_ranks):
                y.interior(rank)[...] += alpha * x.interior(rank)
        self.ledger.record_flops(phase, self._critical)
        return y

    def xpay(self, x, beta, y, phase="computation"):
        if self._batched(x, y):
            yi = y.interior_stack()
            yi *= beta
            yi += x.interior_stack()
        else:
            for rank in range(self.vm.num_ranks):
                yi = y.interior(rank)
                yi *= beta
                yi += x.interior(rank)
        self.ledger.record_flops(phase, self._critical)
        return y

    def combine(self, a, x, b, y, phase="computation"):
        if self._batched(x, y):
            yi = y.interior_stack()
            yi *= b
            xi = x.interior_stack()
            s = self._get_scratch(xi)
            np.multiply(xi, a, out=s)
            yi += s
        else:
            for rank in range(self.vm.num_ranks):
                yi = y.interior(rank)
                yi *= b
                yi += a * x.interior(rank)
        self.ledger.record_flops(phase, 2 * self._critical)
        return y

    def scale(self, factor, v, phase="computation"):
        if self._batched(v):
            v.interior_stack()[...] *= factor
        else:
            for rank in range(self.vm.num_ranks):
                v.interior(rank)[...] *= factor
        self.ledger.record_flops(phase, self._critical)
        return v

    # -- topology ------------------------------------------------------
    @property
    def num_ranks(self):
        return self.vm.num_ranks

    @property
    def critical_points(self):
        return self._critical
