"""Lanczos estimation of the extreme eigenvalues of ``M^-1 A``.

P-CSI needs the spectral interval ``[nu, mu]`` of the *preconditioned*
operator before it can iterate (paper section 3).  Because ``A`` and the
shipped preconditioners are SPD on the ocean subspace, ``C = M^-1 A`` is
self-adjoint in the ``A``-inner product, so a short Lanczos recurrence
with ``A``-orthogonalization produces a tridiagonal matrix whose extreme
Ritz values converge (fast, from inside) to ``nu`` and ``mu``.

Each Lanczos step costs one matvec + one preconditioner application +
two global reductions -- about one ChronGear iteration, matching the
paper's remark that "the cost of the Lanczos method is similar to
calling the ChronGear solver a few times".  The paper finds a loose
relative-change tolerance ``eps = 0.15`` sufficient at both resolutions
(their Figure 3; reproduced by experiment E3).

Because Ritz values approach the spectrum from the inside, the returned
interval is widened by safety factors before use; the eigen-margin
ablation bench quantifies the sensitivity.
"""

import numpy as np
from scipy.linalg import eigvalsh_tridiagonal

from repro.core.cache import CACHE_FORMAT_VERSION, decomp_signature, digest_of
from repro.core.constants import DEFAULT_LANCZOS_TOLERANCE
from repro.core.errors import BreakdownError, SolverError
from repro.core.rng import make_rng
from repro.parallel.events import EventCounts


class LanczosEstimator:
    """Estimates ``[nu, mu]`` of ``M^-1 A`` through a solver context.

    Parameters
    ----------
    context:
        A :class:`~repro.solvers.context.SolverContext`; all events the
        estimation generates are recorded on its ledger under ``phase``.
    tol:
        Relative-change stopping tolerance on both extreme Ritz values
        (paper: 0.15).
    max_steps:
        Hard cap on Lanczos steps.
    seed:
        Seed for the random start vector.
    phase:
        Ledger phase for the recorded events (default ``"setup"``).
    """

    def __init__(self, context, tol=DEFAULT_LANCZOS_TOLERANCE, max_steps=60,
                 seed=0, phase="setup", window=5):
        if tol <= 0:
            raise SolverError(f"Lanczos tolerance must be positive, got {tol}")
        if max_steps < 2:
            raise SolverError(f"max_steps must be >= 2, got {max_steps}")
        if window < 1:
            raise SolverError(f"window must be >= 1, got {window}")
        self.context = context
        self.tol = float(tol)
        self.max_steps = int(max_steps)
        self.seed = seed
        self.phase = phase
        self.window = int(window)

    def run(self, steps=None):
        """Run the recurrence; returns a result dict.

        ``steps`` forces an exact step count (used by the Figure 3
        sweep); default is adaptive stopping at ``tol``.

        Returns
        -------
        dict with keys ``nu``, ``mu`` (extreme Ritz values), ``steps``
        (steps taken), and ``history`` (list of ``(nu_j, mu_j)`` after
        each step).
        """
        ctx = self.context
        phase = self.phase
        rng = make_rng(self.seed)

        # Random masked start vector, A-normalized.
        start = rng.standard_normal(ctx.stencil.shape) * ctx.mask
        v = ctx.from_global(start)
        av = ctx.matvec(v, phase=phase)
        norm2 = ctx.dot(v, av, phase=phase)
        if not np.isfinite(norm2):
            raise BreakdownError(
                f"Lanczos start vector has non-finite A-norm ({norm2}): "
                f"the operator data is corrupted")
        if norm2 <= 0.0:
            raise SolverError("Lanczos start vector has non-positive A-norm")
        scale = 1.0 / np.sqrt(norm2)
        ctx.scale(scale, v, phase=phase)
        ctx.scale(scale, av, phase=phase)

        alphas = []
        betas = []
        history = []
        basis = [(v, av)]  # kept for full A-reorthogonalization
        v_prev = None
        beta_prev = 0.0
        target = steps if steps is not None else self.max_steps

        for j in range(target):
            w = ctx.precond(av, phase=phase)            # C v_j
            alpha = ctx.dot(w, av, phase=phase)         # <C v, v>_A
            ctx.axpy(-alpha, v, w, phase=phase)
            if v_prev is not None:
                ctx.axpy(-beta_prev, v_prev, w, phase=phase)
            # Full A-reorthogonalization: without it, loss of orthogonality
            # produces ghost copies of converged Ritz values and corrupts
            # the extreme estimates P-CSI depends on.  The extra dot
            # products are cheap for the few dozen steps ever taken.
            for vb, avb in basis:
                proj = ctx.dot(w, avb, phase=phase)
                ctx.axpy(-proj, vb, w, phase=phase)
            alphas.append(alpha)

            aw = ctx.matvec(w, phase=phase)
            beta2 = ctx.dot(w, aw, phase=phase)
            if not (np.isfinite(alpha) and np.isfinite(beta2)):
                raise BreakdownError(
                    f"Lanczos coefficients went non-finite at step "
                    f"{j + 1} (alpha={alpha}, beta^2={beta2})")
            beta = np.sqrt(max(beta2, 0.0))

            ritz = _ritz_extremes(alphas, betas)
            history.append(ritz)

            if beta <= 1e-14 * max(abs(alpha), 1.0):
                break  # invariant subspace: estimates are exact
            if steps is None and len(history) > self.window:
                # Windowed stopping: the smallest Ritz value creeps down
                # slowly for operators with near-isolated small modes, so
                # the change is measured across the last ``window`` steps
                # rather than between consecutive ones.
                nu0, mu0 = history[-1 - self.window]
                nu1, mu1 = history[-1]
                if (_rel_change(nu0, nu1) < self.tol
                        and _rel_change(mu0, mu1) < self.tol):
                    break
            betas.append(beta)
            beta_prev = beta
            v_prev = v
            v = w
            av = aw
            inv = 1.0 / beta
            ctx.scale(inv, v, phase=phase)
            ctx.scale(inv, av, phase=phase)
            basis.append((v, av))

        nu, mu = history[-1]
        return {"nu": float(nu), "mu": float(mu),
                "steps": len(history), "history": history}


def _ritz_extremes(alphas, betas):
    """Extreme eigenvalues of the current tridiagonal matrix."""
    if len(alphas) == 1:
        return alphas[0], alphas[0]
    vals = eigvalsh_tridiagonal(np.asarray(alphas), np.asarray(betas))
    return float(vals[0]), float(vals[-1])


def _rel_change(old, new):
    denom = max(abs(new), 1e-300)
    return abs(new - old) / denom


def eigenbounds_key(context, tol=DEFAULT_LANCZOS_TOLERANCE, max_steps=60,
                    steps=None, seed=0, phase="setup"):
    """Artifact-cache key for an estimation on ``context``.

    Covers everything the raw Ritz values *and* the recorded event
    stream depend on: the operator content, the decomposition geometry,
    the preconditioner parameters, the context flavor (serial vs
    distributed contexts record different communication events) and the
    stopping controls.  The safety factors are deliberately excluded --
    they are applied after estimation, so one cached estimation serves
    every widening policy.
    """
    precond = context.preconditioner
    return digest_of(
        CACHE_FORMAT_VERSION, "eigenbounds",
        type(context).__name__,
        context.stencil.content_digest(),
        decomp_signature(getattr(context, "decomp", None)),
        precond.cache_token(),
        float(tol), int(max_steps),
        None if steps is None else int(steps),
        seed, phase,
    )


def _eigenbounds_payload_to_info(payload):
    """Rebuild the estimator's info dict from a cached payload.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads (the caller treats those as cache misses).
    """
    info = {
        "nu": float(payload["nu"]),
        "mu": float(payload["mu"]),
        "steps": int(payload["steps"]),
        "history": [(float(h[0]), float(h[1])) for h in payload["history"]],
        "cached": True,
    }
    events = {name: EventCounts(**{k: int(v) for k, v in counts.items()})
              for name, counts in payload["events"].items()}
    return info, events


def estimate_eigenbounds(context, tol=DEFAULT_LANCZOS_TOLERANCE,
                         max_steps=60, steps=None, seed=0,
                         nu_safety=0.5, mu_safety=1.05, phase="setup",
                         cache=None):
    """Convenience wrapper: run Lanczos and widen by safety factors.

    Ritz values approach the true spectrum from the inside, so the
    interval is widened: ``nu * nu_safety`` and ``mu * mu_safety``.  The
    asymmetry (0.5 down vs 1.05 up) is deliberate: *underestimating*
    ``nu`` merely slows Chebyshev a little, while overestimating it
    leaves modes outside the interval that the iteration amplifies --
    the eigen-margin ablation bench quantifies both directions.
    Returns ``(nu, mu, info)``.

    With ``cache`` (an :class:`~repro.core.cache.ArtifactCache`), the
    raw estimates are memoized under :func:`eigenbounds_key` and -- on a
    hit -- the events the original estimation recorded are *replayed*
    into the context's ledger, so modeled timings are identical whether
    the estimation ran or was recalled.  ``info["cached"]`` marks hits.
    """
    key = None
    if cache is not None:
        key = eigenbounds_key(context, tol=tol, max_steps=max_steps,
                              steps=steps, seed=seed, phase=phase)
        payload = cache.get_object("eigenbounds", key)
        if payload is None:
            loaded = cache.load("eigenbounds", key)
            if loaded is not None:
                payload = loaded[1]
        if payload is not None:
            try:
                info, events = _eigenbounds_payload_to_info(payload)
            except (KeyError, TypeError, ValueError):
                info = None
            if info is not None:
                cache.put_object("eigenbounds", key, payload)
                context.ledger.merge(events)
                return _widen(info, nu_safety, mu_safety)

    estimator = LanczosEstimator(context, tol=tol, max_steps=max_steps,
                                 seed=seed, phase=phase)
    before = context.ledger.snapshot()
    info = estimator.run(steps=steps)
    if cache is not None:
        recorded = context.ledger.since(before)
        payload = {
            "nu": info["nu"], "mu": info["mu"], "steps": info["steps"],
            "history": [[float(a), float(b)] for a, b in info["history"]],
            "events": {name: vars(c) for name, c in recorded.items()
                       if any(vars(c).values())},
        }
        cache.put_object("eigenbounds", key, payload)
        cache.store("eigenbounds", key, meta=payload)
    return _widen(info, nu_safety, mu_safety)


def _widen(info, nu_safety, mu_safety):
    nu = info["nu"] * nu_safety
    mu = info["mu"] * mu_safety
    if nu <= 0.0:
        raise SolverError(
            f"estimated lower eigenvalue bound is not positive ({nu:.3e}); "
            "the preconditioned operator is not SPD on the ocean subspace"
        )
    return nu, mu, info
