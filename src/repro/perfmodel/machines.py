"""Machine parameter sets for the timing models.

Parameters follow the paper's cost decomposition (section 2.2):

* ``theta`` -- seconds per flop *unit* (one stencil coefficient MAC in
  the paper's ``9 n^2`` bookkeeping).  An effective, not peak, rate.
* ``alpha`` -- point-to-point message latency (halo strips).
* ``beta`` -- seconds per byte of point-to-point payload.
* all-reduce time -- modeled as
  ``ar_alpha * ceil(log2 p) + ar_linear * p``.
  The first term is the binomial reduction tree of the paper's Eq. (2);
  the second is the straggler/synchronization penalty that grows with
  rank count (OS noise and network contention -- the paper cites
  Ferreira et al. 2008 and observes exactly this effect dominating at
  large ``p``).  A pure ``log p`` model cannot reproduce the measured
  ~20x growth of reduction cost from ~1k to ~16k cores that the paper's
  own Figure 2/10 timings show; an additional per-rank penalty can
  (every extra rank adds another chance of a delayed arrival the
  synchronizing collective must wait out).
* ``noise_cv`` -- coefficient of variation of multiplicative run-to-run
  noise on *communication* phases.  Edison's Aries/dragonfly placement
  variability (Wang et al., SC14 poster) gives it a much larger value;
  experiments reproduce the paper's §5.3 protocol of averaging the best
  three runs for ChronGear on Edison.

Calibration: constants were fit so the modeled curves land in the range
the paper reports (Figures 7, 8, 10, 11) for the full-size grids; they
are *effective* parameters of those machines' behavior under POP, not
datasheet numbers.  One systematic compensation is folded in: our
iteration counts are measured from cold-started solves, roughly twice
what warm-started production solves need, so the effective per-event
times sit below raw hardware values.  EXPERIMENTS.md records
paper-vs-modeled values.
"""

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class MachineSpec:
    """Effective performance parameters of one machine."""

    name: str
    #: Seconds per flop unit (stencil-MAC equivalent).
    theta: float
    #: Point-to-point latency, seconds per message.
    alpha: float
    #: Seconds per byte of point-to-point payload.
    beta: float
    #: All-reduce: seconds per binomial-tree level.
    ar_alpha: float
    #: All-reduce: straggler/contention coefficient (seconds per rank).
    ar_linear: float
    #: Run-to-run multiplicative noise (coefficient of variation) on
    #: communication phases.
    noise_cv: float = 0.0

    # ------------------------------------------------------------------
    def allreduce_time(self, p, words=2):
        """Seconds for one all-reduce over ``p`` ranks.

        ``words`` is the payload per rank (1-2 doubles here): it rides
        inside a single packet, so only latency terms matter -- the
        paper notes the reduction has "virtually no data exchange".
        """
        if p < 1:
            raise ConfigurationError(f"rank count must be >= 1, got {p}")
        if p == 1:
            return 0.0
        depth = math.ceil(math.log2(p))
        return self.ar_alpha * depth + self.ar_linear * p

    def halo_time(self, words, messages=4):
        """Seconds for one halo update moving ``words`` 8-byte words."""
        return messages * self.alpha + words * 8 * self.beta

    def compute_time(self, flops):
        """Seconds for ``flops`` flop units on one rank."""
        return flops * self.theta

    def describe(self):
        """One-line summary."""
        return (
            f"{self.name}: theta={self.theta:.2e}s/flop, "
            f"alpha={self.alpha:.2e}s, beta={self.beta:.2e}s/B, "
            f"allreduce={self.ar_alpha:.2e}s/level + {self.ar_linear:.2e}s*p, "
            f"noise_cv={self.noise_cv}"
        )


#: NCAR Yellowstone: 2.6 GHz Sandy Bridge, 13.6 GBps InfiniBand fat
#: tree (paper section 5).  Effective parameters calibrated against the
#: paper's Figures 7/8/10.
YELLOWSTONE = MachineSpec(
    name="yellowstone",
    theta=1.2e-9,
    alpha=1.8e-6,
    beta=1.4e-10,
    ar_alpha=2.0e-6,
    ar_linear=1.0e-8,
    noise_cv=0.08,
)

#: NERSC Edison: 2.4 GHz Ivy Bridge, Cray Aries dragonfly (paper
#: section 5.3).  Slightly slower effective per-core rate, lower p2p
#: latency, but substantially larger reduction-time variability from
#: job-placement contention; the paper measured a larger barotropic
#: time than Yellowstone (26.2 s vs 19.0 s for ChronGear at 16,875
#: cores) with much noisier ChronGear runs.
EDISON = MachineSpec(
    name="edison",
    theta=1.35e-9,
    alpha=1.4e-6,
    beta=1.0e-10,
    ar_alpha=2.2e-6,
    ar_linear=1.5e-8,
    noise_cv=0.35,
)

_MACHINES = {m.name: m for m in (YELLOWSTONE, EDISON)}


def get_machine(name):
    """Look up a machine spec by name (case-insensitive)."""
    key = name.lower()
    if key not in _MACHINES:
        raise ConfigurationError(
            f"unknown machine {name!r}; known: {sorted(_MACHINES)}"
        )
    return _MACHINES[key]
