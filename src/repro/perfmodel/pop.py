"""Whole-POP cost model: baroclinic + barotropic, rates, percentages.

The paper's headline quantities are not solver times alone but their
effect on the whole ocean model: the fraction of POP time spent in the
barotropic solver (Figures 1 and 9), the total-execution improvement
(Table 1) and the core simulation rate in simulated years per wall-clock
day (Figures 8 and 11).

The baroclinic mode -- the 3-D dynamics and thermodynamics -- scales
almost perfectly (its stencil work is ``O(N^2 L / p)`` with only
nearest-neighbor communication), which is exactly why the barotropic
solver's global reductions come to dominate at scale.  We model the
baroclinic day cost as

``T_bc = W * (N^2/p) * steps * theta  +  steps * [H * T_halo + R * T_ar]``

with ``W`` the effective flop units per point per step (the 3-D work,
~60 vertical levels), ``H`` halo exchanges per step (3-D fields), and
``R`` the few diagnostic all-reduces per step.  Constants are calibrated
so the 0.1-degree percentage-of-time curve matches the paper's Figure 1
(5% barotropic at 470 cores growing to ~50% at 16,875 with
diagonal-ChronGear); EXPERIMENTS.md records the calibration.

Run-to-run noise: :func:`noisy_run_times` draws multiplicative
log-normal noise on the communication phases (seeded), reproducing the
paper's Edison protocol (section 5.3) where ChronGear times varied so
much that "the average of the best three results" was reported.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.core.constants import SECONDS_PER_DAY
from repro.core.rng import make_rng


@dataclass
class PopCostModel:
    """Effective baroclinic-mode cost constants.

    Attributes
    ----------
    flops_per_point_step:
        Flop units per grid point per time step for the 3-D baroclinic
        work (order 60 levels x a few hundred flop units per level).
    halo_exchanges_per_step:
        3-D halo updates per step (batched over levels).
    allreduces_per_step:
        Diagnostic/CFL reductions per step.
    """

    flops_per_point_step: float = 26000.0
    halo_exchanges_per_step: int = 40
    allreduces_per_step: int = 2

    def baroclinic_day_time(self, n_global, steps_per_day, p, machine):
        """Modeled baroclinic seconds per simulated day on ``p`` ranks."""
        n2_per_rank = n_global / p
        compute = (self.flops_per_point_step * n2_per_rank
                   * steps_per_day * machine.theta)
        halo_words = 8.0 * math.sqrt(n2_per_rank)
        comm = steps_per_day * (
            self.halo_exchanges_per_step * machine.halo_time(halo_words)
            + self.allreduces_per_step * machine.allreduce_time(p)
        )
        return compute + comm


#: Default model instance used by the experiments.
DEFAULT_POP_MODEL = PopCostModel()


def baroclinic_day_time(n_global, steps_per_day, p, machine,
                        model=DEFAULT_POP_MODEL):
    """Module-level convenience over :class:`PopCostModel`."""
    return model.baroclinic_day_time(n_global, steps_per_day, p, machine)


def simulation_rate_sypd(day_seconds):
    """Simulated years per wall-clock day for a per-simulated-day cost."""
    if day_seconds <= 0:
        raise ValueError(f"day time must be positive, got {day_seconds}")
    return SECONDS_PER_DAY / (day_seconds * 365.0)


def barotropic_fraction(barotropic_day, baroclinic_day):
    """Fraction of core POP time spent in the barotropic solver."""
    total = barotropic_day + baroclinic_day
    return barotropic_day / total if total > 0 else 0.0


def noisy_run_times(times, machine, seed=0, n_runs=5):
    """Simulate run-to-run variability of one configuration.

    ``times`` is a :class:`~repro.perfmodel.timing.PhaseTimes`; the
    communication phases (boundary + reduction) are multiplied by
    independent log-normal factors with coefficient of variation
    ``machine.noise_cv`` per run.  Returns the list of total seconds,
    one per run.
    """
    rng = make_rng(seed)
    cv = machine.noise_cv
    comm = times.boundary + times.reduction
    fixed = times.computation + times.preconditioning
    if cv <= 0.0:
        return [fixed + comm] * n_runs
    sigma = math.sqrt(math.log(1.0 + cv * cv))
    mu = -0.5 * sigma * sigma  # unit mean
    factors = np.exp(rng.normal(mu, sigma, size=n_runs))
    return [float(fixed + comm * f) for f in factors]


def average_best(values, k=3):
    """Mean of the ``k`` smallest values (the paper's Edison protocol)."""
    if not values:
        raise ValueError("no run times given")
    ordered = sorted(values)
    k = min(k, len(ordered))
    return sum(ordered[:k]) / k
