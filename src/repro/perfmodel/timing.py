"""Convert recorded event counts into modeled wall-clock time.

The bridge between the instrumented algorithms and the machine models:
each phase's :class:`~repro.parallel.events.EventCounts` is priced with
the :class:`~repro.perfmodel.machines.MachineSpec` and the rank count.
"""

from dataclasses import dataclass, field

from repro.parallel.events import EventCounts


@dataclass
class PhaseTimes:
    """Modeled seconds per phase for one solve (or one day, etc.)."""

    computation: float = 0.0
    preconditioning: float = 0.0
    boundary: float = 0.0
    reduction: float = 0.0
    setup: float = 0.0

    @property
    def total(self):
        """Total excluding one-time setup (the paper's per-solve time)."""
        return (self.computation + self.preconditioning + self.boundary
                + self.reduction)

    @property
    def total_with_setup(self):
        """Total including setup."""
        return self.total + self.setup

    def scaled(self, factor):
        """All phases multiplied by ``factor`` (setup *not* scaled --
        it is one-time by construction)."""
        return PhaseTimes(
            computation=self.computation * factor,
            preconditioning=self.preconditioning * factor,
            boundary=self.boundary * factor,
            reduction=self.reduction * factor,
            setup=self.setup,
        )

    def asdict(self):
        return {
            "computation": self.computation,
            "preconditioning": self.preconditioning,
            "boundary": self.boundary,
            "reduction": self.reduction,
            "setup": self.setup,
        }


def _price(counts, machine, p):
    """Seconds for one phase's event counts.

    A single rank communicates with nobody: halo and reduction events
    are free at ``p == 1``.
    """
    t = machine.compute_time(counts.flops)
    if p > 1 and counts.halo_exchanges:
        t += counts.halo_exchanges * 4 * machine.alpha
        t += counts.halo_words * 8 * machine.beta
    if p > 1 and counts.allreduces:
        t += counts.allreduces * machine.allreduce_time(p)
    return t


def allreduce_seconds(events, machine, p):
    """Pure all-reduce (synchronization) seconds across all phases.

    This is what an MPI timer around ``MPI_Allreduce`` reports -- the
    quantity the paper's Figures 2 and 10 plot -- as opposed to the
    full reduction-phase cost, which also carries the masking flops of
    Eq. (2).
    """
    if p <= 1:
        return 0.0
    total = 0
    for counts in events.values():
        total += counts.allreduces
    return total * machine.allreduce_time(p)


def halo_seconds(events, machine, p):
    """Pure halo-update seconds across all phases (Figures 2/10)."""
    if p <= 1:
        return 0.0
    t = 0.0
    for counts in events.values():
        t += counts.halo_exchanges * 4 * machine.alpha
        t += counts.halo_words * 8 * machine.beta
    return t


def phase_times(events, machine, p):
    """Price a per-phase event dict; returns :class:`PhaseTimes`.

    ``events`` maps phase name -> :class:`EventCounts` (as stored on
    :class:`~repro.solvers.result.SolveResult`).
    """
    out = PhaseTimes()
    for phase, counts in events.items():
        seconds = _price(counts, machine, p)
        if phase == "computation":
            out.computation += seconds
        elif phase == "preconditioning":
            out.preconditioning += seconds
        elif phase == "boundary":
            out.boundary += seconds
        elif phase in ("reduction", "reduction_overlap"):
            # overlapped reductions (PipeCG) are priced at full cost
            # here; use :func:`phase_times_overlapped` for the discount.
            out.reduction += seconds
        else:
            out.setup += seconds
    return out


def phase_times_overlapped(events, machine, p):
    """Like :func:`phase_times`, but all-reduces recorded under the
    ``"reduction_overlap"`` phase are hidden behind computation.

    Pipelined CG issues its fused reduction non-blocking and completes
    it after the preconditioner apply and matrix-vector product of the
    same iteration, so in aggregate the synchronization cost is only the
    part that exceeds the computation it overlaps:

    ``max(0, T_allreduce_total - (T_computation + T_preconditioning))``.

    The masking flops of the reduction remain fully charged.
    """
    out = PhaseTimes()
    overlap_ar = 0.0
    for phase, counts in events.items():
        if phase == "reduction_overlap":
            out.reduction += machine.compute_time(counts.flops)
            if p > 1 and counts.allreduces:
                overlap_ar += counts.allreduces * machine.allreduce_time(p)
            continue
        seconds = _price(counts, machine, p)
        if phase == "computation":
            out.computation += seconds
        elif phase == "preconditioning":
            out.preconditioning += seconds
        elif phase == "boundary":
            out.boundary += seconds
        elif phase == "reduction":
            out.reduction += seconds
        else:
            out.setup += seconds
    budget = out.computation + out.preconditioning
    out.reduction += max(0.0, overlap_ar - budget)
    return out


def solve_time(result, machine, p):
    """Modeled time of one solve (loop only) plus its setup separately.

    Returns a :class:`PhaseTimes` whose ``setup`` field holds the
    one-time costs (initial residual, Lanczos, ...).
    """
    times = phase_times(result.events, machine, p)
    setup = phase_times(result.setup_events, machine, p)
    times.setup = setup.total + setup.setup
    return times


def solver_day_time(result, machine, p, solves_per_day):
    """Modeled barotropic time for one simulated day.

    One solve's loop time is scaled by the number of barotropic solves
    per day (``dt_count``); setup (eigenvalue estimation, preconditioner
    factorization) happens once per *run*, not per day, and is excluded
    -- the paper likewise reports per-day solver time with setup
    amortized away ("the cost of setting up the preconditioning matrix
    is less than that of one call to the solver").
    """
    return solve_time(result, machine, p).scaled(solves_per_day)


def event_totals(events):
    """Sum a per-phase event dict into one :class:`EventCounts`.

    The aggregate behind ``repro solve --show-events``: total global
    reductions, reduction words, halo exchanges and halo words a solve
    issued, regardless of which phase charged them.
    """
    total = EventCounts()
    for counts in events.values():
        total = total + counts
    return total
