"""Analytic machine models: event counts -> modeled wall-clock time.

This package is the substitution for the paper's Yellowstone and Edison
testbeds (DESIGN.md section 3).  The algorithms run for real on the
virtual machine and produce per-phase event counts; the machine models
here price those events:

* :mod:`repro.perfmodel.machines` -- machine parameter sets (flop time
  ``theta``, point-to-point latency ``alpha``, bandwidth ``beta``,
  all-reduce scaling, run-to-run noise),
* :mod:`repro.perfmodel.timing` -- :class:`EventCounts` -> seconds,
* :mod:`repro.perfmodel.equations` -- the paper's closed-form cost
  models, Eqs. (2), (3), (5), (6), kept separate so tests can check the
  instrumented counts *against* the paper's algebra,
* :mod:`repro.perfmodel.pop` -- the whole-model (baroclinic +
  barotropic) time, percentage breakdowns and simulated-years-per-day.
"""

from repro.perfmodel.machines import (
    MachineSpec,
    YELLOWSTONE,
    EDISON,
    get_machine,
)
from repro.perfmodel.timing import (
    PhaseTimes,
    event_totals,
    phase_times,
    phase_times_overlapped,
    solve_time,
    solver_day_time,
)
from repro.perfmodel.equations import (
    chrongear_step_time,
    pcsi_step_time,
    chrongear_evp_step_time,
    pcsi_evp_step_time,
    chrongear_poly_step_time,
    pcsi_poly_step_time,
    capcg_step_time,
    capcg_reductions_per_iteration,
)
from repro.perfmodel.pop import (
    PopCostModel,
    baroclinic_day_time,
    simulation_rate_sypd,
)
from repro.perfmodel.analysis import (
    amdahl_serial_fraction,
    crossover_cores,
    degradation_onset,
    parallel_efficiency,
    speedup_series,
    sweet_spot,
)

__all__ = [
    "MachineSpec",
    "YELLOWSTONE",
    "EDISON",
    "get_machine",
    "PhaseTimes",
    "event_totals",
    "phase_times",
    "phase_times_overlapped",
    "solve_time",
    "solver_day_time",
    "chrongear_step_time",
    "pcsi_step_time",
    "chrongear_evp_step_time",
    "pcsi_evp_step_time",
    "chrongear_poly_step_time",
    "pcsi_poly_step_time",
    "capcg_step_time",
    "capcg_reductions_per_iteration",
    "PopCostModel",
    "baroclinic_day_time",
    "simulation_rate_sypd",
    "speedup_series",
    "parallel_efficiency",
    "crossover_cores",
    "sweet_spot",
    "degradation_onset",
    "amdahl_serial_fraction",
]
