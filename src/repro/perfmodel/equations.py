"""The paper's closed-form per-solve cost models (Eqs. 2, 3, 5, 6).

These are implemented *separately* from the event instrumentation so the
test suite can verify that the counts the running algorithms emit agree
with the algebra the paper derives:

.. math::

   T_{cg}    &= K_{cg} [ 18 N^2/p\\,\\theta + 8N/\\sqrt{p}\\,\\beta
                + (4 + \\log p)\\,\\alpha ]                      \\\\
   T_{pcsi}  &= K_{pcsi} [ 13 N^2/p\\,\\theta + 4\\alpha
                + 8N/\\sqrt{p}\\,\\beta ]                        \\\\
   T'_{cg}   &= K'_{cg} [ 31 N^2/p\\,\\theta + 8N/\\sqrt{p}\\,\\beta
                + (4 + \\log p)\\,\\alpha ]                      \\\\
   T'_{pcsi} &= K'_{pcsi} [ 26 N^2/p\\,\\theta + 4\\alpha
                + 8N/\\sqrt{p}\\,\\beta ]

where ``N^2`` is the global point count, ``p`` the rank count, and the
primed forms use block-EVP preconditioning.  The ``log p`` latency uses
the same binomial-tree depth as the instrumentation, and ``beta`` here
multiplies *words* as in the paper (the conversion to bytes lives in the
machine model).

Note these formulas deliberately use the *paper's* simple ``alpha log p``
all-reduce; the richer machine model (with the straggler term) is what
the experiments use.  Comparing the two quantifies how much of the
large-``p`` behavior the simple model misses.
"""

import math


def _common(n_global, p, machine):
    n2_per_rank = n_global / p
    side = math.sqrt(n_global)
    halo_words = 8.0 * side / math.sqrt(p)
    logp = math.ceil(math.log2(p)) if p > 1 else 0
    return n2_per_rank, halo_words, logp


def chrongear_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (2): diagonal-preconditioned ChronGear."""
    n2, halo_words, logp = _common(n_global, p, machine)
    per_iter = (
        18.0 * n2 * machine.theta
        + halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_iter


def pcsi_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (3): diagonal-preconditioned P-CSI."""
    n2, halo_words, _ = _common(n_global, p, machine)
    per_iter = (
        13.0 * n2 * machine.theta
        + 4 * machine.alpha
        + halo_words * 8 * machine.beta
    )
    return iterations * per_iter


def chrongear_evp_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (5): block-EVP-preconditioned ChronGear."""
    n2, halo_words, logp = _common(n_global, p, machine)
    per_iter = (
        31.0 * n2 * machine.theta
        + halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_iter


def pcsi_evp_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (6): block-EVP-preconditioned P-CSI."""
    n2, halo_words, _ = _common(n_global, p, machine)
    per_iter = (
        26.0 * n2 * machine.theta
        + 4 * machine.alpha
        + halo_words * 8 * machine.beta
    )
    return iterations * per_iter
