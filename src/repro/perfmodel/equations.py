"""The paper's closed-form per-solve cost models (Eqs. 2, 3, 5, 6).

These are implemented *separately* from the event instrumentation so the
test suite can verify that the counts the running algorithms emit agree
with the algebra the paper derives:

.. math::

   T_{cg}    &= K_{cg} [ 18 N^2/p\\,\\theta + 8N/\\sqrt{p}\\,\\beta
                + (4 + \\log p)\\,\\alpha ]                      \\\\
   T_{pcsi}  &= K_{pcsi} [ 13 N^2/p\\,\\theta + 4\\alpha
                + 8N/\\sqrt{p}\\,\\beta ]                        \\\\
   T'_{cg}   &= K'_{cg} [ 31 N^2/p\\,\\theta + 8N/\\sqrt{p}\\,\\beta
                + (4 + \\log p)\\,\\alpha ]                      \\\\
   T'_{pcsi} &= K'_{pcsi} [ 26 N^2/p\\,\\theta + 4\\alpha
                + 8N/\\sqrt{p}\\,\\beta ]

where ``N^2`` is the global point count, ``p`` the rank count, and the
primed forms use block-EVP preconditioning.  The ``log p`` latency uses
the same binomial-tree depth as the instrumentation, and ``beta`` here
multiplies *words* as in the paper (the conversion to bytes lives in the
machine model).

Note these formulas deliberately use the *paper's* simple ``alpha log p``
all-reduce; the richer machine model (with the straggler term) is what
the experiments use.  Comparing the two quantifies how much of the
large-``p`` behavior the simple model misses.
"""

import math


def _common(n_global, p, machine):
    n2_per_rank = n_global / p
    side = math.sqrt(n_global)
    halo_words = 8.0 * side / math.sqrt(p)
    logp = math.ceil(math.log2(p)) if p > 1 else 0
    return n2_per_rank, halo_words, logp


def chrongear_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (2): diagonal-preconditioned ChronGear."""
    n2, halo_words, logp = _common(n_global, p, machine)
    per_iter = (
        18.0 * n2 * machine.theta
        + halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_iter


def pcsi_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (3): diagonal-preconditioned P-CSI."""
    n2, halo_words, _ = _common(n_global, p, machine)
    per_iter = (
        13.0 * n2 * machine.theta
        + 4 * machine.alpha
        + halo_words * 8 * machine.beta
    )
    return iterations * per_iter


def chrongear_evp_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (5): block-EVP-preconditioned ChronGear."""
    n2, halo_words, logp = _common(n_global, p, machine)
    per_iter = (
        31.0 * n2 * machine.theta
        + halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_iter


def pcsi_evp_step_time(n_global, p, machine, iterations=1):
    """Paper Eq. (6): block-EVP-preconditioned P-CSI."""
    n2, halo_words, _ = _common(n_global, p, machine)
    per_iter = (
        26.0 * n2 * machine.theta
        + 4 * machine.alpha
        + halo_words * 8 * machine.beta
    )
    return iterations * per_iter


def chrongear_poly_step_time(n_global, p, machine, degree=4, steps=0,
                             iterations=1):
    """Eq. (5) analogue for polynomial-preconditioned ChronGear.

    Same shape as the EVP form, but the preconditioner flop coefficient
    is :func:`~repro.precond.polynomial.polynomial_point_flops` instead
    of block-EVP's 14: the block-local Chebyshev/Newton-Chebyshev apply
    adds *only* computation -- zero global reductions and zero halo
    exchanges per apply -- so the ``alpha`` and ``beta`` terms are
    untouched relative to the diagonal baseline (Eq. 2 minus its 1
    flop/point diagonal scaling).
    """
    from repro.precond.polynomial import polynomial_point_flops

    n2, halo_words, logp = _common(n_global, p, machine)
    per_iter = (
        (17.0 + polynomial_point_flops(degree, steps)) * n2 * machine.theta
        + halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_iter


def pcsi_poly_step_time(n_global, p, machine, degree=4, steps=0,
                        iterations=1):
    """Eq. (6) analogue for polynomial-preconditioned P-CSI.

    Like :func:`chrongear_poly_step_time`: the diagonal baseline's 1
    flop/point preconditioner term (Eq. 3's ``13 = 12 + 1``) is replaced
    by the polynomial apply's flops per point; communication terms are
    identical to the diagonal form since the apply is reduction- and
    halo-free.
    """
    from repro.precond.polynomial import polynomial_point_flops

    n2, halo_words, _ = _common(n_global, p, machine)
    per_iter = (
        (12.0 + polynomial_point_flops(degree, steps)) * n2 * machine.theta
        + 4 * machine.alpha
        + halo_words * 8 * machine.beta
    )
    return iterations * per_iter


def capcg_step_time(n_global, p, machine, s=4, iterations=1):
    """Closed-form cost of s-step CA-PCG (diagonal preconditioning).

    Per *outer* iteration (``s`` CG steps) the solver runs ``2s + 2``
    matvec-equivalents (``s`` stacked width-2 basis rounds, one extra
    for ``A P_s``, one residual replacement), ``2s + 1`` preconditioner
    applications, the three-term basis combinations (``6s - 2`` flop
    units), the materialization/search-direction rebuild (``3 (2s+1)``)
    and the ``(2s+1) x (2s+2)``-entry Gram assembly -- but only ONE
    global reduction, so the ``alpha log p`` latency term is divided by
    ``s``:

    .. math::

       T_{capcg} = \\frac{K}{s} [ (4s^2 + 38s + 22)\\,N^2/p\\,\\theta
                   + (2s + 2) \\cdot 8N/\\sqrt{p}\\,\\beta
                   + (4 + \\log p)\\,\\alpha ]

    The flop coefficient is ~3x ChronGear's per iteration -- the classic
    communication-avoiding trade: redundant computation buys a ``1/s``
    reduction count, which wins once ``alpha log p`` dominates
    ``N^2 theta / p`` (large ``p``).
    """
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    n2, halo_words, logp = _common(n_global, p, machine)
    per_outer = (
        (4.0 * s * s + 38.0 * s + 22.0) * n2 * machine.theta
        + (2 * s + 2) * halo_words * 8 * machine.beta
        + (4 + logp) * machine.alpha
    )
    return iterations * per_outer / s


def capcg_reductions_per_iteration(s, check_freq=10):
    """Modeled global reductions per CA-PCG iteration.

    One Gram reduction per ``s`` iterations plus the convergence check
    every ``check_freq`` iterations -- against ChronGear's ``1 + 1/f``
    and PCG's ``2 + 1/f``.
    """
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    return 1.0 / s + (1.0 / check_freq if check_freq else 0.0)
