"""Scaling-analysis utilities over modeled (or measured) time series.

Small, composable helpers the experiments and downstream users share:
parallel efficiency, crossover finding (at what core count does solver B
overtake solver A?), sweet-spot detection, and Amdahl-style fraction
fitting -- the quantitative vocabulary of the paper's scaling plots.
"""

import math

from repro.core.errors import ConfigurationError


def speedup_series(times, baseline_index=0):
    """Speedups relative to the entry at ``baseline_index``."""
    if not times:
        raise ConfigurationError("empty time series")
    base = times[baseline_index]
    if base <= 0:
        raise ConfigurationError("baseline time must be positive")
    return [base / t for t in times]


def parallel_efficiency(cores, times):
    """Strong-scaling efficiency vs the first point.

    ``eff(p) = (t0 * p0) / (t(p) * p)`` -- 1.0 means perfect scaling.
    """
    if len(cores) != len(times):
        raise ConfigurationError("cores and times must align")
    if not cores:
        raise ConfigurationError("empty series")
    t0, p0 = times[0], cores[0]
    return [(t0 * p0) / (t * p) for p, t in zip(cores, times)]


def crossover_cores(cores, times_a, times_b):
    """First core count at which series B becomes faster than series A.

    Returns ``None`` if B never wins.  Interpolates log-linearly between
    sweep points for a smoother estimate when the flip happens between
    samples.
    """
    if not (len(cores) == len(times_a) == len(times_b)):
        raise ConfigurationError("series must align")
    prev = None
    for i, (p, a, b) in enumerate(zip(cores, times_a, times_b)):
        if b < a:
            if i == 0 or prev is None:
                return p
            # log-linear interpolation of the sign change of (a - b)
            p0, d0 = prev
            d1 = a - b
            if d0 == d1:
                return p
            frac = -d0 / (d1 - d0)
            logp = math.log(p0) + frac * (math.log(p) - math.log(p0))
            return math.exp(logp)
        prev = (p, a - b)
    return None


def sweet_spot(cores, times):
    """The core count minimizing time (the scaling curve's bottom).

    Returns ``(cores, time)``; for monotonically improving series this is
    simply the last point.
    """
    if not cores:
        raise ConfigurationError("empty series")
    best = min(range(len(cores)), key=lambda i: times[i])
    return cores[best], times[best]


def degradation_onset(cores, times, slack=1.0):
    """First core count where time starts *increasing* past the minimum.

    ``slack`` > 1 ignores noise-level upticks.  Returns ``None`` for
    monotone series.  This is the quantity behind the paper's
    "ChronGear performance begins to degrade after about 2,700 cores".
    """
    best = float("inf")
    for p, t in zip(cores, times):
        if t < best:
            best = t
        elif t > slack * best:
            return p
    return None


def amdahl_serial_fraction(cores, times):
    """Least-squares fit of Amdahl's law ``t(p) = t1 (s + (1-s)/p)``.

    Returns the serial fraction ``s`` in [0, 1].  Useful as a one-number
    summary of how much non-scaling work (read: global reductions) a
    configuration carries.
    """
    if len(cores) < 2:
        raise ConfigurationError("need at least two points to fit")
    # Linear least squares in the basis {1, 1/p}: t = a + b/p with
    # a = t1*s, b = t1*(1-s).
    n = len(cores)
    xs = [1.0 / p for p in cores]
    sx = sum(xs)
    sxx = sum(x * x for x in xs)
    sy = sum(times)
    sxy = sum(x * t for x, t in zip(xs, times))
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ConfigurationError("degenerate core counts")
    b = (n * sxy - sx * sy) / denom
    a = (sy - b * sx) / n
    t1 = a + b
    if t1 <= 0:
        return 1.0
    return min(max(a / t1, 0.0), 1.0)
