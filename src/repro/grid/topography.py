"""Synthetic bathymetry and land-mask generation.

The production POP grids come with observed bathymetry; this environment
has no access to those datasets, so we generate *Earth-like* synthetic
topography with the features the paper says matter for the solver
(section 4.1): continents, thousands of islands, narrow straits, shelf
slopes, a polar land cap under the displaced grid pole, and an
Antarctic ring.  What the elliptic operator actually feels is the ocean
mask's topology (irregular domain, land-block distribution) and the
depth field's variability (variable coefficients); both are reproduced.

All generators are deterministic in their ``seed``.
"""

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.core.errors import GridError
from repro.core.rng import make_rng
from repro.core.validation import require_fraction, require_positive_int


@dataclass
class Topography:
    """Ocean depth and land mask for one grid.

    Attributes
    ----------
    depth:
        Ocean depth in meters at T-points, ``0`` on land, shape ``(ny, nx)``.
    mask:
        Boolean ocean mask (``True`` = ocean), shape ``(ny, nx)``.
    """

    depth: np.ndarray
    mask: np.ndarray

    def __post_init__(self):
        if self.depth.shape != self.mask.shape:
            raise GridError(
                f"depth shape {self.depth.shape} != mask shape {self.mask.shape}"
            )
        if np.any(self.depth < 0):
            raise GridError("depth must be non-negative")
        if np.any((self.depth > 0) != self.mask):
            raise GridError("mask must be exactly the positive-depth region")

    @property
    def land_fraction(self):
        """Fraction of grid points that are land."""
        return 1.0 - float(np.count_nonzero(self.mask)) / self.mask.size

    @property
    def n_ocean(self):
        """Number of ocean points."""
        return int(np.count_nonzero(self.mask))


def _normalize(field):
    lo, hi = float(field.min()), float(field.max())
    if hi - lo < 1e-30:
        return np.zeros_like(field)
    return (field - lo) / (hi - lo)


def earthlike_topography(ny, nx, seed=0, land_fraction=0.34,
                         max_depth=5500.0, min_depth=300.0,
                         n_continents=6, n_islands=None, n_straits=8,
                         lat=None, min_basin_fraction=0.05):
    """Generate an Earth-like ocean basin.

    Parameters
    ----------
    ny, nx:
        Grid shape.
    seed:
        Deterministic seed (int or ``numpy.random.Generator``).
    land_fraction:
        Target land fraction (Earth is ~0.29 of the full sphere; POP
        grids that cut the Arctic land cap sit a bit higher).
    max_depth, min_depth:
        Abyssal depth and shallowest shelf depth in meters.
    n_continents:
        Number of large land masses (plus the polar caps, always added).
    n_islands:
        Number of small islands; default scales with grid area so the
        0.1-degree-like grids get "thousands of islands" as the paper
        describes.
    n_straits:
        Number of narrow channels carved through land to create
        Bering-style straits and passages.
    lat:
        Optional ``(ny, nx)`` latitude field used to place the polar
        caps; defaults to a linear -78..87 range.
    min_basin_fraction:
        Disconnected ocean basins smaller than this fraction of the
        ocean are filled in (see :func:`remove_isolated_seas`); 0
        disables the cleanup.

    Returns
    -------
    Topography
    """
    ny = require_positive_int(ny, "ny")
    nx = require_positive_int(nx, "nx")
    land_fraction = require_fraction(land_fraction, "land_fraction")
    rng = make_rng(seed)
    if n_islands is None:
        n_islands = max(4, (ny * nx) // 1500)
    if lat is None:
        lat = np.broadcast_to(np.linspace(-78.0, 87.0, ny)[:, None], (ny, nx))

    jj = np.arange(ny)[:, None] / max(ny - 1, 1)
    ii = np.arange(nx)[None, :] / max(nx, 1)

    # --- continents: anisotropic Gaussian bumps, periodic in x ----------
    elevation = np.zeros((ny, nx))
    for _ in range(n_continents):
        cj = rng.uniform(0.15, 0.85)
        ci = rng.uniform(0.0, 1.0)
        sj = rng.uniform(0.06, 0.16)
        si = rng.uniform(0.05, 0.18)
        amp = rng.uniform(0.7, 1.3)
        di = np.minimum(np.abs(ii - ci), 1.0 - np.abs(ii - ci))  # periodic
        elevation += amp * np.exp(-((jj - cj) ** 2 / (2 * sj ** 2)
                                    + di ** 2 / (2 * si ** 2)))

    # --- islands: many small bumps --------------------------------------
    for _ in range(n_islands):
        cj = rng.uniform(0.05, 0.95)
        ci = rng.uniform(0.0, 1.0)
        s = rng.uniform(0.004, 0.02)
        amp = rng.uniform(0.35, 0.9)
        di = np.minimum(np.abs(ii - ci), 1.0 - np.abs(ii - ci))
        elevation += amp * np.exp(-((jj - cj) ** 2 + di ** 2) / (2 * s ** 2))

    # --- roughness: smoothed noise (mid-ocean ridges, plateaus) ---------
    noise = rng.standard_normal((ny, nx))
    sigma = max(min(ny, nx) / 40.0, 1.0)
    elevation += 0.35 * _normalize(ndimage.gaussian_filter(noise, sigma))

    # --- polar caps: Antarctica ring + Greenland-style northern cap -----
    elevation += 2.5 * np.clip((-(lat + 66.0)) / 10.0, 0.0, 1.0)
    north_cap = np.clip((lat - 80.0) / 5.0, 0.0, 1.0)
    elevation += 2.5 * north_cap
    # Greenland bump near the canonical displaced-pole longitude (320E).
    lon = np.broadcast_to(np.linspace(0.0, 360.0, nx, endpoint=False)[None, :],
                          (ny, nx))
    dlon = (lon - 320.0 + 180.0) % 360.0 - 180.0
    elevation += 2.0 * np.exp(-((lat - 76.0) ** 2 / (2 * 7.0 ** 2)
                                + dlon ** 2 / (2 * 16.0 ** 2)))

    # --- threshold at the requested land fraction -----------------------
    threshold = float(np.quantile(elevation, 1.0 - land_fraction))
    land = elevation >= threshold

    # --- carve straits through land -------------------------------------
    land = _carve_straits(land, rng, n_straits)

    # --- depth: deeper where elevation is far below the coastline -------
    below = np.clip(threshold - elevation, 0.0, None)
    ramp = _normalize(ndimage.gaussian_filter(below, sigma / 2.0))
    # The Arctic basin is much shallower than the abyssal ocean (~1200 m
    # vs ~4000-5500 m); besides realism, this matters for conditioning:
    # deep water under the small polar cells of the dipole grid would
    # otherwise create artificially small eigenvalues of the
    # diagonal-scaled operator.
    polar_shallowing = 1.0 - 0.7 * np.clip((lat - 66.0) / 10.0, 0.0, 1.0)
    depth = np.where(land, 0.0,
                     min_depth + (max_depth - min_depth) * ramp * polar_shallowing)
    # Carved straits may sit above the threshold; give them shelf depth.
    depth = np.where(~land & (depth <= 0.0), min_depth, depth)
    if min_basin_fraction > 0.0:
        depth = remove_isolated_seas(depth, min_fraction=min_basin_fraction)
    mask = depth > 0.0
    return Topography(depth=depth, mask=mask)


def remove_isolated_seas(depth, min_fraction=0.05):
    """Turn small disconnected ocean basins into land.

    Ocean connectivity follows the operator's coupling (4-connectivity:
    a corner coupling exists only when all four surrounding cells are
    wet, so diagonal-only contact does not connect basins).  Components
    smaller than ``min_fraction`` of the total ocean area become land --
    the standard ocean-model practice of masking marginal seas; the
    paper itself notes "POP does not simulate well on several marginal
    seas" and excludes them from its diagnostics.

    Returns the cleaned depth array (a copy).
    """
    depth = np.array(depth, dtype=np.float64)
    wet = depth > 0.0
    structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
    labels, n_components = ndimage.label(wet, structure=structure)
    if n_components <= 1:
        return depth
    sizes = ndimage.sum_labels(wet, labels, index=np.arange(1, n_components + 1))
    total = sizes.sum()
    for comp, size in enumerate(sizes, start=1):
        if size < min_fraction * total:
            depth[labels == comp] = 0.0
    return depth


def ocean_basins(mask):
    """Label connected ocean basins (operator connectivity).

    Returns ``(labels, n_basins)`` where ``labels`` is 0 on land and
    ``1..n`` on ocean.
    """
    structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
    return ndimage.label(np.asarray(mask, dtype=bool), structure=structure)


def _carve_straits(land, rng, n_straits):
    """Open narrow (1-2 cell) channels through land masses."""
    ny, nx = land.shape
    land = land.copy()
    for _ in range(n_straits):
        if rng.random() < 0.5:
            # meridional channel: fixed i, a run of j
            i = int(rng.integers(0, nx))
            j0 = int(rng.integers(0, max(ny - ny // 6, 1)))
            j1 = min(ny, j0 + max(ny // 6, 2))
            width = int(rng.integers(1, 3))
            land[j0:j1, i:min(i + width, nx)] = False
        else:
            # zonal channel: fixed j, a run of i (periodic-ish, no wrap)
            j = int(rng.integers(ny // 8, ny - ny // 8))
            i0 = int(rng.integers(0, max(nx - nx // 6, 1)))
            i1 = min(nx, i0 + max(nx // 6, 2))
            width = int(rng.integers(1, 3))
            land[j:min(j + width, ny), i0:i1] = False
    return land


def aquaplanet_topography(ny, nx, depth=4000.0):
    """All-ocean flat-bottom planet (the simplest valid domain)."""
    d = np.full((ny, nx), float(depth))
    return Topography(depth=d, mask=np.ones((ny, nx), dtype=bool))


def channel_topography(ny, nx, depth=4000.0, wall_width=1):
    """A zonal channel: land walls on the north and south edges.

    The classic test basin: simply connected, trivial topology, good for
    validating operators and solvers against dense linear algebra.
    """
    w = int(wall_width)
    if 2 * w >= ny:
        raise GridError(f"walls of width {w} leave no ocean in {ny} rows")
    d = np.full((ny, nx), float(depth))
    d[:w, :] = 0.0
    d[-w:, :] = 0.0
    return Topography(depth=d, mask=d > 0)


def double_gyre_topography(ny, nx, max_depth=4500.0, shelf_depth=200.0):
    """A closed rectangular basin with shelf slopes on all coasts.

    Used by the wind-driven double-gyre example: a box ocean whose depth
    rises smoothly toward every wall.
    """
    jj = np.broadcast_to(np.arange(ny)[:, None] / max(ny - 1, 1), (ny, nx))
    ii = np.broadcast_to(np.arange(nx)[None, :] / max(nx - 1, 1), (ny, nx))
    edge = np.minimum.reduce([jj, 1.0 - jj, ii, 1.0 - ii])
    ramp = np.clip(edge / 0.15, 0.0, 1.0)
    d = np.where(edge <= 0.02, 0.0,
                 shelf_depth + (max_depth - shelf_depth) * ramp)
    return Topography(depth=d, mask=d > 0)
