"""POP-like grid substrate.

Everything the elliptic barotropic operator needs to exist: orthogonal
curvilinear grid metrics with a displaced (dipole) north pole
(:mod:`repro.grid.metrics`), synthetic Earth-like bathymetry and land
masks (:mod:`repro.grid.topography`), the nine-point stencil
discretization of ``[-div(H grad) + phi]`` (:mod:`repro.grid.stencil`),
and named grid configurations matching the paper's two resolutions
(:mod:`repro.grid.config`).
"""

from repro.grid.metrics import (
    GridMetrics,
    uniform_metrics,
    spherical_metrics,
    dipole_metrics,
)
from repro.grid.topography import (
    Topography,
    earthlike_topography,
    aquaplanet_topography,
    channel_topography,
    double_gyre_topography,
    remove_isolated_seas,
    ocean_basins,
)
from repro.grid.stencil import StencilCoeffs, build_stencil, mass_coefficient
from repro.grid.config import (
    GridConfig,
    pop_1deg,
    pop_0p1deg,
    scaled_config,
    test_config,
    NAMED_CONFIGS,
    get_config,
)

__all__ = [
    "GridMetrics",
    "uniform_metrics",
    "spherical_metrics",
    "dipole_metrics",
    "Topography",
    "earthlike_topography",
    "aquaplanet_topography",
    "channel_topography",
    "double_gyre_topography",
    "remove_isolated_seas",
    "ocean_basins",
    "StencilCoeffs",
    "build_stencil",
    "mass_coefficient",
    "GridConfig",
    "pop_1deg",
    "pop_0p1deg",
    "scaled_config",
    "test_config",
    "NAMED_CONFIGS",
    "get_config",
]
