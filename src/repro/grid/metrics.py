"""Orthogonal curvilinear grid metrics.

POP discretizes the ocean on a logically rectangular, orthogonal
curvilinear B-grid.  Scalar quantities (sea surface height, depth,
temperature) live at *T-points*; velocities and corner depths live at
*U-points*, the northeast cell corners.  The metric information the
barotropic operator needs is just the physical cell extents:

* ``dxt[j, i]``, ``dyt[j, i]`` -- width/height (m) of T-cell ``(j, i)``,
* ``dxu[j, i]``, ``dyu[j, i]`` -- spacing (m) around the U-point at the
  NE corner of T-cell ``(j, i)`` (arrays hold ``ny x nx`` values; only
  the interior ``(ny-1) x (nx-1)`` corners participate in the stencil).

Three generators are provided:

* :func:`uniform_metrics` -- constant spacing; the analytically
  tractable case the unit tests lean on.
* :func:`spherical_metrics` -- regular latitude-longitude grid on the
  sphere: ``dx`` shrinks as ``cos(lat)`` toward the poles, which is the
  source of the high-latitude anisotropy that degrades the elliptic
  operator's conditioning.
* :func:`dipole_metrics` -- spherical metrics with the north pole
  *displaced* onto land (Greenland), following the spirit of POP's
  dipole grids (Smith et al., 2010): the ``cos(lat)`` collapse of ``dx``
  is capped away from the geographic pole and replaced by a smooth
  convergence toward the displaced pole, so ocean cells never degenerate.
  This reproduces the conditioning-relevant *shape* of the production
  grids without the full Murray (1996) conformal construction; see
  DESIGN.md section 3.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.constants import EARTH_RADIUS_M
from repro.core.errors import GridError
from repro.core.validation import require_positive_int, require_positive_float


@dataclass
class GridMetrics:
    """Physical cell extents of a logically rectangular ocean grid.

    All arrays have shape ``(ny, nx)`` and are in meters.  ``lat`` and
    ``lon`` give nominal T-point coordinates in degrees (used by
    topography generation and diagnostics, not by the operator itself).
    """

    dxt: np.ndarray
    dyt: np.ndarray
    dxu: np.ndarray
    dyu: np.ndarray
    lat: np.ndarray
    lon: np.ndarray

    def __post_init__(self):
        shape = self.dxt.shape
        for name in ("dyt", "dxu", "dyu", "lat", "lon"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise GridError(
                    f"metric {name} has shape {arr.shape}, expected {shape}"
                )
        for name in ("dxt", "dyt", "dxu", "dyu"):
            arr = getattr(self, name)
            if not np.all(arr > 0):
                raise GridError(f"metric {name} must be strictly positive")

    @property
    def shape(self):
        """Grid shape ``(ny, nx)``."""
        return self.dxt.shape

    @property
    def tarea(self):
        """T-cell areas in m^2, shape ``(ny, nx)``."""
        return self.dxt * self.dyt

    def anisotropy(self):
        """Per-cell ``dx/dy`` ratio -- the conditioning driver.

        The paper (section 4.3) observes that the 0.1-degree grid's
        ratio is closer to 1 than the 1-degree grid's, which is why the
        high-resolution operator converges in *fewer* iterations.
        """
        return self.dxt / self.dyt

    def mean_anisotropy(self):
        """Area-weighted mean of ``max(dx/dy, dy/dx)``."""
        ratio = self.anisotropy()
        sym = np.maximum(ratio, 1.0 / ratio)
        w = self.tarea
        return float(np.sum(sym * w) / np.sum(w))


def uniform_metrics(ny, nx, dx=1.0e5, dy=1.0e5):
    """Constant-spacing metrics (``dx`` by ``dy`` meters per cell)."""
    ny = require_positive_int(ny, "ny")
    nx = require_positive_int(nx, "nx")
    dx = require_positive_float(dx, "dx")
    dy = require_positive_float(dy, "dy")
    ones = np.ones((ny, nx))
    lat = np.broadcast_to(np.linspace(-70.0, 70.0, ny)[:, None], (ny, nx)).copy()
    lon = np.broadcast_to(np.linspace(0.0, 360.0, nx, endpoint=False)[None, :],
                          (ny, nx)).copy()
    return GridMetrics(dxt=ones * dx, dyt=ones * dy, dxu=ones * dx,
                       dyu=ones * dy, lat=lat, lon=lon)


def _lat_lon_axes(ny, nx, lat_min, lat_max):
    lat_1d = np.linspace(lat_min, lat_max, ny)
    lon_1d = np.linspace(0.0, 360.0, nx, endpoint=False)
    lat = np.broadcast_to(lat_1d[:, None], (ny, nx)).copy()
    lon = np.broadcast_to(lon_1d[None, :], (ny, nx)).copy()
    return lat, lon


def spherical_metrics(ny, nx, lat_min=-78.0, lat_max=87.0, min_cos=0.05):
    """Regular latitude-longitude metrics on the sphere.

    ``dx = R * dlon * cos(lat)`` (floored at ``min_cos`` to avoid the
    polar singularity in the raw generator -- POP avoids it with the
    dipole construction instead, see :func:`dipole_metrics`), and
    ``dy = R * dlat``.
    """
    ny = require_positive_int(ny, "ny")
    nx = require_positive_int(nx, "nx")
    if not (-90.0 <= lat_min < lat_max <= 90.0):
        raise GridError(f"invalid latitude range [{lat_min}, {lat_max}]")
    lat, lon = _lat_lon_axes(ny, nx, lat_min, lat_max)
    dlat = np.deg2rad((lat_max - lat_min) / max(ny - 1, 1))
    dlon = np.deg2rad(360.0 / nx)
    coslat = np.maximum(np.cos(np.deg2rad(lat)), min_cos)
    dxt = EARTH_RADIUS_M * dlon * coslat
    dyt = np.full((ny, nx), EARTH_RADIUS_M * dlat)
    # U-point spacings: average of the adjacent T-cells to the NE.
    dxu = _ne_average(dxt)
    dyu = _ne_average(dyt)
    return GridMetrics(dxt=dxt, dyt=dyt, dxu=dxu, dyu=dyu, lat=lat, lon=lon)


def _ne_average(field):
    """Average a T-point field onto NE-corner U-points.

    The last row/column (corners on the domain edge) reuse the edge
    values; they never enter the operator because edge corners carry
    zero depth.
    """
    ny, nx = field.shape
    out = field.copy()
    out[:-1, :-1] = 0.25 * (
        field[:-1, :-1] + field[:-1, 1:] + field[1:, :-1] + field[1:, 1:]
    )
    return out


def dipole_metrics(ny, nx, lat_min=-78.0, lat_max=87.0,
                   pole_lat=75.0, pole_lon=320.0, cap_lat=55.0,
                   min_cos=0.35):
    """Spherical metrics with a displaced northern pole.

    South of ``cap_lat`` this is identical to :func:`spherical_metrics`.
    North of it, the ``cos(lat)`` shrinkage of ``dx`` is progressively
    replaced by convergence toward a *displaced pole* at
    ``(pole_lat, pole_lon)`` -- nominally over Greenland, i.e. land --
    so that ocean cells keep usable aspect ratios all the way to the
    grid's northern edge.  ``dy`` is locally stretched near the displaced
    pole as the real dipole grids do, producing the characteristic
    non-uniform, anisotropic northern-hemisphere cells that make simple
    geometric multigrid awkward (paper section 4.1).
    """
    base = spherical_metrics(ny, nx, lat_min, lat_max, min_cos=min_cos)
    lat, lon = base.lat, base.lon

    # Blend factor: 0 south of cap_lat, -> 1 toward the northern edge.
    t = np.clip((lat - cap_lat) / max(lat_max - cap_lat, 1e-9), 0.0, 1.0)
    blend = t * t * (3.0 - 2.0 * t)  # smoothstep

    # Inside the cap, the cos(lat) collapse toward the *geographic* pole
    # is progressively frozen at its cap-latitude value: the grid no
    # longer has a pole there.
    dlon = np.deg2rad(360.0 / nx)
    coslat = np.maximum(np.cos(np.deg2rad(lat)), min_cos)
    cos_eff = coslat * (1.0 - blend) + np.cos(np.deg2rad(cap_lat)) * blend

    # ... and cells converge toward the *displaced* pole instead.
    dlon_wrapped = (lon - pole_lon + 180.0) % 360.0 - 180.0
    ang = np.sqrt(
        (lat - pole_lat) ** 2
        + (np.cos(np.deg2rad(np.clip(lat, -89.0, 89.0))) * dlon_wrapped) ** 2
    )
    # Convergence factor: floored because the displaced pole sits under
    # land, and real dipole grids keep cell areas within a modest factor
    # of mid-latitude cells (which bounds how much the diagonal-scaled
    # spectrum can spread).
    conv = np.clip(ang / 35.0, 0.5, 1.0)
    shrink = conv * blend + (1.0 - blend)

    dxt = EARTH_RADIUS_M * dlon * cos_eff * shrink
    # Slight meridional stretching opposite the pole, as in dipole grids.
    dyt = base.dyt * (1.0 + 0.1 * blend * (1.0 - conv))

    dxu = _ne_average(dxt)
    dyu = _ne_average(dyt)
    return GridMetrics(dxt=dxt, dyt=dyt, dxu=dxu, dyu=dyu, lat=lat, lon=lon)
