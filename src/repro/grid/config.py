"""Named grid configurations.

The paper evaluates the two most used POP horizontal resolutions
(section 5): the nominal 1-degree grid, ``320 x 384`` (nx x ny), and the
eddy-resolving 0.1-degree grid, ``3600 x 2400``.  This module packages a
grid's metrics, topography, stencil and time step into a single
:class:`GridConfig`, and provides *scaled* variants (same anisotropy and
land-mask statistics, proportionally fewer points) so tests and default
benchmarks run in seconds while full-size runs remain available.

Key conditioning facts reproduced here (paper section 4.3):

* the 1-degree grid's zonal spacing is ~2.4x its meridional spacing at
  low latitudes, while the 0.1-degree grid's ratio is ~1.5 -- hence the
  high-resolution operator has a *smaller* condition number and needs
  fewer solver iterations;
* the 0.1-degree time step is much shorter (500 steps/day vs ~45), which
  raises ``phi`` and further improves conditioning.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import digest_of
from repro.core.constants import SECONDS_PER_DAY
from repro.core.errors import ConfigurationError
from repro.grid.metrics import GridMetrics, dipole_metrics, uniform_metrics
from repro.grid.stencil import StencilCoeffs, build_stencil, mass_coefficient
from repro.grid.topography import (
    Topography,
    aquaplanet_topography,
    earthlike_topography,
)


@dataclass
class GridConfig:
    """A fully assembled grid: metrics + topography + operator + stepping.

    Attributes
    ----------
    name:
        Configuration name (e.g. ``"pop_1deg"``).
    metrics, topo:
        The grid metrics and topography.
    stencil:
        The assembled barotropic operator ``A``.
    dt:
        Baroclinic time step in seconds (the ``tau`` of ``phi(tau)``).
    steps_per_day:
        Number of barotropic solves per simulated day.
    """

    name: str
    metrics: GridMetrics
    topo: Topography
    stencil: StencilCoeffs
    dt: float
    steps_per_day: int

    @property
    def shape(self):
        """Grid shape ``(ny, nx)``."""
        return self.metrics.shape

    @property
    def ny(self):
        return self.metrics.shape[0]

    @property
    def nx(self):
        return self.metrics.shape[1]

    @property
    def mask(self):
        """Boolean ocean mask."""
        return self.topo.mask

    @property
    def n_ocean(self):
        """Ocean point count."""
        return self.topo.n_ocean

    def content_digest(self):
        """SHA-256 digest of the grid *content* (memoized).

        Combines the stencil digest (coefficients + mask + ``phi``) with
        the topography depths, grid metrics and time stepping, so two
        configurations that merely share a ``name`` -- e.g. ``pop_1deg``
        built from two different seeds -- can never collide in a cache
        key.  The instance is treated as immutable after assembly.
        """
        cached = getattr(self, "_content_digest", None)
        if cached is None:
            cached = digest_of(
                "grid-config",
                self.stencil.content_digest(),
                np.asarray(self.topo.depth, dtype=np.float64),
                self.metrics.dxt, self.metrics.dyt,
                self.metrics.dxu, self.metrics.dyu,
                float(self.dt), int(self.steps_per_day),
            )
            object.__setattr__(self, "_content_digest", cached)
        return cached

    def describe(self):
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.ny}x{self.nx}, "
            f"{self.topo.land_fraction:.0%} land, dt={self.dt:.0f}s, "
            f"{self.steps_per_day} solves/day, "
            f"mean anisotropy {self.metrics.mean_anisotropy():.2f}"
        )


def _assemble(name, ny, nx, seed, dt, steps_per_day, zonal_res_deg,
              merid_res_deg, land_fraction=0.34, theta_c=1.0):
    """Shared constructor for the POP-like configurations.

    ``zonal_res_deg / merid_res_deg`` sets the low-latitude anisotropy;
    the dipole metrics generator is then scaled so its mean spacing
    matches the nominal resolutions.
    """
    metrics = dipole_metrics(ny, nx)
    # Rescale dx so the equatorial dx/dy ratio matches the target.
    current = metrics.dxt[ny // 2, :].mean() / metrics.dyt[ny // 2, :].mean()
    target = zonal_res_deg / merid_res_deg
    factor = target / current
    metrics = GridMetrics(
        dxt=metrics.dxt * factor, dyt=metrics.dyt,
        dxu=metrics.dxu * factor, dyu=metrics.dyu,
        lat=metrics.lat, lon=metrics.lon,
    )
    topo = earthlike_topography(ny, nx, seed=seed,
                                land_fraction=land_fraction, lat=metrics.lat)
    phi = mass_coefficient(dt, theta_c=theta_c)
    stencil = build_stencil(metrics, topo, phi)
    return GridConfig(name=name, metrics=metrics, topo=topo, stencil=stencil,
                      dt=dt, steps_per_day=steps_per_day)


def pop_1deg(seed=20150101, scale=1.0):
    """The nominal 1-degree configuration: 320 x 384 (nx x ny).

    1-degree POP uses ~45 barotropic solves per day (dt ~ 1920 s) and a
    zonal/meridional spacing ratio of ~2.4 at low latitudes (1.125
    degrees of longitude vs ~0.47 degrees of latitude on average).
    ``scale < 1`` shrinks the grid proportionally while preserving both
    ratios; the time step is stretched by ``1/scale`` (a coarser grid
    takes a longer stable step), which keeps ``phi * area`` relative to
    the stencil -- and hence the operator's conditioning and the EVP
    marching stability -- invariant across scales.  ``steps_per_day``
    always describes the *full-resolution* production cadence the timing
    experiments model.
    """
    ny, nx = _scaled_shape(384, 320, scale)
    steps = 45
    return _assemble(
        name=_scaled_name("pop_1deg", scale), ny=ny, nx=nx, seed=seed,
        dt=(SECONDS_PER_DAY / steps) / scale, steps_per_day=steps,
        zonal_res_deg=1.125, merid_res_deg=0.47,
    )


def pop_0p1deg(seed=20150102, scale=1.0):
    """The 0.1-degree eddy-resolving configuration: 3600 x 2400.

    500 barotropic solves per day (paper section 5.2: ``dt_count = 500``)
    and near-isotropic cells (ratio ~1.5 at the equator, closer to 1 in
    mid-latitudes).  The full grid is 8.6M points; pass ``scale`` to get
    a proportionally smaller grid with the same conditioning character
    (e.g. ``scale = 0.25`` -> 900 x 600): as in :func:`pop_1deg`, the
    time step stretches by ``1/scale`` so ``phi * area`` stays invariant,
    while ``steps_per_day`` keeps the full-resolution cadence.
    """
    ny, nx = _scaled_shape(2400, 3600, scale)
    steps = 500
    return _assemble(
        name=_scaled_name("pop_0.1deg", scale), ny=ny, nx=nx, seed=seed,
        dt=(SECONDS_PER_DAY / steps) / scale, steps_per_day=steps,
        zonal_res_deg=0.1, merid_res_deg=0.0664,
    )


def _scaled_shape(ny, nx, scale):
    if scale <= 0 or scale > 1:
        raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
    return max(int(round(ny * scale)), 16), max(int(round(nx * scale)), 16)


def _scaled_name(base, scale):
    return base if scale == 1.0 else f"{base}@{scale:g}"


def scaled_config(base_name, scale, seed=None):
    """A proportionally scaled variant of a named configuration."""
    if base_name == "pop_1deg":
        return pop_1deg(scale=scale, **({} if seed is None else {"seed": seed}))
    if base_name in ("pop_0.1deg", "pop_0p1deg"):
        return pop_0p1deg(scale=scale, **({} if seed is None else {"seed": seed}))
    raise ConfigurationError(f"unknown base configuration {base_name!r}")


def test_config(ny=48, nx=64, seed=7, land_fraction=0.3, dt=1800.0,
                aquaplanet=False, dx=1.0e5, dy=1.0e5):
    """A small uniform-metric configuration for unit tests and examples.

    Uniform spacing makes analytic reasoning easy (e.g. edge stencil
    coefficients vanish exactly when ``dx == dy``).
    """
    metrics = uniform_metrics(ny, nx, dx=dx, dy=dy)
    if aquaplanet:
        topo = aquaplanet_topography(ny, nx)
    else:
        topo = earthlike_topography(ny, nx, seed=seed,
                                    land_fraction=land_fraction,
                                    lat=metrics.lat)
    phi = mass_coefficient(dt)
    stencil = build_stencil(metrics, topo, phi)
    return GridConfig(name=f"test_{ny}x{nx}", metrics=metrics, topo=topo,
                      stencil=stencil, dt=dt,
                      steps_per_day=int(SECONDS_PER_DAY / dt))


#: Registry of named configurations (callables, so nothing heavy is
#: built at import time).
NAMED_CONFIGS = {
    "pop_1deg": pop_1deg,
    "pop_0.1deg": pop_0p1deg,
    "pop_0p1deg": pop_0p1deg,
    "test": test_config,
}


def get_config(name, **kwargs):
    """Instantiate a configuration from :data:`NAMED_CONFIGS` by name."""
    if name not in NAMED_CONFIGS:
        raise ConfigurationError(
            f"unknown configuration {name!r}; known: {sorted(NAMED_CONFIGS)}"
        )
    return NAMED_CONFIGS[name](**kwargs)
