"""Nine-point stencil discretization of the barotropic operator.

The implicit free-surface equation for sea surface height (paper Eq. 1),

.. math::  [\\nabla \\cdot H \\nabla - \\phi(\\tau)]\\, \\eta^{n+1} = \\psi,

is discretized on POP's B-grid: depth lives at cell corners (U-points),
SSH at cell centers (T-points).  We negate so the assembled matrix is
symmetric positive definite:

.. math::  A = -\\nabla\\cdot H\\nabla\\big|_h + \\phi\\,\\mathrm{diag}(area).

Construction (energy form)
--------------------------
For each interior corner ``u`` shared by four T-points, the discrete
gradient uses the four surrounding SSH values; the stiffness is the
Hessian of ``E = 1/2 * sum_u HU_u A_u (gx_u^2 + gy_u^2)``.  With

* ``p_u = HU_u * dyu_u / (4 * dxu_u)`` and
* ``q_u = HU_u * dxu_u / (4 * dyu_u)``

each corner contributes ``+(p+q)`` to its four diagonals, ``-(p+q)`` to
the two diagonal (corner-neighbor) couplings, ``(p-q)`` to the two N/S
couplings and ``(q-p)`` to the two E/W couplings.  Two structural facts
the paper exploits fall straight out of this:

1. When ``dx = dy`` locally, the N/S/E/W coefficients *vanish* -- which
   is why POP's edge coefficients are an order of magnitude smaller than
   the corner ones on grids with near-isotropic cells, and why the
   *simplified* EVP preconditioner can drop them (paper section 4.3).
2. The matrix is symmetric and, with ``phi > 0``, positive definite on
   the ocean subspace, as ChronGear and P-CSI require.

``HU`` is the *minimum* of the four surrounding T-point depths (POP's
convention), so any land contact zeroes the corner's contribution: land
never conducts, and the ocean subspace is invariant under ``A``.
Land rows are set to identity so the global system stays non-singular;
because every vector in the solve is masked, those rows are inert.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import digest_of
from repro.core.constants import GRAVITY_M_S2
from repro.core.errors import GridError

#: Names of the nine stencil coefficient arrays in canonical order.
COEFF_NAMES = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")


def mass_coefficient(tau, theta_c=1.0, gravity=GRAVITY_M_S2):
    """The Helmholtz shift ``phi(tau) = 1 / (theta_c * g * tau^2)``.

    ``tau`` is the (baroclinic) time step in seconds and ``theta_c`` the
    time-centering parameter of the implicit free-surface scheme.  Units
    are 1/m so that ``phi * area`` matches the stiffness entries
    (``~ H * dy/dx``, meters).
    """
    tau = float(tau)
    if tau <= 0:
        raise GridError(f"time step tau must be positive, got {tau}")
    theta_c = float(theta_c)
    if theta_c <= 0:
        raise GridError(f"theta_c must be positive, got {theta_c}")
    return 1.0 / (theta_c * gravity * tau * tau)


@dataclass
class StencilCoeffs:
    """The nine coefficient arrays of the assembled operator.

    ``coeff.c[j, i]`` multiplies ``x[j, i]``; ``coeff.ne[j, i]``
    multiplies ``x[j+1, i+1]``; and so on following compass directions.
    All arrays share shape ``(ny, nx)``.  ``mask`` is the ocean mask the
    operator was built with, ``phi`` the Helmholtz shift and ``area``
    the T-cell areas (kept for RHS construction and diagnostics).
    """

    c: np.ndarray
    n: np.ndarray
    s: np.ndarray
    e: np.ndarray
    w: np.ndarray
    ne: np.ndarray
    nw: np.ndarray
    se: np.ndarray
    sw: np.ndarray
    mask: np.ndarray
    phi: float = 0.0
    area: np.ndarray = None

    @property
    def shape(self):
        """Grid shape ``(ny, nx)``."""
        return self.c.shape

    def arrays(self):
        """The nine coefficient arrays as a dict keyed by direction."""
        return {name: getattr(self, name) for name in COEFF_NAMES}

    def diagonal(self):
        """The matrix diagonal (a copy of ``c``)."""
        return self.c.copy()

    def content_digest(self):
        """SHA-256 digest of the operator *content* (memoized).

        Covers the nine coefficient arrays, the ocean mask and ``phi``
        -- everything a solve or a preconditioner build depends on --
        so two stencils with identical content share cache entries no
        matter how they were constructed.  The digest is cached on the
        instance; coefficient arrays are treated as immutable after
        assembly throughout this code base.
        """
        cached = getattr(self, "_content_digest", None)
        if cached is None:
            parts = [getattr(self, name) for name in COEFF_NAMES]
            parts.append(np.asarray(self.mask, dtype=bool))
            cached = digest_of("stencil", self.phi, *parts)
            object.__setattr__(self, "_content_digest", cached)
        return cached

    # ------------------------------------------------------------------
    def symmetry_error(self):
        """Max absolute mismatch between each coupling and its transpose.

        ``A[t, t'] == A[t', t]`` requires ``n[j,i] == s[j+1,i]``,
        ``e[j,i] == w[j,i+1]``, ``ne[j,i] == sw[j+1,i+1]`` and
        ``nw[j,i] == se[j+1,i-1]``.  Returns the worst violation (0 for
        an exactly symmetric operator).
        """
        errs = [
            np.abs(self.n[:-1, :] - self.s[1:, :]).max(initial=0.0),
            np.abs(self.e[:, :-1] - self.w[:, 1:]).max(initial=0.0),
            np.abs(self.ne[:-1, :-1] - self.sw[1:, 1:]).max(initial=0.0),
            np.abs(self.nw[:-1, 1:] - self.se[1:, :-1]).max(initial=0.0),
        ]
        return float(max(errs))

    # ------------------------------------------------------------------
    def extract_block(self, j0, j1, i0, i1):
        """The diagonal sub-block ``B_i`` of ``A`` for one grid block.

        Returns a new :class:`StencilCoeffs` over the ``[j0:j1, i0:i1)``
        window with every coupling that crosses the window edge zeroed
        -- exactly the block-diagonal matrix the block preconditioners
        (section 4.1 of the paper) invert.  Diagonal entries are kept
        as-is (they are part of the sub-matrix).
        """
        if not (0 <= j0 < j1 <= self.shape[0] and 0 <= i0 < i1 <= self.shape[1]):
            raise GridError(
                f"block [{j0}:{j1}, {i0}:{i1}) outside grid {self.shape}"
            )
        window = (slice(j0, j1), slice(i0, i1))
        arrays = {name: getattr(self, name)[window].copy() for name in COEFF_NAMES}
        # Zero couplings pointing outside the window.
        for name in ("n", "ne", "nw"):
            arrays[name][-1, :] = 0.0
        for name in ("s", "se", "sw"):
            arrays[name][0, :] = 0.0
        for name in ("e", "ne", "se"):
            arrays[name][:, -1] = 0.0
        for name in ("w", "nw", "sw"):
            arrays[name][:, 0] = 0.0
        return StencilCoeffs(
            mask=self.mask[window].copy(),
            phi=self.phi,
            area=None if self.area is None else self.area[window].copy(),
            **arrays,
        )

    def simplified(self):
        """Drop the N/S/E/W coefficients (keep center + corners).

        This is the paper's *simplified EVP* operator (section 4.3):
        on near-isotropic cells the edge coefficients are an order of
        magnitude smaller than the corner ones, and dropping them halves
        the preconditioner's cost with negligible convergence impact.
        The result is intended only for preconditioning -- it is a
        perturbation of ``A``, not ``A`` itself.
        """
        zero = np.zeros_like(self.c)
        return StencilCoeffs(
            c=self.c.copy(), n=zero.copy(), s=zero.copy(),
            e=zero.copy(), w=zero.copy(),
            ne=self.ne.copy(), nw=self.nw.copy(),
            se=self.se.copy(), sw=self.sw.copy(),
            mask=self.mask.copy(), phi=self.phi,
            area=None if self.area is None else self.area.copy(),
        )

    def edge_to_corner_ratio(self):
        """Mean |edge coeff| / mean |corner coeff| over ocean points.

        Quantifies the paper's "one order of magnitude smaller" claim
        for a given grid.
        """
        m = self.mask.astype(bool)
        edge = sum(np.abs(getattr(self, d))[m].sum() for d in ("n", "s", "e", "w"))
        corner = sum(np.abs(getattr(self, d))[m].sum()
                     for d in ("ne", "nw", "se", "sw"))
        if corner == 0.0:
            return np.inf if edge > 0 else 0.0
        return float(edge / corner)


def build_stencil(metrics, topo, phi, land_rows="identity",
                  depth_floor=0.0):
    """Assemble the nine-point operator for one grid.

    Parameters
    ----------
    metrics:
        :class:`~repro.grid.metrics.GridMetrics` (cell extents).
    topo:
        :class:`~repro.grid.topography.Topography` (depth + mask), or
        any object with ``depth`` and ``mask`` arrays.
    phi:
        Helmholtz shift from :func:`mass_coefficient` (1/m).
    land_rows:
        ``"identity"`` (default) puts 1 on land diagonals so the global
        matrix is non-singular; ``"mass"`` keeps ``phi * area`` there
        (used when embedding land as epsilon-depth ocean for the EVP
        preconditioner).
    depth_floor:
        Minimum depth imposed *everywhere* (including land) before
        computing corner depths.  ``0`` (default) keeps land perfectly
        insulating; the EVP preconditioner passes a small positive value
        to keep its marching recurrence non-degenerate (DESIGN.md
        section 6).

    Returns
    -------
    StencilCoeffs
    """
    depth = np.asarray(topo.depth, dtype=np.float64)
    mask = np.asarray(topo.mask, dtype=bool)
    ny, nx = depth.shape
    if metrics.shape != (ny, nx):
        raise GridError(
            f"metrics shape {metrics.shape} != topography shape {(ny, nx)}"
        )
    if land_rows not in ("identity", "mass"):
        raise GridError(f"unknown land_rows mode {land_rows!r}")
    if phi <= 0:
        raise GridError(f"phi must be positive for an SPD operator, got {phi}")
    if depth_floor > 0.0 and land_rows == "identity":
        raise GridError(
            "a positive depth_floor couples ocean to land, which is "
            "incompatible with identity land rows; use land_rows='mass' "
            "(the EVP preconditioner's epsilon-land embedding)"
        )

    if depth_floor > 0.0:
        depth = np.maximum(depth, depth_floor)

    # Corner (U-point) depths: min of the four surrounding T depths.
    hu = np.minimum(
        np.minimum(depth[:-1, :-1], depth[:-1, 1:]),
        np.minimum(depth[1:, :-1], depth[1:, 1:]),
    )
    dxu = metrics.dxu[:-1, :-1]
    dyu = metrics.dyu[:-1, :-1]
    p = hu * dyu / (4.0 * dxu)
    q = hu * dxu / (4.0 * dyu)

    # Pad so that P[j-1, i-1] style lookups read zero off the SW edge.
    ppad = np.zeros((ny + 1, nx + 1))
    qpad = np.zeros((ny + 1, nx + 1))
    ppad[1:ny, 1:nx] = p
    qpad[1:ny, 1:nx] = q

    def at(arr, dj, di):
        """arr[j + dj, i + di] over the full grid (padded indexing)."""
        return arr[1 + dj:1 + dj + ny, 1 + di:1 + di + nx]

    psum = ppad + qpad      # p + q
    pdif = ppad - qpad      # p - q

    ne = -at(psum, 0, 0)
    nw = -at(psum, 0, -1)
    se = -at(psum, -1, 0)
    sw = -at(psum, -1, -1)
    n = at(pdif, 0, 0) + at(pdif, 0, -1)
    s = at(pdif, -1, 0) + at(pdif, -1, -1)
    e = -(at(pdif, 0, 0) + at(pdif, -1, 0))      # q - p
    w = -(at(pdif, 0, -1) + at(pdif, -1, -1))
    area = metrics.tarea
    c = (at(psum, 0, 0) + at(psum, 0, -1) + at(psum, -1, 0)
         + at(psum, -1, -1) + phi * area)

    if land_rows == "identity":
        # Couplings touching land are exactly zero already (HU = 0 at any
        # corner with a land neighbor), so replacing the land diagonal by
        # 1 yields identity rows without breaking symmetry.
        c = np.where(~mask, 1.0, c)

    return StencilCoeffs(c=c, n=n, s=s, e=e, w=w, ne=ne, nw=nw, se=se,
                         sw=sw, mask=mask, phi=float(phi), area=area)
