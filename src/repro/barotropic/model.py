"""MiniPOP: a simplified ocean model around the barotropic solver.

The paper's section-6 verification needs a *chaotic* ocean whose
solution feels the barotropic solver's round-off: "due to the chaotic
nature of the ocean dynamics, even a round-off difference from the
barotropic solver may potentially result in distinct model solutions".
CESM-POP itself is out of scope, so MiniPOP couples the real implicit
free-surface barotropic mode (the system under test) to a minimal
nonlinear "baroclinic" stand-in:

* SSH ``eta`` evolves through the implicit free-surface solve (the
  exact solver/preconditioner combination under test);
* a temperature field ``T`` is advected by the SSH-derived geostrophic
  flow (first-order upwind), diffused, and restored toward a latitude
  profile;
* ``T`` feeds back into the barotropic forcing (a crude steric/thermal
  wind effect), closing the nonlinear loop ``eta -> u -> T -> F -> eta``.

The feedback makes the coupled system sensitive to initial conditions:
an O(1e-14) temperature perturbation grows to saturation within a few
simulated months (measured by the test suite), which is exactly the
regime the RMSE/RMSZ comparison of Figures 12-13 requires.

All state updates are pure ``numpy``; the only iteration happens inside
the linear solver.
"""

from dataclasses import dataclass

import numpy as np

from repro.barotropic.forcing import double_gyre_wind, seasonal_factor
from repro.barotropic.stepper import BarotropicStepper
from repro.core.constants import GRAVITY_M_S2, SECONDS_PER_DAY
from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng


@dataclass
class ModelState:
    """The prognostic fields of MiniPOP."""

    eta: np.ndarray
    eta_prev: np.ndarray
    temperature: np.ndarray
    step: int = 0

    def copy(self):
        return ModelState(self.eta.copy(), self.eta_prev.copy(),
                          self.temperature.copy(), self.step)


class MiniPOP:
    """Simplified POP-like ocean model (see module docstring).

    Parameters
    ----------
    config:
        :class:`~repro.grid.config.GridConfig`.
    solver:
        The barotropic :class:`~repro.solvers.base.IterativeSolver`.
    wind_amplitude:
        Peak wind forcing (m/s^2 equivalent); drives the gyres.
    gamma_feedback:
        Thermal feedback coefficient coupling ``T`` anomalies back into
        the barotropic forcing (the chaos knob).
    kappa:
        Temperature diffusivity (m^2/s).
    restore_days:
        Relaxation time toward the latitudinal profile ``T*`` (days).
    drag:
        Rayleigh-type damping factor on the free-surface memory terms
        (keeps the wave energy bounded).
    coriolis_min:
        Lower clamp on ``|sin(lat)|`` in the geostrophic velocity (keeps
        the equatorial band finite).
    """

    def __init__(self, config, solver, wind_amplitude=4.0e-9,
                 gamma_feedback=2.0e-9, kappa=1.5e3, restore_days=90.0,
                 drag=0.05, coriolis_min=0.15, seasonal_amplitude=0.3,
                 velocity_gain=1.0, surface_drag=5.0e-10, max_cfl=0.4):
        self.config = config
        self.solver = solver
        self.stepper = BarotropicStepper(config, solver)
        self.mask = config.mask.astype(np.float64)
        self.dt = config.dt
        if self.dt <= 0:
            raise ConfigurationError("config.dt must be positive")
        self.wind_amplitude = float(wind_amplitude)
        self.gamma_feedback = float(gamma_feedback)
        self.kappa = float(kappa)
        self.restore_seconds = float(restore_days) * SECONDS_PER_DAY
        self.drag = float(drag)
        self.surface_drag = float(surface_drag)
        self.seasonal_amplitude = float(seasonal_amplitude)

        ny, nx = config.shape
        self._wind = double_gyre_wind(ny, nx, amplitude=self.wind_amplitude)
        self._wind *= self.mask
        # Latitudinal restoring profile: warm equator, cold poles.
        lat = config.metrics.lat
        self._t_star = (25.0 * np.cos(np.deg2rad(lat)) ** 2) * self.mask
        # Geostrophic factor g / f with clamped |f|.
        f0 = 1.458e-4  # 2*Omega
        sinlat = np.sin(np.deg2rad(lat))
        f = f0 * np.sign(sinlat + 1e-30) * np.maximum(np.abs(sinlat),
                                                      coriolis_min)
        # ``velocity_gain`` scales the diagnosed currents: the barotropic
        # SSH alone under-represents the eddying surface flow a full
        # baroclinic model would produce, and the chaotic-sensitivity
        # experiments need realistic O(1 m/s) currents.
        self._g_over_f = velocity_gain * GRAVITY_M_S2 / f
        self._dx = config.metrics.dxt
        self._dy = config.metrics.dyt
        # Velocity clamp keeping the explicit upwind advection inside
        # ``max_cfl`` regardless of the SSH state (a safety rail, not a
        # physics term: a well-tuned configuration never hits it).
        self._u_max = max_cfl * self._dx / self.dt
        self._v_max = max_cfl * self._dy / self.dt

        # Connected ocean basins, for per-basin mass conservation.
        from repro.grid.topography import ocean_basins
        labels, n_basins = ocean_basins(config.mask)
        self._basin_areas = []
        tarea = config.metrics.tarea
        for basin in range(1, n_basins + 1):
            sel = labels == basin
            self._basin_areas.append((sel, tarea[sel]))

        self.state = ModelState(
            eta=np.zeros((ny, nx)),
            eta_prev=np.zeros((ny, nx)),
            temperature=self._t_star.copy(),
        )

    # ------------------------------------------------------------------
    # physics pieces
    # ------------------------------------------------------------------
    def _neighbors_no_flux(self, field):
        """N/S/E/W neighbor values with land and domain edges replaced
        by the center value (no gradient across coasts)."""
        m = self.mask
        fm = field * m
        pad_f = np.pad(fm, 1)
        pad_m = np.pad(m, 1)
        out = {}
        for name, (dj, di) in (("n", (1, 0)), ("s", (-1, 0)),
                               ("e", (0, 1)), ("w", (0, -1))):
            ny, nx = field.shape
            neigh = pad_f[1 + dj:1 + dj + ny, 1 + di:1 + di + nx]
            nmask = pad_m[1 + dj:1 + dj + ny, 1 + di:1 + di + nx]
            out[name] = np.where(nmask > 0, neigh, field)
        return out

    def velocities(self):
        """SSH-derived geostrophic velocities at T-points (masked)."""
        eta = self.state.eta
        nb = self._neighbors_no_flux(eta)
        u = -self._g_over_f * (nb["n"] - nb["s"]) / (2.0 * self._dy)
        v = self._g_over_f * (nb["e"] - nb["w"]) / (2.0 * self._dx)
        np.clip(u, -self._u_max, self._u_max, out=u)
        np.clip(v, -self._v_max, self._v_max, out=v)
        return u * self.mask, v * self.mask

    def _advect_diffuse_temperature(self):
        """Upwind advection + diffusion + restoring for ``T``."""
        t = self.state.temperature
        u, v = self.velocities()
        nb = self._neighbors_no_flux(t)
        # First-order upwind gradients.
        dtdx = np.where(u > 0, (t - nb["w"]) / self._dx,
                        (nb["e"] - t) / self._dx)
        dtdy = np.where(v > 0, (t - nb["s"]) / self._dy,
                        (nb["n"] - t) / self._dy)
        adv = u * dtdx + v * dtdy
        lap = ((nb["e"] - 2 * t + nb["w"]) / self._dx ** 2
               + (nb["n"] - 2 * t + nb["s"]) / self._dy ** 2)
        restore = (self._t_star - t) / self.restore_seconds
        t_new = t + self.dt * (-adv + self.kappa * lap + restore)
        self.state.temperature = t_new * self.mask

    def _forcing(self):
        """Explicit barotropic forcing: seasonal wind + thermal feedback.

        The area-weighted ocean mean is removed each step: the forcing
        must not project on the operator's constant (Neumann null) mode,
        or total ocean volume would drift secularly -- the discrete
        analogue of POP's global mass conservation.
        """
        day = self.state.step * self.dt / SECONDS_PER_DAY
        season = seasonal_factor(day, amplitude=self.seasonal_amplitude)
        t = self.state.temperature
        anomaly = (t - self._t_star) * self.mask
        forcing = season * self._wind + self.gamma_feedback * anomaly
        # Linear surface drag: damps the basin modes whose stiffness is
        # nearly null (volume modes, flow through narrow straits) that
        # would otherwise accumulate forcing without bound.  Acts like a
        # uniform positive shift of the elliptic operator's spectrum.
        forcing = forcing - GRAVITY_M_S2 * self.surface_drag * self.state.eta
        # Per-basin mean removal: every connected basin has its own
        # volume (Neumann null) mode.
        for sel, area in self._basin_areas:
            mean = float(np.sum(forcing[sel] * area) / np.sum(area))
            forcing[sel] -= mean
        return forcing * self.mask

    # ------------------------------------------------------------------
    # time integration
    # ------------------------------------------------------------------
    def begin_step(self):
        """Pre-solve half of :meth:`step`; returns ``(psi, guess)``.

        Computes the forcing, applies the Rayleigh drag blend to the
        free-surface memory and assembles this step's linear system.
        The caller must solve it (alone or as one column of a multi-RHS
        batch covering several lockstepped models) and hand the solution
        to :meth:`finish_step`.
        """
        forcing = self._forcing()
        # Rayleigh drag on the free-surface memory (stability): blend the
        # stepper's history toward the current level before the solve.
        st = self.stepper
        st.eta_nm1 = ((1.0 - self.drag) * st.eta_nm1
                      + self.drag * st.eta_n)
        return st.prepare_step(forcing)

    def finish_step(self, x, iterations, residual_norm, converged):
        """Post-solve half of :meth:`step`: accept the barotropic
        solution and run the temperature physics."""
        eta = self.stepper.apply_solution(x, iterations, residual_norm,
                                          converged)
        self._advect_diffuse_temperature()
        self.state.eta_prev = self.stepper.eta_nm1
        self.state.eta = eta
        self.state.step += 1
        return self.state

    def step(self):
        """Advance one model time step (one barotropic solve)."""
        psi, guess = self.begin_step()
        result = self.solver.solve(psi, x0=guess)
        return self.finish_step(result.x, result.iterations,
                                result.residual_norm, result.converged)

    def run_days(self, days):
        """Run ``days`` simulated days; returns the final state."""
        steps = int(round(days * SECONDS_PER_DAY / self.dt))
        for _ in range(steps):
            self.step()
        return self.state

    def run_months(self, months, days_per_month=30):
        """Run and collect monthly-mean temperature fields.

        Returns a list of ``months`` arrays (the diagnostic the paper's
        RMSE/RMSZ verification evaluates).
        """
        return self.run_months_fields(
            months, days_per_month=days_per_month,
            fields=("temperature",))["temperature"]

    def run_months_fields(self, months, days_per_month=30,
                          fields=("temperature", "eta")):
        """Run and collect monthly means of several diagnostic fields.

        ``fields`` may contain ``"temperature"`` and/or ``"eta"`` (SSH).
        Returns ``{field: [monthly mean arrays]}``.  The paper evaluated
        SSH, velocity and temperature and "found [temperature] to be the
        most useful diagnostic variable for revealing differences"
        (section 6); the diagnostic-field ablation quantifies that
        choice on this model.
        """
        getters = {
            "temperature": lambda: self.state.temperature,
            "eta": lambda: self.state.eta,
        }
        for name in fields:
            if name not in getters:
                raise ConfigurationError(
                    f"unknown diagnostic field {name!r}; "
                    f"known: {sorted(getters)}"
                )
        steps_per_month = int(round(days_per_month * SECONDS_PER_DAY / self.dt))
        monthly = {name: [] for name in fields}
        for _ in range(months):
            acc = {name: np.zeros_like(getters[name]())
                   for name in fields}
            for _ in range(steps_per_month):
                self.step()
                for name in fields:
                    acc[name] += getters[name]()
            for name in fields:
                monthly[name].append(acc[name] / steps_per_month)
        return monthly

    # ------------------------------------------------------------------
    def perturb_temperature(self, magnitude=1.0e-14, seed=0):
        """Apply an O(``magnitude``) *relative* perturbation to ``T``.

        This is the paper's ensemble-generation device (section 6, "an
        order 1e-14 perturbation in the initial ocean temperature"),
        implemented CESM-style (the ``pertlim`` mechanism the referenced
        Baker et al. 2014 methodology uses): ``T <- T * (1 + eps * r)``
        with uniform ``r`` in [-1, 1] -- a relative perturbation, so an
        O(10 K) temperature receives an O(1e-13 K) absolute kick.
        """
        rng = make_rng(seed)
        noise = rng.uniform(-1.0, 1.0, self.state.temperature.shape)
        self.state.temperature = (
            self.state.temperature * (1.0 + magnitude * noise)
        ) * self.mask
        return self

    def mean_solver_iterations(self):
        """Average barotropic iterations per step so far."""
        return self.stepper.mean_iterations()
