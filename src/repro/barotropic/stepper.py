"""The per-step barotropic solve driver.

:class:`BarotropicStepper` owns the two-level SSH state
``(eta^n, eta^{n-1})`` and advances it by solving the implicit
free-surface system once per call, through whichever solver /
preconditioner combination it was built with.  This is the integration
point the paper modifies inside POP: swapping ChronGear for P-CSI (and
diagonal for EVP) happens here and nowhere else.

Checkpoint/restart
------------------
Long integrations snapshot the *complete* stepping state -- both SSH
levels, the step counter and the per-step statistics history -- through
:meth:`BarotropicStepper.checkpoint` /
:meth:`BarotropicStepper.restore` (versioned, checksummed, atomic files
from :mod:`repro.core.checkpoint`).  The SSH fields round-trip
bit-for-bit and every post-restore solve starts from the exact arrays
the uninterrupted run would have used, so a restored integration is
bit-identical on every engine and kernel backend.
:meth:`BarotropicStepper.run` drives N steps under a
:class:`~repro.core.checkpoint.CheckpointPolicy`.
"""

from dataclasses import dataclass

import numpy as np

from repro.barotropic.rhs import free_surface_rhs
from repro.core.cache import digest_of
from repro.core.checkpoint import CheckpointError, read_checkpoint
from repro.core.errors import SolverError


@dataclass
class StepStats:
    """Per-step solver statistics."""

    step: int
    iterations: int
    residual_norm: float
    converged: bool


class BarotropicStepper:
    """Advances SSH with an implicit free-surface solve per step.

    Parameters
    ----------
    config:
        The :class:`~repro.grid.config.GridConfig` (provides stencil).
    solver:
        An :class:`~repro.solvers.base.IterativeSolver` bound to a
        context over the same stencil.
    eta0, eta1:
        Optional initial SSH at steps ``n-1`` and ``n`` (default rest).
    use_previous_as_guess:
        Start each solve from the current SSH (POP's warm start).
    """

    def __init__(self, config, solver, eta0=None, eta1=None,
                 use_previous_as_guess=True):
        self.config = config
        self.solver = solver
        if solver.context.stencil is not config.stencil:
            # Allow equal-but-distinct stencils (e.g. rebuilt); only the
            # shapes must agree.
            if solver.context.stencil.shape != config.stencil.shape:
                raise SolverError(
                    "solver context stencil shape does not match the grid"
                )
        shape = config.shape
        mask = config.mask
        self.eta_nm1 = np.zeros(shape) if eta0 is None else np.array(eta0) * mask
        self.eta_n = np.zeros(shape) if eta1 is None else np.array(eta1) * mask
        self.use_previous_as_guess = use_previous_as_guess
        self.step_count = 0
        self.history = []

    @property
    def eta(self):
        """Current SSH."""
        return self.eta_n

    def prepare_step(self, forcing=None):
        """Assemble this step's linear system; returns ``(psi, guess)``.

        ``psi`` is the implicit free-surface right-hand side and
        ``guess`` the warm-start initial iterate (``None`` when warm
        starts are disabled).  Together with :meth:`apply_solution` this
        splits :meth:`step` into its pre- and post-solve halves, so an
        external driver can batch the solves of several lockstepped
        steppers into one multi-RHS solve (see
        :func:`repro.verification.ensemble.run_lockstep_months`).
        """
        stencil = self.solver.context.stencil
        psi = free_surface_rhs(stencil, self.eta_n, self.eta_nm1, forcing)
        guess = self.eta_n if self.use_previous_as_guess else None
        return psi, guess

    def apply_solution(self, x, iterations, residual_norm, converged):
        """Accept a solve's solution and advance the SSH levels.

        The second half of :meth:`step`: rolls ``eta^n -> eta^{n-1}``,
        masks the new SSH in, bumps the step counter and records the
        per-step statistics.  Returns the new SSH.
        """
        stencil = self.solver.context.stencil
        self.eta_nm1 = self.eta_n
        self.eta_n = x * stencil.mask
        self.step_count += 1
        self.history.append(StepStats(
            step=self.step_count,
            iterations=int(iterations),
            residual_norm=float(residual_norm),
            converged=bool(converged),
        ))
        return self.eta_n

    def step(self, forcing=None):
        """Advance one time step; returns the new SSH.

        ``forcing`` is an optional explicit forcing field for this step.
        """
        psi, guess = self.prepare_step(forcing)
        result = self.solver.solve(psi, x0=guess)
        return self.apply_solution(result.x, result.iterations,
                                   result.residual_norm, result.converged)

    def mean_iterations(self):
        """Average solver iterations per step so far."""
        if not self.history:
            return 0.0
        return sum(s.iterations for s in self.history) / len(self.history)

    # ------------------------------------------------------------------
    # checkpoint/restart
    # ------------------------------------------------------------------
    def _grid_digest(self):
        """Content digest tying a snapshot to this exact grid."""
        stencil = self.solver.context.stencil
        return digest_of("stepper-checkpoint", np.asarray(stencil.mask))

    def checkpoint(self, path):
        """Write the full stepping state to ``path`` (atomic, checksummed).

        Captures both SSH levels bit-for-bit, the step counter, the
        warm-start setting and the per-step statistics, so
        :meth:`restore` continues the integration exactly where this
        snapshot was taken.
        """
        from repro.core.checkpoint import write_checkpoint

        meta = {
            "step_count": int(self.step_count),
            "use_previous_as_guess": bool(self.use_previous_as_guess),
            "shape": [int(s) for s in self.config.shape],
            "grid_digest": self._grid_digest(),
            "history": [[int(s.step), int(s.iterations),
                         float(s.residual_norm), bool(s.converged)]
                        for s in self.history],
        }
        return write_checkpoint(path, "stepper",
                                {"eta_n": self.eta_n,
                                 "eta_nm1": self.eta_nm1}, meta)

    def restore(self, path):
        """Resume from a snapshot written by :meth:`checkpoint`.

        Verifies the envelope (version, kind, checksum) and that the
        snapshot belongs to this grid; a mismatch raises
        :class:`~repro.core.checkpoint.CheckpointError` rather than
        silently continuing from foreign state.  Returns ``self``.
        """
        arrays, meta = read_checkpoint(path, kind="stepper")
        if tuple(meta.get("shape", ())) != tuple(self.config.shape):
            raise CheckpointError(
                f"checkpoint {path} grid shape {meta.get('shape')} does "
                f"not match this stepper {list(self.config.shape)}")
        if meta.get("grid_digest") != self._grid_digest():
            raise CheckpointError(
                f"checkpoint {path} was written for a different grid "
                f"(mask content differs) -- refusing to resume")
        self.eta_n = np.array(arrays["eta_n"], dtype=np.float64)
        self.eta_nm1 = np.array(arrays["eta_nm1"], dtype=np.float64)
        self.step_count = int(meta["step_count"])
        self.use_previous_as_guess = bool(meta["use_previous_as_guess"])
        self.history = [
            StepStats(step=int(s), iterations=int(i),
                      residual_norm=float(r), converged=bool(c))
            for s, i, r, c in meta.get("history", [])
        ]
        return self

    def run(self, steps, forcing=None, checkpoint=None):
        """Advance ``steps`` steps, snapshotting under a policy.

        ``forcing`` is an optional callable ``step_index -> field`` (or
        a constant field applied every step).  ``checkpoint`` is an
        optional :class:`~repro.core.checkpoint.CheckpointPolicy`; a
        snapshot is written after every ``policy.every``-th step.
        Returns the final SSH.
        """
        for _ in range(int(steps)):
            if callable(forcing):
                field = forcing(self.step_count + 1)
            else:
                field = forcing
            self.step(forcing=field)
            if checkpoint is not None and checkpoint.due(self.step_count):
                checkpoint.write(
                    self.step_count, "stepper",
                    {"eta_n": self.eta_n, "eta_nm1": self.eta_nm1},
                    {
                        "step_count": int(self.step_count),
                        "use_previous_as_guess":
                            bool(self.use_previous_as_guess),
                        "shape": [int(s) for s in self.config.shape],
                        "grid_digest": self._grid_digest(),
                        "history": [[int(s.step), int(s.iterations),
                                     float(s.residual_norm),
                                     bool(s.converged)]
                                    for s in self.history],
                    })
        return self.eta_n
