"""The per-step barotropic solve driver.

:class:`BarotropicStepper` owns the two-level SSH state
``(eta^n, eta^{n-1})`` and advances it by solving the implicit
free-surface system once per call, through whichever solver /
preconditioner combination it was built with.  This is the integration
point the paper modifies inside POP: swapping ChronGear for P-CSI (and
diagonal for EVP) happens here and nowhere else.
"""

from dataclasses import dataclass

import numpy as np

from repro.barotropic.rhs import free_surface_rhs
from repro.core.errors import SolverError


@dataclass
class StepStats:
    """Per-step solver statistics."""

    step: int
    iterations: int
    residual_norm: float
    converged: bool


class BarotropicStepper:
    """Advances SSH with an implicit free-surface solve per step.

    Parameters
    ----------
    config:
        The :class:`~repro.grid.config.GridConfig` (provides stencil).
    solver:
        An :class:`~repro.solvers.base.IterativeSolver` bound to a
        context over the same stencil.
    eta0, eta1:
        Optional initial SSH at steps ``n-1`` and ``n`` (default rest).
    use_previous_as_guess:
        Start each solve from the current SSH (POP's warm start).
    """

    def __init__(self, config, solver, eta0=None, eta1=None,
                 use_previous_as_guess=True):
        self.config = config
        self.solver = solver
        if solver.context.stencil is not config.stencil:
            # Allow equal-but-distinct stencils (e.g. rebuilt); only the
            # shapes must agree.
            if solver.context.stencil.shape != config.stencil.shape:
                raise SolverError(
                    "solver context stencil shape does not match the grid"
                )
        shape = config.shape
        mask = config.mask
        self.eta_nm1 = np.zeros(shape) if eta0 is None else np.array(eta0) * mask
        self.eta_n = np.zeros(shape) if eta1 is None else np.array(eta1) * mask
        self.use_previous_as_guess = use_previous_as_guess
        self.step_count = 0
        self.history = []

    @property
    def eta(self):
        """Current SSH."""
        return self.eta_n

    def step(self, forcing=None):
        """Advance one time step; returns the new SSH.

        ``forcing`` is an optional explicit forcing field for this step.
        """
        stencil = self.solver.context.stencil
        psi = free_surface_rhs(stencil, self.eta_n, self.eta_nm1, forcing)
        guess = self.eta_n if self.use_previous_as_guess else None
        result = self.solver.solve(psi, x0=guess)
        self.eta_nm1 = self.eta_n
        self.eta_n = result.x * stencil.mask
        self.step_count += 1
        self.history.append(StepStats(
            step=self.step_count,
            iterations=result.iterations,
            residual_norm=result.residual_norm,
            converged=result.converged,
        ))
        return self.eta_n

    def mean_iterations(self):
        """Average solver iterations per step so far."""
        if not self.history:
            return 0.0
        return sum(s.iterations for s in self.history) / len(self.history)
