"""Physical diagnostics of the barotropic model state.

The quantities an oceanographer would glance at after a spin-up: basin
kinetic energy, SSH statistics, gyre transport.  Used by the examples
and by the stability tests (a healthy run has bounded, nonzero values
for all of them).
"""

import numpy as np

from repro.core.errors import ConfigurationError


def kinetic_energy(model):
    """Area-integrated kinetic energy of the diagnosed surface flow.

    ``KE = 1/2 * rho0 * H * integral (u^2 + v^2) dA`` in joules, using
    the model's SSH-derived velocities and the local depth.
    """
    from repro.core.constants import RHO_SW_KG_M3

    u, v = model.velocities()
    area = model.config.metrics.tarea
    depth = model.config.topo.depth
    speed2 = (u * u + v * v) * model.mask
    return float(0.5 * RHO_SW_KG_M3 * np.sum(depth * speed2 * area))


def ssh_statistics(model):
    """Mean, standard deviation and extremes of SSH over ocean points."""
    eta = model.state.eta
    mask = model.config.mask
    wet = eta[mask]
    if wet.size == 0:
        raise ConfigurationError("no ocean points")
    return {
        "mean": float(wet.mean()),
        "std": float(wet.std()),
        "min": float(wet.min()),
        "max": float(wet.max()),
    }


def gyre_transport(model):
    """Peak barotropic transport of the circulation, in Sverdrups.

    Integrates the zonal flow ``u * H`` over latitude rows and reports
    the largest magnitude of the cumulative (streamfunction-like) sum --
    a scalar proxy for gyre strength.  1 Sv = 1e6 m^3/s.
    """
    u, _ = model.velocities()
    depth = model.config.topo.depth
    dy = model.config.metrics.dyt
    row_transport = np.sum(u * depth * dy * model.mask, axis=1)
    psi = np.cumsum(row_transport)
    return float(np.abs(psi).max() / 1.0e6)


def temperature_statistics(model):
    """Mean/extremes of the temperature field over ocean points."""
    t = model.state.temperature
    mask = model.config.mask
    wet = t[mask]
    return {
        "mean": float(wet.mean()),
        "min": float(wet.min()),
        "max": float(wet.max()),
        "anomaly_rms": float(np.sqrt(np.mean(
            (wet - model._t_star[mask]) ** 2))),
    }


def health_report(model):
    """One-call sanity summary: finite, bounded, circulating."""
    ke = kinetic_energy(model)
    ssh = ssh_statistics(model)
    temp = temperature_statistics(model)
    return {
        "kinetic_energy_J": ke,
        "ssh": ssh,
        "temperature": temp,
        "gyre_transport_Sv": gyre_transport(model),
        "finite": bool(np.isfinite(ke)
                       and all(np.isfinite(v) for v in ssh.values())
                       and all(np.isfinite(v) for v in temp.values())),
    }
