"""Analytic wind forcing fields.

The substitute for CESM's data atmosphere (the paper's G_NORMAL_YEAR
component set drives the ocean with prescribed "normal year" forcing):
smooth analytic wind-stress-curl patterns with an annual cycle, enough
to spin up gyre circulations in the mini model.
"""

import numpy as np


def double_gyre_wind(ny, nx, amplitude=1.0):
    """The classic double-gyre wind-stress-curl pattern.

    ``curl(tau) ~ -A * pi/L * sin(2 pi y / L)`` produces a subtropical
    and a subpolar gyre; returned as a ``(ny, nx)`` forcing field with
    peak magnitude ``amplitude``.
    """
    y = np.linspace(0.0, 1.0, ny)[:, None]
    x = np.linspace(0.0, 1.0, nx)[None, :]
    field = -np.sin(2.0 * np.pi * y) * (1.0 + 0.1 * np.cos(2.0 * np.pi * x))
    return amplitude * np.broadcast_to(field, (ny, nx)).copy()


def zonal_wind(ny, nx, amplitude=1.0):
    """Single-signed zonal wind curl (one basin-scale gyre)."""
    y = np.linspace(0.0, 1.0, ny)[:, None]
    field = -np.sin(np.pi * y)
    return amplitude * np.broadcast_to(field, (ny, nx)).copy()


def seasonal_factor(day_of_year, phase_days=0.0, amplitude=0.3):
    """Annual modulation factor ``1 + a * cos(2 pi (d - phase)/365)``."""
    angle = 2.0 * np.pi * (day_of_year - phase_days) / 365.0
    return 1.0 + amplitude * np.cos(angle)
