"""The barotropic mode: implicit free-surface stepping and a mini-POP.

* :mod:`repro.barotropic.rhs` -- the right-hand side ``psi`` of the
  implicit free-surface system (paper Eq. 1),
* :mod:`repro.barotropic.forcing` -- analytic wind-stress fields with a
  seasonal cycle,
* :mod:`repro.barotropic.stepper` -- :class:`BarotropicStepper`, the
  per-step solve driver with pluggable solver/preconditioner,
* :mod:`repro.barotropic.model` -- :class:`MiniPOP`, a simplified
  ocean model (barotropic SSH dynamics + nonlinearly advected
  temperature with feedback) exhibiting the chaotic sensitivity the
  section-6 verification machinery requires.
"""

from repro.barotropic.rhs import build_rhs, free_surface_rhs
from repro.barotropic.forcing import (
    double_gyre_wind,
    zonal_wind,
    seasonal_factor,
)
from repro.barotropic.stepper import BarotropicStepper, StepStats
from repro.barotropic.model import MiniPOP, ModelState
from repro.barotropic.diagnostics import (
    gyre_transport,
    health_report,
    kinetic_energy,
    ssh_statistics,
    temperature_statistics,
)

__all__ = [
    "build_rhs",
    "free_surface_rhs",
    "double_gyre_wind",
    "zonal_wind",
    "seasonal_factor",
    "BarotropicStepper",
    "StepStats",
    "MiniPOP",
    "ModelState",
    "kinetic_energy",
    "ssh_statistics",
    "gyre_transport",
    "temperature_statistics",
    "health_report",
]
