"""Right-hand side of the implicit free-surface system.

POP's barotropic mode advances the vertically integrated flow with an
implicit treatment of the fast surface gravity waves (paper Eq. 1):

.. math::  [\\nabla\\cdot H\\nabla - \\phi(\\tau)]\\,\\eta^{n+1}
           = \\psi(\\eta^n, \\eta^{n-1}, \\tau)

After negating to the SPD form ``A = -div(H grad) + phi*diag(area)``
that :mod:`repro.grid.stencil` assembles, the second-order-in-time wave
discretization

.. math::  (\\eta^{n+1} - 2\\eta^n + \\eta^{n-1})/(g\\tau^2)
           - \\nabla\\cdot H\\nabla\\,\\eta^{n+1} = F^n / g

becomes ``A eta^{n+1} = psi`` with

.. math::  \\psi = \\phi\\,area\\,(2\\eta^n - \\eta^{n-1})
           + area\\, F^n / g

where ``F`` collects the explicit forcing (wind-stress divergence,
contributions of the baroclinic state).  ``phi = 1/(g tau^2 theta_c)``
is the same shift the operator was assembled with, so the scheme is
consistent by construction.
"""

import numpy as np

from repro.core.constants import GRAVITY_M_S2
from repro.core.errors import SolverError


def free_surface_rhs(stencil, eta_n, eta_nm1, forcing=None,
                     gravity=GRAVITY_M_S2):
    """The implicit free-surface right-hand side ``psi``.

    Parameters
    ----------
    stencil:
        The assembled operator (provides ``phi``, ``area`` and ``mask``).
    eta_n, eta_nm1:
        SSH at the current and previous steps, shape ``(ny, nx)``.
    forcing:
        Optional explicit forcing field ``F^n`` (m/s^2-like units);
        ``None`` means unforced.

    Returns
    -------
    ``psi`` masked to ocean points.
    """
    if stencil.area is None:
        raise SolverError("stencil was assembled without area information")
    psi = stencil.phi * stencil.area * (2.0 * eta_n - eta_nm1)
    if forcing is not None:
        psi = psi + stencil.area * forcing / gravity
    return psi * stencil.mask


#: Alias kept for API symmetry with the paper's ``psi`` notation.
build_rhs = free_surface_rhs
