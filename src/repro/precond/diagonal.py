"""Diagonal (Jacobi) preconditioning.

POP's historical choice (Smith, Dukowicz & Malone 1992; still the CESM
default the paper improves on): ``M = diag(A)``, applied as a point-wise
multiply by the reciprocal diagonal.  Costs ``1`` flop unit per point
per application (the ``T_p = n^2 * theta`` of paper Eq. 2) and needs no
communication or setup.
"""

import numpy as np

from repro.core.errors import SolverError
from repro.precond.base import Preconditioner


class DiagonalPreconditioner(Preconditioner):
    """``z = r / diag(A)`` on ocean points, ``0`` on land."""

    name = "diagonal"

    def __init__(self, stencil, decomp=None, kernels=None):
        super().__init__(stencil, decomp=decomp, kernels=kernels)
        diag = stencil.c
        if np.any(diag[self.mask] <= 0.0):
            raise SolverError(
                "operator diagonal must be positive on ocean points for "
                "diagonal preconditioning"
            )
        # Reciprocal once; land entries produce zero output via the mask.
        safe = np.where(diag > 0.0, diag, 1.0)
        self._inv_diag = np.where(self.mask, 1.0 / safe, 0.0)
        self._inv_diag_stack = None

    @property
    def inv_diag(self):
        """The masked reciprocal diagonal (read-only view)."""
        return self._inv_diag

    def apply_global(self, r, out=None):
        if out is None:
            out = np.empty_like(r)
        np.multiply(r, self._bcast(self._inv_diag, r), out=out)
        return out

    def apply_block(self, rank, r_interior, out=None):
        block = self._rank_block(rank)
        inv = self._inv_diag if block is None else self._inv_diag[block.slices]
        if out is None:
            out = np.empty_like(r_interior)
        np.multiply(r_interior, self._bcast(inv, r_interior), out=out)
        return out

    def apply_stack(self, r_stack, out=None):
        """One vectorized reciprocal-diagonal multiply over the stack."""
        if self.decomp is None:
            return super().apply_stack(r_stack, out=out)
        if self._inv_diag_stack is None:
            self._inv_diag_stack = self._interior_stack(self._inv_diag)
        if out is None:
            out = np.empty_like(r_stack)
        np.multiply(r_stack, self._bcast(self._inv_diag_stack, r_stack),
                    out=out)
        return out

    def apply_flops(self, rank=None):
        """One multiply per point: the paper's ``T_p = n^2 theta``."""
        if rank is None or self.decomp is None:
            return self._max_block_points()
        return self.decomp.active_blocks[rank].npoints
