"""The identity (no-op) preconditioner.

``M = I`` turns P-CSI back into the plain CSI solver of Hu et al. 2013
and ChronGear into unpreconditioned CG-with-fused-reductions.  Kept as
the baseline for every preconditioning comparison.
"""

import numpy as np

from repro.precond.base import Preconditioner


class IdentityPreconditioner(Preconditioner):
    """``z = r`` (masked)."""

    name = "identity"

    def __init__(self, stencil, decomp=None, kernels=None):
        super().__init__(stencil, decomp=decomp, kernels=kernels)
        self._mask_stack = None

    def apply_global(self, r, out=None):
        if out is None:
            out = np.empty_like(r)
        np.multiply(r, self._bcast(self.mask, r), out=out)
        return out

    def apply_block(self, rank, r_interior, out=None):
        block = self._rank_block(rank)
        local_mask = self.mask if block is None else self.mask[block.slices]
        if out is None:
            out = np.empty_like(r_interior)
        np.multiply(r_interior, self._bcast(local_mask, r_interior), out=out)
        return out

    def apply_stack(self, r_stack, out=None):
        """One vectorized masking multiply over the whole stack."""
        if self.decomp is None:
            return super().apply_stack(r_stack, out=out)
        if self._mask_stack is None:
            self._mask_stack = self._interior_stack(self.mask)
        if out is None:
            out = np.empty_like(r_stack)
        np.multiply(r_stack, self._bcast(self._mask_stack, r_stack), out=out)
        return out

    def apply_flops(self, rank=None):
        """Identity costs nothing in the paper's accounting."""
        return 0
