"""Preconditioners for the barotropic solvers.

* :mod:`repro.precond.base` -- the interface every preconditioner
  implements (global and per-rank application, flop accounting),
* :mod:`repro.precond.identity` -- no preconditioning,
* :mod:`repro.precond.diagonal` -- POP's historical diagonal scaling,
* :mod:`repro.precond.evp` -- the paper's block Error-Vector-Propagation
  preconditioner (section 4), with full and simplified stencils,
* :mod:`repro.precond.block_lu` -- block-Jacobi with exact dense block
  solves, the ``O(n^4)``-work comparator EVP displaces (section 4.1).
"""

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.diagonal import DiagonalPreconditioner
from repro.precond.evp import EVPBlockPreconditioner, EVPTileEngine
from repro.precond.block_lu import BlockLUPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "EVPBlockPreconditioner",
    "EVPTileEngine",
    "BlockLUPreconditioner",
    "make_preconditioner",
]


def make_preconditioner(kind, stencil, decomp=None, **kwargs):
    """Factory: build a preconditioner by name.

    ``kind`` is one of ``"identity"``, ``"diagonal"``, ``"evp"``,
    ``"block_lu"``.  ``decomp`` is required for the block
    preconditioners (and optional for the point-wise ones).
    """
    kind = kind.lower()
    if kind in ("identity", "none"):
        return IdentityPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind in ("diagonal", "diag"):
        return DiagonalPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind == "evp":
        return EVPBlockPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind in ("block_lu", "blocklu", "lu"):
        return BlockLUPreconditioner(stencil, decomp=decomp, **kwargs)
    raise ValueError(
        f"unknown preconditioner kind {kind!r}; expected identity, diagonal, "
        "evp or block_lu"
    )
