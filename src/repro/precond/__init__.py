"""Preconditioners for the barotropic solvers.

* :mod:`repro.precond.base` -- the interface every preconditioner
  implements (global and per-rank application, flop accounting),
* :mod:`repro.precond.identity` -- no preconditioning,
* :mod:`repro.precond.diagonal` -- POP's historical diagonal scaling,
* :mod:`repro.precond.evp` -- the paper's block Error-Vector-Propagation
  preconditioner (section 4), with full and simplified stencils,
* :mod:`repro.precond.block_lu` -- block-Jacobi with exact dense block
  solves, the ``O(n^4)``-work comparator EVP displaces (section 4.1),
* :mod:`repro.precond.polynomial` -- reduction-free Chebyshev and
  Newton-Chebyshev polynomial preconditioners built from the cached
  Lanczos eigenbounds (zero reductions and zero halos per apply).
"""

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.diagonal import DiagonalPreconditioner
from repro.precond.evp import EVPBlockPreconditioner, EVPTileEngine
from repro.precond.block_lu import BlockLUPreconditioner
from repro.precond.polynomial import (
    ChebyshevPreconditioner,
    NewtonChebyshevPreconditioner,
    polynomial_point_flops,
)

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "EVPBlockPreconditioner",
    "EVPTileEngine",
    "BlockLUPreconditioner",
    "ChebyshevPreconditioner",
    "NewtonChebyshevPreconditioner",
    "polynomial_point_flops",
    "make_preconditioner",
]

#: Accepted spellings of the polynomial families (suffix syntax:
#: ``cheby:DEGREE`` and ``ncheby:DEGREE[:STEPS]``).
_CHEBY_NAMES = ("cheby", "chebyshev")
_NCHEBY_NAMES = ("ncheby", "newton-cheby", "newtoncheby", "newton")


def _int_suffix(kind, part, what):
    try:
        return int(part)
    except ValueError:
        raise ValueError(
            f"bad preconditioner spec {kind!r}: {what} suffix {part!r} "
            f"is not an integer") from None


def make_preconditioner(kind, stencil, decomp=None, **kwargs):
    """Factory: build a preconditioner by name.

    ``kind`` is one of ``"identity"``, ``"diagonal"``, ``"evp"``,
    ``"block_lu"``, ``"cheby"``, ``"ncheby"``.  ``decomp`` is required
    for the block preconditioners (and optional for the point-wise
    ones).  The polynomial kinds accept an inline degree spec --
    ``"cheby:6"`` is a degree-6 Chebyshev, ``"ncheby:2:2"`` a degree-2
    seed with 2 Newton sweeps -- which explicit ``degree=``/``steps=``
    keyword arguments override.
    """
    kind = kind.lower()
    base, _, suffix = kind.partition(":")
    if base in _CHEBY_NAMES:
        kwargs = dict(kwargs)
        if suffix:
            kwargs.setdefault("degree",
                              _int_suffix(kind, suffix, "degree"))
        return ChebyshevPreconditioner(stencil, decomp=decomp, **kwargs)
    if base in _NCHEBY_NAMES:
        kwargs = dict(kwargs)
        if suffix:
            parts = suffix.split(":")
            if len(parts) > 2:
                raise ValueError(
                    f"bad preconditioner spec {kind!r}: expected "
                    f"'{base}:DEGREE[:STEPS]'")
            kwargs.setdefault("degree",
                              _int_suffix(kind, parts[0], "degree"))
            if len(parts) == 2:
                kwargs.setdefault("steps",
                                  _int_suffix(kind, parts[1], "steps"))
        return NewtonChebyshevPreconditioner(stencil, decomp=decomp,
                                             **kwargs)
    if kind in ("identity", "none"):
        return IdentityPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind in ("diagonal", "diag"):
        return DiagonalPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind == "evp":
        return EVPBlockPreconditioner(stencil, decomp=decomp, **kwargs)
    if kind in ("block_lu", "blocklu", "lu"):
        return BlockLUPreconditioner(stencil, decomp=decomp, **kwargs)
    raise ValueError(
        f"unknown preconditioner kind {kind!r}; expected identity, diagonal, "
        "evp, block_lu, cheby[:D] or ncheby[:D[:K]]"
    )
