"""The preconditioner interface.

A preconditioner ``M`` approximates the operator ``A`` and must be cheap
to apply.  Solvers call it through one of two entry points:

* :meth:`Preconditioner.apply_global` -- ``z = M^-1 r`` on a full
  ``(ny, nx)`` field (used by the serial solver context),
* :meth:`Preconditioner.apply_block` -- the same restricted to one
  simulated rank's interior (used by the distributed context).

Every preconditioner in this package is *block-local or point-local*:
applying it requires **no halo communication** (the defining property
that makes block preconditioning attractive in POP -- paper section 4.1).
Cost accounting mirrors the paper's conventions: ``apply_flops(rank)``
returns the flop units one application costs on a rank, and
``setup_flops(rank)`` the one-time preprocessing cost (e.g. EVP's
influence-matrix construction, Eq. ``C_pre`` in section 4.2).
"""

import abc

import numpy as np

from repro.core.errors import SolverError
from repro.kernels import resolve_kernels


class Preconditioner(abc.ABC):
    """Abstract base class for all preconditioners.

    Parameters
    ----------
    stencil:
        The global :class:`~repro.grid.stencil.StencilCoeffs` of ``A``.
    decomp:
        Optional :class:`~repro.parallel.decomposition.Decomposition`.
        Point-local preconditioners ignore it except for flop
        accounting; block preconditioners require it to know the block
        boundaries (``None`` means "one block covering the whole grid").
    kernels:
        Kernel backend selection (a name, a backend instance, or
        ``None`` for ``$REPRO_KERNELS``/auto) -- see
        :func:`repro.kernels.resolve_kernels`.  Backends change the
        execution strategy, never the operator ``M``, so this is not
        part of :meth:`cache_token`.
    """

    #: Short name used in experiment tables ("diagonal", "evp", ...).
    name = "abstract"

    def __init__(self, stencil, decomp=None, kernels=None):
        self.stencil = stencil
        self.decomp = decomp
        self.kernels = resolve_kernels(kernels)
        self.mask = np.asarray(stencil.mask, dtype=bool)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def apply_global(self, r, out=None):
        """``z = M^-1 r`` over the full grid.  ``z`` is masked (zero on land)."""

    @abc.abstractmethod
    def apply_block(self, rank, r_interior, out=None):
        """``z = M^-1 r`` restricted to ``rank``'s block interior."""

    def apply_stack(self, r_stack, out=None):
        """``z = M^-1 r`` on stacked interiors of shape ``(p, bny, bnx)``.

        The batched execution engine's entry point: subclasses override
        it with a fully vectorized implementation; this base fallback
        loops over ranks through :meth:`apply_block`, so every
        preconditioner works under both engines.  Results are
        bit-identical to the per-rank loop by construction.
        """
        if out is None:
            out = np.empty_like(r_stack)
        for rank in range(r_stack.shape[0]):
            self.apply_block(rank, r_stack[rank], out=out[rank])
        return out

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------
    def snapshot_meta(self):
        """JSON-able state a solver checkpoint should carry for ``M``.

        Stateless preconditioners return ``{}`` (the default).
        Preconditioners with lazily resolved state (e.g. the polynomial
        families' spectral interval) override this so a resumed solve
        restores the exact operator instead of re-deriving it.
        """
        return {}

    def restore_meta(self, meta):
        """Restore state captured by :meth:`snapshot_meta` (no-op)."""

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def cache_token(self):
        """A digestable token of the parameters that shape ``M``.

        Folded into artifact-cache keys (e.g. for memoized eigenvalue
        bounds) alongside the stencil digest and decomposition
        signature.  Subclasses with tunable parameters must override it
        so differently configured preconditioners never share entries.
        """
        return (type(self).__name__, self.name)

    # ------------------------------------------------------------------
    # cost accounting (flop units per the paper's theta-bookkeeping)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def apply_flops(self, rank=None):
        """Flop units one application costs on ``rank``.

        ``rank=None`` means the critical-path rank (maximum over ranks).
        """

    def setup_flops(self, rank=None):
        """One-time preprocessing flop units (0 unless overridden)."""
        return 0

    # ------------------------------------------------------------------
    # helpers shared by subclasses
    # ------------------------------------------------------------------
    def _rank_block(self, rank):
        """The :class:`Block` of ``rank`` (the whole grid if no decomp)."""
        if self.decomp is None:
            if rank not in (None, 0):
                raise SolverError(
                    f"preconditioner has no decomposition; rank {rank} undefined"
                )
            return None
        return self.decomp.active_blocks[rank]

    def _max_block_points(self):
        if self.decomp is None:
            return self.stencil.shape[0] * self.stencil.shape[1]
        return self.decomp.max_block_points()

    def _interior_stack(self, source):
        """Stack per-rank interior slices of a global array.

        Returns a ``(p, bny, bnx)`` copy of ``source[block.slices]`` over
        the active blocks; requires a uniform decomposition.  Used by
        batched ``apply_stack`` overrides to pre-stack masks and
        coefficients (cached by the callers).
        """
        if self.decomp is None:
            raise SolverError(
                "stacked application requires a decomposition"
            )
        return np.stack([source[b.slices]
                         for b in self.decomp.active_blocks])

    @staticmethod
    def _bcast(coeff, data):
        """Broadcast a mask/coefficient array over a trailing RHS axis.

        Multi-RHS data carries one more (trailing) axis than the 2-D
        coefficient; numpy's right-aligned broadcasting would misalign
        them, so the coefficient gets an explicit trailing axis.  For
        matching ranks this is the identity, keeping the single-RHS
        arithmetic byte-for-byte unchanged.
        """
        return coeff[..., None] if data.ndim > coeff.ndim else coeff

    @property
    def is_spd(self):
        """Whether ``M`` is symmetric positive definite on the ocean
        subspace (all shipped preconditioners are)."""
        return True
