"""The block Error-Vector-Propagation (EVP) preconditioner (paper §4).

Idea
----
Block-Jacobi preconditioning solves ``B_i x_i = y_i`` independently on
every block, where ``B_i`` is the diagonal sub-block of ``A``.  Solving
those small elliptic systems by LU costs ``O(n^4)``; the EVP *marching*
method (Roache 1995) does it in ``O(n^2)`` per solve after an
``O(n^3)`` one-time setup -- "one of the least costly algorithms for
solving elliptic equations in serial" (paper section 4.2).

Marching.  The nine-point equation centered at ``(j, i)`` can be solved
for its northeast unknown ``x[j+1, i+1]`` (paper Eq. 4).  Guessing the
values on the block's south row and west column (the *ring* ``e``, size
``k = my + mx - 1``) lets one sweep northeastward and fill the whole
block.  The equations centered on the north and east edges (also ``k``
of them) remain unsatisfied; their residuals ``F`` depend *linearly* on
the ring-guess error, ``F = W (e - e_true)``.  The influence matrix
``W`` is built once by marching the ``k`` unit ring vectors (paper
Algorithm 3); afterwards every solve is march -> correct ring by
``-W^-1 F`` -> march again.

Stability and tiling.  Marching amplifies round-off roughly by
``|c / ne|`` per step, so EVP is only usable on small domains -- the
paper quotes ~1e-8 round-off at 12x12 in double precision.  Larger
process blocks are therefore *tiled* into sub-blocks of at most
``tile_size`` points per side, each solved exactly; the preconditioner
is then block-Jacobi at tile granularity.  Tiles never cross process
boundaries, so application remains communication-free.

Land.  Marching divides by the NE coupling, which is exactly zero
wherever land interrupts the stencil.  Following the porous-land device
of elliptic marching codes (Roache 1995; Dietrich's DieCAST family), the
preconditioner is built from an *epsilon-land embedded* operator: land
cells are assigned a small fictitious depth (``land_epsilon`` times the
maximum depth), making every coupling nonzero while leaving the
preconditioner a close approximation of ``A`` on ocean points.  Output
is masked, so the preconditioner remains SPD on the ocean subspace.
DESIGN.md section 6 records this substitution; the ``land_epsilon``
ablation bench measures its effect.

Simplified stencil.  On near-isotropic cells the N/S/E/W coefficients
are an order of magnitude smaller than the corner ones; dropping them
halves the marching cost (5 vs 9 coefficient MACs per point) "without
any significant impact on the convergence rate" (paper section 4.3).
``simplified=True`` (the default, as in the paper) does exactly that.
"""

import numpy as np

from repro.core.cache import CACHE_FORMAT_VERSION, decomp_signature, digest_of
from repro.core.errors import SolverError
from repro.grid.stencil import build_stencil
from repro.kernels import resolve_kernels
from repro.parallel.decomposition import _split_extent
from repro.precond.base import Preconditioner

#: Default maximum tile side, per the paper's 12x12 stability bound.
DEFAULT_TILE_SIZE = 12

#: Default fictitious relative depth for land cells in the embedded
#: operator (fraction of the maximum ocean depth).
DEFAULT_LAND_EPSILON = 0.1

# Marching terms: coefficient name -> (dj, di) neighbor offset.  The NE
# term is the one solved for and is excluded.
_ALL_TERMS = (
    ("c", 0, 0),
    ("n", 1, 0),
    ("s", -1, 0),
    ("e", 0, 1),
    ("w", 0, -1),
    ("nw", 1, -1),
    ("se", -1, 1),
    ("sw", -1, -1),
)


class EVPTileEngine:
    """Batched EVP solver for a group of same-shape tiles.

    Parameters
    ----------
    coeffs:
        Dict mapping the nine coefficient names to stacked arrays of
        shape ``(B, my, mx)`` -- one slice per tile, couplings crossing
        the tile edge already zeroed (see
        :meth:`StencilCoeffs.extract_block`).
    influence:
        Optional ``(w, r)`` pair of precomputed ``(B, k, k)`` influence
        matrices and their inverses (from a previous engine's
        :attr:`influence_matrix` / :attr:`correction_matrix`, typically
        via the artifact cache).  Skips the ``O(n^3)`` construction;
        mismatched shapes fall back to a fresh build.
    kernels:
        Kernel backend (name, instance or ``None`` for the
        ``REPRO_KERNELS``/auto default) that executes :meth:`solve`.
        Setup -- influence-matrix construction and the ring-correction
        factors -- always runs the deterministic reference sweep, so
        the matrices (and anything cached from them) are identical
        under every backend.

    The engine marches all ``B`` tiles in lockstep along anti-diagonals,
    so the Python-level loop is ``O(my + mx)`` regardless of the batch
    size.
    """

    def __init__(self, coeffs, influence=None, kernels=None):
        self.kernels = resolve_kernels(kernels)
        self.coeffs = {name: np.ascontiguousarray(arr, dtype=np.float64)
                       for name, arr in coeffs.items()}
        batch, my, mx = self.coeffs["c"].shape
        self.batch = batch
        self.my = my
        self.mx = mx
        self.k = my + mx - 1

        ne = self.coeffs["ne"]
        # Interior centers (the marched equations) must have a nonzero
        # NE coupling; tile-edge NE couplings are zeroed by extraction.
        if my > 1 and mx > 1 and np.any(ne[:, :-1, :-1] == 0.0):
            raise SolverError(
                "EVP marching requires nonzero NE couplings at interior "
                "centers; build the preconditioner from the epsilon-land "
                "embedded operator (see EVPBlockPreconditioner)"
            )
        # Skip terms whose coefficients vanish identically (the
        # simplified stencil drops n/s/e/w, halving the marching work).
        self.terms = [
            (name, dj, di) for name, dj, di in _ALL_TERMS
            if np.any(self.coeffs[name] != 0.0) or name == "c"
        ]
        self._diagonals = self._build_diagonals()
        self._ring_rows, self._ring_cols = self._ring_indices()
        self._march_steps = self._build_march_steps()
        self._march_scratch = {}
        self._w = None
        self._r = None
        if influence is not None:
            w, r = influence
            expect = (self.batch, self.k, self.k)
            if (getattr(w, "shape", None) == expect
                    and getattr(r, "shape", None) == expect):
                self._w = np.ascontiguousarray(w, dtype=np.float64)
                self._r = np.ascontiguousarray(r, dtype=np.float64)
        if self._w is None:
            self._build_influence()
        # Pre-transposed correction factors: the ring update is one
        # batched BLAS matmul ``f @ R^T`` (see :meth:`ring_correction`).
        self._rT = np.ascontiguousarray(np.swapaxes(self._r, 1, 2))
        self._ring_scratch = np.empty((self.batch, 1, self.k))
        #: Per-``nrhs`` scratch pair for the multi-RHS ring correction.
        self._ring_multi = {}
        self._plan = self.kernels.prepare_evp(self)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _build_diagonals(self):
        """Per anti-diagonal, the interior-center index arrays."""
        my, mx = self.my, self.mx
        diagonals = []
        # Interior centers: ty in [0, my-2], tx in [0, mx-2].
        for d in range(0, (my - 2) + (mx - 2) + 1):
            ty = np.arange(max(0, d - (mx - 2)), min(my - 2, d) + 1)
            tx = d - ty
            if ty.size:
                diagonals.append((ty, tx))
        return diagonals

    def _ring_indices(self):
        """Padded-frame coordinates of the ring ``e`` in canonical order.

        Order: south tile row (west to east), then west tile column
        (second row northward).
        """
        my, mx = self.my, self.mx
        rows = [1] * mx + list(range(2, my + 1))
        cols = list(range(1, mx + 1)) + [1] * (my - 1)
        return np.asarray(rows), np.asarray(cols)

    # ------------------------------------------------------------------
    # marching
    # ------------------------------------------------------------------
    def _coeff_view(self, name, extra_axis):
        """Coefficient array, with a broadcast axis inserted when the
        state carries an extra leading dimension (W construction)."""
        arr = self.coeffs[name]
        return arr[:, None] if extra_axis else arr

    def _build_march_steps(self):
        """Precompute, per anti-diagonal, flat indices and pre-gathered
        coefficient values.

        Marching is the preconditioner's hot path; doing the
        two-dimensional fancy indexing once at setup and flattening the
        state to 1-D gathers cuts the per-application cost severalfold.
        Each step is ``(y_src, inv_ne, target, [(coeff_vals, p_src),...])``
        where flat indices address the padded ``(my+2)*(mx+2)`` state and
        ``coeff_vals``/``inv_ne`` have shape ``(B, L)``.
        """
        my, mx = self.my, self.mx
        width = mx + 2
        steps = []
        ne = self.coeffs["ne"]
        for ty, tx in self._diagonals:
            y_src = ty * mx + tx
            target = (ty + 2) * width + (tx + 2)
            inv_ne = 1.0 / ne[:, ty, tx]
            terms = []
            for name, dj, di in self.terms:
                vals = np.ascontiguousarray(self.coeffs[name][:, ty, tx])
                if not np.any(vals):
                    continue
                p_src = (ty + 1 + dj) * width + (tx + 1 + di)
                terms.append((vals, p_src))
            steps.append((y_src, np.ascontiguousarray(inv_ne), target, terms))
        return steps

    def _march(self, p, y):
        """Fill ``p`` northeastward from its ring values.

        ``p`` has shape ``(B, my+2, mx+2)``, ``(B, k, my+2, mx+2)``
        (during influence-matrix construction, with the coefficients
        broadcast over the unit-vector axis) or ``(B, my+2, mx+2, nrhs)``
        (a multi-RHS solve batch on a trailing axis); the ring must
        already be set and everything else zero.  ``y`` matches ``p``'s
        layout with ``(my, mx)`` in place of the padded extents.

        The solve-path branches gather into a per-length scratch buffer
        and update it in place -- one reused ``(B, L[, nrhs])`` buffer
        per anti-diagonal length instead of a fresh allocation per step
        -- without changing any operation's order or rounding.  The
        multi-RHS batch uses the dedicated :meth:`_march_multi` (the
        trailing-axis layout cannot be told apart from the influence
        layout by shape alone on 3x3 tiles).
        """
        extra = p.ndim == 4
        lead = p.shape[:-2]
        pf = p.reshape(lead + ((self.my + 2) * (self.mx + 2),))
        yf = y.reshape(lead + (self.my * self.mx,))
        for y_src, inv_ne, target, terms in self._march_steps:
            if extra:
                rhs = np.array(yf[..., y_src])
                for vals, p_src in terms:
                    rhs -= vals[:, None] * pf[..., p_src]
                pf[..., target] = rhs * inv_ne[:, None]
            else:
                rhs = self._rhs_scratch(y_src.shape[0])
                np.take(yf, y_src, axis=1, out=rhs)
                for vals, p_src in terms:
                    np.subtract(rhs, vals * pf[:, p_src], out=rhs)
                np.multiply(rhs, inv_ne, out=rhs)
                pf[:, target] = rhs
        return p

    def _march_multi(self, p, y):
        """Multi-RHS marching sweep over ``(B, my+2, mx+2, nrhs)``.

        The ``(B, L)`` coefficients broadcast over the trailing axis, so
        every column runs the exact single-RHS elementwise sequence --
        the batched sweep is bit-identical per column.
        """
        nrhs = p.shape[3]
        pf = p.reshape(p.shape[0], (self.my + 2) * (self.mx + 2), nrhs)
        yf = y.reshape(y.shape[0], self.my * self.mx, nrhs)
        for y_src, inv_ne, target, terms in self._march_steps:
            rhs = self._rhs_scratch(y_src.shape[0], nrhs)
            np.take(yf, y_src, axis=1, out=rhs)
            for vals, p_src in terms:
                np.subtract(rhs, vals[..., None] * pf[:, p_src], out=rhs)
            np.multiply(rhs, inv_ne[..., None], out=rhs)
            pf[:, target] = rhs
        return p

    def _rhs_scratch(self, length, nrhs=None):
        """The reused ``(B, length[, nrhs])`` right-hand-side buffer."""
        key = length if nrhs is None else (length, nrhs)
        buf = self._march_scratch.get(key)
        if buf is None:
            shape = (self.batch, length)
            if nrhs is not None:
                shape += (nrhs,)
            buf = np.empty(shape)
            self._march_scratch[key] = buf
        return buf

    def _edge_residuals(self, p, y):
        """Residuals of the unmarched (north/east edge) equations.

        Order: north edge west-to-east (``mx`` values), then east edge
        south-to-north excluding the NE corner (``my - 1`` values).
        """
        my, mx = self.my, self.mx
        extra = p.ndim == 4
        lead = p.shape[:-2]
        f = np.empty(lead + (self.k,), dtype=p.dtype)
        views = [(self._coeff_view(name, extra), dj, di)
                 for name, dj, di in self.terms]
        ne = self._coeff_view("ne", extra)

        # north edge: centers (my-1, tx) for tx in [0, mx)
        ty = my - 1
        acc = -np.array(y[..., ty, :])
        for coeff, dj, di in views:
            acc = acc + coeff[..., ty, :] * p[..., ty + 1 + dj, 1 + di:1 + di + mx]
        # include the NE term (coefficient may be nonzero for tx < mx-1)
        acc = acc + ne[..., ty, :] * p[..., ty + 2, 2:2 + mx]
        f[..., :mx] = acc

        if my > 1:
            # east edge: centers (ty, mx-1) for ty in [0, my-1)
            tx = mx - 1
            acc = -np.array(y[..., :my - 1, tx])
            for coeff, dj, di in views:
                acc = acc + (coeff[..., :my - 1, tx]
                             * p[..., 1 + dj:1 + dj + my - 1, tx + 1 + di])
            acc = acc + ne[..., :my - 1, tx] * p[..., 2:2 + my - 1, tx + 2]
            f[..., mx:] = acc
        return f

    def _edge_residuals_multi(self, p, y):
        """Edge residuals for a multi-RHS batch ``(B, my+2, mx+2, nrhs)``.

        Same accumulation order as :meth:`_edge_residuals` with the 2-D
        coefficients broadcast over the trailing RHS axis, so each
        column's residuals are bit-identical to its single-RHS pass.
        Returns ``(B, k, nrhs)``.
        """
        my, mx = self.my, self.mx
        nrhs = p.shape[3]
        f = np.empty((p.shape[0], self.k, nrhs), dtype=p.dtype)
        views = [(self._coeff_view(name, False), dj, di)
                 for name, dj, di in self.terms]
        ne = self._coeff_view("ne", False)

        # north edge: centers (my-1, tx) for tx in [0, mx)
        ty = my - 1
        acc = -np.array(y[:, ty, :, :])
        for coeff, dj, di in views:
            acc = acc + (coeff[:, ty, :, None]
                         * p[:, ty + 1 + dj, 1 + di:1 + di + mx, :])
        acc = acc + ne[:, ty, :, None] * p[:, ty + 2, 2:2 + mx, :]
        f[:, :mx, :] = acc

        if my > 1:
            # east edge: centers (ty, mx-1) for ty in [0, my-1)
            tx = mx - 1
            acc = -np.array(y[:, :my - 1, tx, :])
            for coeff, dj, di in views:
                acc = acc + (coeff[:, :my - 1, tx, None]
                             * p[:, 1 + dj:1 + dj + my - 1, tx + 1 + di, :])
            acc = acc + ne[:, :my - 1, tx, None] * p[:, 2:2 + my - 1, tx + 2, :]
            f[:, mx:, :] = acc
        return f

    # ------------------------------------------------------------------
    # influence matrix
    # ------------------------------------------------------------------
    def _build_influence(self):
        """March the ``k`` unit ring vectors and factor the response.

        The state carries an extra axis of size ``k`` (one marching
        system per unit ring vector); coefficients broadcast across it,
        so the memory cost is one ``(B, k, my+2, mx+2)`` array.

        The correction operator is obtained by LU-solving ``W X = I``
        (``np.linalg.solve`` runs one batched getrf/getrs -- a Doolittle
        factorization plus two triangular sweeps per tile) rather than
        the old explicit ``np.linalg.inv``.  The result is still stored
        as the dense ``correction_matrix`` so cached influence payloads
        keep their ``(W, W^-1)`` layout; singular responses (possible
        only on degenerate embedded operators) fall back to the
        pseudo-inverse as before.
        """
        b, k, my, mx = self.batch, self.k, self.my, self.mx
        p = np.zeros((b, k, my + 2, mx + 2))
        unit = np.arange(k)
        p[:, unit, self._ring_rows[unit], self._ring_cols[unit]] = 1.0
        y = np.zeros((b, k, my, mx))
        self._march(p, y)
        f = self._edge_residuals(p, y)  # (B, k_unit, k_edge)
        # Column j of W is the edge response to unit ring vector j.
        self._w = np.swapaxes(f, 1, 2).copy()
        # (k, k) would be read as a stack of vectors under numpy's
        # solve broadcasting; expand to an explicit (B, k, k) identity.
        identity = np.broadcast_to(np.eye(k), (b, k, k))
        try:
            self._r = np.linalg.solve(self._w, identity)
        except np.linalg.LinAlgError:
            self._r = np.linalg.pinv(self._w)

    @property
    def influence_matrix(self):
        """The ``(B, k, k)`` influence matrices ``W`` (read-only)."""
        return self._w

    @property
    def correction_matrix(self):
        """The ``(B, k, k)`` inverses ``W^-1`` used by :meth:`solve`."""
        return self._r

    def influence_condition(self):
        """Per-tile condition number of ``W`` -- the round-off driver."""
        return np.linalg.cond(self._w)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def ring_correction(self, f):
        """The ring update ``-W^-1 F`` from the edge residuals ``F``.

        One batched BLAS matmul against the pre-transposed LU-derived
        factors (``ring_i = -(f @ R^T)_i``), negated in place.  Shared
        by every kernel backend -- the correction is part of the
        engine's backend-independent setup, which is what keeps solver
        iterates bit-identical across the deterministic backends and
        cached influence payloads valid under all of them.  Returns a
        reused ``(B, k)`` scratch view; consume it before the next call.

        A ``(B, k, nrhs)`` multi-RHS batch is corrected as one gufunc
        matmul over an ``(nrhs, B)`` batch of the *same* ``(1, k) @
        (k, k)`` slices the single-RHS path runs -- the batched matmul
        applies the identical inner kernel to each 2-D slice, so each
        column's ring is bit-identical to its standalone solve.  (One
        fused ``(k, k) @ (k, nrhs)`` gemm would be faster still but
        could legally reorder the per-element accumulation.)  Returns a
        fresh ``(B, k, nrhs)`` array in that case.
        """
        if f.ndim == 3:
            nrhs = f.shape[2]
            scratch = self._ring_multi.get(nrhs)
            if scratch is None:
                scratch = (np.empty((nrhs, f.shape[0], 1, self.k)),
                           np.empty((nrhs, f.shape[0], self.k)))
                self._ring_multi[nrhs] = scratch
            rows, cols = scratch
            # (nrhs, B, k): column-major over the batch so every slice
            # is the contiguous row vector the single path sees.
            cols[...] = np.moveaxis(f, 2, 0)
            np.matmul(cols[:, :, None, :], self._rT, out=rows)
            np.negative(rows, out=rows)
            out = np.empty((f.shape[0], self.k, nrhs), dtype=f.dtype)
            out[...] = rows[:, :, 0, :].transpose(1, 2, 0)
            return out
        np.matmul(f[:, None, :], self._rT, out=self._ring_scratch)
        ring = self._ring_scratch[:, 0, :]
        np.negative(ring, out=ring)
        return ring

    def solve(self, y, out=None):
        """Solve ``B_i x_i = y_i`` for every tile in the batch.

        ``y`` has shape ``(B, my, mx)``; returns ``x`` of the same
        shape (written into ``out`` when given), exact up to marching
        round-off.  Executed by the engine's kernel backend: march ->
        edge residuals -> :meth:`ring_correction` -> march again.
        """
        return self.kernels.evp_solve(self, self._plan, y, out=out)

    # ------------------------------------------------------------------
    # cost accounting (paper section 4.2 / 4.3)
    # ------------------------------------------------------------------
    @property
    def stencil_terms(self):
        """Coefficient MACs per marched point (9 full, 5 simplified)."""
        return len(self.terms) + 1  # + the NE divide

    def solve_flops_per_tile(self):
        """Flop units per tile per solve: ``2 * nnz * n^2 + k^2``.

        Matches the paper's ``C_evp = 2 * 9 n^2 + (2n-5)^2`` for the full
        stencil and ``T'_p = 14 n^2`` for the simplified one.
        """
        return 2 * self.stencil_terms * self.my * self.mx + self.k * self.k

    def setup_flops_per_tile(self):
        """One-time cost per tile: ``k * nnz * n^2 + k^3`` (paper C_pre)."""
        return (self.k * self.stencil_terms * self.my * self.mx
                + self.k ** 3)


class EVPBlockPreconditioner(Preconditioner):
    """Block-Jacobi preconditioner with EVP tile solves (paper §4.3).

    Parameters
    ----------
    stencil:
        The true operator ``A`` (used for the mask and shape).
    decomp:
        Block decomposition; tiles never cross block boundaries so the
        preconditioner needs no communication.  ``None`` treats the whole
        grid as one process block.
    metrics, topo:
        Grid metrics and topography, required to build the epsilon-land
        embedded operator whenever the mask contains land.  (Convenience:
        :func:`evp_for_config` wires these from a ``GridConfig``.)
    tile_size:
        Maximum tile side (default 12, the paper's stability bound).
    land_epsilon:
        Fictitious relative land depth for the embedded operator.
    simplified:
        Drop the N/S/E/W coefficients in the marching operator (paper
        section 4.3; halves the cost, default True).
    embedded_stencil:
        Pre-built embedded operator; overrides ``metrics``/``topo``.
    influence_state:
        Optional dict of precomputed influence arrays (as returned by
        :meth:`influence_state`, typically loaded from the artifact
        cache); shape groups found in it skip their ``O(n^3)``
        influence-matrix construction.
    kernels:
        Kernel backend executing the tile solves (name, instance or
        ``None`` for the ``REPRO_KERNELS``/auto default); resolved once
        and shared by every shape group's engine.  Not part of
        :meth:`cache_token`: backends change execution strategy, not
        the operator ``M``.
    """

    name = "evp"

    def __init__(self, stencil, decomp=None, *, metrics=None, topo=None,
                 tile_size=DEFAULT_TILE_SIZE,
                 land_epsilon=DEFAULT_LAND_EPSILON, simplified=True,
                 embedded_stencil=None, influence_state=None,
                 kernels=None):
        super().__init__(stencil, decomp=decomp, kernels=kernels)
        if tile_size < 1:
            raise SolverError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = int(tile_size)
        self.simplified = bool(simplified)
        self.land_epsilon = float(land_epsilon)

        if embedded_stencil is None:
            if self.mask.all():
                embedded_stencil = stencil
            elif metrics is not None and topo is not None:
                max_depth = float(np.max(topo.depth))
                embedded_stencil = build_stencil(
                    metrics, topo, stencil.phi, land_rows="mass",
                    depth_floor=self.land_epsilon * max_depth,
                )
            else:
                raise SolverError(
                    "the mask contains land, so the EVP preconditioner needs "
                    "metrics and topo (or a pre-built embedded_stencil) to "
                    "construct its epsilon-land embedded operator"
                )
        if self.simplified:
            embedded_stencil = embedded_stencil.simplified()
        self.embedded_stencil = embedded_stencil

        self._tiles = self._make_tiles()
        self._engines, self._groups = self._build_engines(influence_state)
        self._mask_f = self.mask.astype(np.float64)
        self._gather_idx = self._build_gather_indices()
        self._stack_idx = None
        self._stack_ident = None
        self._block_idx = None
        self._mask_f_stack = None
        self._rank_solve_flops = self._accumulate_rank_flops(
            EVPTileEngine.solve_flops_per_tile)
        self._rank_setup_flops = self._accumulate_rank_flops(
            EVPTileEngine.setup_flops_per_tile)

    # ------------------------------------------------------------------
    # tiling
    # ------------------------------------------------------------------
    def _make_tiles(self):
        """Split every process block into tiles of side <= tile_size.

        Returns a list of ``(rank, j0, j1, i0, i1)`` tuples.
        """
        tiles = []
        if self.decomp is None:
            ny, nx = self.stencil.shape
            blocks = [(0, 0, ny, 0, nx)]
        else:
            blocks = [
                (rank, b.j0, b.j1, b.i0, b.i1)
                for rank, b in enumerate(self.decomp.active_blocks)
            ]
        for rank, j0, j1, i0, i1 in blocks:
            ny = j1 - j0
            nx = i1 - i0
            nty = max(1, -(-ny // self.tile_size))
            ntx = max(1, -(-nx // self.tile_size))
            for tj0, tj1 in _split_extent(ny, nty):
                for ti0, ti1 in _split_extent(nx, ntx):
                    tiles.append((rank, j0 + tj0, j0 + tj1, i0 + ti0, i0 + ti1))
        return tiles

    def _build_engines(self, influence_state=None):
        """Group tiles by shape and build one batched engine per group.

        ``influence_state`` (see :meth:`influence_state`) supplies
        precomputed influence matrices per shape group; groups found in
        it skip the ``O(n^3)`` construction.  Tile enumeration and the
        within-group stacking order are deterministic functions of the
        grid shape, decomposition and ``tile_size``, so the batch axis
        lines up across processes with the same inputs.
        """
        by_shape = {}
        for tidx, (rank, j0, j1, i0, i1) in enumerate(self._tiles):
            by_shape.setdefault((j1 - j0, i1 - i0), []).append(tidx)

        engines = {}
        groups = {}
        for shape, tile_indices in by_shape.items():
            stacked = {name: [] for name in
                       ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")}
            for tidx in tile_indices:
                _, j0, j1, i0, i1 = self._tiles[tidx]
                sub = self.embedded_stencil.extract_block(j0, j1, i0, i1)
                for name in stacked:
                    stacked[name].append(getattr(sub, name))
            coeffs = {name: np.stack(arrs) for name, arrs in stacked.items()}
            engines[shape] = EVPTileEngine(
                coeffs, influence=_influence_for_shape(influence_state, shape),
                kernels=self.kernels)
            groups[shape] = tile_indices
        return engines, groups

    def influence_state(self):
        """Per shape-group influence arrays, ready for npz persistence.

        Keys are ``w_<my>x<mx>`` / ``r_<my>x<mx>``.  Feeding the dict
        back through the ``influence_state`` constructor argument skips
        every group's ``O(n^3)`` influence build and reproduces
        ``apply_global``/``apply_stack`` output bit-identically: the
        marching coefficients are rebuilt from the stencil either way,
        and ``(W, W^-1)`` fully determine the ring correction.
        """
        arrays = {}
        for (my, mx), engine in self._engines.items():
            arrays[f"w_{my}x{mx}"] = engine.influence_matrix
            arrays[f"r_{my}x{mx}"] = engine.correction_matrix
        return arrays

    def cache_token(self):
        """Parameters that shape ``M`` (see :meth:`Preconditioner.cache_token`).

        The embedded-stencil digest subsumes ``land_epsilon`` and
        ``simplified`` (both change its content); the explicit fields
        keep the token readable and guard the degenerate all-ocean case.
        """
        return ("evp", self.tile_size, self.land_epsilon, self.simplified,
                self.embedded_stencil.content_digest())

    @property
    def n_tiles(self):
        """Number of EVP tiles across the whole grid."""
        return len(self._tiles)

    def _build_gather_indices(self):
        """Per shape-group ``(JJ, II)`` index arrays of shape
        ``(B, my, mx)`` so one fancy-indexing gather/scatter moves every
        tile of the group at once (tiles are disjoint, so scatters never
        collide)."""
        out = {}
        for shape, tile_indices in self._groups.items():
            my, mx = shape
            jj = np.empty((len(tile_indices), my, mx), dtype=np.intp)
            ii = np.empty((len(tile_indices), my, mx), dtype=np.intp)
            for pos, tidx in enumerate(tile_indices):
                _, j0, j1, i0, i1 = self._tiles[tidx]
                jj[pos] = np.arange(j0, j1)[:, None]
                ii[pos] = np.arange(i0, i1)[None, :]
            out[shape] = (jj, ii)
        return out

    def _accumulate_rank_flops(self, per_tile):
        totals = {}
        for tidx, (trank, j0, j1, i0, i1) in enumerate(self._tiles):
            engine = self._engines[(j1 - j0, i1 - i0)]
            totals[trank] = totals.get(trank, 0) + per_tile(engine)
        return totals

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply_global(self, r, out=None):
        if out is None:
            out = np.zeros_like(r)
        else:
            out[...] = 0.0
        for shape in self._groups:
            engine = self._engines[shape]
            jj, ii = self._gather_idx[shape]
            x = engine.solve(r[jj, ii])
            out[jj, ii] = x
        out *= self._bcast(self._mask_f, out)
        return out

    def _build_block_indices(self):
        """Per-rank gather/scatter programs for :meth:`apply_block`.

        For each rank and shape group: the batch positions of the
        rank's tiles plus ``(n, my, mx)`` index arrays into the rank's
        interior, so one application moves all of a rank's tiles with
        two fancy-indexing operations instead of a per-tile Python
        loop.  Tiles are disjoint, so the scatters never collide and
        the result matches the per-tile loop bit for bit.
        """
        blocks = self.decomp.active_blocks
        per_rank = {rank: [] for rank in range(len(blocks))}
        for shape, tile_indices in self._groups.items():
            my, mx = shape
            by_rank = {}
            for pos, tidx in enumerate(tile_indices):
                rank, j0, j1, i0, i1 = self._tiles[tidx]
                by_rank.setdefault(rank, []).append((pos, j0, j1, i0, i1))
            for rank, entries in by_rank.items():
                block = blocks[rank]
                n = len(entries)
                positions = np.empty(n, dtype=np.intp)
                jj = np.empty((n, my, mx), dtype=np.intp)
                ii = np.empty((n, my, mx), dtype=np.intp)
                for t, (pos, j0, j1, i0, i1) in enumerate(entries):
                    positions[t] = pos
                    jj[t] = np.arange(j0 - block.j0, j1 - block.j0)[:, None]
                    ii[t] = np.arange(i0 - block.i0, i1 - block.i0)[None, :]
                per_rank[rank].append((shape, positions, jj, ii))
        return per_rank

    def apply_block(self, rank, r_interior, out=None):
        block = self._rank_block(rank)
        if block is None:
            return self.apply_global(r_interior, out=out)
        if self._block_idx is None:
            self._block_idx = self._build_block_indices()
        if out is None:
            out = np.zeros_like(r_interior)
        else:
            out[...] = 0.0
        for shape, positions, jj, ii in self._block_idx[rank]:
            engine = self._engines[shape]
            y = np.zeros((engine.batch,) + shape + r_interior.shape[2:])
            y[positions] = r_interior[jj, ii]
            x = engine.solve(y)
            out[jj, ii] = x[positions]
        out *= self._bcast(self._mask_f[block.slices], out)
        return out

    def _build_stack_indices(self):
        """Per shape-group ``(RR, JJ, II)`` index triples of shape
        ``(B, my, mx)`` addressing stacked rank interiors, so the
        batched engine gathers/scatters every tile of a group from/to
        the ``(p, bny, bnx)`` stack in one fancy-indexing operation."""
        blocks = self.decomp.active_blocks
        out = {}
        for shape, tile_indices in self._groups.items():
            my, mx = shape
            rr = np.empty((len(tile_indices), my, mx), dtype=np.intp)
            jj = np.empty_like(rr)
            ii = np.empty_like(rr)
            for pos, tidx in enumerate(tile_indices):
                rank, j0, j1, i0, i1 = self._tiles[tidx]
                block = blocks[rank]
                rr[pos] = rank
                jj[pos] = np.arange(j0 - block.j0, j1 - block.j0)[:, None]
                ii[pos] = np.arange(i0 - block.i0, i1 - block.i0)[None, :]
            out[shape] = (rr, jj, ii)
        return out

    def _stack_identity_shape(self):
        """The ``(p, my, mx)`` stack shape whose gather is the identity.

        When there is a single shape group whose tiles are exactly the
        rank interiors in batch order (``tile_size >= block size`` on a
        uniform decomposition), ``r_stack[rr, jj, ii]`` would copy the
        stack verbatim; :meth:`apply_stack` then skips the gather and
        scatter entirely.  Returns ``None`` when the layout is anything
        else.
        """
        if len(self._stack_idx) != 1:
            return None
        (shape, (rr, jj, ii)), = self._stack_idx.items()
        p, my, mx = rr.shape
        if (my, mx) != shape:
            return None
        exp_rr = np.arange(p, dtype=np.intp)[:, None, None]
        exp_jj = np.arange(my, dtype=np.intp)[None, :, None]
        exp_ii = np.arange(mx, dtype=np.intp)[None, None, :]
        if (np.array_equal(rr, np.broadcast_to(exp_rr, rr.shape))
                and np.array_equal(jj, np.broadcast_to(exp_jj, jj.shape))
                and np.array_equal(ii, np.broadcast_to(exp_ii, ii.shape))):
            return (p, my, mx)
        return None

    def apply_stack(self, r_stack, out=None):
        """Batched application over stacked rank interiors.

        Every shape group's full tile batch is gathered from the stack,
        solved in one :meth:`EVPTileEngine.solve` call, and scattered
        back -- no per-rank loop.  Bit-identical to the per-rank path:
        tile solves are elementwise-independent along the batch axis, so
        solving all tiles at once matches solving each rank's subset
        with the rest zeroed.
        """
        if self.decomp is None:
            return super().apply_stack(r_stack, out=out)
        if self._stack_idx is None:
            self._stack_idx = self._build_stack_indices()
            self._mask_f_stack = self._interior_stack(self._mask_f)
            self._stack_ident = self._stack_identity_shape()
        if self._stack_ident == r_stack.shape[:3]:
            # Every block is exactly one tile in batch order: the gather
            # is the identity permutation, so solve the stack in place
            # and skip both fancy-indexing copies.  Same values through
            # the same engine -- the gathered copy merely duplicated the
            # stack -- so the output is bit-identical to the slow path.
            engine = self._engines[next(iter(self._groups))]
            if out is None:
                out = np.empty_like(r_stack)
            engine.solve(r_stack, out=out)
            out *= self._bcast(self._mask_f_stack, out)
            return out
        if out is None:
            out = np.zeros_like(r_stack)
        else:
            out[...] = 0.0
        for shape in self._groups:
            engine = self._engines[shape]
            rr, jj, ii = self._stack_idx[shape]
            x = engine.solve(r_stack[rr, jj, ii])
            out[rr, jj, ii] = x
        out *= self._bcast(self._mask_f_stack, out)
        return out

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def apply_flops(self, rank=None):
        """Flop units per application (paper: ``14 n^2`` simplified).

        ``rank=None`` returns the critical-path (maximum per-rank) cost.
        """
        if rank is not None:
            return self._rank_solve_flops.get(rank, 0)
        return max(self._rank_solve_flops.values())

    def setup_flops(self, rank=None):
        """One-time preprocessing cost (paper ``C_pre``, section 4.2)."""
        if rank is not None:
            return self._rank_setup_flops.get(rank, 0)
        return max(self._rank_setup_flops.values())

    # ------------------------------------------------------------------
    def roundoff_estimate(self, seed=0):
        """Empirical marching round-off: relative error of a known solve.

        Draws a random ``x`` per tile, computes ``y = B x`` densely from
        the tile coefficients, EVP-solves, and returns the worst relative
        max-norm error across tiles.  The paper quotes ~1e-8 at 12x12.
        """
        rng = np.random.default_rng(seed)
        worst = 0.0
        for shape, tile_indices in self._groups.items():
            my, mx = shape
            engine = self._engines[shape]
            x_true = rng.standard_normal((engine.batch, my, mx))
            y = _dense_tile_apply(engine.coeffs, x_true)
            x = engine.solve(y)
            num = np.abs(x - x_true).max(axis=(1, 2))
            den = np.abs(x_true).max(axis=(1, 2))
            worst = max(worst, float((num / den).max()))
        return worst


def _dense_tile_apply(coeffs, x):
    """Nine-point apply on stacked tiles with zero exterior (reference)."""
    b, my, mx = x.shape
    xp = np.zeros((b, my + 2, mx + 2))
    xp[:, 1:-1, 1:-1] = x
    out = coeffs["c"] * x
    offsets = {"n": (1, 0), "s": (-1, 0), "e": (0, 1), "w": (0, -1),
               "ne": (1, 1), "nw": (1, -1), "se": (-1, 1), "sw": (-1, -1)}
    for name, (dj, di) in offsets.items():
        out = out + coeffs[name] * xp[:, 1 + dj:1 + dj + my, 1 + di:1 + di + mx]
    return out


def _influence_for_shape(state, shape):
    """The ``(w, r)`` pair for one shape group, or ``None``."""
    if not state:
        return None
    my, mx = shape
    w = state.get(f"w_{my}x{mx}")
    r = state.get(f"r_{my}x{mx}")
    if w is None or r is None:
        return None
    return (w, r)


def evp_influence_key(config, decomp=None, tile_size=DEFAULT_TILE_SIZE,
                      land_epsilon=DEFAULT_LAND_EPSILON, simplified=True):
    """Artifact-cache key for a configuration's EVP influence matrices.

    Keyed on grid *content* (not name), decomposition geometry and every
    parameter that changes the tiling or the embedded operator, salted
    with the cache format version.
    """
    return digest_of(
        CACHE_FORMAT_VERSION, "evp-influence",
        config.content_digest(), decomp_signature(decomp),
        int(tile_size), float(land_epsilon), bool(simplified),
    )


def evp_for_config(config, decomp=None, cache=None, **kwargs):
    """Build an :class:`EVPBlockPreconditioner` from a ``GridConfig``.

    With ``cache`` (an :class:`~repro.core.cache.ArtifactCache`), the
    per-shape-group influence matrices -- the ``O(n^3)`` part of setup
    -- are loaded from the cache's disk tier when present and stored
    after a fresh build otherwise.  ``cache=None`` (the default)
    preserves plain construction; a pre-built ``embedded_stencil`` in
    ``kwargs`` also bypasses the cache, since its content is not part
    of the key.
    """
    def build(**extra):
        return EVPBlockPreconditioner(
            config.stencil, decomp=decomp,
            metrics=config.metrics, topo=config.topo, **kwargs, **extra,
        )

    if cache is None or "embedded_stencil" in kwargs:
        return build()
    key = evp_influence_key(
        config, decomp=decomp,
        tile_size=kwargs.get("tile_size", DEFAULT_TILE_SIZE),
        land_epsilon=kwargs.get("land_epsilon", DEFAULT_LAND_EPSILON),
        simplified=kwargs.get("simplified", True),
    )
    loaded = cache.load("evp-influence", key)
    if loaded is not None:
        arrays, _meta = loaded
        return build(influence_state=arrays)
    precond = build()
    cache.store(
        "evp-influence", key, arrays=precond.influence_state(),
        meta={"config": config.name, "shape": list(config.shape),
              "n_tiles": precond.n_tiles},
    )
    return precond
