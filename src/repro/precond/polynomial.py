"""Reduction-free polynomial preconditioners (Chebyshev families).

The paper's P-CSI wins by trading global reductions for extra local
work; the same trade applies one level down, at the preconditioner.  A
polynomial preconditioner approximates ``M^-1 ~ q(C) D^-1`` where ``C =
D^-1 A_b`` is the diagonally scaled operator restricted to each rank's
block *with zero-Dirichlet halos*, and ``q`` is a fixed low-degree
polynomial built from the spectral interval ``[nu, mu]``.  Applying it
costs a handful of block-local stencil sweeps -- **zero reductions and
zero halo exchanges per apply** -- so it composes with every solver in
the registry without changing any communication budget, and it runs on
every kernel backend through the same ``stencil_apply_local`` /
``stencil_apply_stacked`` entry points the blocked operator uses.

Two families are provided:

:class:`ChebyshevPreconditioner` (``"cheby"``)
    The classic Chebyshev semi-iteration of ``degree`` steps.  Its
    residual polynomial is the scaled-and-shifted Chebyshev polynomial
    on ``[nu, mu]``, so ``t * q(t)`` stays inside ``(0, 2)`` on the
    covered spectrum and ``M^-1`` is symmetric positive definite.

:class:`NewtonChebyshevPreconditioner` (``"ncheby"``)
    ``steps`` Newton refinement sweeps ``Z <- Z (2 I - C Z)`` seeded
    with the Chebyshev polynomial (Bergamaschi & Martinez) -- the error
    polynomial squares each sweep, so ``t * q(t)`` lands in ``(0, 1)``:
    SPD with rapidly improving clustering, at ``(degree + 1) * 2^steps
    - 1`` block-local matvecs per apply.

Eigenbound reuse
----------------
The interval comes from the *same* Lanczos machinery (and artifact-
cache entries) that :class:`~repro.solvers.spectral.SpectralBoundedSolver`
uses: a private serial context with an inner diagonal preconditioner,
pinned to the ``numpy`` kernel backend so the resulting polynomial
coefficients -- and hence the operator ``M`` -- are identical whatever
backend later applies it.  Each block operator is a principal submatrix
of the global symmetrized operator, so by Cauchy interlacing every
block spectrum lies inside the global ``[lambda_min, lambda_max]``; the
widened global bounds therefore cover all blocks at once and no
per-block estimation (or any communication) is needed.
"""

import numpy as np

from repro.core.errors import SolverError
from repro.precond.base import Preconditioner

#: Stencil coefficient attributes, center first (mirrors the blocked
#: operator's ordering so the kernel entry points see the same layout).
_COEFF_ORDER = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")

#: Flop units per grid point of one block-local preconditioned matvec
#: (9-point stencil + the diagonal scaling) plus the Chebyshev
#: recurrence updates (residual downdate, two d-updates, z-accumulate).
_CHEBY_STEP_FLOPS = 15

#: Newton sweep overhead per point: ``w = C u`` (10) + ``2 u - t`` (2).
_NEWTON_SWEEP_FLOPS = 12


def polynomial_point_flops(degree, steps=0):
    """Flop units per grid point of one polynomial apply.

    ``steps = 0`` is the plain Chebyshev preconditioner; each Newton
    sweep applies the previous polynomial twice plus one preconditioned
    matvec and a 2-term combine.  The trailing ``+ 1`` is the initial
    diagonal scaling ``rt = D^-1 r``.
    """
    flops = 1 + _CHEBY_STEP_FLOPS * int(degree)
    for _ in range(int(steps)):
        flops = 2 * flops + _NEWTON_SWEEP_FLOPS
    return flops + 1


class _BlockCoeffs:
    """Stencil coefficients sliced to one block (view, no copy)."""

    __slots__ = _COEFF_ORDER

    def __init__(self, coeffs, block):
        for name in _COEFF_ORDER:
            full = getattr(coeffs, name)
            setattr(self, name,
                    full if block is None else full[block.slices])


class ChebyshevPreconditioner(Preconditioner):
    """Chebyshev polynomial preconditioner of fixed ``degree``.

    Parameters (beyond :class:`Preconditioner`'s)
    ----------
    degree:
        Number of block-local preconditioned matvecs per apply (the
        polynomial degree).  Must be >= 1.
    eig_bounds:
        Optional explicit ``(nu, mu)`` spectral interval of the
        diagonally preconditioned operator.  When omitted, a Lanczos
        estimation runs lazily at first apply and is memoized through
        the artifact cache (shared with the P-CSI/CA-PCG entries for
        the same stencil and inner preconditioner).
    inner:
        Inner scaling: ``"diagonal"`` (default, ``C = D^-1 A_b``) or
        ``"identity"`` (``C = A_b``; the interval then bounds ``A``
        itself).
    bounds_cache:
        Optional :class:`~repro.core.cache.ArtifactCache` for the
        Lanczos memoization; ``None`` uses the process-global cache.
    lanczos_tol, lanczos_steps, lanczos_seed, nu_safety, mu_safety:
        Lanczos stopping control and interval widening, exactly as in
        :class:`~repro.solvers.spectral.SpectralBoundedSolver`.
    """

    name = "cheby"

    def __init__(self, stencil, decomp=None, kernels=None, degree=4,
                 eig_bounds=None, inner="diagonal", bounds_cache=None,
                 lanczos_tol=0.15, lanczos_steps=None, lanczos_seed=0,
                 nu_safety=0.5, mu_safety=1.05):
        super().__init__(stencil, decomp=decomp, kernels=kernels)
        if int(degree) < 1:
            raise SolverError(
                f"polynomial degree must be >= 1, got {degree}")
        if inner not in ("diagonal", "identity"):
            raise SolverError(
                f"unknown inner scaling {inner!r}; expected 'diagonal' "
                f"or 'identity'")
        self.degree = int(degree)
        self.inner = inner
        self.bounds_cache = bounds_cache
        self.lanczos_tol = lanczos_tol
        self.lanczos_steps = lanczos_steps
        self.lanczos_seed = lanczos_seed
        self.nu_safety = nu_safety
        self.mu_safety = mu_safety
        if eig_bounds is not None:
            nu, mu = float(eig_bounds[0]), float(eig_bounds[1])
            if not (0.0 < nu < mu):
                raise SolverError(
                    f"need 0 < nu < mu for the polynomial interval, "
                    f"got [{nu}, {mu}]")
            self._bounds = (nu, mu)
        else:
            self._bounds = None
        self._user_bounds = eig_bounds is not None
        self._lanczos_info = None
        if inner == "diagonal":
            diag = self.stencil.c
            if np.any(diag[self.mask] <= 0.0):
                raise SolverError(
                    "polynomial preconditioning needs positive diagonal "
                    "entries on every ocean point"
                )
            safe = np.where(diag > 0.0, diag, 1.0)
            self._inv = np.where(self.mask, 1.0 / safe, 0.0)
        else:
            self._inv = np.where(self.mask, 1.0, 0.0)
        self._block_coeffs = None
        self._stacked_coeffs_cache = None
        self._inv_stack = None
        self._scratch = {}

    # ------------------------------------------------------------------
    # eigenbounds (lazy, memoized, backend-independent)
    # ------------------------------------------------------------------
    @property
    def eig_bounds(self):
        """The interval in use (``None`` before the first apply)."""
        return self._bounds

    def ensure_bounds(self):
        """Resolve ``(nu, mu)``, running the cached Lanczos if needed.

        The estimation context is pinned to the ``numpy`` kernel
        backend and carries a private event ledger: bounds (and hence
        polynomial coefficients) are identical for every backend, and
        the estimation never charges events to a solver's ledger.  The
        cache key matches the one the spectrally bounded solvers use
        for the same (stencil, inner preconditioner) pair, so a P-CSI
        run and this preconditioner share one Lanczos artifact.
        """
        if self._bounds is not None:
            return self._bounds
        # Imported lazily: precond -> solvers would otherwise be a
        # package-level import cycle.
        from repro.core.cache import get_cache
        from repro.precond.diagonal import DiagonalPreconditioner
        from repro.precond.identity import IdentityPreconditioner
        from repro.solvers.context import SerialContext
        from repro.solvers.lanczos import estimate_eigenbounds

        if self.inner == "diagonal":
            inner = DiagonalPreconditioner(self.stencil, kernels="numpy")
        else:
            inner = IdentityPreconditioner(self.stencil, kernels="numpy")
        ctx = SerialContext(self.stencil, inner, kernels="numpy")
        cache = (self.bounds_cache if self.bounds_cache is not None
                 else get_cache())
        nu, mu, info = estimate_eigenbounds(
            ctx, tol=self.lanczos_tol, steps=self.lanczos_steps,
            seed=self.lanczos_seed, nu_safety=self.nu_safety,
            mu_safety=self.mu_safety, phase="setup", cache=cache,
        )
        if not (0.0 < nu < mu):
            raise SolverError(
                f"Lanczos produced an unusable polynomial interval "
                f"[{nu}, {mu}]")
        self._bounds = (float(nu), float(mu))
        self._lanczos_info = info
        return self._bounds

    # ------------------------------------------------------------------
    # checkpoint hooks: resolved bounds travel with the snapshot so a
    # resumed solve never re-estimates (bit-identical continuation).
    # ------------------------------------------------------------------
    def snapshot_meta(self):
        return {
            "name": self.name,
            "degree": self.degree,
            "bounds": (list(self._bounds) if self._bounds is not None
                       else None),
        }

    def restore_meta(self, meta):
        bounds = meta.get("bounds")
        if bounds is not None:
            self._bounds = (float(bounds[0]), float(bounds[1]))

    # ------------------------------------------------------------------
    # block machinery
    # ------------------------------------------------------------------
    def _local(self, rank):
        if self._block_coeffs is None:
            if self.decomp is None:
                self._block_coeffs = [_BlockCoeffs(self.stencil, None)]
            else:
                self._block_coeffs = [
                    _BlockCoeffs(self.stencil, block)
                    for block in self.decomp.active_blocks
                ]
        return self._block_coeffs[0 if rank is None else rank]

    def _inv_block(self, rank):
        block = self._rank_block(rank)
        return self._inv if block is None else self._inv[block.slices]

    def _padded(self, key, shape, dtype):
        """Zero-bordered scratch of ``shape + 2`` in the space axes.

        The border is written once at allocation and never touched
        again (only the interior is assigned), which is exactly the
        zero-Dirichlet halo of the block-local operator.
        """
        ckey = (key, shape, np.dtype(dtype).str)
        pad = self._scratch.get(ckey)
        if pad is None:
            pad = np.zeros(shape, dtype=dtype)
            self._scratch[ckey] = pad
        return pad

    # ------------------------------------------------------------------
    # the polynomial core (one code path for every layout, so serial,
    # per-rank and batched applications are bit-identical)
    # ------------------------------------------------------------------
    def _chebyshev(self, rt, matvec, out, degree):
        """``out = q_degree(C) rt`` via the Chebyshev semi-iteration."""
        nu, mu = self._bounds
        theta = 0.5 * (mu + nu)
        delta = 0.5 * (mu - nu)
        sigma = theta / delta
        rho = 1.0 / sigma
        d = rt * (1.0 / theta)
        out[...] = d
        resid = rt.copy()
        scratch = np.empty_like(rt)
        for _ in range(degree):
            matvec(d, scratch)
            resid -= scratch
            rho_next = 1.0 / (2.0 * sigma - rho)
            d *= rho_next * rho
            np.multiply(resid, 2.0 * rho_next / delta, out=scratch)
            d += scratch
            rho = rho_next
            out += d
        return out

    def _polynomial(self, rt, matvec, out):
        return self._chebyshev(rt, matvec, out, self.degree)

    def _apply(self, r, inv, matvec, out):
        self.ensure_bounds()
        rt = inv * r
        return self._polynomial(rt, matvec, out)

    # ------------------------------------------------------------------
    # the three application layouts
    # ------------------------------------------------------------------
    def apply_block(self, rank, r_interior, out=None):
        if out is None:
            out = np.empty_like(r_interior)
        coeffs = self._local(rank)
        inv = self._bcast(self._inv_block(rank), r_interior)
        ny, nx = r_interior.shape[0], r_interior.shape[1]
        pad_shape = (ny + 2, nx + 2) + r_interior.shape[2:]
        pad = self._padded(0 if rank is None else rank, pad_shape,
                           r_interior.dtype)

        def matvec(v, res):
            pad[1:-1, 1:-1] = v
            self.kernels.stencil_apply_local(coeffs, pad, 1, res)
            res *= inv

        return self._apply(r_interior, inv, matvec, out)

    def apply_stack(self, r_stack, out=None):
        if self.decomp is None or not self.decomp.is_uniform:
            return super().apply_stack(r_stack, out=out)
        if out is None:
            out = np.empty_like(r_stack)
        coeffs = self._stacked()
        if self._inv_stack is None:
            self._inv_stack = self._interior_stack(self._inv)
        inv = self._bcast(self._inv_stack, r_stack)
        bny, bnx = self.decomp.uniform_block_shape()
        pad_shape = (r_stack.shape[0], bny + 2, bnx + 2) + r_stack.shape[3:]
        pad = self._padded("stack", pad_shape, r_stack.dtype)

        def matvec(v, res):
            pad[:, 1:-1, 1:-1] = v
            self.kernels.stencil_apply_stacked(coeffs, pad, 1, bny, bnx,
                                               res)
            res *= inv

        return self._apply(r_stack, inv, matvec, out)

    def apply_global(self, r, out=None):
        if out is None:
            out = np.empty_like(r)
        if self.decomp is None:
            return self.apply_block(None, r, out=out)
        # With a decomposition the operator is the *block-local* one --
        # the serial context must apply the identical M the distributed
        # engines apply, block by block.
        out[...] = 0.0
        for rank, block in enumerate(self.decomp.active_blocks):
            self.apply_block(rank, r[block.slices], out=out[block.slices])
        return out

    def _stacked(self):
        if self._stacked_coeffs_cache is None:
            locals_ = [self._local(rank)
                       for rank in range(len(self.decomp.active_blocks))]
            self._stacked_coeffs_cache = {
                name: np.stack([getattr(lc, name) for lc in locals_])
                for name in _COEFF_ORDER
            }
        return self._stacked_coeffs_cache

    # ------------------------------------------------------------------
    # accounting + caching
    # ------------------------------------------------------------------
    def _point_flops(self):
        return polynomial_point_flops(self.degree)

    def apply_flops(self, rank=None):
        per_point = self._point_flops()
        if rank is None or self.decomp is None:
            return per_point * self._max_block_points()
        return per_point * self.decomp.active_blocks[rank].npoints

    def setup_flops(self, rank=None):
        """Lanczos setup is memoized across solvers and processes by the
        artifact cache (the same entry P-CSI reads), so no per-instance
        setup cost is charged here."""
        return 0

    def cache_token(self):
        return (type(self).__name__, self.name, self.degree, self.inner,
                (tuple(self._bounds) if self._user_bounds else None),
                float(self.lanczos_tol),
                (None if self.lanczos_steps is None
                 else int(self.lanczos_steps)),
                self.lanczos_seed, float(self.nu_safety),
                float(self.mu_safety))


class NewtonChebyshevPreconditioner(ChebyshevPreconditioner):
    """Newton-refined Chebyshev preconditioner (Bergamaschi & Martinez).

    ``steps`` matrix-free Newton sweeps ``Z <- Z (2 I - C Z)`` on top of
    the degree-``degree`` Chebyshev seed.  Each sweep squares the error
    polynomial (``e <- e^2``), so after the first sweep ``t * q(t)`` is
    confined to ``(0, 1)`` on the covered spectrum: unconditionally SPD
    with quadratically improving clustering, at ``(degree + 1) *
    2^steps - 1`` block-local matvecs per apply.  Still zero reductions
    and zero halo exchanges.
    """

    name = "ncheby"

    def __init__(self, stencil, decomp=None, kernels=None, degree=2,
                 steps=1, **kwargs):
        super().__init__(stencil, decomp=decomp, kernels=kernels,
                         degree=degree, **kwargs)
        if int(steps) < 1:
            raise SolverError(
                f"Newton steps must be >= 1, got {steps}")
        self.steps = int(steps)

    def _polynomial(self, rt, matvec, out):
        out[...] = self._newton(self.steps, rt, matvec)
        return out

    def _newton(self, j, v, matvec):
        """``q_j(C) v`` with ``q_{j+1}(t) = q_j(t) (2 - t q_j(t))``."""
        if j == 0:
            return self._chebyshev(v, matvec, np.empty_like(v),
                                   self.degree)
        u = self._newton(j - 1, v, matvec)
        w = np.empty_like(v)
        matvec(u, w)
        t = self._newton(j - 1, w, matvec)
        u *= 2.0
        u -= t
        return u

    def _point_flops(self):
        return polynomial_point_flops(self.degree, self.steps)

    def snapshot_meta(self):
        meta = super().snapshot_meta()
        meta["steps"] = self.steps
        return meta

    def cache_token(self):
        return super().cache_token() + (self.steps,)
