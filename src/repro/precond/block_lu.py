"""Block-Jacobi preconditioning with exact sparse-LU block solves.

The comparator the paper positions EVP against (section 4.1): the same
block-diagonal approximation ``M = diag(B_1, ..., B_m^2)``, but each
``B_i x_i = y_i`` is solved through a pre-computed LU factorization.
Arithmetically this is the *same preconditioner* as EVP without the
epsilon-land embedding (so with identical blocks the two must agree to
round-off -- a test asserts exactly that on all-ocean tiles); the
difference is cost: LU's solve step is ``O(n^4)`` work per block versus
EVP's ``O(n^2)`` (paper section 4.2), which is why EVP wins.

Implementation notes: blocks are factorized with
``scipy.sparse.linalg.splu`` over the block's *ocean* unknowns only
(land rows are inert identity), so no land embedding is needed.
"""

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.core.fields import NEIGHBOR_OFFSETS
from repro.parallel.decomposition import _split_extent
from repro.precond.base import Preconditioner


class BlockLUPreconditioner(Preconditioner):
    """Block-Jacobi with exact LU block solves.

    Parameters mirror :class:`EVPBlockPreconditioner`: blocks come from
    ``decomp`` (the whole grid when ``None``) and may be sub-tiled via
    ``tile_size`` so the two block preconditioners can be compared at
    identical granularity.  ``tile_size=None`` (default) keeps whole
    process blocks -- the classical block-Jacobi configuration.
    """

    name = "block_lu"

    def __init__(self, stencil, decomp=None, tile_size=None, kernels=None):
        super().__init__(stencil, decomp=decomp, kernels=kernels)
        self.tile_size = tile_size
        self._tiles = self._make_tiles()
        self._factors = []
        for rank, j0, j1, i0, i1 in self._tiles:
            self._factors.append(self._factorize(j0, j1, i0, i1))
        self._mask_f = self.mask.astype(np.float64)
        self._mask_f_stack = None

    def _make_tiles(self):
        tiles = []
        if self.decomp is None:
            ny, nx = self.stencil.shape
            blocks = [(0, 0, ny, 0, nx)]
        else:
            blocks = [(rank, b.j0, b.j1, b.i0, b.i1)
                      for rank, b in enumerate(self.decomp.active_blocks)]
        for rank, j0, j1, i0, i1 in blocks:
            if self.tile_size is None:
                tiles.append((rank, j0, j1, i0, i1))
                continue
            ny, nx = j1 - j0, i1 - i0
            nty = max(1, -(-ny // self.tile_size))
            ntx = max(1, -(-nx // self.tile_size))
            for tj0, tj1 in _split_extent(ny, nty):
                for ti0, ti1 in _split_extent(nx, ntx):
                    tiles.append((rank, j0 + tj0, j0 + tj1, i0 + ti0, i0 + ti1))
        return tiles

    def _factorize(self, j0, j1, i0, i1):
        """LU-factorize one block's ocean submatrix.

        Returns ``(lu, ocean_flat_idx, shape)`` or ``None`` for all-land
        blocks.
        """
        sub = self.stencil.extract_block(j0, j1, i0, i1)
        my, mx = sub.shape
        mask = sub.mask.ravel()
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return None
        rows, cols, vals = [], [], []
        numbering = np.arange(my * mx).reshape(my, mx)
        jj, ii = np.meshgrid(np.arange(my), np.arange(mx), indexing="ij")
        rows.append(numbering.ravel())
        cols.append(numbering.ravel())
        vals.append(sub.c.ravel())
        for name, (dj, di) in NEIGHBOR_OFFSETS.items():
            coeff = getattr(sub, name)
            jn, in_ = jj + dj, ii + di
            ok = (0 <= jn) & (jn < my) & (0 <= in_) & (in_ < mx) & (coeff != 0.0)
            rows.append(numbering[jj[ok], ii[ok]])
            cols.append(numbering[jn[ok], in_[ok]])
            vals.append(coeff[ok])
        full = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(my * mx, my * mx),
        ).tocsc()
        ocean = full[np.ix_(idx, idx)].tocsc()
        return splu(ocean), idx, (my, mx)

    # ------------------------------------------------------------------
    def _solve_tile(self, factor, y_block):
        if factor is None:
            return np.zeros_like(y_block)
        lu, idx, shape = factor
        if y_block.ndim == 3:
            # Multi-RHS: one triangular solve per column on a contiguous
            # copy, so each column's arithmetic stream matches its
            # single-RHS solve exactly.
            nrhs = y_block.shape[2]
            out = np.zeros((shape[0] * shape[1], nrhs), dtype=y_block.dtype)
            for j in range(nrhs):
                flat = np.ascontiguousarray(y_block[..., j]).ravel()
                out[idx, j] = lu.solve(flat[idx])
            return out.reshape(shape + (nrhs,))
        flat = y_block.ravel()
        out = np.zeros_like(flat)
        out[idx] = lu.solve(flat[idx])
        return out.reshape(shape)

    def apply_global(self, r, out=None):
        if out is None:
            out = np.zeros_like(r)
        else:
            out[...] = 0.0
        for (rank, j0, j1, i0, i1), factor in zip(self._tiles, self._factors):
            out[j0:j1, i0:i1] = self._solve_tile(factor, r[j0:j1, i0:i1])
        out *= self._bcast(self._mask_f, out)
        return out

    def apply_block(self, rank, r_interior, out=None):
        block = self._rank_block(rank)
        if block is None:
            return self.apply_global(r_interior, out=out)
        if out is None:
            out = np.zeros_like(r_interior)
        else:
            out[...] = 0.0
        for (trank, j0, j1, i0, i1), factor in zip(self._tiles, self._factors):
            if trank != rank:
                continue
            y = r_interior[j0 - block.j0:j1 - block.j0, i0 - block.i0:i1 - block.i0]
            out[j0 - block.j0:j1 - block.j0,
                i0 - block.i0:i1 - block.i0] = self._solve_tile(factor, y)
        out *= self._bcast(self._mask_f[block.slices], out)
        return out

    def apply_stack(self, r_stack, out=None):
        """Stacked application: one pass over all tiles.

        LU back-substitution is inherently per-tile (scipy's ``splu``),
        so the solve itself stays a loop; the win over the per-rank path
        is visiting each tile exactly once instead of scanning the full
        tile list once per rank, and masking the whole stack in one
        multiply.
        """
        if self.decomp is None:
            return super().apply_stack(r_stack, out=out)
        if out is None:
            out = np.zeros_like(r_stack)
        else:
            out[...] = 0.0
        blocks = self.decomp.active_blocks
        for (rank, j0, j1, i0, i1), factor in zip(self._tiles, self._factors):
            block = blocks[rank]
            y = r_stack[rank, j0 - block.j0:j1 - block.j0,
                        i0 - block.i0:i1 - block.i0]
            out[rank, j0 - block.j0:j1 - block.j0,
                i0 - block.i0:i1 - block.i0] = self._solve_tile(factor, y)
        if self._mask_f_stack is None:
            self._mask_f_stack = self._interior_stack(self._mask_f)
        out *= self._bcast(self._mask_f_stack, out)
        return out

    # ------------------------------------------------------------------
    def apply_flops(self, rank=None):
        """LU triangular solves cost ``O(n^4)`` per ``n x n`` block.

        Charged as ``2 * npts^2`` per tile (two dense-equivalent
        triangular sweeps), the cost model under which the paper calls
        LU-based block preconditioning impractical.
        """
        def tile_cost(j0, j1, i0, i1):
            pts = (j1 - j0) * (i1 - i0)
            return 2 * pts * pts

        totals = {}
        for trank, j0, j1, i0, i1 in self._tiles:
            totals[trank] = totals.get(trank, 0) + tile_cost(j0, j1, i0, i1)
        if rank is not None:
            return totals.get(rank, 0)
        return max(totals.values())

    def setup_flops(self, rank=None):
        """Factorization cost ``O(n^6)``-ish charged as ``npts^3 / 3``."""
        totals = {}
        for trank, j0, j1, i0, i1 in self._tiles:
            pts = (j1 - j0) * (i1 - i0)
            totals[trank] = totals.get(trank, 0) + pts ** 3 // 3
        if rank is not None:
            return totals.get(rank, 0)
        return max(totals.values())
