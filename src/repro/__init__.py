"""repro: reproduction of the CESM-POP barotropic solver paper (SC '15).

Top-level convenience re-exports; the full API lives in the subpackages:

* :mod:`repro.grid` -- grids, topography, the elliptic operator,
* :mod:`repro.solvers` -- ChronGear, P-CSI, PCG, Lanczos bounds,
* :mod:`repro.precond` -- diagonal, block-EVP, block-LU,
* :mod:`repro.parallel` -- the simulated parallel machine,
* :mod:`repro.perfmodel` -- Yellowstone/Edison timing models,
* :mod:`repro.barotropic` -- implicit free-surface stepping + MiniPOP,
* :mod:`repro.verification` -- ensemble RMSZ consistency testing,
* :mod:`repro.experiments` -- one module per paper table/figure.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.grid import get_config, pop_0p1deg, pop_1deg, test_config
from repro.precond import make_preconditioner
from repro.precond.evp import evp_for_config
from repro.solvers import (
    ChronGearSolver,
    DistributedContext,
    PCGSolver,
    PCSISolver,
    SerialContext,
    make_solver,
)

__all__ = [
    "__version__",
    "get_config",
    "pop_1deg",
    "pop_0p1deg",
    "test_config",
    "make_preconditioner",
    "evp_for_config",
    "make_solver",
    "ChronGearSolver",
    "PCSISolver",
    "PCGSolver",
    "SerialContext",
    "DistributedContext",
]
