"""Auto-tuning: benchmark (solver, preconditioner, kernels, engine)
combos and persist the winner per grid + decomposition.

Following "Tuning Spectral Element Preconditioners for Parallel
Scalability", the right (solver, preconditioner+degree, kernel backend,
execution engine) combination is an empirical property of a grid and
its block decomposition, not something to hand-pick.  :func:`tune`
benchmarks a candidate matrix with real solves on the local machine,
ranks the converged candidates by wall time, and persists the winner in
the content-addressed artifact cache under a key derived from the grid
content digest and the decomposition signature.  ``repro solve`` (and
anything else calling :func:`load_tuned_choice`) then applies the
persisted choice automatically -- ``--no-tuned`` opts out.

Every candidate solves the *same* reference right-hand side to the same
tolerance, with the preconditioner always built against the
decomposition (the serial engine runs with ``decomp=`` so the
block-local operator -- and hence the iteration count -- is identical
across engines and the choice transfers between them).  Lanczos
eigenbounds are shared through the same cache, so spectral candidates
don't re-estimate per combo.
"""

import time

from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    decomp_signature,
    digest_of,
    get_cache,
)
from repro.core.errors import ConvergenceError, KernelError

#: Candidate axes of a full tuning run.
DEFAULT_SOLVERS = ("chrongear", "pcsi", "capcg")
DEFAULT_PRECONDS = ("diagonal", "evp", "cheby:2", "cheby:4", "ncheby:2:1")
DEFAULT_ENGINES = ("serial", "batched")

#: The reduced matrix behind ``repro tune --quick`` (CI smoke).
QUICK_SOLVERS = ("chrongear", "pcsi")
QUICK_PRECONDS = ("diagonal", "cheby:2")
QUICK_ENGINES = ("serial", "batched")

#: Preconditioner kinds that accept a ``bounds_cache=`` keyword.
_POLY_PREFIXES = ("cheby", "chebyshev", "ncheby", "newton")


def tuned_choice_key(config, decomp):
    """Cache key of the persisted choice for (grid, decomposition)."""
    return digest_of(CACHE_FORMAT_VERSION, "tuned-choice",
                     config.content_digest(), decomp_signature(decomp))


def load_tuned_choice(config, decomp, cache=None):
    """The persisted winning combo for (grid, decomposition), or None.

    Checks the memory tier first, then the disk tier (promoting a disk
    hit into memory).  The returned dict carries ``solver``,
    ``precond``, ``kernels``, ``engine``, ``blocks`` plus the benchmark
    numbers recorded at tuning time.
    """
    cache = cache if cache is not None else get_cache()
    key = tuned_choice_key(config, decomp)
    choice = cache.get_object("tuned", key)
    if choice is None:
        loaded = cache.load("tuned", key)
        if loaded is not None:
            choice = dict(loaded[1])
            cache.put_object("tuned", key, choice)
    return choice


def candidate_list(quick=False, kernels=None):
    """The candidate (solver, precond, kernels, engine) tuples to try.

    ``kernels=None`` consults the available backends: all of them for a
    full run, only the auto-preferred one under ``--quick``.
    """
    from repro.kernels import available_backends

    if kernels is None:
        backends = available_backends()
        kernels = (backends[:1] if quick else backends)
    solvers = QUICK_SOLVERS if quick else DEFAULT_SOLVERS
    preconds = QUICK_PRECONDS if quick else DEFAULT_PRECONDS
    engines = QUICK_ENGINES if quick else DEFAULT_ENGINES
    return [
        {"solver": s, "precond": p, "kernels": k, "engine": e}
        for s in solvers
        for p in preconds
        for k in kernels
        for e in engines
    ]


def _build_preconditioner(spec, config, decomp, kernels, cache):
    from repro.precond import make_preconditioner
    from repro.precond.evp import evp_for_config

    if spec == "evp":
        return evp_for_config(config, decomp=decomp, cache=cache,
                              kernels=kernels)
    kwargs = {"kernels": kernels}
    if spec.split(":", 1)[0] in _POLY_PREFIXES:
        kwargs["bounds_cache"] = cache
    return make_preconditioner(spec, config.stencil, decomp=decomp,
                               **kwargs)


def _benchmark(config, decomp, candidate, rhs, tol, max_iterations,
               cache, machine):
    """Run one candidate combo; returns a JSON-able result entry."""
    from repro.parallel import VirtualMachine
    from repro.perfmodel import get_machine, phase_times
    from repro.solvers import (
        SOLVER_REGISTRY,
        DistributedContext,
        SerialContext,
        make_solver,
    )
    from repro.solvers.spectral import SpectralBoundedSolver

    entry = dict(candidate)
    entry.update(converged=False, iterations=None, wall_time=None,
                 modeled_time=None, error=None)
    try:
        pre = _build_preconditioner(candidate["precond"], config, decomp,
                                    candidate["kernels"], cache)
        if candidate["engine"] == "serial":
            ctx = SerialContext(config.stencil, pre, decomp=decomp,
                                kernels=candidate["kernels"])
        else:
            vm = VirtualMachine(decomp, mask=config.mask,
                                engine=candidate["engine"])
            ctx = DistributedContext(config.stencil, pre, vm,
                                     kernels=candidate["kernels"])
        solver_kwargs = {"tol": tol, "max_iterations": max_iterations}
        solver_cls = SOLVER_REGISTRY[candidate["solver"].lower()]
        if issubclass(solver_cls, SpectralBoundedSolver):
            solver_kwargs["bounds_cache"] = cache
        solver = make_solver(candidate["solver"], ctx, **solver_kwargs)
        start = time.perf_counter()
        result = solver.solve(rhs)
        entry["wall_time"] = time.perf_counter() - start
        entry["converged"] = bool(result.converged)
        entry["iterations"] = int(result.iterations)
        t = phase_times(result.events, get_machine(machine),
                        decomp.num_active)
        entry["modeled_time"] = float(t.total)
    except (ConvergenceError, KernelError, ValueError) as exc:
        entry["error"] = str(exc)
    return entry


def tune(config, blocks=(4, 4), quick=False, candidates=None,
         tol=1.0e-12, max_iterations=2000, machine="yellowstone",
         cache=None, progress=None):
    """Benchmark the candidate matrix and persist the winner.

    Returns a report dict with ``entries`` (every candidate, in run
    order), ``ranked`` (converged candidates by ascending wall time),
    ``choice`` (the persisted winner, or ``None`` when nothing
    converged) and ``key`` (the cache key the choice lives under).
    """
    from repro.experiments.common import reference_rhs
    from repro.parallel import decompose

    cache = cache if cache is not None else get_cache()
    by, bx = int(blocks[0]), int(blocks[1])
    decomp = decompose(config.ny, config.nx, by, bx, mask=config.mask)
    rhs = reference_rhs(config)
    entries = []
    for candidate in (candidates if candidates is not None
                      else candidate_list(quick=quick)):
        entry = _benchmark(config, decomp, candidate, rhs, tol,
                           max_iterations, cache, machine)
        entries.append(entry)
        if progress is not None:
            progress(entry)
    ranked = sorted((e for e in entries if e["converged"]),
                    key=lambda e: e["wall_time"])
    key = tuned_choice_key(config, decomp)
    choice = None
    if ranked:
        best = ranked[0]
        choice = {
            "solver": best["solver"],
            "precond": best["precond"],
            "kernels": best["kernels"],
            "engine": best["engine"],
            "blocks": [by, bx],
            "wall_time": best["wall_time"],
            "modeled_time": best["modeled_time"],
            "iterations": best["iterations"],
            "tol": float(tol),
        }
        cache.put_object("tuned", key, choice)
        cache.store("tuned", key, meta=choice)
    return {"entries": entries, "ranked": ranked, "choice": choice,
            "key": key, "blocks": [by, bx]}


def render_table(report):
    """The ranked candidate table as printable text lines."""
    lines = [
        f"{'rank':>4s}  {'solver':<10s} {'precond':<12s} "
        f"{'kernels':<8s} {'engine':<8s} {'iters':>6s} "
        f"{'wall':>10s} {'modeled':>10s}"
    ]
    for rank, e in enumerate(report["ranked"], start=1):
        lines.append(
            f"{rank:>4d}  {e['solver']:<10s} {e['precond']:<12s} "
            f"{e['kernels']:<8s} {e['engine']:<8s} "
            f"{e['iterations']:>6d} {e['wall_time'] * 1e3:>8.1f}ms "
            f"{e['modeled_time'] * 1e3:>8.3f}ms"
        )
    failed = [e for e in report["entries"] if not e["converged"]]
    for e in failed:
        lines.append(
            f"   -  {e['solver']:<10s} {e['precond']:<12s} "
            f"{e['kernels']:<8s} {e['engine']:<8s} "
            f"FAILED: {e['error']}"
        )
    return lines
