"""Virtual parallel machine: the substrate the solvers run on.

POP distributes the global ocean grid over MPI ranks as rectangular
blocks, exchanges halos after stencil operations, and performs masked
global reductions for inner products.  This package reimplements that
substrate *in process*: the distributed algorithms execute for real over
the block decomposition (one simulated rank per block), and every
communication and computation event is recorded in an
:class:`~repro.parallel.events.EventLedger`.  The
:mod:`repro.perfmodel` package later converts those event counts into
modeled wall-clock time on a target machine (Yellowstone, Edison).

Contents
--------
* :mod:`repro.parallel.events` -- per-phase event counting,
* :mod:`repro.parallel.sfc` -- space-filling curves for rank placement,
* :mod:`repro.parallel.decomposition` -- block partition, land-block
  elimination, rank assignment,
* :mod:`repro.parallel.halo` -- halo exchange over block-local arrays,
* :mod:`repro.parallel.reduction` -- masked global sums with a binomial
  reduction-tree cost shape,
* :mod:`repro.parallel.vm` -- the :class:`VirtualMachine` façade
  (scatter / gather / exchange / reduce),
* :mod:`repro.parallel.faults` -- deterministic fault injectors that
  exercise the solver guardrails,
* :mod:`repro.parallel.resilience` -- in-solve fault tolerance: buddy
  replication for rank-loss recovery and ABFT checksum invariants for
  silent-data-corruption detection.
"""

from repro.parallel.events import EventLedger, EventCounts
from repro.parallel.sfc import hilbert_order, morton_order, sfc_sort_blocks
from repro.parallel.decomposition import (
    Block,
    Decomposition,
    decompose,
    decomposition_for_core_count,
)
from repro.parallel.halo import HaloExchanger
from repro.parallel.reduction import (
    binomial_tree_depth,
    masked_global_sum_blocks,
)
from repro.parallel.placement import (
    PlacementReport,
    balanced_rank_assignment,
    placement_for_block_size,
)
from repro.parallel.vm import VirtualMachine
from repro.parallel.faults import (
    FaultInjectionError,
    FaultInjector,
    HaloFault,
    ReductionFault,
    EigenboundsFault,
    RHSFault,
    RankDeathFault,
    BitflipFault,
    PipelineFault,
    WorkerCrashError,
    WorkerCrashFault,
    SlowRankFault,
    CacheCorruptFault,
    FAULTS,
    make_fault,
    parse_fault_spec,
)
from repro.parallel.resilience import (
    ResilienceEvent,
    RankLostError,
    SDCDetectedError,
    ResiliencePolicy,
    ResilienceRuntime,
    buddy_of,
)

__all__ = [
    "EventLedger",
    "EventCounts",
    "hilbert_order",
    "morton_order",
    "sfc_sort_blocks",
    "Block",
    "Decomposition",
    "decompose",
    "decomposition_for_core_count",
    "HaloExchanger",
    "binomial_tree_depth",
    "masked_global_sum_blocks",
    "VirtualMachine",
    "PlacementReport",
    "balanced_rank_assignment",
    "placement_for_block_size",
    "FaultInjectionError",
    "FaultInjector",
    "HaloFault",
    "ReductionFault",
    "EigenboundsFault",
    "RHSFault",
    "RankDeathFault",
    "BitflipFault",
    "PipelineFault",
    "WorkerCrashError",
    "WorkerCrashFault",
    "SlowRankFault",
    "CacheCorruptFault",
    "FAULTS",
    "make_fault",
    "parse_fault_spec",
    "ResilienceEvent",
    "RankLostError",
    "SDCDetectedError",
    "ResiliencePolicy",
    "ResilienceRuntime",
    "buddy_of",
]
