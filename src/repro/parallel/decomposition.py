"""Block decomposition of the global grid.

POP divides the global ``ny x nx`` grid into an ``mby x mbx`` lattice of
rectangular blocks and assigns one block per MPI rank (the typical
high-resolution configuration, and the one the paper's cost model in
section 2.2 assumes).  Blocks whose points are all land are *eliminated*
-- they are never assigned a rank and never participate in communication
(Dennis, IPDPS 2007).  The surviving ocean blocks are placed on ranks in
space-filling-curve order.

The paper's 0.1-degree experiments fix the block aspect ratio at 3:2 and
the land-block ratio at 0.25 across core counts (section 5.2);
:func:`decomposition_for_core_count` reproduces that recipe.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DecompositionError
from repro.core.validation import require_positive_int
from repro.parallel.sfc import sfc_sort_blocks

#: POP keeps two halo layers around every block so that one boundary
#: update per solver iteration suffices even with a non-diagonal
#: preconditioner (paper section 2.2).
DEFAULT_HALO_WIDTH = 2


@dataclass
class Block:
    """One rectangular block of the global domain.

    Attributes
    ----------
    index:
        Row-major index of the block in the block lattice.
    jb, ib:
        Lattice coordinates (block row, block column).
    j0, j1, i0, i1:
        Global half-open bounds: the block covers ``[j0:j1, i0:i1)``.
    rank:
        Assigned rank, or ``-1`` for an eliminated land block.
    n_ocean:
        Number of ocean points inside the block.
    """

    index: int
    jb: int
    ib: int
    j0: int
    j1: int
    i0: int
    i1: int
    rank: int = -1
    n_ocean: int = 0

    @property
    def ny(self):
        """Block height in grid points."""
        return self.j1 - self.j0

    @property
    def nx(self):
        """Block width in grid points."""
        return self.i1 - self.i0

    @property
    def npoints(self):
        """Total grid points in the block."""
        return self.ny * self.nx

    @property
    def slices(self):
        """``(slice_j, slice_i)`` selecting the block from a global field."""
        return (slice(self.j0, self.j1), slice(self.i0, self.i1))

    @property
    def is_active(self):
        """Whether the block survived land elimination."""
        return self.rank >= 0


def _split_extent(total, parts):
    """Split ``total`` points into ``parts`` nearly equal contiguous runs.

    Returns a list of ``(start, stop)`` pairs.  Earlier runs get the
    remainder, matching POP's convention of front-loading larger blocks.
    """
    base, extra = divmod(total, parts)
    if base == 0:
        raise DecompositionError(
            f"cannot split {total} points into {parts} blocks: blocks would be empty"
        )
    bounds = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class Decomposition:
    """An ``mby x mbx`` block partition of an ``ny x nx`` grid.

    Construct via :func:`decompose` (or
    :func:`decomposition_for_core_count`), not directly.
    """

    def __init__(self, ny, nx, mby, mbx, blocks, curve, halo_width, mask=None):
        self.ny = ny
        self.nx = nx
        self.mby = mby
        self.mbx = mbx
        self.blocks = blocks
        self.curve = curve
        self.halo_width = halo_width
        self.mask = mask
        self._lattice = {}
        for block in blocks:
            self._lattice[(block.jb, block.ib)] = block
        self.active_blocks = sorted(
            (b for b in blocks if b.is_active), key=lambda b: b.rank
        )
        # Uniformity and critical-path sizes never change after
        # construction, and are queried on every blocked-operator apply
        # or field allocation; memoize the block scans.
        self._is_uniform = None
        self._max_block_shape = None
        self._max_block_points = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_blocks(self):
        """Total lattice blocks, including eliminated land blocks."""
        return len(self.blocks)

    @property
    def num_active(self):
        """Number of ranks, i.e. blocks that survived land elimination."""
        return len(self.active_blocks)

    @property
    def land_block_ratio(self):
        """Fraction of lattice blocks eliminated as all-land."""
        return 1.0 - self.num_active / self.num_blocks

    def block_at(self, jb, ib):
        """Block at lattice coordinates, or ``None`` outside the lattice."""
        return self._lattice.get((jb, ib))

    def block_of_point(self, j, i):
        """The block containing global point ``(j, i)``."""
        if not (0 <= j < self.ny and 0 <= i < self.nx):
            raise DecompositionError(f"point ({j}, {i}) outside {self.ny}x{self.nx} grid")
        for block in self.blocks:
            if block.j0 <= j < block.j1 and block.i0 <= i < block.i1:
                return block
        raise DecompositionError(f"no block contains point ({j}, {i})")  # pragma: no cover

    def neighbors(self, block):
        """Mapping direction -> neighboring :class:`Block` (or ``None``).

        Directions are the eight compass strings of
        :data:`repro.core.fields.NEIGHBOR_OFFSETS`.  Neighbors beyond the
        lattice edge are ``None``; eliminated land blocks are returned
        as-is (callers decide whether to exchange with them -- POP skips
        messages to eliminated blocks since their halo data is all land).
        """
        out = {}
        offsets = {
            "n": (1, 0), "s": (-1, 0), "e": (0, 1), "w": (0, -1),
            "ne": (1, 1), "nw": (1, -1), "se": (-1, 1), "sw": (-1, -1),
        }
        for direction, (dj, di) in offsets.items():
            out[direction] = self.block_at(block.jb + dj, block.ib + di)
        return out

    # ------------------------------------------------------------------
    # critical-path metrics (feed the performance model)
    # ------------------------------------------------------------------
    def max_block_shape(self):
        """``(ny, nx)`` of the largest active block.

        Memoized: block shapes are fixed at construction and this is
        queried on every field allocation.
        """
        if self._max_block_shape is None:
            if not self.active_blocks:
                raise DecompositionError(
                    "decomposition has no active blocks")
            self._max_block_shape = (
                max(b.ny for b in self.active_blocks),
                max(b.nx for b in self.active_blocks),
            )
        return self._max_block_shape

    def max_block_points(self):
        """Grid points in the largest active block (critical-path size)."""
        if self._max_block_points is None:
            self._max_block_points = max(
                b.npoints for b in self.active_blocks)
        return self._max_block_points

    # ------------------------------------------------------------------
    # uniformity (enables the batched execution engine)
    # ------------------------------------------------------------------
    @property
    def is_uniform(self):
        """Whether every active block has the same ``(ny, nx)`` shape.

        Uniform decompositions (the common case when block counts divide
        the grid evenly) allow same-shape per-rank tiles to be stacked
        into one dense ``(p, bny, bnx)`` array -- the structure-of-arrays
        layout the batched execution engine runs on.
        """
        if self._is_uniform is None:
            if not self.active_blocks:
                self._is_uniform = False
            else:
                first = self.active_blocks[0]
                self._is_uniform = all(
                    b.ny == first.ny and b.nx == first.nx
                    for b in self.active_blocks)
        return self._is_uniform

    @property
    def supports_batched(self):
        """Whether the batched engine can execute this decomposition.

        Requires uniform block shapes *and* no land-eliminated blocks:
        with eliminated blocks the per-rank path remains the reference
        (the batched engine falls back cleanly).
        """
        return self.is_uniform and self.num_active == self.num_blocks

    def uniform_block_shape(self):
        """``(bny, bnx)`` shared by all active blocks.

        Raises :class:`DecompositionError` if the decomposition is
        ragged.
        """
        if not self.is_uniform:
            raise DecompositionError(
                "decomposition is ragged: active blocks have differing "
                "shapes, so there is no uniform block shape"
            )
        first = self.active_blocks[0]
        return first.ny, first.nx

    def halo_words_per_exchange(self):
        """Words the critical-path rank sends per halo update.

        With halo width ``h`` and a block of ``bny x bnx`` points, POP's
        4-message exchange moves ``h`` rows north and south and ``h``
        columns (including corners) east and west:
        ``2*h*bnx + 2*h*(bny + 2*h)`` words.  For ``h = 2`` and square
        blocks of side ``n`` this is the paper's ``8n`` (plus the corner
        term), Eq. (2).
        """
        bny, bnx = self.max_block_shape()
        h = self.halo_width
        return 2 * h * bnx + 2 * h * (bny + 2 * h)

    def messages_per_exchange(self):
        """Point-to-point messages per rank per halo update (POP: 4)."""
        return 4

    def describe(self):
        """One-line human-readable summary."""
        bny, bnx = self.max_block_shape()
        return (
            f"{self.ny}x{self.nx} grid -> {self.mby}x{self.mbx} blocks "
            f"(max {bny}x{bnx}), {self.num_active}/{self.num_blocks} active, "
            f"land-block ratio {self.land_block_ratio:.2f}, curve={self.curve}"
        )

    def __repr__(self):
        return f"Decomposition({self.describe()})"


def decompose(ny, nx, mby, mbx, mask=None, curve="hilbert",
              halo_width=DEFAULT_HALO_WIDTH, eliminate_land=True):
    """Partition an ``ny x nx`` grid into ``mby x mbx`` blocks.

    Parameters
    ----------
    ny, nx:
        Global grid shape.
    mby, mbx:
        Block lattice shape (blocks in y and in x).
    mask:
        Optional boolean ocean mask of shape ``(ny, nx)``.  When given
        and ``eliminate_land`` is true, blocks containing no ocean points
        are eliminated (assigned no rank).
    curve:
        Space-filling curve used to order active blocks onto ranks:
        ``"hilbert"`` (default), ``"morton"`` or ``"rowmajor"``.
    halo_width:
        Ghost-cell rings per block (POP default 2).
    eliminate_land:
        Disable to keep all-land blocks on ranks (the no-elimination
        baseline of the land-elimination ablation).

    Returns
    -------
    Decomposition
    """
    ny = require_positive_int(ny, "ny")
    nx = require_positive_int(nx, "nx")
    mby = require_positive_int(mby, "mby")
    mbx = require_positive_int(mbx, "mbx")
    halo_width = require_positive_int(halo_width, "halo_width")
    if mask is not None:
        mask = np.asarray(mask)
        if mask.shape != (ny, nx):
            raise DecompositionError(
                f"mask shape {mask.shape} does not match grid ({ny}, {nx})"
            )

    j_bounds = _split_extent(ny, mby)
    i_bounds = _split_extent(nx, mbx)

    blocks = []
    index = 0
    for jb in range(mby):
        for ib in range(mbx):
            j0, j1 = j_bounds[jb]
            i0, i1 = i_bounds[ib]
            if mask is not None:
                n_ocean = int(np.count_nonzero(mask[j0:j1, i0:i1]))
            else:
                n_ocean = (j1 - j0) * (i1 - i0)
            blocks.append(Block(index, jb, ib, j0, j1, i0, i1, rank=-1,
                                n_ocean=n_ocean))
            index += 1

    # Rank assignment: walk the lattice in space-filling-curve order and
    # hand ranks to blocks that keep at least one ocean point.
    lattice = {(b.jb, b.ib): b for b in blocks}
    rank = 0
    for jb, ib in sfc_sort_blocks(mby, mbx, curve):
        block = lattice[(jb, ib)]
        if eliminate_land and mask is not None and block.n_ocean == 0:
            continue
        block.rank = rank
        rank += 1
    if rank == 0:
        raise DecompositionError("all blocks were eliminated: mask has no ocean points")

    return Decomposition(ny, nx, mby, mbx, blocks, curve, halo_width, mask=mask)


def _factor_pairs(p):
    """All ``(a, b)`` with ``a * b == p``."""
    pairs = []
    for a in range(1, int(np.sqrt(p)) + 1):
        if p % a == 0:
            pairs.append((a, p // a))
            if a != p // a:
                pairs.append((p // a, a))
    return pairs


def decomposition_for_core_count(ny, nx, cores, mask=None, aspect=1.5,
                                 curve="hilbert", halo_width=DEFAULT_HALO_WIDTH,
                                 eliminate_land=True):
    """Build the decomposition POP would use for ``cores`` ranks.

    Chooses the ``mby x mbx`` factorization of ``cores`` whose blocks
    have width/height ratio closest to ``aspect`` (the paper's
    high-resolution runs fix a 3:2 ratio, ``aspect = 1.5``).  With land
    elimination the number of *active* ranks will be smaller than
    ``cores``; experiments report ``Decomposition.num_active`` as the
    core count actually used, mirroring how POP releases unused ranks.
    """
    cores = require_positive_int(cores, "cores")
    best = None
    best_err = None
    for mby, mbx in _factor_pairs(cores):
        if mby > ny or mbx > nx:
            continue
        bny = ny / mby
        bnx = nx / mbx
        err = abs((bnx / bny) - aspect)
        if best_err is None or err < best_err:
            best_err = err
            best = (mby, mbx)
    if best is None:
        raise DecompositionError(
            f"no factorization of {cores} fits a {ny}x{nx} grid"
        )
    mby, mbx = best
    return decompose(ny, nx, mby, mbx, mask=mask, curve=curve,
                     halo_width=halo_width, eliminate_land=eliminate_land)
