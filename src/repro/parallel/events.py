"""Event instrumentation for the virtual machine.

Modeled wall-clock time in this reproduction is always computed from
*counted events*, never from closed-form iteration estimates: the solver
contexts record, per logical phase, how many floating-point operations
the critical-path rank executed, how many halo exchanges it took part in
(and their volume), and how many global reductions were issued.  The
analytic machine models in :mod:`repro.perfmodel` then price those
events.

Bulk-synchronous timing model
-----------------------------
POP's barotropic solver is bulk synchronous: every rank performs the same
sequence of operations on its own block, separated by halo exchanges and
all-reduces.  Time per step therefore equals the *maximum* over ranks of
local work plus the shared communication cost.  The ledger tracks the
critical rank's flops directly (callers pass per-rank maxima), so
``flops`` here means "flops on the slowest active rank".

Phases
------
Events carry a free-form phase label.  The solvers use the labels that
match the paper's cost decomposition (section 2.2):

* ``"computation"``   -- vector ops and the stencil matrix-vector product,
* ``"preconditioning"`` -- application of M^-1,
* ``"boundary"``      -- halo updates,
* ``"reduction"``     -- masked global sums (including the masking flops),
* ``"setup"``         -- one-time costs (preconditioner factorization,
  Lanczos eigenvalue estimation),
* ``"recovery"``      -- work burned by failed solve attempts and the
  re-estimation that follows (see the P-CSI recovery policy); priced as
  a one-time cost by the machine models, like setup.
* ``"resilience"``    -- the in-solve fault-tolerance layer: buddy
  replica sends, ABFT checksum verification, and work rolled back
  after a detected rank loss or silent corruption (see
  :mod:`repro.parallel.resilience`), so its overhead is measurable.
"""

from dataclasses import dataclass, field


PHASES = ("computation", "preconditioning", "boundary", "reduction",
          "setup", "resilience")


@dataclass
class EventCounts:
    """Raw event totals for one phase.

    Attributes
    ----------
    flops:
        Floating-point operations executed by the critical-path rank.
    halo_exchanges:
        Number of halo-update rounds (each round is 4 point-to-point
        messages per rank in POP's 2-D decomposition).
    halo_words:
        Total 8-byte words sent by the critical-path rank across all
        recorded halo exchanges.
    allreduces:
        Number of global reductions issued.
    allreduce_words:
        Total words contributed per rank across all recorded reductions
        (2 per ChronGear iteration: rho and delta).
    """

    flops: int = 0
    halo_exchanges: int = 0
    halo_words: int = 0
    allreduces: int = 0
    allreduce_words: int = 0

    def __add__(self, other):
        return EventCounts(
            flops=self.flops + other.flops,
            halo_exchanges=self.halo_exchanges + other.halo_exchanges,
            halo_words=self.halo_words + other.halo_words,
            allreduces=self.allreduces + other.allreduces,
            allreduce_words=self.allreduce_words + other.allreduce_words,
        )


class EventLedger:
    """Accumulates :class:`EventCounts` per phase.

    A ledger is attached to a solver context; each solve appends to it.
    ``split()`` snapshots allow measuring a single solve inside a longer
    run.
    """

    def __init__(self):
        self._phases = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_flops(self, phase, count):
        """Record ``count`` flops on the critical-path rank."""
        self._bucket(phase).flops += int(count)

    def record_halo(self, phase, words, exchanges=1):
        """Record ``exchanges`` halo rounds moving ``words`` words total."""
        bucket = self._bucket(phase)
        bucket.halo_exchanges += int(exchanges)
        bucket.halo_words += int(words)

    def record_allreduce(self, phase, words=1):
        """Record one global reduction of ``words`` words per rank."""
        bucket = self._bucket(phase)
        bucket.allreduces += 1
        bucket.allreduce_words += int(words)

    def merge(self, phases):
        """Add a per-phase ``{name: EventCounts}`` mapping into the ledger.

        Used to *replay* memoized event streams -- e.g. a cached Lanczos
        estimation's setup events -- so downstream timing models observe
        exactly the totals a fresh run would have recorded.
        """
        for name, counts in phases.items():
            self._phases[name] = self.counts(name) + counts

    def transfer(self, snapshot, phase):
        """Move everything recorded since ``snapshot`` into ``phase``.

        Used by the P-CSI recovery policy: a failed attempt's events
        were recorded under the usual phases (computation, boundary,
        ...), but the work was recovery overhead, not productive solve
        time -- re-charging it to a dedicated phase keeps both the
        per-phase breakdown of the eventual successful solve and the
        total modeled cost honest.  Events already in ``phase`` within
        the window stay put.  Returns the moved :class:`EventCounts`
        total.
        """
        moved = EventCounts()
        for name, delta in self.since(snapshot).items():
            if name == phase or not any(vars(delta).values()):
                continue
            bucket = self._bucket(name)
            bucket.flops -= delta.flops
            bucket.halo_exchanges -= delta.halo_exchanges
            bucket.halo_words -= delta.halo_words
            bucket.allreduces -= delta.allreduces
            bucket.allreduce_words -= delta.allreduce_words
            moved = moved + delta
        if any(vars(moved).values()):
            self._phases[phase] = self.counts(phase) + moved
        return moved

    def _bucket(self, phase):
        if phase not in self._phases:
            self._phases[phase] = EventCounts()
        return self._phases[phase]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def phases(self):
        """Mapping of phase name to :class:`EventCounts` (live view)."""
        return self._phases

    def counts(self, phase):
        """Counts for ``phase`` (zeros if the phase never recorded)."""
        return self._phases.get(phase, EventCounts())

    def total(self):
        """Sum of counts across every phase."""
        out = EventCounts()
        for counts in self._phases.values():
            out = out + counts
        return out

    def snapshot(self):
        """An independent copy of the current per-phase totals."""
        return {name: EventCounts(**vars(c)) for name, c in self._phases.items()}

    def since(self, snapshot):
        """Per-phase difference between now and an earlier ``snapshot``."""
        out = {}
        names = set(self._phases) | set(snapshot)
        for name in names:
            now = self.counts(name)
            then = snapshot.get(name, EventCounts())
            out[name] = EventCounts(
                flops=now.flops - then.flops,
                halo_exchanges=now.halo_exchanges - then.halo_exchanges,
                halo_words=now.halo_words - then.halo_words,
                allreduces=now.allreduces - then.allreduces,
                allreduce_words=now.allreduce_words - then.allreduce_words,
            )
        return out

    def reset(self):
        """Clear all recorded events."""
        self._phases.clear()

    def __repr__(self):
        parts = ", ".join(
            f"{name}={vars(counts)}" for name, counts in sorted(self._phases.items())
        )
        return f"EventLedger({parts})"
