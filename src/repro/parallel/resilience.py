"""In-solve fault tolerance: buddy replication + ABFT SDC detection.

Running the barotropic solver on tens of thousands of ranks makes two
failure modes routine that a workstation never sees: a rank dies
mid-iteration (node failure), and a bit flips silently in a halo
payload or Krylov vector (silent data corruption, SDC).  This module
gives the virtual machine a local-failure-local-recovery story for
both, so neither requires a global restart:

* **Buddy replication** -- at every convergence-check boundary that
  falls on the replication cadence, each rank's block state (iterate,
  recurrence vectors, solver scalars) is deep-copied in memory.  The
  copy models each rank shipping its block to a *buddy rank* --
  :func:`buddy_of` picks the diametrically opposite rank of the
  decomposition so a single node loss never takes out a block and its
  replica together -- and the send is charged to the ``"resilience"``
  ledger phase.  When a :class:`~repro.parallel.faults.RankDeathFault`
  kills a rank, the guarded convergence loop restores the lost block
  (and every survivor's matching snapshot) from the replica and
  resumes from the captured iteration: no other rank recomputes
  anything it had not already passed.

* **ABFT checksums** -- three algorithm-based fault-tolerance
  invariants run alongside the solve: (1) halo-payload checksums
  computed when an exchange completes and re-verified after the
  (fault-injectable) delivery step, modelling a sender checksum
  carried with the message; (2) a weighted row-sum invariant on the
  operator apply, ``sum(A x) == dot(A 1, x)`` for the symmetric
  barotropic operator, verified every ``abft_every``-th matvec; and
  (3) a residual cross-check ``b - A x`` vs the recurrence residual
  at every replication point, so a replica is only captured after the
  state it copies has been verified.  Any violation raises
  :class:`SDCDetectedError`; the loop rolls back to the last verified
  replica, re-executes, and records the event as a structured
  recovery diagnosis.

Replicas restore bit-identically (deep copies of the exact float
state), so a solve that survives an injected fault produces the same
iterate, byte for byte, as an undisturbed run -- the property
``tests/test_resilience.py`` pins across both engines.
"""

import time

import numpy as np

from repro.core.errors import SolverError

__all__ = [
    "ResilienceEvent",
    "RankLostError",
    "SDCDetectedError",
    "ResiliencePolicy",
    "ResilienceRuntime",
    "buddy_of",
]


class ResilienceEvent(SolverError):
    """A detected in-solve fault (rank loss or silent corruption).

    Raised from inside the virtual machine or the ABFT checks; the
    guarded convergence loop catches it, rolls the solve back to the
    last verified replica and resumes.  ``rank`` names the failed rank
    when known; ``detail`` carries structured context for the recovery
    diagnosis.
    """

    def __init__(self, message, rank=None, detail=None):
        super().__init__(message)
        self.rank = rank
        self.detail = dict(detail or {})


class RankLostError(ResilienceEvent):
    """A simulated rank died; its block state is gone."""


class SDCDetectedError(ResilienceEvent):
    """An ABFT invariant failed: the state can no longer be trusted."""


def buddy_of(rank, num_ranks):
    """Buddy rank holding ``rank``'s replica.

    The buddy sits half the rank space away, so neighbors in the
    decomposition (which tend to share hardware) never hold each
    other's replicas.
    """
    if num_ranks <= 1:
        return 0
    return (rank + max(1, num_ranks // 2)) % num_ranks


class ResiliencePolicy:
    """Knobs of the in-solve fault-tolerance layer.

    Parameters
    ----------
    replicate_every:
        Minimum iterations between replica captures.  Captures only
        happen at convergence-check boundaries, so the effective
        cadence is ``replicate_every`` rounded up to the solver's
        ``check_freq``; rank loss and detected corruption roll back at
        most this many iterations.
    abft:
        Enable the SDC checks (halo checksums, matvec row sums, the
        residual cross-check).  Replication alone still recovers rank
        deaths.
    abft_every:
        Verify the matvec row-sum invariant on every Nth operator
        apply.
    rowsum_tol:
        Relative tolerance of the row-sum invariant (scaled by the
        magnitude of the exact sum).
    crosscheck_tol:
        Relative tolerance of the true-vs-recurrence residual
        cross-check (scaled by ``||b||``); legitimate recurrence drift
        stays orders of magnitude below it.
    max_rollbacks:
        Rollback budget for one solve; once spent, the next event
        surfaces as a failed solve with a structured diagnosis.
    """

    def __init__(self, replicate_every=10, abft=True, abft_every=4,
                 rowsum_tol=1.0e-7, crosscheck_tol=1.0e-6,
                 max_rollbacks=8):
        self.replicate_every = int(replicate_every)
        self.abft = bool(abft)
        self.abft_every = int(abft_every)
        self.rowsum_tol = float(rowsum_tol)
        self.crosscheck_tol = float(crosscheck_tol)
        self.max_rollbacks = int(max_rollbacks)
        if self.replicate_every < 1:
            raise SolverError("resilience: replicate_every must be >= 1")
        if self.abft_every < 1:
            raise SolverError("resilience: abft_every must be >= 1")
        if self.max_rollbacks < 0:
            raise SolverError("resilience: max_rollbacks must be >= 0")
        # Non-positive tolerances fail every check and burn the whole
        # rollback budget replaying healthy state -- reject them here
        # instead of diagnosing the resulting "corruption" downstream.
        if not self.rowsum_tol > 0.0:
            raise SolverError("resilience: rowsum_tol must be > 0")
        if not self.crosscheck_tol > 0.0:
            raise SolverError("resilience: crosscheck_tol must be > 0")

    @classmethod
    def from_any(cls, value):
        """Coerce ``True``/dict/:class:`ResiliencePolicy` to a policy."""
        if isinstance(value, ResiliencePolicy):
            return value
        if value is True:
            return cls()
        if isinstance(value, dict):
            try:
                return cls(**value)
            except TypeError as exc:
                raise SolverError(
                    f"bad resilience policy {value!r}: {exc}") from None
        raise SolverError(
            f"resilience must be True, a dict of policy fields or a "
            f"ResiliencePolicy, got {type(value).__name__}")

    def to_dict(self):
        return {
            "replicate_every": self.replicate_every,
            "abft": self.abft,
            "abft_every": self.abft_every,
            "rowsum_tol": self.rowsum_tol,
            "crosscheck_tol": self.crosscheck_tol,
            "max_rollbacks": self.max_rollbacks,
        }


def _copy_value(value):
    """Deep-copy one piece of solver state for the replica.

    Understands the shapes solver state dicts are built from: block
    fields (layout-preserving ``copy``), numpy arrays, containers of
    either, and immutable scalars.
    """
    if hasattr(value, "locals_"):
        return value.copy()
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, dict):
        return {k: _copy_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_copy_value(v) for v in value)
    return value


def _field_words(value):
    """Words a piece of state contributes to the buddy-send payload."""
    if hasattr(value, "locals_"):
        widths = [int(np.prod(arr.shape)) for arr in value.locals_]
        return max(widths) if widths else 0
    if isinstance(value, np.ndarray):
        return int(value.size)
    if isinstance(value, dict):
        return sum(_field_words(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_field_words(v) for v in value)
    return 0


class ResilienceRuntime:
    """Per-solve state of the fault-tolerance layer.

    Built by the guarded convergence loop when ``solve(resilience=...)``
    is passed, attached to the virtual machine for the duration of the
    loop (``vm.resilience``), and detached when the solve returns.  It
    owns the replica, the ABFT checks, the rollback budget, the
    resilience counters surfaced in ``result.extra["resilience"]``,
    and the self-timed overhead measurement the fault-smoke benchmark
    asserts against.
    """

    def __init__(self, policy, context):
        vm = getattr(context, "vm", None)
        if vm is None:
            raise SolverError(
                "resilience requires a distributed context over a "
                "VirtualMachine (engine 'perrank' or 'batched'); the "
                "serial context has no ranks to replicate")
        self.policy = policy
        self.context = context
        self.vm = vm
        self.counters = {
            "replications": 0,
            "rollbacks": 0,
            "rank_deaths": 0,
            "sdc_detected": 0,
            "halo_checks": 0,
            "rowsum_checks": 0,
            "residual_crosschecks": 0,
        }
        self.seconds = 0.0
        self.recoveries = []
        self._replica = None
        self._mark = None
        self._last_capture = None
        self._matvecs = 0
        self._rowsum = None
        self._rowsum_stack = None
        self._bnorm = None
        self._state_words = None
        self._uniform = None
        self._intercepted = set()

    @classmethod
    def create(cls, spec, context):
        return cls(ResiliencePolicy.from_any(spec), context)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self):
        """Bind to the virtual machine for the duration of one solve."""
        self.vm.resilience = self

    def detach(self):
        if getattr(self.vm, "resilience", None) is self:
            self.vm.resilience = None

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    def capture(self, state, meta, history_len, solver_meta=None):
        """Replicate the verified solver state to the buddy ranks.

        ``meta`` is the loop's checkpoint-style metadata (iteration
        counters, norms); ``history_len`` pins how much of the residual
        history the replica covers.  The buddy send is charged to the
        ``"resilience"`` ledger phase.
        """
        t0 = time.perf_counter()
        self._replica = (
            _copy_value(state),
            _copy_value(meta),
            _copy_value(solver_meta),
            int(history_len),
        )
        self._last_capture = int(meta.get("iterations", 0))
        self.counters["replications"] += 1
        ledger = self.vm.ledger
        if self._state_words is None:
            # State shapes are fixed for the lifetime of one solve, so
            # the payload size is computed once, not per capture.
            self._state_words = _field_words(state)
        words = self._state_words
        if words:
            ledger.record_halo("resilience", words=words, exchanges=1)
            # The buddy also memcpy's the payload into its replica slot.
            ledger.record_flops("resilience", words)
        self._mark = ledger.snapshot()
        self.seconds += time.perf_counter() - t0

    def capture_due(self, iterations):
        """Is a replication (and cross-check) due at this boundary?"""
        if self._last_capture is None:
            return True
        return iterations - self._last_capture >= self.policy.replicate_every

    def verify_and_capture(self, state, meta, history_len,
                           solver_meta=None):
        """Cross-check the residual, then replicate the verified state.

        Ordering matters: the replica must never copy corrupted state,
        so the ABFT residual cross-check runs first and a violation
        (raised as :class:`SDCDetectedError`) leaves the previous
        replica in place for the rollback.
        """
        if self.policy.abft and self._last_capture is not None:
            # The very first capture sees the freshly initialised state,
            # where the recurrence residual *is* ``b - A x`` by
            # construction -- cross-checking it against itself would
            # spend a matvec to learn nothing.
            self.crosscheck_residual(state)
        self.capture(state, meta, history_len, solver_meta=solver_meta)

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def can_rollback(self):
        return (self._replica is not None
                and self.counters["rollbacks"] < self.policy.max_rollbacks)

    def intercept(self, reason, iterations):
        """Should a breakdown/nonfinite at this iteration be treated as
        suspected SDC and rolled back?

        One-shot per ``(reason, iteration)``: if the same failure
        recurs after a rollback replayed the exact same state, it is a
        genuine numerical event and surfaces through the normal
        diagnosis path instead.
        """
        key = (reason, int(iterations))
        if key in self._intercepted or not self.can_rollback():
            return False
        self._intercepted.add(key)
        return True

    def suspect(self, message, rank=None, detail=None):
        """Wrap a suspected corruption into an :class:`SDCDetectedError`."""
        self.counters["sdc_detected"] += 1
        return SDCDetectedError(message, rank=rank, detail=detail)

    def on_rank_death(self, rank):
        """Called by the vm when an injected rank death fires."""
        self.counters["rank_deaths"] += 1
        raise RankLostError(
            f"rank {rank} died mid-iteration; block state lost",
            rank=rank,
            detail={"buddy": buddy_of(rank, self.vm.num_ranks)})

    def rollback(self, event, detected_at):
        """Restore the last verified replica after ``event``.

        Returns ``(state, meta, solver_meta, history_len)`` -- fresh
        deep copies, so the replica survives further rollbacks -- or
        ``None`` when the budget is spent (the loop then fails the
        solve with a structured diagnosis).  Work performed since the
        replica was captured is re-charged from its original ledger
        phases to ``"resilience"``, so rolled-back progress shows up
        as fault-tolerance overhead rather than useful computation.
        """
        if not self.can_rollback():
            return None
        t0 = time.perf_counter()
        state, meta, solver_meta, history_len = self._replica
        restored = (_copy_value(state), _copy_value(meta),
                    _copy_value(solver_meta), history_len)
        self.counters["rollbacks"] += 1
        if self._mark is not None:
            self.vm.ledger.transfer(self._mark, "resilience")
            self._mark = self.vm.ledger.snapshot()
        self.recoveries.append(self._recovery_doc(event, detected_at,
                                                  meta.get("iterations", 0)))
        self.seconds += time.perf_counter() - t0
        return restored

    def _recovery_doc(self, event, detected_at, resumed_from):
        from repro.solvers.health import RANK_LOST, SDC_DETECTED

        kind = (RANK_LOST if isinstance(event, RankLostError)
                else SDC_DETECTED)
        data = dict(event.detail)
        data["resumed_from_iteration"] = int(resumed_from)
        if event.rank is not None:
            data["rank"] = int(event.rank)
        return {
            "kind": kind,
            "message": str(event),
            "iteration": int(detected_at),
            "recovered": True,
            "data": data,
        }

    def kind_of(self, event):
        from repro.solvers.health import RANK_LOST, SDC_DETECTED

        return (RANK_LOST if isinstance(event, RankLostError)
                else SDC_DETECTED)

    # ------------------------------------------------------------------
    # ABFT checks
    # ------------------------------------------------------------------
    def ring_checksums(self, field):
        """Per-rank checksums of the halo rings of ``field``.

        Exact floating-point sums over the ring cells only -- interior
        corruption must not trip the *halo* check (the residual
        cross-check owns that), so the ring is summed piecewise rather
        than as ``local - interior``.
        """
        h = self.vm.decomp.halo_width
        locals_ = [field.local(rank) for rank in range(self.vm.num_ranks)]
        if self._uniform is None:
            # Block-shape uniformity is a property of the decomposition
            # alone (a field's RHS width is constant across ranks), so
            # one scan settles it for every field of this solve.
            shape = locals_[0].shape[:2]
            self._uniform = all(loc.shape[:2] == shape for loc in locals_)
        if self._uniform:
            # Uniform decomposition: one stacked reduction instead of a
            # python loop over ranks.  Each rank's slice occupies the
            # same contiguous layout it had standalone, so the per-rank
            # pairwise summation order -- and hence the checksum -- is
            # unchanged.  This keeps the halo check O(1) numpy calls at
            # the 256-rank strong-scaling limit the paper targets.
            stack = np.stack(locals_)
            axes = (1, 2)
            return (stack[:, :h].sum(axis=axes)
                    + stack[:, -h:].sum(axis=axes)
                    + stack[:, h:-h, :h].sum(axis=axes)
                    + stack[:, h:-h, -h:].sum(axis=axes))
        sums = []
        for local in locals_:
            axes = (0, 1)
            sums.append(local[:h].sum(axis=axes)
                        + local[-h:].sum(axis=axes)
                        + local[h:-h, :h].sum(axis=axes)
                        + local[h:-h, -h:].sum(axis=axes))
        return np.asarray(sums)

    def pre_exchange(self, field):
        """Checksum the freshly exchanged halos (the sender's truth)."""
        if not self.policy.abft:
            return None
        t0 = time.perf_counter()
        sums = self.ring_checksums(field)
        self.seconds += time.perf_counter() - t0
        return sums

    def post_exchange(self, field, pre):
        """Re-verify the halo checksums after (injectable) delivery."""
        if pre is None:
            return
        t0 = time.perf_counter()
        post = self.ring_checksums(field)
        self.counters["halo_checks"] += 1
        self.seconds += time.perf_counter() - t0
        if np.array_equal(pre, post):
            return
        bad = [r for r in range(len(pre))
               if not np.array_equal(pre[r], post[r])]
        rank = bad[0] if bad else None
        raise self.suspect(
            f"halo payload checksum mismatch on rank(s) {bad}",
            rank=rank, detail={"check": "halo_checksum", "ranks": bad})

    def on_matvec(self, x, y):
        """Row-sum ABFT on an operator apply: ``sum(A x) == dot(A 1, x)``.

        The barotropic operator is symmetric, so its column sums equal
        its row sums and the invariant costs one cached ``A 1`` plus
        two local sums per check.  It holds whatever ``x`` contains
        (both sides see the same ``x``), so it guards the *apply*
        itself; corrupted iterates are the cross-check's job.
        """
        if not self.policy.abft:
            return
        self._matvecs += 1
        if self._matvecs % self.policy.abft_every:
            return
        t0 = time.perf_counter()
        rowsum = self._ensure_rowsum()
        lhs = self._interior_sum(y)
        rhs = self._weighted_sum(rowsum, x)
        scale = self._weighted_sum(rowsum, x, absolute=True)
        self.counters["rowsum_checks"] += 1
        self.vm.ledger.record_allreduce("resilience", words=2)
        self.seconds += time.perf_counter() - t0
        err = np.abs(np.asarray(lhs) - np.asarray(rhs))
        bound = self.policy.rowsum_tol * (np.asarray(scale) + 1.0)
        bad = ~np.isfinite(err) | (err > bound)
        if np.any(bad):
            raise self.suspect(
                "matvec row-sum checksum violated "
                f"(|sum(Ax) - dot(A1, x)| = {np.max(err):.3e})",
                detail={"check": "matvec_rowsum",
                        "error": float(np.max(err))})

    def crosscheck_residual(self, state):
        """Verify the recurrence residual against ``b - A x``.

        A bit flipped into any vector the recurrence is built from
        breaks the agreement between the recurrence residual and the
        directly recomputed one.  Runs at replication boundaries only
        (one extra matvec per capture); its cost is re-charged to the
        ``"resilience"`` ledger phase.
        """
        ctx = self.context
        ledger = self.vm.ledger
        t0 = time.perf_counter()
        snap = ledger.snapshot()
        true_r = ctx.residual(state["b"], state["x"])
        stack_true, _ = self._interior_stack(true_r)
        stack_rec, _ = self._interior_stack(state["r"])
        if stack_true is not None and stack_rec is not None:
            # Uniform blocks: one stacked reduction for the drift norm
            # (both residuals come from the same masked pipeline, so
            # land cells cancel exactly).  One allreduce on the wire.
            drift = stack_true - stack_rec
            dnorm = np.asarray(np.sqrt(np.sum(drift * drift,
                                              axis=(0, 1, 2))))
            self.vm.ledger.record_allreduce("resilience", words=1)
        else:
            diff = ctx._sub(true_r, state["r"])
            dnorm = np.asarray(ctx.norm2(diff))
        if self._bnorm is None:
            # ``b`` is loop-invariant: one reduction for the whole solve.
            self._bnorm = np.asarray(ctx.norm2(state["b"]))
        bnorm = self._bnorm
        ledger.transfer(snap, "resilience")
        self.counters["residual_crosschecks"] += 1
        self.seconds += time.perf_counter() - t0
        bound = self.policy.crosscheck_tol * (bnorm + 1.0)
        bad = ~np.isfinite(dnorm) | (dnorm > bound)
        if np.any(bad):
            raise self.suspect(
                "residual cross-check failed: recurrence residual "
                f"disagrees with b - Ax by {np.max(dnorm):.3e}",
                detail={"check": "residual_crosscheck",
                        "drift": float(np.max(dnorm))})

    def _ensure_rowsum(self):
        """Lazily build and cache ``A 1`` (row sums of the operator)."""
        if self._rowsum is None:
            vm = self.vm
            ones = vm.scatter(np.ones((vm.decomp.ny, vm.decomp.nx)))
            # Fill interior halos directly (domain boundary stays 0);
            # the raw exchanger skips the ledger and the fault hooks --
            # building the checker must not itself be injectable.
            vm.exchanger.exchange_via_global(ones)
            out = vm.zeros()
            self.context.operator.apply(ones, out)
            self._rowsum = [np.asarray(out.interior(rank)).copy()
                            for rank in range(vm.num_ranks)]
            shape = self._rowsum[0].shape
            if all(w.shape == shape for w in self._rowsum):
                self._rowsum_stack = np.stack(self._rowsum)
            self.vm.ledger.record_flops("resilience",
                                        9 * vm.max_block_points)
        return self._rowsum

    def _interior_stack(self, field):
        """Interiors stacked over ranks, or ``None`` when non-uniform."""
        interiors = [field.interior(rank)
                     for rank in range(self.vm.num_ranks)]
        if self._uniform is None:
            shape = interiors[0].shape[:2]
            self._uniform = all(a.shape[:2] == shape for a in interiors)
        if self._uniform:
            return np.stack(interiors), interiors
        return None, interiors

    def _interior_sum(self, field):
        """Sum of all block interiors; per-column for multi-RHS."""
        stack, interiors = self._interior_stack(field)
        if stack is not None:
            return stack.sum(axis=(0, 1, 2))
        width = field.nrhs
        total = 0.0 if width is None else np.zeros(width)
        for a in interiors:
            total = total + a.sum(axis=(0, 1))
        return total

    def _weighted_sum(self, rowsum, field, absolute=False):
        """``dot(A 1, field)`` per column, from the cached row sums."""
        width = field.nrhs
        stack, interiors = self._interior_stack(field)
        if stack is not None and self._rowsum_stack is not None:
            w = self._rowsum_stack
            if width is not None:
                w = w[..., None]
            prod = w * stack
            if absolute:
                prod = np.abs(prod)
            return prod.sum(axis=(0, 1, 2))
        total = 0.0 if width is None else np.zeros(width)
        for rank, a in enumerate(interiors):
            w = rowsum[rank]
            if width is not None:
                w = w[..., None]
            prod = w * a
            if absolute:
                prod = np.abs(prod)
            total = total + prod.sum(axis=(0, 1))
        return total

    # ------------------------------------------------------------------
    def summary(self):
        """The ``result.extra["resilience"]`` document."""
        return {
            "policy": self.policy.to_dict(),
            "counters": dict(self.counters),
            "seconds": float(self.seconds),
            "buddy_stride": max(1, self.vm.num_ranks // 2),
            "last_capture_iteration": self._last_capture,
            "recoveries": list(self.recoveries),
        }
