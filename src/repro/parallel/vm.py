"""The virtual machine façade.

:class:`VirtualMachine` bundles a decomposition, a halo exchanger and an
event ledger into the object the distributed solver context talks to.
It exposes exactly the operations POP's barotropic mode needs:

* ``scatter`` / ``gather``  -- move fields between global and block form,
* ``exchange``              -- halo update (recorded as a boundary event),
* ``global_dot``            -- masked inner product (recorded as a
  reduction event, including the masking flops),
* ``local_mask``            -- per-rank interior ocean masks.

Event accounting follows the bulk-synchronous convention documented in
:mod:`repro.parallel.events`: flop counts are for the critical-path rank
(the one owning the largest block).

Execution engines
-----------------
Two engines execute these primitives:

* ``"perrank"`` -- every operation is a Python-level loop over simulated
  ranks.  Works for any decomposition and serves as the bit-identical
  reference oracle.
* ``"batched"`` -- the structure-of-arrays engine: per-rank tiles are
  stacked into one dense ``(p, bny + 2h, bnx + 2h)`` ndarray and every
  primitive runs as a single vectorized numpy call over the stack.
  Requires a uniform decomposition with no land-eliminated blocks.

``engine="auto"`` (the default) picks the batched engine whenever the
decomposition supports it and falls back to the per-rank engine
otherwise (ragged or land-eliminated decompositions).  Both engines
produce bit-identical results and identical event-ledger streams -- the
batching is an execution detail, not a cost-model change.
"""

import numpy as np

from repro.core.errors import DecompositionError
from repro.parallel.events import EventLedger
from repro.parallel.halo import BlockField, HaloExchanger
from repro.parallel.reduction import (
    masked_global_sum_blocks,
    masked_local_dot,
    masked_partials_stacked,
)

#: Valid values of the ``engine`` constructor argument.
ENGINES = ("auto", "batched", "perrank")


class VirtualMachine:
    """In-process stand-in for POP's MPI layer over one decomposition.

    Parameters
    ----------
    decomp:
        The block decomposition (one simulated rank per active block).
    mask:
        Global boolean ocean mask of shape ``(ny, nx)``; used for masked
        reductions.  Defaults to all-ocean.
    ledger:
        Optional shared :class:`EventLedger`; a fresh one is created if
        omitted.
    fast_exchange:
        For the per-rank engine: use the bulk-synchronous
        global-assembly halo update (identical result, fewer
        Python-level copies).  The direct point-to-point path remains
        available for validation.
    engine:
        ``"auto"`` (default), ``"batched"`` or ``"perrank"`` -- see the
        module docstring.  Requesting ``"batched"`` on a decomposition
        that cannot be batched (ragged or land-eliminated) falls back
        cleanly to the per-rank engine.
    faults:
        Optional iterable of :class:`~repro.parallel.faults.FaultInjector`
        instances to attach (see :meth:`inject`).  Faults observe the
        machine's communication events and corrupt data deterministically
        -- the test harness for the solver guardrails.
    """

    def __init__(self, decomp, mask=None, ledger=None, fast_exchange=True,
                 engine="auto", faults=None):
        self.decomp = decomp
        self.exchanger = HaloExchanger(decomp)
        self.ledger = ledger if ledger is not None else EventLedger()
        self.fast_exchange = fast_exchange
        if engine not in ENGINES:
            raise DecompositionError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.requested_engine = engine
        if engine == "perrank":
            self.engine = "perrank"
        else:
            self.engine = "batched" if decomp.supports_batched else "perrank"
        if mask is None:
            mask = np.ones((decomp.ny, decomp.nx), dtype=bool)
        self.mask = np.asarray(mask, dtype=bool)
        # Per-rank interior mask views as float (for masking multiplies).
        self._mask_blocks = [
            self.mask[block.slices].astype(np.float64)
            for block in decomp.active_blocks
        ]
        self._mask_stack = (
            np.stack(self._mask_blocks) if self.engine == "batched" else None
        )
        self._max_points = decomp.max_block_points()
        self.faults = []
        self._halo_rounds = 0
        self._reductions = 0
        # In-solve fault-tolerance runtime (buddy replication + ABFT);
        # attached by the guarded convergence loop for the duration of
        # a ``solve(resilience=...)`` call, detached afterwards.
        self.resilience = None
        self.dead_ranks = []
        for fault in faults or ():
            self.inject(fault)

    def inject(self, fault):
        """Attach a fault injector (see :mod:`repro.parallel.faults`)."""
        self.faults.append(fault)
        return fault

    # ------------------------------------------------------------------
    @property
    def num_ranks(self):
        """Number of simulated ranks (active blocks)."""
        return self.decomp.num_active

    @property
    def max_block_points(self):
        """Grid points on the critical-path rank."""
        return self._max_points

    @property
    def is_batched(self):
        """Whether the batched (structure-of-arrays) engine is active."""
        return self.engine == "batched"

    def local_mask(self, rank):
        """Interior ocean mask (float 0/1 array) of ``rank``."""
        return self._mask_blocks[rank]

    @property
    def mask_stack(self):
        """Stacked ``(p, bny, bnx)`` float interior masks (batched only)."""
        return self._mask_stack

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def scatter(self, global_field):
        """Distribute a global field into block-local form (halos zero)."""
        return self.exchanger.scatter(global_field, stacked=self.is_batched)

    def gather(self, field, fill=0.0):
        """Assemble a global field from block interiors."""
        return self.exchanger.gather(field, fill=fill)

    def zeros(self, dtype=np.float64, nrhs=None):
        """A zero block field over this machine's decomposition.

        ``nrhs`` adds a trailing batch axis holding that many RHS
        columns.
        """
        return BlockField.zeros(self.decomp, dtype=dtype,
                                stacked=self.is_batched, nrhs=nrhs)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def exchange(self, field, phase="boundary"):
        """Halo update; records one boundary event on the ledger.

        A multi-RHS field moves ``nrhs`` words per halo point in the
        *same* exchange -- one latency charge, ``nrhs``-fold payload --
        which is exactly the amortization batched solves buy.
        """
        if self.is_batched and field.is_stacked:
            self.exchanger.exchange_stacked(field)
        elif self.fast_exchange:
            self.exchanger.exchange_via_global(field)
        else:
            self.exchanger.exchange(field)
        width = field.nrhs or 1
        self.ledger.record_halo(
            phase,
            words=width * self.decomp.halo_words_per_exchange(),
            exchanges=1,
        )
        # ABFT halo checksums: the sums taken here are the sender's
        # truth (the exchange just completed); the fault hooks below
        # model in-flight corruption, and the post-verify models the
        # receiver checking the payload it was handed.
        resilience = self.resilience
        checksums = (resilience.pre_exchange(field)
                     if resilience is not None else None)
        if self.faults:
            self._halo_rounds += 1
            for fault in self.faults:
                fault.on_exchange(field, self._halo_rounds, self)
        if resilience is not None:
            resilience.post_exchange(field, checksums)
        return field

    def notify_rank_death(self, rank):
        """Record that a simulated rank died (its block data is gone).

        With a resilience runtime attached this raises
        :class:`~repro.parallel.resilience.RankLostError` so the
        guarded convergence loop can rebuild the block from its buddy
        replica; without one, the wiped (NaN) block simply propagates
        into the existing non-finite guardrails.
        """
        self.dead_ranks.append(int(rank))
        if self.resilience is not None:
            self.resilience.on_rank_death(int(rank))

    def _column_partials(self, a, b, j):
        """Rank-ordered partials of one RHS column of a batched pair.

        Columns are reduced on *contiguous* per-column copies so each
        column's pairwise summation blocking -- and therefore its bits
        -- matches the single-RHS reduction exactly.
        """
        if self.is_batched and a.is_stacked and b.is_stacked:
            return masked_partials_stacked(
                np.ascontiguousarray(a.interior_stack()[..., j]),
                np.ascontiguousarray(b.interior_stack()[..., j]),
                self._mask_stack,
            )
        return [
            masked_local_dot(np.ascontiguousarray(a.interior(r)[..., j]),
                             np.ascontiguousarray(b.interior(r)[..., j]),
                             self._mask_blocks[r])
            for r in range(self.num_ranks)
        ]

    def _global_dot_multi(self, a, b, phase):
        """Per-column masked inner products, one fused all-reduce.

        Returns an ``(nrhs,)`` array.  The ledger records a single
        all-reduce carrying ``nrhs`` words -- the multi-RHS amortization
        of reduction latency -- while flops scale with the batch width.
        """
        nrhs = a.nrhs
        column_partials = [self._column_partials(a, b, j)
                           for j in range(nrhs)]
        self.ledger.record_flops("computation", nrhs * self._max_points)
        self.ledger.record_flops(phase, nrhs * self._max_points)
        self.ledger.record_allreduce(phase, words=nrhs)
        if self.faults:
            # One fused all-reduce = one logical reduction event; every
            # column's payload passes through at the same count.  Hooks
            # run *before* the global sums so a poisoned partial really
            # poisons the reduced value.
            self._reductions += 1
            for fault in self.faults:
                for partials in column_partials:
                    fault.on_reduction(partials, self._reductions)
        out = np.empty(nrhs)
        for j, partials in enumerate(column_partials):
            out[j] = masked_global_sum_blocks(partials)
        return out

    def global_dot(self, a, b, phase="reduction"):
        """Masked global inner product with reduction-event accounting.

        The masking multiply plus local product-and-sum is ``~2 n^2``
        flops on the critical rank (paper Eq. 2); the all-reduce carries
        one word per rank.  Batched multi-RHS fields return an
        ``(nrhs,)`` array from one fused all-reduce.
        """
        if a.nrhs is not None:
            return self._global_dot_multi(a, b, phase)
        if self.is_batched and a.is_stacked and b.is_stacked:
            partials = masked_partials_stacked(
                a.interior_stack(), b.interior_stack(), self._mask_stack
            )
        else:
            partials = [
                masked_local_dot(a.interior(r), b.interior(r),
                                 self._mask_blocks[r])
                for r in range(self.num_ranks)
            ]
        # Paper convention (Eq. 2): the product-and-sum is computation
        # (part of the 15 n^2), the masking multiply belongs to the
        # reduction cost (the 2 n^2 of T_g).
        self.ledger.record_flops("computation", self._max_points)
        self.ledger.record_flops(phase, self._max_points)
        self.ledger.record_allreduce(phase, words=1)
        if self.faults:
            self._reductions += 1
            for fault in self.faults:
                fault.on_reduction(partials, self._reductions)
        return masked_global_sum_blocks(partials)

    def _pair_partials(self, a, b):
        """Rank-ordered partials of one scalar vector pair."""
        if self.is_batched and a.is_stacked and b.is_stacked:
            return masked_partials_stacked(
                a.interior_stack(), b.interior_stack(), self._mask_stack
            )
        return [
            masked_local_dot(a.interior(r), b.interior(r),
                             self._mask_blocks[r])
            for r in range(self.num_ranks)
        ]

    def global_dot_block(self, xs, ys, phase="reduction"):
        """All pairwise masked inner products in **one** all-reduce.

        ``xs``/``ys`` are sequences of block fields; returns a
        ``(len(xs), len(ys))`` array (trailing ``(nrhs,)`` axis for
        multi-RHS fields) with ``out[i, j] = <xs[i], ys[j]>``.  Every
        pair is reduced on the same contiguous per-column path as
        :meth:`global_dot`, so each entry is bit-identical to a
        standalone reduction; the ledger records a **single** fused
        all-reduce carrying the whole Gram payload -- the
        communication-avoiding s-step assembly.
        """
        xs = list(xs)
        ys = list(ys)
        nrhs = xs[0].nrhs
        w = nrhs or 1
        shape = (len(xs), len(ys)) + (() if nrhs is None else (nrhs,))
        entries = []  # (index into out, partials) in reduction order
        for i, a in enumerate(xs):
            for j, b in enumerate(ys):
                if nrhs is None:
                    entries.append(((i, j), self._pair_partials(a, b)))
                else:
                    for c in range(nrhs):
                        entries.append(((i, j, c),
                                        self._column_partials(a, b, c)))
        n_words = len(xs) * len(ys) * w
        self.ledger.record_flops("computation", n_words * self._max_points)
        self.ledger.record_flops(phase, n_words * self._max_points)
        self.ledger.record_allreduce(phase, words=n_words)
        if self.faults:
            # One fused all-reduce = one logical reduction event; every
            # pair's payload passes through at the same count.  Hooks
            # run *before* the global sums so a poisoned Gram entry
            # really reaches the reduced matrix (a ReductionFault with
            # ``entry=k`` poisons exactly the k-th pair here).
            self._reductions += 1
            for fault in self.faults:
                for _, partials in entries:
                    fault.on_reduction(partials, self._reductions)
        out = np.empty(shape)
        for index, partials in entries:
            out[index] = masked_global_sum_blocks(partials)
        return out

    def global_dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        """Two masked inner products fused into a single all-reduce.

        This is the heart of the ChronGear reformulation: rho and delta
        share one reduction (Algorithm 1 step 9).  Batched multi-RHS
        fields return a pair of ``(nrhs,)`` arrays from one fused
        all-reduce of ``2 * nrhs`` words.
        """
        if a1.nrhs is not None:
            nrhs = a1.nrhs
            out1 = np.empty(nrhs)
            out2 = np.empty(nrhs)
            column_partials = []
            for j in range(nrhs):
                column_partials.append(
                    (self._column_partials(a1, b1, j),
                     self._column_partials(a2, b2, j)))
            self.ledger.record_flops("computation",
                                     2 * nrhs * self._max_points)
            self.ledger.record_flops(phase, 2 * nrhs * self._max_points)
            self.ledger.record_allreduce(phase, words=2 * nrhs)
            if self.faults:
                # Hooks run before the global sums so a poisoned
                # partial really poisons the reduced values.
                self._reductions += 1
                for fault in self.faults:
                    for p1, p2 in column_partials:
                        fault.on_reduction(p1, self._reductions)
                        fault.on_reduction(p2, self._reductions)
            for j, (p1, p2) in enumerate(column_partials):
                out1[j] = masked_global_sum_blocks(p1)
                out2[j] = masked_global_sum_blocks(p2)
            return out1, out2
        if (self.is_batched and a1.is_stacked and b1.is_stacked
                and a2.is_stacked and b2.is_stacked):
            partials1 = masked_partials_stacked(
                a1.interior_stack(), b1.interior_stack(), self._mask_stack
            )
            partials2 = masked_partials_stacked(
                a2.interior_stack(), b2.interior_stack(), self._mask_stack
            )
        else:
            partials1 = []
            partials2 = []
            for r in range(self.num_ranks):
                m = self._mask_blocks[r]
                partials1.append(
                    masked_local_dot(a1.interior(r), b1.interior(r), m))
                partials2.append(
                    masked_local_dot(a2.interior(r), b2.interior(r), m))
        self.ledger.record_flops("computation", 2 * self._max_points)
        self.ledger.record_flops(phase, 2 * self._max_points)
        self.ledger.record_allreduce(phase, words=2)
        if self.faults:
            # One fused all-reduce = one logical reduction event; both
            # payload lists pass through each injector at the same count.
            self._reductions += 1
            for fault in self.faults:
                fault.on_reduction(partials1, self._reductions)
                fault.on_reduction(partials2, self._reductions)
        return (
            masked_global_sum_blocks(partials1),
            masked_global_sum_blocks(partials2),
        )
