"""The virtual machine façade.

:class:`VirtualMachine` bundles a decomposition, a halo exchanger and an
event ledger into the object the distributed solver context talks to.
It exposes exactly the operations POP's barotropic mode needs:

* ``scatter`` / ``gather``  -- move fields between global and block form,
* ``exchange``              -- halo update (recorded as a boundary event),
* ``global_dot``            -- masked inner product (recorded as a
  reduction event, including the masking flops),
* ``local_mask``            -- per-rank interior ocean masks.

Event accounting follows the bulk-synchronous convention documented in
:mod:`repro.parallel.events`: flop counts are for the critical-path rank
(the one owning the largest block).
"""

import numpy as np

from repro.parallel.events import EventLedger
from repro.parallel.halo import BlockField, HaloExchanger
from repro.parallel.reduction import (
    masked_global_sum_blocks,
    masked_local_dot,
)


class VirtualMachine:
    """In-process stand-in for POP's MPI layer over one decomposition.

    Parameters
    ----------
    decomp:
        The block decomposition (one simulated rank per active block).
    mask:
        Global boolean ocean mask of shape ``(ny, nx)``; used for masked
        reductions.  Defaults to all-ocean.
    ledger:
        Optional shared :class:`EventLedger`; a fresh one is created if
        omitted.
    fast_exchange:
        Use the bulk-synchronous global-assembly halo update (identical
        result, fewer Python-level copies).  The direct point-to-point
        path remains available for validation.
    """

    def __init__(self, decomp, mask=None, ledger=None, fast_exchange=True):
        self.decomp = decomp
        self.exchanger = HaloExchanger(decomp)
        self.ledger = ledger if ledger is not None else EventLedger()
        self.fast_exchange = fast_exchange
        if mask is None:
            mask = np.ones((decomp.ny, decomp.nx), dtype=bool)
        self.mask = np.asarray(mask, dtype=bool)
        # Per-rank interior mask views as float (for masking multiplies).
        self._mask_blocks = [
            self.mask[block.slices].astype(np.float64)
            for block in decomp.active_blocks
        ]
        self._max_points = decomp.max_block_points()

    # ------------------------------------------------------------------
    @property
    def num_ranks(self):
        """Number of simulated ranks (active blocks)."""
        return self.decomp.num_active

    @property
    def max_block_points(self):
        """Grid points on the critical-path rank."""
        return self._max_points

    def local_mask(self, rank):
        """Interior ocean mask (float 0/1 array) of ``rank``."""
        return self._mask_blocks[rank]

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def scatter(self, global_field):
        """Distribute a global field into block-local form (halos zero)."""
        return self.exchanger.scatter(global_field)

    def gather(self, field, fill=0.0):
        """Assemble a global field from block interiors."""
        return self.exchanger.gather(field, fill=fill)

    def zeros(self, dtype=np.float64):
        """A zero block field over this machine's decomposition."""
        return BlockField.zeros(self.decomp, dtype=dtype)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def exchange(self, field, phase="boundary"):
        """Halo update; records one boundary event on the ledger."""
        if self.fast_exchange:
            self.exchanger.exchange_via_global(field)
        else:
            self.exchanger.exchange(field)
        self.ledger.record_halo(
            phase,
            words=self.decomp.halo_words_per_exchange(),
            exchanges=1,
        )
        return field

    def global_dot(self, a, b, phase="reduction"):
        """Masked global inner product with reduction-event accounting.

        The masking multiply plus local product-and-sum is ``~2 n^2``
        flops on the critical rank (paper Eq. 2); the all-reduce carries
        one word per rank.
        """
        partials = [
            masked_local_dot(a.interior(r), b.interior(r), self._mask_blocks[r])
            for r in range(self.num_ranks)
        ]
        # Paper convention (Eq. 2): the product-and-sum is computation
        # (part of the 15 n^2), the masking multiply belongs to the
        # reduction cost (the 2 n^2 of T_g).
        self.ledger.record_flops("computation", self._max_points)
        self.ledger.record_flops(phase, self._max_points)
        self.ledger.record_allreduce(phase, words=1)
        return masked_global_sum_blocks(partials)

    def global_dot_pair(self, a1, b1, a2, b2, phase="reduction"):
        """Two masked inner products fused into a single all-reduce.

        This is the heart of the ChronGear reformulation: rho and delta
        share one reduction (Algorithm 1 step 9).
        """
        partials1 = []
        partials2 = []
        for r in range(self.num_ranks):
            m = self._mask_blocks[r]
            partials1.append(masked_local_dot(a1.interior(r), b1.interior(r), m))
            partials2.append(masked_local_dot(a2.interior(r), b2.interior(r), m))
        self.ledger.record_flops("computation", 2 * self._max_points)
        self.ledger.record_flops(phase, 2 * self._max_points)
        self.ledger.record_allreduce(phase, words=2)
        return (
            masked_global_sum_blocks(partials1),
            masked_global_sum_blocks(partials2),
        )
