"""Halo (ghost-cell) exchange over block-local arrays.

Each simulated rank owns one block, stored as a local array of shape
``(bny + 2h, bnx + 2h)`` where ``h`` is the halo width (POP default 2).
After a stencil operation, the halo rings must be refreshed from
neighboring blocks before the next operation can read them -- that is
POP's ``update_halo`` (Algorithm 1 step 6 / Algorithm 2 step 10 of the
paper).

Two implementations are provided and tested against each other:

* :meth:`HaloExchanger.exchange` -- true point-to-point semantics: every
  block copies edge strips directly from each of its eight neighbors
  (four messages per rank in POP's counting, since corner data rides
  along with the edge strips).
* :meth:`HaloExchanger.exchange_via_global` -- a bulk-synchronous
  shortcut that reassembles the global field and re-slices every block's
  padded window from it.  Semantically identical under BSP, considerably
  faster in this in-process simulation, and used by default for large
  block counts.

Out-of-domain halos (beyond the global grid edge, or adjacent to an
eliminated all-land block) are filled with zeros: the closed lateral
boundary of the barotropic operator.
"""

import numpy as np

from repro.core.errors import DecompositionError


class BlockField:
    """Per-rank local arrays (with halos) for one distributed 2-D field.

    Attributes
    ----------
    decomp:
        The :class:`~repro.parallel.decomposition.Decomposition` this
        field is distributed over.
    locals_:
        List indexed by rank of local arrays, each of shape
        ``(block.ny + 2h, block.nx + 2h)``.
    """

    def __init__(self, decomp, locals_):
        self.decomp = decomp
        self.locals_ = locals_

    @classmethod
    def zeros(cls, decomp, dtype=np.float64):
        """A zero-valued block field over ``decomp``."""
        h = decomp.halo_width
        locals_ = [
            np.zeros((b.ny + 2 * h, b.nx + 2 * h), dtype=dtype)
            for b in decomp.active_blocks
        ]
        return cls(decomp, locals_)

    def local(self, rank):
        """The full padded local array of ``rank``."""
        return self.locals_[rank]

    def interior(self, rank):
        """View of ``rank``'s owned (non-halo) points."""
        h = self.decomp.halo_width
        block = self.decomp.active_blocks[rank]
        return self.locals_[rank][h:h + block.ny, h:h + block.nx]

    def copy(self):
        """Deep copy of the block field."""
        return BlockField(self.decomp, [arr.copy() for arr in self.locals_])


class HaloExchanger:
    """Fills halo rings of a :class:`BlockField` from neighboring blocks."""

    def __init__(self, decomp):
        self.decomp = decomp
        h = decomp.halo_width
        for block in decomp.active_blocks:
            if block.ny < h or block.nx < h:
                raise DecompositionError(
                    f"block {block.index} is {block.ny}x{block.nx}, smaller than "
                    f"the halo width {h}; choose fewer blocks or a thinner halo"
                )
        # Precompute, per rank, the neighbor block in each direction so the
        # per-exchange loop does no lattice lookups.
        self._neighbor_ranks = []
        for block in decomp.active_blocks:
            neigh = decomp.neighbors(block)
            self._neighbor_ranks.append({
                d: (n.rank if (n is not None and n.is_active) else None)
                for d, n in neigh.items()
            })

    # ------------------------------------------------------------------
    def scatter(self, global_field, dtype=None):
        """Distribute a global ``(ny, nx)`` array into a new BlockField.

        Halo rings are zero-initialized; call an exchange method to fill
        them.
        """
        decomp = self.decomp
        if global_field.shape != (decomp.ny, decomp.nx):
            raise DecompositionError(
                f"field shape {global_field.shape} does not match grid "
                f"({decomp.ny}, {decomp.nx})"
            )
        field = BlockField.zeros(decomp, dtype=dtype or global_field.dtype)
        for rank, block in enumerate(decomp.active_blocks):
            field.interior(rank)[...] = global_field[block.slices]
        return field

    def gather(self, field, fill=0.0, dtype=None):
        """Reassemble a global array from block interiors.

        Points belonging to eliminated land blocks get ``fill``.
        """
        decomp = self.decomp
        out = np.full((decomp.ny, decomp.nx), fill,
                      dtype=dtype or field.locals_[0].dtype)
        for rank, block in enumerate(decomp.active_blocks):
            out[block.slices] = field.interior(rank)
        return out

    # ------------------------------------------------------------------
    def exchange(self, field):
        """Point-to-point halo update (direct neighbor strip copies)."""
        decomp = self.decomp
        h = decomp.halo_width
        for rank, block in enumerate(decomp.active_blocks):
            local = field.local(rank)
            bny, bnx = block.ny, block.nx
            neigh = self._neighbor_ranks[rank]

            # --- edges -------------------------------------------------
            # north halo rows <- north neighbor's southernmost interior rows
            self._fill_edge(field, local[h + bny:h + bny + h, h:h + bnx],
                            neigh["n"], lambda nb, nh: nb[nh:2 * nh, nh:nb.shape[1] - nh])
            # south halo rows <- south neighbor's northernmost interior rows
            self._fill_edge(field, local[0:h, h:h + bnx],
                            neigh["s"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                          nh:nb.shape[1] - nh])
            # east halo cols <- east neighbor's westernmost interior cols
            self._fill_edge(field, local[h:h + bny, h + bnx:h + bnx + h],
                            neigh["e"], lambda nb, nh: nb[nh:nb.shape[0] - nh, nh:2 * nh])
            # west halo cols <- west neighbor's easternmost interior cols
            self._fill_edge(field, local[h:h + bny, 0:h],
                            neigh["w"], lambda nb, nh: nb[nh:nb.shape[0] - nh,
                                                          nb.shape[1] - 2 * nh:nb.shape[1] - nh])

            # --- corners -----------------------------------------------
            self._fill_edge(field, local[h + bny:h + bny + h, h + bnx:h + bnx + h],
                            neigh["ne"], lambda nb, nh: nb[nh:2 * nh, nh:2 * nh])
            self._fill_edge(field, local[h + bny:h + bny + h, 0:h],
                            neigh["nw"], lambda nb, nh: nb[nh:2 * nh,
                                                           nb.shape[1] - 2 * nh:nb.shape[1] - nh])
            self._fill_edge(field, local[0:h, h + bnx:h + bnx + h],
                            neigh["se"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                           nh:2 * nh])
            self._fill_edge(field, local[0:h, 0:h],
                            neigh["sw"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                           nb.shape[1] - 2 * nh:nb.shape[1] - nh])
        return field

    def _fill_edge(self, field, dest, neighbor_rank, take):
        h = self.decomp.halo_width
        if neighbor_rank is None:
            dest[...] = 0.0
        else:
            dest[...] = take(field.local(neighbor_rank), h)

    # ------------------------------------------------------------------
    def exchange_via_global(self, field):
        """Bulk-synchronous halo update through a padded global assembly.

        Produces bit-identical halos to :meth:`exchange` (asserted by the
        test suite) but costs two block copies per rank instead of eight
        strip copies, which matters when simulating thousands of ranks.
        """
        decomp = self.decomp
        h = decomp.halo_width
        padded = np.zeros((decomp.ny + 2 * h, decomp.nx + 2 * h),
                          dtype=field.locals_[0].dtype)
        for rank, block in enumerate(decomp.active_blocks):
            padded[h + block.j0:h + block.j1, h + block.i0:h + block.i1] = \
                field.interior(rank)
        for rank, block in enumerate(decomp.active_blocks):
            field.local(rank)[...] = padded[
                block.j0:block.j1 + 2 * h, block.i0:block.i1 + 2 * h
            ]
        return field
