"""Halo (ghost-cell) exchange over block-local arrays.

Each simulated rank owns one block, stored as a local array of shape
``(bny + 2h, bnx + 2h)`` where ``h`` is the halo width (POP default 2).
After a stencil operation, the halo rings must be refreshed from
neighboring blocks before the next operation can read them -- that is
POP's ``update_halo`` (Algorithm 1 step 6 / Algorithm 2 step 10 of the
paper).

Two implementations are provided and tested against each other:

* :meth:`HaloExchanger.exchange` -- true point-to-point semantics: every
  block copies edge strips directly from each of its eight neighbors
  (four messages per rank in POP's counting, since corner data rides
  along with the edge strips).
* :meth:`HaloExchanger.exchange_via_global` -- a bulk-synchronous
  shortcut that reassembles the global field and re-slices every block's
  padded window from it.  Semantically identical under BSP, considerably
  faster in this in-process simulation, and used by default for large
  block counts.

Out-of-domain halos (beyond the global grid edge, or adjacent to an
eliminated all-land block) are filled with zeros: the closed lateral
boundary of the barotropic operator.
"""

import numpy as np

from repro.core.errors import DecompositionError


class BlockField:
    """Per-rank local arrays (with halos) for one distributed 2-D field.

    Two storage layouts exist:

    * **per-rank** (the default): ``locals_`` is a list of independent
      arrays, one per rank -- works for any decomposition, including
      ragged and land-eliminated ones.
    * **stacked** (structure-of-arrays): all local arrays live in one
      dense ``(num_ranks, bny + 2h, bnx + 2h)`` ndarray (``stack``) and
      ``locals_`` holds *views* into it.  Only possible when every
      active block has the same shape.  The per-rank accessors work
      identically on both layouts; the batched execution engine
      additionally operates on the whole stack with single vectorized
      numpy calls.

    Attributes
    ----------
    decomp:
        The :class:`~repro.parallel.decomposition.Decomposition` this
        field is distributed over.
    locals_:
        List indexed by rank of local arrays, each of shape
        ``(block.ny + 2h, block.nx + 2h)``.
    stack:
        The backing ``(num_ranks, bny + 2h, bnx + 2h)`` ndarray for
        stacked fields, ``None`` for per-rank fields.
    """

    def __init__(self, decomp, locals_, stack=None):
        self.decomp = decomp
        self.locals_ = locals_
        self.stack = stack

    @classmethod
    def zeros(cls, decomp, dtype=np.float64, stacked=False, nrhs=None):
        """A zero-valued block field over ``decomp``.

        ``stacked=True`` requests the structure-of-arrays layout and
        requires a uniform decomposition.  ``nrhs`` adds a trailing
        batch axis so the field holds that many independent RHS columns
        (``None`` keeps the scalar 2-D layout).
        """
        h = decomp.halo_width
        trailing = () if nrhs is None else (int(nrhs),)
        if stacked:
            bny, bnx = decomp.uniform_block_shape()
            stack = np.zeros(
                (decomp.num_active, bny + 2 * h, bnx + 2 * h) + trailing,
                dtype=dtype,
            )
            return cls(decomp, list(stack), stack=stack)
        locals_ = [
            np.zeros((b.ny + 2 * h, b.nx + 2 * h) + trailing, dtype=dtype)
            for b in decomp.active_blocks
        ]
        return cls(decomp, locals_)

    @property
    def nrhs(self):
        """Trailing batch width, or ``None`` for a scalar 2-D field."""
        arr = self.stack if self.stack is not None else self.locals_[0]
        base = 3 if self.stack is not None else 2
        return arr.shape[base] if arr.ndim > base else None

    @property
    def is_stacked(self):
        """Whether this field uses the stacked (SoA) layout."""
        return self.stack is not None

    def local(self, rank):
        """The full padded local array of ``rank``."""
        return self.locals_[rank]

    def interior(self, rank):
        """View of ``rank``'s owned (non-halo) points."""
        h = self.decomp.halo_width
        block = self.decomp.active_blocks[rank]
        return self.locals_[rank][h:h + block.ny, h:h + block.nx]

    def interior_stack(self):
        """View of all ranks' interiors, shape ``(p, bny, bnx[, nrhs])``.

        Only available on stacked fields.
        """
        if self.stack is None:
            raise DecompositionError(
                "interior_stack() requires a stacked BlockField"
            )
        h = self.decomp.halo_width
        return self.stack[:, h:self.stack.shape[1] - h,
                          h:self.stack.shape[2] - h]

    def copy(self):
        """Deep copy of the block field (layout preserved)."""
        if self.stack is not None:
            stack = self.stack.copy()
            return BlockField(self.decomp, list(stack), stack=stack)
        return BlockField(self.decomp, [arr.copy() for arr in self.locals_])


class HaloExchanger:
    """Fills halo rings of a :class:`BlockField` from neighboring blocks."""

    def __init__(self, decomp):
        self.decomp = decomp
        h = decomp.halo_width
        for block in decomp.active_blocks:
            if block.ny < h or block.nx < h:
                raise DecompositionError(
                    f"block {block.index} is {block.ny}x{block.nx}, smaller than "
                    f"the halo width {h}; choose fewer blocks or a thinner halo"
                )
        # Precompute, per rank, the neighbor block in each direction so the
        # per-exchange loop does no lattice lookups.
        self._neighbor_ranks = []
        for block in decomp.active_blocks:
            neigh = decomp.neighbors(block)
            self._neighbor_ranks.append({
                d: (n.rank if (n is not None and n.is_active) else None)
                for d, n in neigh.items()
            })
        # Lazily-built gather/scatter index maps for the stacked
        # (structure-of-arrays) exchange, plus a reusable padded-global
        # scratch buffer keyed by dtype.
        self._stacked_maps = None
        self._padded_scratch = {}

    # ------------------------------------------------------------------
    def scatter(self, global_field, dtype=None, stacked=False):
        """Distribute a global ``(ny, nx[, nrhs])`` array into a BlockField.

        Halo rings are zero-initialized; call an exchange method to fill
        them.  ``stacked=True`` produces a structure-of-arrays field
        (uniform decompositions only).  A 3-D input distributes every
        RHS column at once into a trailing-axis field.
        """
        decomp = self.decomp
        if global_field.shape[:2] != (decomp.ny, decomp.nx):
            raise DecompositionError(
                f"field shape {global_field.shape} does not match grid "
                f"({decomp.ny}, {decomp.nx})"
            )
        nrhs = global_field.shape[2] if global_field.ndim == 3 else None
        field = BlockField.zeros(decomp, dtype=dtype or global_field.dtype,
                                 stacked=stacked, nrhs=nrhs)
        for rank, block in enumerate(decomp.active_blocks):
            field.interior(rank)[...] = global_field[block.slices]
        return field

    def gather(self, field, fill=0.0, dtype=None):
        """Reassemble a global array from block interiors.

        Points belonging to eliminated land blocks get ``fill``.
        """
        decomp = self.decomp
        trailing = field.locals_[0].shape[2:]
        out = np.full((decomp.ny, decomp.nx) + trailing, fill,
                      dtype=dtype or field.locals_[0].dtype)
        for rank, block in enumerate(decomp.active_blocks):
            out[block.slices] = field.interior(rank)
        return out

    # ------------------------------------------------------------------
    def exchange(self, field):
        """Point-to-point halo update (direct neighbor strip copies)."""
        decomp = self.decomp
        h = decomp.halo_width
        for rank, block in enumerate(decomp.active_blocks):
            local = field.local(rank)
            bny, bnx = block.ny, block.nx
            neigh = self._neighbor_ranks[rank]

            # --- edges -------------------------------------------------
            # north halo rows <- north neighbor's southernmost interior rows
            self._fill_edge(field, local[h + bny:h + bny + h, h:h + bnx],
                            neigh["n"], lambda nb, nh: nb[nh:2 * nh, nh:nb.shape[1] - nh])
            # south halo rows <- south neighbor's northernmost interior rows
            self._fill_edge(field, local[0:h, h:h + bnx],
                            neigh["s"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                          nh:nb.shape[1] - nh])
            # east halo cols <- east neighbor's westernmost interior cols
            self._fill_edge(field, local[h:h + bny, h + bnx:h + bnx + h],
                            neigh["e"], lambda nb, nh: nb[nh:nb.shape[0] - nh, nh:2 * nh])
            # west halo cols <- west neighbor's easternmost interior cols
            self._fill_edge(field, local[h:h + bny, 0:h],
                            neigh["w"], lambda nb, nh: nb[nh:nb.shape[0] - nh,
                                                          nb.shape[1] - 2 * nh:nb.shape[1] - nh])

            # --- corners -----------------------------------------------
            self._fill_edge(field, local[h + bny:h + bny + h, h + bnx:h + bnx + h],
                            neigh["ne"], lambda nb, nh: nb[nh:2 * nh, nh:2 * nh])
            self._fill_edge(field, local[h + bny:h + bny + h, 0:h],
                            neigh["nw"], lambda nb, nh: nb[nh:2 * nh,
                                                           nb.shape[1] - 2 * nh:nb.shape[1] - nh])
            self._fill_edge(field, local[0:h, h + bnx:h + bnx + h],
                            neigh["se"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                           nh:2 * nh])
            self._fill_edge(field, local[0:h, 0:h],
                            neigh["sw"], lambda nb, nh: nb[nb.shape[0] - 2 * nh:nb.shape[0] - nh,
                                                           nb.shape[1] - 2 * nh:nb.shape[1] - nh])
        return field

    def _fill_edge(self, field, dest, neighbor_rank, take):
        h = self.decomp.halo_width
        if neighbor_rank is None:
            dest[...] = 0.0
        else:
            dest[...] = take(field.local(neighbor_rank), h)

    # ------------------------------------------------------------------
    def exchange_via_global(self, field):
        """Bulk-synchronous halo update through a padded global assembly.

        Produces bit-identical halos to :meth:`exchange` (asserted by the
        test suite) but costs two block copies per rank instead of eight
        strip copies, which matters when simulating thousands of ranks.
        """
        decomp = self.decomp
        h = decomp.halo_width
        padded = np.zeros(
            (decomp.ny + 2 * h, decomp.nx + 2 * h)
            + field.locals_[0].shape[2:],
            dtype=field.locals_[0].dtype)
        for rank, block in enumerate(decomp.active_blocks):
            padded[h + block.j0:h + block.j1, h + block.i0:h + block.i1] = \
                field.interior(rank)
        for rank, block in enumerate(decomp.active_blocks):
            field.local(rank)[...] = padded[
                block.j0:block.j1 + 2 * h, block.i0:block.i1 + 2 * h
            ]
        return field

    # ------------------------------------------------------------------
    def _stacked_index_maps(self):
        """Flat index maps driving the stacked halo exchange.

        Returns ``(scatter_idx, gather_idx)``:

        * ``scatter_idx`` -- shape ``(p, bny, bnx)``: for each stacked
          interior point, its flat position in the padded
          ``(ny + 2h, nx + 2h)`` global scratch.
        * ``gather_idx`` -- shape ``(p, bny + 2h, bnx + 2h)``: for each
          stacked local point (halos included), its flat position in the
          same scratch.

        Built once; both maps turn the two per-rank copy loops of
        :meth:`exchange_via_global` into one fancy-indexing scatter and
        one fancy-indexing gather over the whole stack.
        """
        if self._stacked_maps is None:
            decomp = self.decomp
            h = decomp.halo_width
            bny, bnx = decomp.uniform_block_shape()
            width = decomp.nx + 2 * h
            p = decomp.num_active
            scatter_idx = np.empty((p, bny, bnx), dtype=np.intp)
            gather_idx = np.empty((p, bny + 2 * h, bnx + 2 * h),
                                  dtype=np.intp)
            for rank, block in enumerate(decomp.active_blocks):
                jj = np.arange(h + block.j0, h + block.j1)[:, None]
                ii = np.arange(h + block.i0, h + block.i1)[None, :]
                scatter_idx[rank] = jj * width + ii
                jj = np.arange(block.j0, block.j1 + 2 * h)[:, None]
                ii = np.arange(block.i0, block.i1 + 2 * h)[None, :]
                gather_idx[rank] = jj * width + ii
            self._stacked_maps = (scatter_idx, gather_idx)
        return self._stacked_maps

    def exchange_stacked(self, field):
        """Stacked halo update: two fancy-indexing operations total.

        Bit-identical to :meth:`exchange_via_global` (same values move
        through the same padded global assembly), but the per-rank copy
        loops are replaced by one scatter of all interiors into a reused
        flat scratch and one gather of all padded windows out of it.
        Requires a stacked :class:`BlockField`.
        """
        if not field.is_stacked:
            raise DecompositionError(
                "exchange_stacked requires a stacked BlockField; "
                "use exchange/exchange_via_global for per-rank fields"
            )
        decomp = self.decomp
        h = decomp.halo_width
        scatter_idx, gather_idx = self._stacked_index_maps()
        dtype = field.stack.dtype
        trailing = field.stack.shape[3:]
        key = (dtype.str, trailing)
        scratch = self._padded_scratch.get(key)
        if scratch is None:
            # Out-of-domain positions stay zero forever: the scatter
            # below only ever writes interior positions, so the border
            # ring (the closed lateral boundary) never needs re-zeroing.
            scratch = np.zeros(
                ((decomp.ny + 2 * h) * (decomp.nx + 2 * h),) + trailing,
                dtype=dtype)
            self._padded_scratch[key] = scratch
        scratch[scatter_idx] = field.interior_stack()
        if scratch.ndim == 1:
            np.take(scratch, gather_idx, out=field.stack)
        else:
            # Trailing-axis batch: one axis-0 take moves every column's
            # halos at once.
            np.take(scratch, gather_idx, axis=0, out=field.stack)
        return field
