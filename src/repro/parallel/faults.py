"""Deterministic fault injection for the virtual parallel machine.

The guardrail subsystem (:mod:`repro.solvers.health`,
:mod:`repro.solvers.base`) claims that *no* corrupted solve escapes
undiagnosed.  This module is how the claim is tested: seed-driven
injectors attach to a :class:`~repro.parallel.vm.VirtualMachine` and
corrupt exactly one well-defined thing -- a halo ring after an exchange,
one rank's partial inside a global reduction, the Lanczos eigenvalue
bounds handed to P-CSI, or the right-hand side itself -- and the test
matrix (``tests/test_faults.py``, ``benchmarks/fault_smoke.py``) asserts
every injection surfaces as a structured
:class:`~repro.solvers.health.SolverDiagnosis` under **both** execution
engines.

Faults mirror failure modes real POP runs hit at scale: a dropped or
reordered MPI message (halo corruption), a flaky node producing garbage
partial sums (reduction corruption), Lanczos bounds estimated from a
different (or buggy) preconditioner configuration (eigenbound skew), and
an upstream tendency blow-up (NaN in the right-hand side).

Determinism and engine parity
-----------------------------
Injectors hold no hidden global state: each counts the events it
observes (halo rounds, reductions, estimations) and fires when its
``at``-th event arrives (every event from ``at`` on with
``persistent=True``).  Both engines drive the hooks from the same
logical event stream, and the corruption itself goes through
layout-agnostic accessors (``BlockField.local`` views, per-rank partial
lists), so an injected run stays bit-identical across engines -- which
``tests/test_engine_parity.py`` checks.
"""

import math

import numpy as np

from repro.core.errors import ReproError
from repro.core.rng import make_rng


class FaultInjectionError(ReproError):
    """Raised for malformed fault specs or parameters."""


class FaultInjector:
    """Base class: counts events, fires at the ``at``-th one.

    Parameters
    ----------
    at:
        1-based index of the observed event (halo round, reduction,
        eigenbound estimation...) at which the fault fires.
    persistent:
        Fire on every event from ``at`` on (a hard fault) instead of
        exactly once (a transient).
    seed:
        Drives any randomized placement (e.g. which halo column is
        corrupted) via :func:`~repro.core.rng.make_rng` -- same seed,
        same corruption, regardless of engine.
    """

    kind = "fault"

    def __init__(self, at=1, persistent=False, seed=0):
        if at < 1:
            raise FaultInjectionError(f"at must be >= 1, got {at}")
        self.at = int(at)
        self.persistent = bool(persistent)
        self.seed = int(seed)
        self.fired = 0

    def _fires(self, count):
        hit = count >= self.at if self.persistent else count == self.at
        if hit:
            self.fired += 1
        return hit

    # ------------------------------------------------------------------
    # hooks -- the VM (and P-CSI, for eigenbounds) calls every hook on
    # every event; each injector reacts only to the events it targets.
    # ------------------------------------------------------------------
    def on_exchange(self, field, count, vm):
        """Called after halo round ``count`` filled ``field``'s rings."""

    def on_reduction(self, partials, count):
        """Called with the per-rank partials of reduction ``count``
        (twice, once per list, for fused pair reductions) before the
        global sum."""

    def on_eigenbounds(self, nu, mu):
        """Called with each freshly estimated ``(nu, mu)``; returns the
        (possibly skewed) bounds to use."""
        return nu, mu

    def on_rhs(self, b, mask=None):
        """Called with the right-hand side before a solve; returns the
        (possibly corrupted) array to use."""
        return b

    def describe(self):
        """Human-readable one-liner for logs and smoke reports."""
        when = f">={self.at}" if self.persistent else f"={self.at}"
        return f"{self.kind}(at{when}, seed={self.seed})"


class HaloFault(FaultInjector):
    """Corrupt one rank's halo ring after an exchange.

    Models a dropped/garbled neighbor message.  The corrupted cell sits
    in the ring row directly above the interior (``local[h-1, col]``) --
    the row the 5-point stencil actually reads -- at a seed-derived
    column inside the neighbor-filled span, so the next matvec drags the
    poison into the interior and, a few iterations later, into a checked
    residual norm or reduced scalar.
    """

    kind = "halo"

    def __init__(self, rank=0, value=float("nan"), **kwargs):
        super().__init__(**kwargs)
        self.rank = int(rank)
        self.value = float(value)

    def on_exchange(self, field, count, vm):
        if not self._fires(count):
            return
        if not (0 <= self.rank < vm.num_ranks):
            raise FaultInjectionError(
                f"halo fault rank {self.rank} out of range "
                f"(machine has {vm.num_ranks} ranks)")
        h = field.decomp.halo_width
        local = field.local(self.rank)
        span = local.shape[1] - 2 * h
        col = h + int(make_rng([self.seed, count]).integers(span))
        local[h - 1, col] = self.value

    def describe(self):
        return (f"halo(rank={self.rank}, value={self.value}, "
                f"{super().describe()})")


class ReductionFault(FaultInjector):
    """Corrupt one rank's partial sum inside a global reduction.

    Models a flaky node: ``value`` replaces the partial outright
    (default NaN -- poisons the reduced scalar immediately), or
    ``factor`` multiplies it (a silent wrong answer, which must still be
    caught -- as divergence or budget exhaustion -- rather than
    converging to garbage).
    """

    kind = "reduction"

    def __init__(self, rank=0, value=float("nan"), factor=None,
                 entry=None, **kwargs):
        super().__init__(**kwargs)
        self.rank = int(rank)
        self.value = None if factor is not None else float(value)
        self.factor = None if factor is None else float(factor)
        # A fused reduction (dot_pair, capcg's dot_block Gram matrix)
        # presents several partial lists under ONE reduction count;
        # ``entry`` selects which of them to poison (0-based call
        # index within the fused reduction), so a single Gram entry
        # can be corrupted without touching its siblings.  ``None``
        # keeps the historical behavior: poison every list.
        self.entry = None if entry is None else int(entry)
        self._entry_count = None
        self._entry_index = 0

    def on_reduction(self, partials, count):
        if count != self._entry_count:
            self._entry_count = count
            self._entry_index = 0
        index = self._entry_index
        self._entry_index += 1
        if self.entry is not None and index != self.entry:
            return
        if not self._fires(count):
            return
        if not (0 <= self.rank < len(partials)):
            raise FaultInjectionError(
                f"reduction fault rank {self.rank} out of range "
                f"({len(partials)} partials)")
        if self.factor is not None:
            partials[self.rank] = partials[self.rank] * self.factor
        else:
            partials[self.rank] = self.value

    def describe(self):
        what = (f"factor={self.factor}" if self.factor is not None
                else f"value={self.value}")
        if self.entry is not None:
            what += f", entry={self.entry}"
        return f"reduction(rank={self.rank}, {what}, {super().describe()})"


class EigenboundsFault(FaultInjector):
    """Skew the estimated Chebyshev interval handed to P-CSI.

    Models stale or mis-configured Lanczos bounds.  The dangerous
    direction is ``mu_factor < 1`` (default 0.3): eigenvalues *above*
    the shrunken interval are amplified by the Chebyshev residual
    polynomial and the iteration diverges geometrically -- the
    canonical P-CSI failure.  (Raising ``nu`` merely slows convergence:
    the residual polynomial stays bounded below the interval.)  Counts
    *estimations* (``at=1`` skews only the first; the recovery policy's
    re-estimation then sees honest bounds and the solve completes).
    """

    kind = "eigenbounds"

    def __init__(self, nu_factor=1.0, mu_factor=0.3, **kwargs):
        super().__init__(**kwargs)
        self.nu_factor = float(nu_factor)
        self.mu_factor = float(mu_factor)
        self._estimations = 0

    def on_eigenbounds(self, nu, mu):
        self._estimations += 1
        if not self._fires(self._estimations):
            return nu, mu
        return nu * self.nu_factor, mu * self.mu_factor

    def describe(self):
        return (f"eigenbounds(nu_factor={self.nu_factor}, "
                f"mu_factor={self.mu_factor}, {super().describe()})")


class RHSFault(FaultInjector):
    """Poison the right-hand side with a NaN at a seeded ocean cell.

    Models an upstream blow-up (the barotropic forcing inherits a NaN
    from the baroclinic state).  The entry guard must refuse the solve
    with a ``nonfinite_input`` diagnosis before any work is spent.
    """

    kind = "nan_rhs"

    def __init__(self, value=float("nan"), **kwargs):
        super().__init__(**kwargs)
        self.value = float(value)

    def on_rhs(self, b, mask=None):
        b = np.array(b, dtype=np.float64, copy=True)
        if mask is not None:
            ocean = np.argwhere(np.asarray(mask))
        else:
            ocean = np.argwhere(np.ones(b.shape, dtype=bool))
        if len(ocean) == 0:
            return b
        pick = ocean[int(make_rng(self.seed).integers(len(ocean)))]
        b[tuple(pick)] = self.value
        return b

    def describe(self):
        return f"nan_rhs(value={self.value}, {super().describe()})"


class RankDeathFault(FaultInjector):
    """Kill one simulated rank mid-iteration (node failure).

    Fires after halo round ``at``: the rank's block data is wiped to
    NaN (everything the node held is gone) and the virtual machine is
    notified via :meth:`~repro.parallel.vm.VirtualMachine.notify_rank_death`.
    With a resilience runtime attached (``solve(resilience=...)``) the
    notification raises
    :class:`~repro.parallel.resilience.RankLostError` and the guarded
    loop rebuilds the block from its buddy replica -- no global
    restart.  Without one, the NaN propagates and the existing
    guardrails diagnose the solve as ``nonfinite_residual`` (graceful
    degradation, never a silent wrong answer).
    """

    kind = "rank_death"

    def __init__(self, rank=0, **kwargs):
        super().__init__(**kwargs)
        self.rank = int(rank)

    def on_exchange(self, field, count, vm):
        if not self._fires(count):
            return
        if not (0 <= self.rank < vm.num_ranks):
            raise FaultInjectionError(
                f"rank_death rank {self.rank} out of range "
                f"(machine has {vm.num_ranks} ranks)")
        field.local(self.rank)[...] = float("nan")
        vm.notify_rank_death(self.rank)

    def describe(self):
        return f"rank_death(rank={self.rank}, {super().describe()})"


class BitflipFault(FaultInjector):
    """Flip one bit of one float64 on one rank (silent data corruption).

    Models a radiation-induced upset or a corrupted message.  The
    default bit (62, the high exponent bit) turns an ordinary value
    into an astronomically large -- or non-finite -- one, the classic
    "loud" SDC; lower mantissa bits model subtle drift.

    ``target="halo"`` flips a cell of the halo ring the stencil reads
    (a corrupted-in-flight message -- the ABFT halo checksum catches it
    at delivery); ``target="iterate"`` flips a seeded *ocean* interior
    cell of the exchanged vector (corrupted resident state -- the
    periodic residual cross-check catches it at the next replication
    boundary).
    """

    kind = "bitflip"

    TARGETS = ("halo", "iterate")

    def __init__(self, target="halo", rank=0, bit=62, **kwargs):
        super().__init__(**kwargs)
        if target not in self.TARGETS:
            raise FaultInjectionError(
                f"bitflip target must be one of {self.TARGETS}, "
                f"got {target!r}")
        self.target = target
        self.rank = int(rank)
        self.bit = int(bit)
        if not (0 <= self.bit <= 63):
            raise FaultInjectionError(
                f"bitflip bit must be in [0, 63], got {self.bit}")

    def on_exchange(self, field, count, vm):
        if not self._fires(count):
            return
        if not (0 <= self.rank < vm.num_ranks):
            raise FaultInjectionError(
                f"bitflip rank {self.rank} out of range "
                f"(machine has {vm.num_ranks} ranks)")
        h = field.decomp.halo_width
        local = field.local(self.rank)
        rng = make_rng([self.seed, count])
        if self.target == "halo":
            span = local.shape[1] - 2 * h
            index = (h - 1, h + int(rng.integers(span)))
        else:
            ocean = np.argwhere(vm.local_mask(self.rank) > 0)
            if len(ocean) == 0:
                return
            j, i = ocean[int(rng.integers(len(ocean)))]
            index = (h + int(j), h + int(i))
        if local.ndim == 3:
            index = index + (0,)
        word = np.float64(local[index]).view(np.uint64)
        word = np.uint64(int(word) ^ (1 << self.bit))
        local[index] = word.view(np.float64)

    def describe(self):
        return (f"bitflip(target={self.target}, rank={self.rank}, "
                f"bit={self.bit}, {super().describe()})")


class WorkerCrashError(ReproError):
    """An injected (or detected) worker-process death during a step."""


class PipelineFault(FaultInjector):
    """Base class for faults targeting the experiment pipeline itself.

    Where :class:`FaultInjector` subclasses corrupt *numerics inside* a
    solve, these corrupt the *machinery around* it -- worker processes,
    the shared artifact cache, wall-clock behavior -- to exercise the
    resilient-runner path (retry, pool rebuild, quarantine, resume).

    The runner plans every injection **parent-side**: before dispatching
    attempt ``attempt`` of plan step ``step_index`` it calls
    :meth:`directive` and ships the returned dict into the worker along
    with the step.  Determinism therefore never depends on which worker
    process picks the step up.
    """

    def directive(self, step_index, module_path, attempt):
        """Directive dict for this dispatch, or ``None`` to stay quiet.

        Recognized keys (interpreted by the runner's step executor):
        ``{"crash": True}`` kills the worker process hard
        (``os._exit``; raised as :class:`WorkerCrashError` when the
        step runs inline), ``{"sleep": seconds}`` delays the step by
        that long (driving it into a configured timeout).
        """
        return None

    def on_cache(self, cache_dir):
        """Parent-side hook: damage the shared artifact cache directory
        (called between the warmup and steps waves)."""


class WorkerCrashFault(PipelineFault):
    """Kill the worker executing one plan step, ``attempts`` times.

    Models a preempted/OOM-killed node.  ``step`` selects the 0-based
    plan index; the first ``attempts`` dispatches of that step die, so
    with a retrying :class:`~repro.reporting.runner.FailurePolicy` the
    step succeeds on attempt ``attempts + 1``.
    """

    kind = "worker_crash"

    def __init__(self, step=0, attempts=1, **kwargs):
        super().__init__(**kwargs)
        self.step = int(step)
        self.attempts = int(attempts)

    def directive(self, step_index, module_path, attempt):
        if step_index == self.step and attempt <= self.attempts:
            self.fired += 1
            return {"crash": True}
        return None

    def describe(self):
        return (f"worker_crash(step={self.step}, "
                f"attempts={self.attempts}, {super().describe()})")


class SlowRankFault(PipelineFault):
    """Stall one plan step past a configured per-step timeout.

    Models a straggling rank / wedged filesystem.  The first
    ``attempts`` dispatches of step ``step`` sleep ``sleep`` seconds
    before doing any work; with ``step_timeout < sleep`` the runner
    declares the attempt dead and (under a retrying policy) tries
    again, injection-free.
    """

    kind = "slow_rank"

    def __init__(self, step=0, sleep=30.0, attempts=1, **kwargs):
        super().__init__(**kwargs)
        self.step = int(step)
        self.sleep = float(sleep)
        self.attempts = int(attempts)

    def directive(self, step_index, module_path, attempt):
        if step_index == self.step and attempt <= self.attempts:
            self.fired += 1
            return {"sleep": self.sleep}
        return None

    def describe(self):
        return (f"slow_rank(step={self.step}, sleep={self.sleep}, "
                f"attempts={self.attempts}, {super().describe()})")


class CacheCorruptFault(PipelineFault):
    """Flip bytes inside artifact-cache entries between pipeline waves.

    Models silent disk/network corruption of the shared cache.  After
    the warmup wave has persisted its artifacts the runner hands this
    injector the cache directory; it picks ``count`` seed-determined
    entries and overwrites a byte span in the middle of each file.  The
    cache's read-path checksum must then quarantine the damage and the
    affected steps must transparently rebuild: the pipeline completes
    with no failed steps, and every damaged file is accounted for --
    quarantined during the run if anything read it (scheduling-
    dependent), or still damaged on disk where ``verify(repair=True)``
    catches it.
    """

    kind = "cache_corrupt"

    def __init__(self, count=1, **kwargs):
        super().__init__(**kwargs)
        self.count = int(count)
        self.corrupted = []

    def on_cache(self, cache_dir):
        import os

        if not cache_dir or not os.path.isdir(cache_dir):
            return
        entries = sorted(
            name for name in os.listdir(cache_dir)
            if name.startswith("repro-") and name.endswith(".npz"))
        if not entries:
            return
        rng = make_rng([self.seed, len(entries)])
        picks = rng.choice(len(entries), size=min(self.count, len(entries)),
                           replace=False)
        for index in sorted(int(i) for i in picks):
            path = os.path.join(cache_dir, entries[index])
            try:
                with open(path, "r+b") as handle:
                    handle.seek(0, os.SEEK_END)
                    size = handle.tell()
                    handle.seek(max(0, size // 2))
                    handle.write(b"\xde\xad\xbe\xef")
            except OSError:
                continue
            self.fired += 1
            self.corrupted.append(entries[index])

    def describe(self):
        return (f"cache_corrupt(count={self.count}, "
                f"{super().describe()})")


#: Registry of spec names to injector classes.
FAULTS = {
    HaloFault.kind: HaloFault,
    ReductionFault.kind: ReductionFault,
    EigenboundsFault.kind: EigenboundsFault,
    RHSFault.kind: RHSFault,
    RankDeathFault.kind: RankDeathFault,
    BitflipFault.kind: BitflipFault,
    WorkerCrashFault.kind: WorkerCrashFault,
    SlowRankFault.kind: SlowRankFault,
    CacheCorruptFault.kind: CacheCorruptFault,
}


def _accepted_params(cls):
    """Keyword parameters an injector class accepts, across its MRO."""
    import inspect

    names = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        try:
            sig = inspect.signature(klass.__init__)
        except (TypeError, ValueError):
            continue
        for param in sig.parameters.values():
            if param.name == "self" or param.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD):
                continue
            names.add(param.name)
    return names


def make_fault(kind, **params):
    """Instantiate a registered injector by kind name.

    Unknown parameter keys are diagnosed by name (with the accepted
    set) rather than surfacing as a bare ``TypeError`` from whichever
    ``__init__`` in the injector's MRO finally rejects them.
    """
    try:
        cls = FAULTS[kind]
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{sorted(FAULTS)}") from None
    accepted = _accepted_params(cls)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise FaultInjectionError(
            f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
            f"fault {kind!r}; accepted: {sorted(accepted)}")
    try:
        return cls(**params)
    except TypeError as exc:
        raise FaultInjectionError(
            f"bad parameters for fault {kind!r}: {exc}") from None


def parse_fault_spec(spec):
    """Parse ``"kind:key=value,key=value"`` into an injector.

    Used by ``repro solve --inject-fault``.  Values are parsed as int,
    then float (``nan``/``inf`` included), then ``true``/``false``, then
    kept as strings.  Examples::

        halo
        halo:rank=1,at=2
        reduction:rank=3,factor=1e6,persistent=true
        reduction:rank=0,at=4,entry=2
        eigenbounds:nu_factor=12
        nan_rhs:seed=42
        rank_death:rank=2,at=12
        bitflip:target=halo,rank=1,at=9
        bitflip:target=iterate,rank=0,bit=62,at=15
    """
    spec = spec.strip()
    if not spec:
        raise FaultInjectionError("empty fault spec")
    kind, _, tail = spec.partition(":")
    params = {}
    if tail:
        for item in tail.split(","):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise FaultInjectionError(
                    f"malformed fault spec item {item!r} in {spec!r} "
                    f"(expected key=value)")
            params[key] = _parse_value(raw.strip())
    return make_fault(kind.strip(), **params)


def _parse_value(raw):
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        value = float(raw)
    except ValueError:
        return raw
    return value


def nonfinite_summary(field):
    """Per-rank non-finite counts of a block field (diagnostic aid)."""
    out = {}
    for rank in range(len(field.locals_)):
        bad = int(np.count_nonzero(~np.isfinite(field.local(rank))))
        if bad:
            out[rank] = bad
    return out
