"""Multi-block rank placement and load-balance analysis.

Production POP typically assigns *several* blocks to each rank: smaller
blocks expose land for elimination and let the space-filling-curve
assignment even out the ocean work, at the price of more halo perimeter
per rank.  The paper leans on this machinery ("the choice of ocean block
size and layout ... has a large impact on performance", section 5.2) and
fixes the decomposition recipe to keep it out of the solver comparison;
here it is implemented so the trade-off itself can be studied (the
block-layout ablation).

:func:`balanced_rank_assignment` walks the active blocks in curve order
and cuts the sequence into ``ranks`` contiguous chunks of approximately
equal *ocean-point* work (a one-dimensional partition of the SFC -- the
standard space-filling-curve partitioning of Dennis 2007).
:class:`PlacementReport` summarizes the result: per-rank work, load
imbalance, and per-rank halo perimeter.
"""

from dataclasses import dataclass, field

from repro.core.errors import DecompositionError


@dataclass
class PlacementReport:
    """Load and communication summary of one block placement.

    Attributes
    ----------
    ranks:
        Number of ranks actually used.
    blocks_per_rank:
        List (by rank) of block-index lists.
    work_per_rank:
        Ocean points per rank.
    halo_words_per_rank:
        Halo words each rank sends per exchange (sum of its blocks'
        perimeters; block-to-block copies within a rank are counted too,
        as POP does unless blocks are fused).
    """

    ranks: int
    blocks_per_rank: list
    work_per_rank: list
    halo_words_per_rank: list

    @property
    def max_work(self):
        """Critical-path ocean points."""
        return max(self.work_per_rank)

    @property
    def mean_work(self):
        return sum(self.work_per_rank) / len(self.work_per_rank)

    @property
    def imbalance(self):
        """``max/mean`` work ratio (1.0 = perfectly balanced)."""
        mean = self.mean_work
        return self.max_work / mean if mean > 0 else float("inf")

    @property
    def max_halo_words(self):
        """Critical-path halo words per exchange."""
        return max(self.halo_words_per_rank)

    def describe(self):
        return (
            f"{self.ranks} ranks, max work {self.max_work} pts "
            f"(imbalance {self.imbalance:.3f}), max halo "
            f"{self.max_halo_words} words/exchange"
        )


def _block_halo_words(block, halo_width):
    """Words one block contributes to its rank's halo traffic."""
    h = halo_width
    return 2 * h * block.nx + 2 * h * (block.ny + 2 * h)


def balanced_rank_assignment(decomp, ranks):
    """Partition the SFC-ordered active blocks into balanced rank chunks.

    Greedy prefix partition: walk blocks in rank (curve) order and close
    a chunk once its ocean-point work reaches the remaining-average
    target.  Guarantees every rank gets at least one block when
    ``ranks <= num_active``.

    Returns a :class:`PlacementReport`.
    """
    if ranks < 1:
        raise DecompositionError(f"ranks must be >= 1, got {ranks}")
    blocks = decomp.active_blocks
    if ranks > len(blocks):
        raise DecompositionError(
            f"cannot place {len(blocks)} active blocks on {ranks} ranks "
            "(at least one block per rank required)"
        )

    total_work = sum(b.n_ocean for b in blocks)
    assignment = []
    work = []
    halo = []
    current = []
    current_work = 0
    remaining_work = total_work
    remaining_ranks = ranks
    for i, block in enumerate(blocks):
        blocks_left_after = len(blocks) - (i + 1)
        current.append(block.index)
        current_work += block.n_ocean
        target = remaining_work / remaining_ranks
        must_close = blocks_left_after == remaining_ranks - 1
        if remaining_ranks > 1 and (current_work >= target or must_close):
            assignment.append(current)
            work.append(current_work)
            halo.append(sum(
                _block_halo_words(blocks_by_index(decomp)[idx],
                                  decomp.halo_width)
                for idx in current))
            remaining_work -= current_work
            remaining_ranks -= 1
            current = []
            current_work = 0
    assignment.append(current)
    work.append(current_work)
    halo.append(sum(
        _block_halo_words(blocks_by_index(decomp)[idx], decomp.halo_width)
        for idx in current))

    return PlacementReport(
        ranks=len(assignment),
        blocks_per_rank=assignment,
        work_per_rank=work,
        halo_words_per_rank=halo,
    )


def blocks_by_index(decomp):
    """Index -> Block lookup (cached on the decomposition)."""
    cache = getattr(decomp, "_blocks_by_index", None)
    if cache is None:
        cache = {b.index: b for b in decomp.blocks}
        decomp._blocks_by_index = cache
    return cache


def placement_for_block_size(config, cores, block_size, curve="hilbert",
                             halo_width=2):
    """Decompose ``config`` into ``block_size`` blocks and place on ranks.

    Returns ``(decomposition, PlacementReport)``.  Smaller blocks both
    eliminate more land and balance better; the report's
    ``max_halo_words`` shows what that costs in communication.
    """
    from repro.parallel.decomposition import decompose

    mby = max(1, round(config.ny / block_size))
    mbx = max(1, round(config.nx / block_size))
    decomp = decompose(config.ny, config.nx, mby, mbx, mask=config.mask,
                       curve=curve, halo_width=halo_width)
    report = balanced_rank_assignment(decomp, min(cores, decomp.num_active))
    return decomp, report
