"""Space-filling curves for block-to-rank placement.

POP uses space-filling-curve partitioning (Dennis, IPDPS 2007) so that
after land-block elimination the remaining ocean blocks are assigned to
ranks in an order that keeps neighbors close, improving both load
balance and communication locality.  The paper's 0.1-degree experiments
(section 5.2) explicitly "use space-filling curves" in their block
decompositions.

Two curves are provided:

* :func:`hilbert_order` -- the Hilbert curve, locality-optimal, defined
  on a ``2^k x 2^k`` lattice.  Arbitrary lattices are handled by
  embedding into the enclosing power-of-two square and skipping holes.
* :func:`morton_order` -- Z-order / Morton, cheaper to compute, slightly
  worse locality; kept as a comparator for the placement ablation.
"""

import numpy as np

from repro.core.errors import DecompositionError


def _hilbert_d2xy(order, d):
    """Convert distance ``d`` along a Hilbert curve of ``order`` to (x, y).

    Classic bit-twiddling construction (Lam & Shapiro); ``order`` is the
    side length, a power of two.
    """
    rx = ry = 0
    x = y = 0
    t = d
    s = 1
    while s < order:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _next_power_of_two(value):
    power = 1
    while power < value:
        power *= 2
    return power


def hilbert_order(mby, mbx):
    """Hilbert-curve visiting order of an ``mby x mbx`` block lattice.

    Returns a list of ``(jb, ib)`` lattice coordinates (block row, block
    column) in curve order, covering every lattice cell exactly once.
    Lattices that are not power-of-two squares are embedded in the
    enclosing power-of-two square; out-of-lattice cells are skipped.
    """
    if mby < 1 or mbx < 1:
        raise DecompositionError(f"lattice must be at least 1x1, got {mby}x{mbx}")
    side = _next_power_of_two(max(mby, mbx))
    order = []
    for d in range(side * side):
        x, y = _hilbert_d2xy(side, d)
        if x < mbx and y < mby:
            order.append((y, x))
    return order


def morton_order(mby, mbx):
    """Z-order (Morton) visiting order of an ``mby x mbx`` block lattice.

    Same contract as :func:`hilbert_order`.
    """
    if mby < 1 or mbx < 1:
        raise DecompositionError(f"lattice must be at least 1x1, got {mby}x{mbx}")
    side = _next_power_of_two(max(mby, mbx))
    bits = max(1, side.bit_length() - 1)
    order = []
    for d in range(side * side):
        x = y = 0
        for b in range(bits):
            x |= ((d >> (2 * b)) & 1) << b
            y |= ((d >> (2 * b + 1)) & 1) << b
        if x < mbx and y < mby:
            order.append((y, x))
    return order


_CURVES = {"hilbert": hilbert_order, "morton": morton_order, "rowmajor": None}


def sfc_sort_blocks(mby, mbx, curve="hilbert"):
    """Return lattice coordinates in placement order for ``curve``.

    ``curve`` is one of ``"hilbert"``, ``"morton"`` or ``"rowmajor"``
    (plain row-major scan, the no-SFC baseline for the placement
    ablation).
    """
    if curve not in _CURVES:
        raise DecompositionError(
            f"unknown space-filling curve {curve!r}; expected one of {sorted(_CURVES)}"
        )
    if curve == "rowmajor":
        return [(jb, ib) for jb in range(mby) for ib in range(mbx)]
    return _CURVES[curve](mby, mbx)


def curve_locality_score(order):
    """Mean Manhattan distance between consecutive visits (lower = better).

    A quick locality diagnostic used by tests and the placement ablation:
    the Hilbert curve should always score at or below Morton, which in
    turn beats row-major on tall lattices.
    """
    if len(order) < 2:
        return 0.0
    coords = np.asarray(order, dtype=float)
    deltas = np.abs(np.diff(coords, axis=0)).sum(axis=1)
    return float(deltas.mean())
