"""Masked global reductions over block fields.

POP's barotropic inner products are global sums over ocean points: each
rank multiplies its local partial products by the land mask, reduces
locally, then joins an ``MPI_Allreduce``.  The paper models the
all-reduce as a binomial tree of depth ``log2 p`` (Eq. 2); the masking
multiply contributes ``2 n^2`` flops per rank.

Numerical determinism
---------------------
The simulated reduction sums per-rank partials in rank order.  This is a
fixed, reproducible order -- real MPI reductions have their own fixed
tree order, which is why running the same configuration on the same
machine is bit-for-bit reproducible, while changing the rank count (or
the solver!) is not.  That non-associativity is precisely what motivates
the paper's section 6 ensemble-consistency machinery.
"""

import math

import numpy as np


def binomial_tree_depth(p):
    """Depth of a binomial reduction tree over ``p`` ranks: ``ceil(log2 p)``."""
    if p < 1:
        raise ValueError(f"rank count must be >= 1, got {p}")
    return int(math.ceil(math.log2(p))) if p > 1 else 0


def masked_local_dot(a_interior, b_interior, mask_interior):
    """One rank's masked partial inner product (``sum(a*b*mask)``)."""
    return float(np.sum(a_interior * b_interior * mask_interior))


def masked_global_sum_blocks(partials):
    """Combine per-rank partial sums in rank order.

    ``partials`` is a sequence ordered by rank; the return value is the
    deterministic left-to-right sum, standing in for the fixed-topology
    MPI reduction.
    """
    total = 0.0
    for value in partials:
        total += value
    return total


def masked_partials_stacked(a_interiors, b_interiors, mask_stack):
    """Per-rank masked partial products from stacked interiors.

    ``a_interiors``/``b_interiors``/``mask_stack`` have shape
    ``(p, bny, bnx)``.  One vectorized elementwise product plus one
    ``np.sum(axis=(1, 2))`` replaces the per-rank Python loop.  The
    result is bit-identical to computing ``sum(a * b * mask)`` rank by
    rank: numpy's pairwise summation reduces each rank's contiguous
    ``bny * bnx`` chunk exactly as it reduces the standalone 2-D
    product.  (``einsum`` was rejected here -- it accumulates serially
    and differs from the per-rank sums in the last bits.)

    Returns a list of Python floats ordered by rank, ready for
    :func:`masked_global_sum_blocks`.
    """
    prod = a_interiors * b_interiors * mask_stack
    return np.sum(prod, axis=(1, 2)).tolist()


def masked_global_dot_blockfields(a, b, mask_blocks):
    """Masked global inner product of two :class:`BlockField` values.

    ``mask_blocks`` is a list (by rank) of interior mask arrays.  Returns
    the scalar product over all ocean points, reduced in rank order.
    """
    partials = []
    for rank in range(len(a.locals_)):
        partials.append(
            masked_local_dot(a.interior(rank), b.interior(rank), mask_blocks[rank])
        )
    return masked_global_sum_blocks(partials)
