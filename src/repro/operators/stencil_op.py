"""Vectorized application of the nine-point stencil.

The matrix-vector product is the computational core of every solver
iteration (Algorithm 1 step 5, Algorithm 2 step 9 of the paper) and the
paper's cost model charges it ``9 n^2`` multiply-add pairs per block.
We count one fused multiply-add as 1 "flop unit" to match the paper's
``theta`` bookkeeping, so :data:`MATVEC_FLOPS_PER_POINT` is 9.

The arithmetic is executed by a pluggable kernel backend (see
:mod:`repro.kernels`); the default is pure ``numpy`` slicing over a
single padded copy of the input -- no Python-level loops -- per the HPC
guide idioms.  Deterministic backends are bit-identical, so callers may
treat the backend as an execution detail.
"""

import numpy as np

from repro.kernels import resolve_kernels

#: Flop units charged per grid point per matrix-vector product, matching
#: the paper's ``9 n^2`` accounting (one unit per stencil coefficient).
MATVEC_FLOPS_PER_POINT = 9

#: Cached padded scratch buffers for :func:`apply_stencil`, keyed by
#: ``(shape, dtype)``.  The matvec is the serial hot loop; reusing the
#: ``(ny + 2, nx + 2[, nrhs])`` buffer avoids one full-grid allocation
#: per call.  The zero border (the closed boundary) is written once at
#: creation and never touched afterwards, so no re-zeroing is needed.
_PADDED_SCRATCH = {}


def _padded_scratch(shape, dtype):
    key = (shape, np.dtype(dtype).str)
    buf = _PADDED_SCRATCH.get(key)
    if buf is None:
        ny, nx = shape[:2]
        buf = np.zeros((ny + 2, nx + 2) + shape[2:], dtype=dtype)
        _PADDED_SCRATCH[key] = buf
    return buf


def apply_stencil(coeffs, x, out=None, kernels=None):
    """Global ``A @ x`` for a nine-point :class:`StencilCoeffs`.

    Out-of-domain neighbors contribute zero (closed boundary).  ``x``
    may carry a trailing ``nrhs`` axis, batching independent fields
    through one vectorized pass.  ``out`` may alias neither ``x`` nor
    the coefficient arrays.  ``kernels`` selects the executing backend
    (default: ``$REPRO_KERNELS``/auto).
    """
    padded = _padded_scratch(x.shape, x.dtype)
    padded[1:-1, 1:-1] = x

    if out is None:
        out = np.empty_like(x)
    return resolve_kernels(kernels).stencil_apply(coeffs, x, padded, out)


def apply_stencil_local(coeffs, local, halo_width, out=None, kernels=None):
    """``A @ x`` on one block's interior, reading neighbors from halos.

    Parameters
    ----------
    coeffs:
        :class:`StencilCoeffs` restricted to this block's interior (the
        *true* operator rows, including couplings into the halo -- not
        the block-diagonal approximation).
    local:
        Padded local array of shape ``(bny + 2h, bnx + 2h)`` with halos
        already exchanged.
    halo_width:
        ``h``.
    out:
        Optional output array of shape ``(bny, bnx)``.

    Returns
    -------
    The interior result, shape ``(bny, bnx)``.
    """
    h = halo_width
    bny = local.shape[0] - 2 * h
    bnx = local.shape[1] - 2 * h
    if out is None:
        out = np.empty((bny, bnx) + local.shape[2:], dtype=local.dtype)
    return resolve_kernels(kernels).stencil_apply_local(coeffs, local, h, out)


def residual(coeffs, x, b, out=None, kernels=None):
    """``b - A @ x`` (the solver's residual), vectorized."""
    ax = apply_stencil(coeffs, x, kernels=kernels)
    if out is None:
        out = np.empty_like(b)
    np.subtract(b, ax, out=out)
    return out
