"""Sparse-matrix assembly and spectral diagnostics.

The stencil form is what production code applies; the explicit
``scipy.sparse`` form exists for validation (symmetry, definiteness,
agreement with the stencil apply) and for the spectral studies behind
Figure 4 (block sparsity structure) and the eigenvalue-bound experiments
(Figure 3 / the eigen-margin ablation).
"""

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro.core.errors import SolverError
from repro.core.fields import NEIGHBOR_OFFSETS


def to_sparse(coeffs, order="rowmajor", decomp=None):
    """Assemble the nine-point operator as a CSR matrix.

    Parameters
    ----------
    coeffs:
        :class:`~repro.grid.stencil.StencilCoeffs`.
    order:
        ``"rowmajor"`` numbers unknowns in grid row-major order;
        ``"blocked"`` numbers them block-by-block over ``decomp``
        (the reordering of the paper's Figure 4, which exposes the
        nine-diagonal *block* structure that block preconditioning
        exploits).
    decomp:
        Required for ``order="blocked"``.

    Returns
    -------
    scipy.sparse.csr_matrix of shape ``(ny*nx, ny*nx)``.
    """
    ny, nx = coeffs.shape
    size = ny * nx

    if order == "rowmajor":
        numbering = np.arange(size).reshape(ny, nx)
    elif order == "blocked":
        if decomp is None:
            raise SolverError("order='blocked' requires a decomposition")
        numbering = np.empty((ny, nx), dtype=np.int64)
        counter = 0
        for block in decomp.blocks:  # lattice row-major block order
            npts = block.npoints
            numbering[block.slices] = np.arange(
                counter, counter + npts
            ).reshape(block.ny, block.nx)
            counter += npts
    else:
        raise SolverError(f"unknown ordering {order!r}")

    rows = []
    cols = []
    vals = []
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")

    # diagonal
    rows.append(numbering.ravel())
    cols.append(numbering.ravel())
    vals.append(coeffs.c.ravel())

    for direction, (dj, di) in NEIGHBOR_OFFSETS.items():
        coeff = getattr(coeffs, direction)
        jn = jj + dj
        in_ = ii + di
        valid = (0 <= jn) & (jn < ny) & (0 <= in_) & (in_ < nx)
        valid &= coeff != 0.0
        rows.append(numbering[jj[valid], ii[valid]])
        cols.append(numbering[jn[valid], in_[valid]])
        vals.append(coeff[valid])

    matrix = sparse.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(size, size),
    )
    return matrix.tocsr()


def ocean_submatrix(coeffs):
    """The operator restricted to ocean unknowns.

    Returns ``(A_ocean, ocean_indices)`` where ``ocean_indices`` are the
    row-major flat indices of ocean points.  This is the matrix whose
    spectrum governs solver convergence (land rows are inert identity).
    """
    full = to_sparse(coeffs)
    idx = np.flatnonzero(coeffs.mask.ravel())
    return full[np.ix_(idx, idx)].tocsr(), idx


def extreme_eigenvalues(matrix, preconditioner_diag=None, tol=1e-6):
    """Smallest and largest eigenvalues of ``D^-1/2 A D^-1/2``.

    With ``preconditioner_diag`` given (the diagonal of ``M``), returns
    the extreme eigenvalues of the symmetrically preconditioned operator
    -- the spectrum whose bounds P-CSI's Chebyshev interval must cover.
    Uses Lanczos via ``scipy.sparse.linalg.eigsh`` (this is the *exact*
    reference the cheap in-solver Lanczos estimator is tested against).
    """
    a = matrix
    if preconditioner_diag is not None:
        d = np.asarray(preconditioner_diag, dtype=np.float64)
        if np.any(d <= 0):
            raise SolverError("preconditioner diagonal must be positive")
        scale = sparse.diags(1.0 / np.sqrt(d))
        a = (scale @ matrix @ scale).tocsr()
    lo = eigsh(a, k=1, which="SA", return_eigenvectors=False, tol=tol)[0]
    hi = eigsh(a, k=1, which="LA", return_eigenvectors=False, tol=tol)[0]
    return float(lo), float(hi)


def condition_number(matrix, preconditioner_diag=None, tol=1e-6):
    """Spectral condition number ``lambda_max / lambda_min``."""
    lo, hi = extreme_eigenvalues(matrix, preconditioner_diag, tol=tol)
    if lo <= 0:
        raise SolverError(
            f"matrix is not positive definite (lambda_min = {lo:.3e})"
        )
    return hi / lo
