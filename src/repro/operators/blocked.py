"""The distributed nine-point operator over a block decomposition.

Each simulated rank applies the *true* operator rows for its block,
reading neighbor values out of its exchanged halo -- exactly POP's
``btrop_operator`` followed by ``update_halo``.  The blocked operator is
validated against the global one: ``gather(blocked(x)) == global(x)``
bit-for-bit on every grid the test suite generates.
"""

from repro.core.errors import SolverError
from repro.operators.stencil_op import apply_stencil_local


class BlockedOperator:
    """Per-rank stencil application bound to a decomposition.

    Parameters
    ----------
    coeffs:
        Global :class:`~repro.grid.stencil.StencilCoeffs`.
    decomp:
        The block :class:`~repro.parallel.decomposition.Decomposition`.
    """

    def __init__(self, coeffs, decomp):
        if coeffs.shape != (decomp.ny, decomp.nx):
            raise SolverError(
                f"stencil shape {coeffs.shape} does not match decomposition "
                f"grid ({decomp.ny}, {decomp.nx})"
            )
        self.coeffs = coeffs
        self.decomp = decomp
        # Slice the nine coefficient arrays once per rank.
        self._local_coeffs = [
            _LocalCoeffs(coeffs, block) for block in decomp.active_blocks
        ]

    def apply(self, x_field, out_field):
        """``out = A @ x`` per rank; halos of ``x_field`` must be current.

        Writes block interiors of ``out_field`` (its halos are left
        stale; exchange afterwards if the next operation reads them).
        """
        h = self.decomp.halo_width
        for rank in range(self.decomp.num_active):
            apply_stencil_local(
                self._local_coeffs[rank],
                x_field.local(rank),
                h,
                out=out_field.interior(rank),
            )
        return out_field


class _LocalCoeffs:
    """The nine coefficient arrays sliced to one block's interior."""

    __slots__ = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")

    def __init__(self, coeffs, block):
        sl = block.slices
        for name in self.__slots__:
            setattr(self, name, getattr(coeffs, name)[sl])
