"""The distributed nine-point operator over a block decomposition.

Each simulated rank applies the *true* operator rows for its block,
reading neighbor values out of its exchanged halo -- exactly POP's
``btrop_operator`` followed by ``update_halo``.  The blocked operator is
validated against the global one: ``gather(blocked(x)) == global(x)``
bit-for-bit on every grid the test suite generates.

On uniform decompositions the nine per-rank coefficient slices are also
kept stacked as ``(p, bny, bnx)`` arrays, so that
:meth:`BlockedOperator.apply` on stacked fields runs the whole
multiply-accumulate sequence as nine vectorized numpy calls over the
stack instead of a Python loop over ranks -- bit-identical, since every
point sees the same operation sequence in the same order.
"""

import numpy as np

from repro.core.errors import SolverError
from repro.kernels import resolve_kernels

#: Coefficient application order shared by the per-rank and stacked
#: paths (and by :func:`~repro.operators.stencil_op.apply_stencil`);
#: keeping it fixed is what makes the two engines bit-identical.
_COEFF_ORDER = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")


class BlockedOperator:
    """Per-rank stencil application bound to a decomposition.

    Parameters
    ----------
    coeffs:
        Global :class:`~repro.grid.stencil.StencilCoeffs`.
    decomp:
        The block :class:`~repro.parallel.decomposition.Decomposition`.
    kernels:
        Kernel backend executing the multiply-accumulate passes (name,
        instance, or ``None`` for the ``$REPRO_KERNELS``/auto default);
        see :mod:`repro.kernels`.
    """

    def __init__(self, coeffs, decomp, kernels=None):
        if coeffs.shape != (decomp.ny, decomp.nx):
            raise SolverError(
                f"stencil shape {coeffs.shape} does not match decomposition "
                f"grid ({decomp.ny}, {decomp.nx})"
            )
        self.coeffs = coeffs
        self.decomp = decomp
        self.kernels = resolve_kernels(kernels)
        # Slice the nine coefficient arrays once per rank.
        self._local_coeffs = [
            _LocalCoeffs(coeffs, block) for block in decomp.active_blocks
        ]
        # Stacked (p, bny, bnx) copies of the same slices, built lazily
        # the first time a stacked field comes through.
        self._stacked_coeffs = None

    def _get_stacked_coeffs(self):
        if self._stacked_coeffs is None:
            self._stacked_coeffs = {
                name: np.stack([getattr(lc, name)
                                for lc in self._local_coeffs])
                for name in _COEFF_ORDER
            }
        return self._stacked_coeffs

    def apply(self, x_field, out_field):
        """``out = A @ x`` per rank; halos of ``x_field`` must be current.

        Writes block interiors of ``out_field`` (its halos are left
        stale; exchange afterwards if the next operation reads them).
        Stacked fields dispatch to the vectorized stacked path.
        """
        if (x_field.is_stacked and out_field.is_stacked
                and self.decomp.is_uniform):
            return self.apply_stacked(x_field, out_field)
        h = self.decomp.halo_width
        kernels = self.kernels
        for rank in range(self.decomp.num_active):
            kernels.stencil_apply_local(
                self._local_coeffs[rank],
                x_field.local(rank),
                h,
                out_field.interior(rank),
            )
        return out_field

    def apply_stacked(self, x_field, out_field):
        """``out = A @ x`` over the whole stack in nine MAC passes."""
        h = self.decomp.halo_width
        bny, bnx = self.decomp.uniform_block_shape()
        self.kernels.stencil_apply_stacked(
            self._get_stacked_coeffs(), x_field.stack, h, bny, bnx,
            out_field.interior_stack())
        return out_field


class _LocalCoeffs:
    """The nine coefficient arrays sliced to one block's interior."""

    __slots__ = ("c", "n", "s", "e", "w", "ne", "nw", "se", "sw")

    def __init__(self, coeffs, block):
        sl = block.slices
        for name in self.__slots__:
            setattr(self, name, getattr(coeffs, name)[sl])
