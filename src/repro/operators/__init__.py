"""Linear-operator machinery for the nine-point barotropic stencil.

* :mod:`repro.operators.stencil_op` -- vectorized global application and
  the flop-count contract used by the instrumentation,
* :mod:`repro.operators.blocked` -- the distributed operator over a
  block decomposition (reads halos, writes interiors),
* :mod:`repro.operators.matrix` -- ``scipy.sparse`` assembly, ocean
  submatrix extraction, and spectrum estimation for validation.
"""

from repro.operators.stencil_op import (
    MATVEC_FLOPS_PER_POINT,
    apply_stencil,
    apply_stencil_local,
    residual,
)
from repro.operators.blocked import BlockedOperator
from repro.operators.matrix import (
    to_sparse,
    ocean_submatrix,
    extreme_eigenvalues,
    condition_number,
)

__all__ = [
    "MATVEC_FLOPS_PER_POINT",
    "apply_stencil",
    "apply_stencil_local",
    "residual",
    "BlockedOperator",
    "to_sparse",
    "ocean_submatrix",
    "extreme_eigenvalues",
    "condition_number",
]
