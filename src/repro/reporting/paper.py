"""Every quantitative claim of the paper, as structured data.

The machine-readable companion of EXPERIMENTS.md: each
:class:`PaperValue` records where in the paper a number comes from, what
it measures, and how strictly the reproduction is expected to track it
(``kind``):

* ``"exact"``      -- structural facts that must reproduce exactly,
* ``"shape"``      -- magnitudes the reproduction should land near
  (factor-of-~2 band),
* ``"qualitative"``-- orderings/verdicts that must hold, value is
  informational.

The comparison machinery in :mod:`repro.reporting.compare` consumes
these records.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperValue:
    """One number (or verdict) the paper reports."""

    key: str          # stable identifier, e.g. "fig08.speedup_pcsi_evp"
    artifact: str     # paper artifact ("fig08", "table1", "sec4.3", ...)
    description: str
    value: object     # float, tuple, or string verdict
    kind: str = "shape"
    units: str = ""

    def __post_init__(self):
        if self.kind not in ("exact", "shape", "qualitative"):
            raise ValueError(f"unknown kind {self.kind!r}")


_VALUES = [
    # --- section 1 / figure 1 -----------------------------------------
    PaperValue("fig01.fraction_low", "fig01",
               "barotropic share of core POP time at 470 cores",
               0.05, "shape"),
    PaperValue("fig01.fraction_high", "fig01",
               "barotropic share at >16k cores", 0.50, "shape"),
    # --- section 2 cost model ------------------------------------------
    PaperValue("eq2.chrongear_flops_per_point", "eq2",
               "ChronGear+diagonal flop units per point per iteration",
               18.0, "exact"),
    PaperValue("eq3.pcsi_flops_per_point", "eq3",
               "P-CSI+diagonal flop units per point per iteration",
               13.0, "exact"),
    PaperValue("eq5.chrongear_evp_flops_per_point", "eq5",
               "ChronGear+EVP flop units per point per iteration",
               31.0, "exact"),
    PaperValue("eq6.pcsi_evp_flops_per_point", "eq6",
               "P-CSI+EVP flop units per point per iteration",
               26.0, "exact"),
    # --- section 4 EVP --------------------------------------------------
    PaperValue("sec4.evp_roundoff_12x12", "sec4.3",
               "EVP marching round-off at 12x12 blocks", 1e-8, "shape"),
    PaperValue("sec4.evp_solve_cost", "sec4.2",
               "EVP solve cost at n=12: 2*9n^2 + (2n-5)^2", 2953.0,
               "exact", units="flop units"),
    PaperValue("sec4.simplified_cost_ratio", "sec4.3",
               "full/simplified EVP cost ratio (22n^2 / 14n^2)",
               22.0 / 14.0, "shape"),
    PaperValue("fig06.evp_iteration_cut", "fig06",
               "iteration reduction from EVP preconditioning", 3.0,
               "shape", units="x"),
    PaperValue("fig06.highres_fewer_iterations", "fig06",
               "0.1-degree needs fewer iterations than 1-degree",
               "true", "qualitative"),
    # --- figure 7 / table 1 ---------------------------------------------
    PaperValue("fig07.chrongear_768", "fig07",
               "1-degree ChronGear+diagonal at 768 cores", 0.58,
               "shape", units="s/day"),
    PaperValue("fig07.pcsi_speedup_768", "fig07",
               "1-degree P-CSI+diagonal speedup at 768 cores", 1.4,
               "shape", units="x"),
    PaperValue("fig07.pcsi_evp_speedup_768", "fig07",
               "1-degree P-CSI+EVP speedup at 768 cores", 1.6,
               "shape", units="x"),
    PaperValue("table1.pcsi_evp_768", "table1",
               "whole-POP improvement, P-CSI+EVP at 768 cores", 0.167,
               "shape"),
    PaperValue("table1.pcsi_evp_48", "table1",
               "whole-POP improvement, P-CSI+EVP at 48 cores", -0.024,
               "shape"),
    # --- figure 8 --------------------------------------------------------
    PaperValue("fig08.chrongear_16875", "fig08",
               "0.1-degree ChronGear+diagonal at 16,875 cores", 19.0,
               "shape", units="s/day"),
    PaperValue("fig08.pcsi_16875", "fig08",
               "0.1-degree P-CSI+diagonal at 16,875 cores", 4.4,
               "shape", units="s/day"),
    PaperValue("fig08.speedup_pcsi_diag", "fig08",
               "P-CSI+diagonal barotropic speedup", 4.3, "shape",
               units="x"),
    PaperValue("fig08.speedup_chrongear_evp", "fig08",
               "ChronGear+EVP barotropic speedup", 1.4, "shape",
               units="x"),
    PaperValue("fig08.speedup_pcsi_evp", "fig08",
               "P-CSI+EVP barotropic speedup", 5.2, "shape", units="x"),
    PaperValue("fig08.sypd_baseline", "fig08",
               "core simulation rate, baseline", 6.2, "shape",
               units="SYPD"),
    PaperValue("fig08.sypd_pcsi_evp", "fig08",
               "core simulation rate, P-CSI+EVP", 10.5, "shape",
               units="SYPD"),
    PaperValue("fig08.rate_gain", "fig08",
               "simulation-rate gain from the new solver", 1.7, "shape",
               units="x"),
    # --- figure 9 ---------------------------------------------------------
    PaperValue("fig09.fraction_high", "fig09",
               "barotropic share at 16,875 cores with P-CSI+EVP", 0.16,
               "shape"),
    # --- figure 10 ----------------------------------------------------------
    PaperValue("fig10.reduction_dip", "fig10",
               "ChronGear reduction time decreases below ~1200 cores",
               "true", "qualitative"),
    # --- figure 11 (Edison) ---------------------------------------------------
    PaperValue("fig11.chrongear_16875", "fig11",
               "Edison ChronGear+diagonal at 16,875 cores", 26.2,
               "shape", units="s/day"),
    PaperValue("fig11.pcsi_16875", "fig11",
               "Edison P-CSI+diagonal at 16,875 cores", 7.0, "shape",
               units="s/day"),
    PaperValue("fig11.speedup_pcsi_diag", "fig11",
               "Edison P-CSI+diagonal speedup", 3.7, "shape", units="x"),
    PaperValue("fig11.speedup_pcsi_evp", "fig11",
               "Edison P-CSI+EVP speedup", 5.6, "shape", units="x"),
    PaperValue("fig11.chrongear_noisy", "fig11",
               "ChronGear run-to-run variability large; P-CSI small",
               "true", "qualitative"),
    # --- section 6 -----------------------------------------------------------
    PaperValue("fig12.rmse_insufficient", "fig12",
               "temperature RMSE does not order by solver tolerance",
               "true", "qualitative"),
    PaperValue("fig13.loose_flagged", "fig13",
               "RMSZ flags 1e-10 and 1e-11 tolerance cases",
               "INCONSISTENT", "qualitative"),
    PaperValue("fig13.pcsi_consistent", "fig13",
               "P-CSI results consistent with the ensemble",
               "consistent", "qualitative"),
    PaperValue("sec6.ensemble_size", "sec6",
               "ensemble size found sufficient", 40.0, "exact"),
    PaperValue("sec6.perturbation", "sec6",
               "initial temperature perturbation magnitude", 1e-14,
               "exact"),
    PaperValue("sec6.default_tolerance", "sec6",
               "POP default solver tolerance", 1e-13, "exact"),
    # --- section 3 -------------------------------------------------------------
    PaperValue("sec3.lanczos_tolerance", "sec3",
               "Lanczos convergence tolerance that works at both "
               "resolutions", 0.15, "exact"),
    # --- section 5.2 --------------------------------------------------------------
    PaperValue("sec5.check_freq", "sec5.2",
               "convergence checked every N iterations", 10.0, "exact"),
    PaperValue("sec5.block_aspect", "sec5.2",
               "block aspect ratio used for 0.1-degree decompositions",
               1.5, "exact"),
]

#: key -> PaperValue registry.
PAPER = {v.key: v for v in _VALUES}


def get_paper_value(key):
    """Look up one paper value by key (KeyError with guidance if absent)."""
    try:
        return PAPER[key]
    except KeyError:
        raise KeyError(
            f"no paper value {key!r}; known keys: {sorted(PAPER)[:5]}..."
        ) from None


def paper_values_for(artifact):
    """All paper values belonging to one artifact (e.g. ``"fig08"``)."""
    return [v for v in PAPER.values() if v.artifact == artifact]
