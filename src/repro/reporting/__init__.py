"""Structured reporting: paper values, result serialization, comparison.

* :mod:`repro.reporting.paper` -- every number the paper reports, as
  structured data (the machine-readable companion of EXPERIMENTS.md),
* :mod:`repro.reporting.serialize` -- JSON round-tripping of
  :class:`~repro.experiments.common.ExperimentResult`,
* :mod:`repro.reporting.compare` -- paper-vs-measured comparison tables
  with band classification (match / close / deviation),
* :mod:`repro.reporting.runner` -- run every experiment and write a
  results directory.
"""

from repro.reporting.paper import (
    PAPER,
    PaperValue,
    get_paper_value,
    paper_values_for,
)
from repro.reporting.serialize import (
    result_from_json,
    result_to_json,
    load_result,
    save_result,
)
from repro.reporting.compare import (
    Comparison,
    classify,
    compare_value,
    comparison_table,
)
from repro.reporting.runner import (
    DEFAULT_PLAN,
    MANIFEST_NAME,
    FailurePolicy,
    RunManifest,
    StepTimeoutError,
    run_all,
)

__all__ = [
    "PAPER",
    "PaperValue",
    "get_paper_value",
    "paper_values_for",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
    "Comparison",
    "classify",
    "compare_value",
    "comparison_table",
    "run_all",
    "DEFAULT_PLAN",
    "MANIFEST_NAME",
    "FailurePolicy",
    "RunManifest",
    "StepTimeoutError",
]
