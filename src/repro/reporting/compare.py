"""Paper-vs-measured comparison with band classification.

Bands follow the reproduction contract in EXPERIMENTS.md's reading
guide:

* ``exact`` paper values must match within ``exact_rtol`` (default 1%),
* ``shape`` values should land within a factor-of-``shape_band``
  (default 2) of the paper's number,
* ``qualitative`` values compare string verdicts.

Classification labels: ``"match"``, ``"close"`` (within twice the band),
``"deviation"``.
"""

from dataclasses import dataclass

from repro.reporting.paper import get_paper_value


@dataclass
class Comparison:
    """Outcome of comparing one measured value against the paper."""

    key: str
    description: str
    paper: object
    measured: object
    band: str          # match / close / deviation
    ratio: float = None
    units: str = ""

    def describe(self):
        ratio = f" (x{self.ratio:.2f})" if self.ratio is not None else ""
        return (f"[{self.band:9s}] {self.key}: paper={self.paper} "
                f"measured={self.measured}{ratio}")


def classify(paper_value, measured, exact_rtol=0.01, shape_band=2.0):
    """Band classification for one measurement."""
    kind = paper_value.kind
    if kind == "qualitative":
        same = str(measured).strip().lower() == \
            str(paper_value.value).strip().lower()
        return "match" if same else "deviation"

    paper = float(paper_value.value)
    measured = float(measured)
    if paper == 0.0:
        return "match" if measured == 0.0 else "deviation"
    # Signed quantities (e.g. Table 1 percentages): compare on the value
    # axis, not the ratio axis, when signs differ.
    if paper * measured <= 0.0:
        return "deviation"
    ratio = measured / paper
    if kind == "exact":
        if abs(ratio - 1.0) <= exact_rtol:
            return "match"
        if abs(ratio - 1.0) <= 5 * exact_rtol:
            return "close"
        return "deviation"
    # shape
    if max(ratio, 1.0 / ratio) <= shape_band:
        return "match"
    if max(ratio, 1.0 / ratio) <= 2.0 * shape_band:
        return "close"
    return "deviation"


def compare_value(key, measured, **kwargs):
    """Compare one measured value against the registered paper value."""
    paper_value = get_paper_value(key)
    band = classify(paper_value, measured, **kwargs)
    ratio = None
    if paper_value.kind != "qualitative":
        paper = float(paper_value.value)
        if paper != 0.0 and float(measured) * paper > 0.0:
            ratio = float(measured) / paper
    return Comparison(
        key=key,
        description=paper_value.description,
        paper=paper_value.value,
        measured=measured,
        band=band,
        ratio=ratio,
        units=paper_value.units,
    )


def comparison_table(measurements, **kwargs):
    """Compare a ``{key: measured}`` mapping; returns sorted Comparisons.

    Order: deviations first (they need eyes), then close, then matches.
    """
    order = {"deviation": 0, "close": 1, "match": 2}
    rows = [compare_value(key, value, **kwargs)
            for key, value in measurements.items()]
    rows.sort(key=lambda c: (order[c.band], c.key))
    return rows


def render_comparison(rows):
    """Human-readable multi-line rendering of a comparison table."""
    lines = [f"{'band':9s}  {'key':34s}  {'paper':>12s}  {'measured':>12s}"]
    for row in rows:
        paper = f"{row.paper}"[:12]
        measured = f"{row.measured}"[:12]
        lines.append(f"{row.band:9s}  {row.key:34s}  {paper:>12s}  "
                     f"{measured:>12s}")
    counts = {}
    for row in rows:
        counts[row.band] = counts.get(row.band, 0) + 1
    lines.append("summary: " + ", ".join(
        f"{counts.get(b, 0)} {b}" for b in ("match", "close", "deviation")))
    return "\n".join(lines)
