"""Run the whole evaluation and produce the paper comparison.

``run_all`` executes a plan of experiments (default: every performance
artifact at tractable scales; the slow verification figures can be
included on request), saves each regenerated figure as JSON, extracts
the headline measurements, and compares them against the structured
paper values.  This is the automated backbone of EXPERIMENTS.md:

    from repro.reporting import run_all
    report = run_all(output_dir="results")
    print(report["rendered"])

Parallel pipeline
-----------------
With ``jobs > 1`` the plan fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in two waves sharing
one artifact-cache directory (an ephemeral one is created when the
global cache has no disk tier):

1. **warmup** -- every measured solve the plan will need (declared by
   the experiment modules' ``warmup_tasks`` hooks) is deduplicated,
   sorted longest-first and executed across the workers, which persist
   the results -- EVP influence matrices, eigenbounds, full solve event
   streams -- to the shared disk cache;
2. **steps** -- the plan steps run across the same pool (each mostly
   *loading* solves now) and are collected deterministically in plan
   order; extraction and saving stay in the parent.

Measured numbers are identical with and without the cache and at any
job count: cached solves replay the exact event streams a fresh solve
records (asserted by the pipeline tests).
"""

import importlib
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor

from repro.core.cache import ArtifactCache, get_cache, set_cache
from repro.core.errors import ConvergenceError
from repro.reporting.compare import comparison_table, render_comparison
from repro.reporting.serialize import save_result


# ----------------------------------------------------------------------
# measurement extractors: ExperimentResult -> {paper_key: measured}
# ----------------------------------------------------------------------
def _extract_fig01(result):
    frac = result.series_by_label("barotropic %").y
    return {
        "fig01.fraction_low": frac[0] / 100.0,
        "fig01.fraction_high": frac[-1] / 100.0,
    }


def _extract_fig06(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    cg_evp = result.series_by_label("ChronGear+EVP").y
    cuts = [d / e for d, e in zip(cg, cg_evp)]
    return {
        "fig06.evp_iteration_cut": sum(cuts) / len(cuts),
        "fig06.highres_fewer_iterations":
            "true" if cg[-1] < cg[0] else "false",
    }


def _extract_fig07(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    pcsi = result.series_by_label("P-CSI+Diagonal").y
    pcsi_evp = result.series_by_label("P-CSI+EVP").y
    return {
        "fig07.chrongear_768": cg[-1],
        "fig07.pcsi_speedup_768": cg[-1] / pcsi[-1],
        "fig07.pcsi_evp_speedup_768": cg[-1] / pcsi_evp[-1],
    }


def _extract_table1(result):
    row = result.series_by_label("P-CSI+EVP").y
    return {
        "table1.pcsi_evp_48": row[0] / 100.0,
        "table1.pcsi_evp_768": row[-1] / 100.0,
    }


def _extract_fig08(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    cg_evp = result.series_by_label("ChronGear+EVP [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    sypd_base = result.series_by_label("ChronGear+Diagonal [SYPD]").y
    sypd_best = result.series_by_label("P-CSI+EVP [SYPD]").y
    return {
        "fig08.chrongear_16875": cg[-1],
        "fig08.pcsi_16875": pcsi[-1],
        "fig08.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig08.speedup_chrongear_evp": cg[-1] / cg_evp[-1],
        "fig08.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig08.sypd_baseline": sypd_base[-1],
        "fig08.sypd_pcsi_evp": sypd_best[-1],
        "fig08.rate_gain": sypd_best[-1] / sypd_base[-1],
    }


def _extract_fig09(result):
    frac = result.series_by_label("barotropic %").y
    return {"fig09.fraction_high": frac[-1] / 100.0}


def _extract_fig10(result):
    dip = result.notes["ChronGear reduction-time minimum at cores"]
    cores = result.series[0].x
    return {"fig10.reduction_dip": "true" if dip > cores[0] else "false"}


def _extract_fig11(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    spread_cg = result.series_by_label(
        "ChronGear+Diagonal run spread [s]").y
    spread_pcsi = result.series_by_label("P-CSI+EVP run spread [s]").y
    return {
        "fig11.chrongear_16875": cg[-1],
        "fig11.pcsi_16875": pcsi[-1],
        "fig11.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig11.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig11.chrongear_noisy":
            "true" if spread_cg[-1] > 2 * spread_pcsi[-1] else "false",
    }


def _extract_fig05(result):
    sizes = result.series_by_label("relative round-off").x
    roundoff = result.series_by_label("relative round-off").y
    by_size = dict(zip(sizes, roundoff))
    return {"sec4.evp_roundoff_12x12": by_size.get(12, roundoff[-1])}


def _extract_fig13(result):
    verdicts = result.notes["verdicts"]
    loose = verdicts.get("tol=1e-10", "?")
    pcsi = [v for k, v in verdicts.items() if k.startswith("P-CSI")]
    return {
        "fig13.loose_flagged": loose,
        "fig13.pcsi_consistent": pcsi[0] if pcsi else "?",
    }


#: (experiment module, run kwargs, extractor) -- the default plan.
DEFAULT_PLAN = [
    ("repro.experiments.fig01_time_fraction", {"scale": 0.25},
     _extract_fig01),
    ("repro.experiments.fig05_evp_marching", {}, _extract_fig05),
    ("repro.experiments.fig06_iterations", {}, _extract_fig06),
    ("repro.experiments.fig07_lowres_scaling", {}, _extract_fig07),
    ("repro.experiments.table1_pop_improvement", {}, _extract_table1),
    ("repro.experiments.fig08_highres_yellowstone", {"scale": 0.25},
     _extract_fig08),
    ("repro.experiments.fig09_time_fraction_pcsi", {"scale": 0.25},
     _extract_fig09),
    ("repro.experiments.fig10_solver_components", {"scale": 0.25},
     _extract_fig10),
    ("repro.experiments.fig11_highres_edison", {"scale": 0.25},
     _extract_fig11),
]

#: The slow verification additions (opt in via ``include_verification``).
VERIFICATION_PLAN = [
    ("repro.experiments.fig13_rmsz",
     {"months": 6, "size": 10, "days_per_month": 20,
      "tolerances": (1e-10, 1e-11, 1e-13)},
     _extract_fig13),
]


# ----------------------------------------------------------------------
# execution machinery
# ----------------------------------------------------------------------
def _execute_step(module_path, kwargs):
    """Run one plan step in the current process.

    Returns ``(result, seconds, cache_delta)`` where ``cache_delta`` is
    the change in the process-global cache's lookup counters across the
    step.  Used both inline (``jobs=1``) and inside pool workers.
    """
    cache = get_cache()
    before = cache.counters()
    start = time.perf_counter()
    module = importlib.import_module(module_path)
    result = module.run(**kwargs)
    seconds = time.perf_counter() - start
    after = cache.counters()
    delta = {name: after[name] - before[name] for name in after}
    return result, seconds, delta


def _worker_init(cache_dir):
    """Pool initializer: point the worker's global cache at the shared
    disk directory (fresh memory tier, fresh counters)."""
    set_cache(ArtifactCache(cache_dir=cache_dir))


def _run_warmup_task(task):
    """Execute one warmup solve in a worker (writes the shared cache)."""
    from repro.experiments.common import run_solve_task

    return run_solve_task(task)


def _gather_warmup_tasks(steps):
    """Deduplicated, longest-first warmup tasks declared by the plan."""
    from repro.experiments.common import solve_task_cost

    tasks = []
    seen = set()
    for module_path, kwargs, _extractor in steps:
        module = importlib.import_module(module_path)
        declare = getattr(module, "warmup_tasks", None)
        if declare is None:
            continue
        for task in declare(**kwargs):
            if task not in seen:
                seen.add(task)
                tasks.append(task)
    tasks.sort(key=solve_task_cost, reverse=True)
    return tasks


def _make_pool(jobs, cache_dir):
    import multiprocessing

    try:
        # fork shares the parent's warmed memory tier for free and skips
        # re-import; unavailable on some platforms.
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        mp_context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context,
                               initializer=_worker_init,
                               initargs=(cache_dir,))


def run_all(output_dir=None, plan=None, include_verification=False,
            progress=None, jobs=1):
    """Execute a plan; returns dict with results, comparisons, rendering.

    Parameters
    ----------
    output_dir:
        If given, each regenerated figure is saved there as JSON.
    plan:
        Override the default plan (list of
        ``(module_path, kwargs, extractor)``; ``extractor`` may be
        ``None`` to skip measurement extraction for a step).
    include_verification:
        Append the slow fig13 verification run.
    progress:
        Optional callable invoked with each experiment name as it
        starts (before its module import, so slow imports are
        attributed to the right step).
    jobs:
        Number of worker processes.  ``1`` (default) runs everything in
        this process; ``> 1`` fans warmup solves and plan steps over a
        process pool sharing one cache directory (see the module
        docstring).  Results are identical at any job count.

    Returns
    -------
    dict with ``results``, ``measurements``, ``comparisons``,
    ``rendered``, plus ``timings`` (per step, in plan order:
    ``{"step", "seconds", "cache_hits", "cache_misses"}`` -- failed
    steps carry ``"failed": True``), ``diagnoses`` (structured
    :class:`~repro.solvers.health.SolverDiagnosis` dicts for steps a
    diagnosed solver failure aborted; the run continues past them),
    ``jobs``, ``cache`` (global-cache stats) and -- when ``jobs > 1``
    -- ``warmup`` (task count, wall seconds, errors).
    """
    steps = list(plan if plan is not None else DEFAULT_PLAN)
    if include_verification:
        steps += VERIFICATION_PLAN
    jobs = max(1, int(jobs))

    cache = get_cache()
    ephemeral_dir = None
    pool = None
    warmup_report = None
    try:
        if jobs > 1:
            cache_dir = cache.cache_dir
            if cache_dir is None:
                # Workers can only share artifacts through the disk
                # tier; give a memory-only global cache an ephemeral one
                # for the duration of the run.
                ephemeral_dir = tempfile.mkdtemp(prefix="repro-cache-")
                cache_dir = ephemeral_dir
                cache.cache_dir = cache_dir
            pool = _make_pool(jobs, cache_dir)
            tasks = _gather_warmup_tasks(steps)
            if tasks:
                if progress is not None:
                    progress(f"warmup ({len(tasks)} solves, "
                             f"jobs={jobs})")
                start = time.perf_counter()
                errors = []
                futures = [pool.submit(_run_warmup_task, t) for t in tasks]
                for task, future in zip(tasks, futures):
                    try:
                        future.result()
                    except Exception as exc:  # the step will retry inline
                        errors.append((task, repr(exc)))
                warmup_report = {
                    "tasks": len(tasks),
                    "seconds": time.perf_counter() - start,
                    "errors": errors,
                }

        if pool is not None:
            submitted = []
            for module_path, kwargs, _extractor in steps:
                if progress is not None:
                    progress(module_path)
                submitted.append(pool.submit(_execute_step, module_path,
                                             kwargs))
        else:
            submitted = None

        results = {}
        measurements = {}
        timings = []
        diagnoses = []
        for index, (module_path, kwargs, extractor) in enumerate(steps):
            try:
                if submitted is not None:
                    result, seconds, delta = submitted[index].result()
                else:
                    if progress is not None:
                        progress(module_path)
                    result, seconds, delta = _execute_step(module_path,
                                                           kwargs)
            except ConvergenceError as err:
                # A diagnosed solver failure inside one step must not
                # take down the whole evaluation: record the structured
                # diagnosis and keep collecting the other steps.
                diagnoses.append({
                    "step": module_path,
                    "error": str(err),
                    "diagnosis": (err.diagnosis.to_dict()
                                  if err.diagnosis is not None else None),
                })
                timings.append({
                    "step": module_path,
                    "seconds": 0.0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "failed": True,
                })
                continue
            results[result.name] = result
            if output_dir:
                save_result(result, output_dir)
            if extractor is not None:
                measurements.update(extractor(result))
            timings.append({
                "step": module_path,
                "seconds": seconds,
                "cache_hits": (delta.get("memory_hits", 0)
                               + delta.get("disk_hits", 0)),
                "cache_misses": delta.get("misses", 0),
            })
    finally:
        if pool is not None:
            pool.shutdown()
        if ephemeral_dir is not None:
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
            # Keep the warmed memory tier; detach the vanished disk dir.
            cache.cache_dir = None

    comparisons = comparison_table(measurements)
    report = {
        "results": results,
        "measurements": measurements,
        "comparisons": comparisons,
        "rendered": render_comparison(comparisons),
        "timings": timings,
        "diagnoses": diagnoses,
        "jobs": jobs,
        "cache": get_cache().stats(),
    }
    if warmup_report is not None:
        report["warmup"] = warmup_report
    return report
