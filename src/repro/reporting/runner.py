"""Run the whole evaluation and produce the paper comparison.

``run_all`` executes a plan of experiments (default: every performance
artifact at tractable scales; the slow verification figures can be
included on request), saves each regenerated figure as JSON, extracts
the headline measurements, and compares them against the structured
paper values.  This is the automated backbone of EXPERIMENTS.md:

    from repro.reporting import run_all
    report = run_all(output_dir="results")
    print(report["rendered"])

Parallel pipeline
-----------------
With ``jobs > 1`` the plan fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in two waves sharing
one artifact-cache directory (an ephemeral one is created when the
global cache has no disk tier):

1. **warmup** -- every measured solve the plan will need (declared by
   the experiment modules' ``warmup_tasks`` hooks) is deduplicated,
   sorted longest-first and executed across the workers, which persist
   the results -- EVP influence matrices, eigenbounds, full solve event
   streams -- to the shared disk cache;
2. **steps** -- the plan steps run across the same pool (each mostly
   *loading* solves now) and are collected deterministically in plan
   order; extraction and saving stay in the parent.

Measured numbers are identical with and without the cache and at any
job count: cached solves replay the exact event streams a fresh solve
records (asserted by the pipeline tests).

Resilience
----------
A multi-hour evaluation must survive its environment.  ``run_all``
persists a :class:`RunManifest` (``<output_dir>/manifest.json``)
recording each step's outcome, so ``resume=True`` reloads completed
figures from disk and re-executes only what is missing.  A
:class:`FailurePolicy` decides what a failed step does to the run:
``fail_fast`` aborts, ``continue`` records and moves on, ``retry``
(the default) re-dispatches with exponential backoff and deterministic
jitter.  ``step_timeout`` bounds each attempt's wall clock (workers
past it are killed and the pool rebuilt), and a died worker
(``BrokenProcessPool``) likewise triggers a pool rebuild instead of
sinking the evaluation.  The
:class:`~repro.parallel.faults.PipelineFault` injectors
(``worker_crash``, ``slow_rank``, ``cache_corrupt``) exist to prove
all of this under test.
"""

import importlib
import json
import os
import shutil
import tempfile
import time
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool

from repro.core.cache import get_cache
from repro.core.errors import ConfigurationError, ConvergenceError, ReproError
from repro.core.pool import (
    FailurePolicy,
    PoolHandle,
    StepTimeoutError,
    await_future,
    worker_init,
)
from repro.parallel.faults import WorkerCrashError
from repro.reporting.compare import comparison_table, render_comparison
from repro.reporting.serialize import load_result, save_result


# ----------------------------------------------------------------------
# measurement extractors: ExperimentResult -> {paper_key: measured}
# ----------------------------------------------------------------------
def _extract_fig01(result):
    frac = result.series_by_label("barotropic %").y
    return {
        "fig01.fraction_low": frac[0] / 100.0,
        "fig01.fraction_high": frac[-1] / 100.0,
    }


def _extract_fig06(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    cg_evp = result.series_by_label("ChronGear+EVP").y
    cuts = [d / e for d, e in zip(cg, cg_evp)]
    return {
        "fig06.evp_iteration_cut": sum(cuts) / len(cuts),
        "fig06.highres_fewer_iterations":
            "true" if cg[-1] < cg[0] else "false",
    }


def _extract_fig07(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    pcsi = result.series_by_label("P-CSI+Diagonal").y
    pcsi_evp = result.series_by_label("P-CSI+EVP").y
    return {
        "fig07.chrongear_768": cg[-1],
        "fig07.pcsi_speedup_768": cg[-1] / pcsi[-1],
        "fig07.pcsi_evp_speedup_768": cg[-1] / pcsi_evp[-1],
    }


def _extract_table1(result):
    row = result.series_by_label("P-CSI+EVP").y
    return {
        "table1.pcsi_evp_48": row[0] / 100.0,
        "table1.pcsi_evp_768": row[-1] / 100.0,
    }


def _extract_fig08(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    cg_evp = result.series_by_label("ChronGear+EVP [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    sypd_base = result.series_by_label("ChronGear+Diagonal [SYPD]").y
    sypd_best = result.series_by_label("P-CSI+EVP [SYPD]").y
    return {
        "fig08.chrongear_16875": cg[-1],
        "fig08.pcsi_16875": pcsi[-1],
        "fig08.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig08.speedup_chrongear_evp": cg[-1] / cg_evp[-1],
        "fig08.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig08.sypd_baseline": sypd_base[-1],
        "fig08.sypd_pcsi_evp": sypd_best[-1],
        "fig08.rate_gain": sypd_best[-1] / sypd_base[-1],
    }


def _extract_fig09(result):
    frac = result.series_by_label("barotropic %").y
    return {"fig09.fraction_high": frac[-1] / 100.0}


def _extract_fig10(result):
    dip = result.notes["ChronGear reduction-time minimum at cores"]
    cores = result.series[0].x
    return {"fig10.reduction_dip": "true" if dip > cores[0] else "false"}


def _extract_fig11(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    spread_cg = result.series_by_label(
        "ChronGear+Diagonal run spread [s]").y
    spread_pcsi = result.series_by_label("P-CSI+EVP run spread [s]").y
    return {
        "fig11.chrongear_16875": cg[-1],
        "fig11.pcsi_16875": pcsi[-1],
        "fig11.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig11.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig11.chrongear_noisy":
            "true" if spread_cg[-1] > 2 * spread_pcsi[-1] else "false",
    }


def _extract_fig05(result):
    sizes = result.series_by_label("relative round-off").x
    roundoff = result.series_by_label("relative round-off").y
    by_size = dict(zip(sizes, roundoff))
    return {"sec4.evp_roundoff_12x12": by_size.get(12, roundoff[-1])}


def _extract_fig13(result):
    verdicts = result.notes["verdicts"]
    loose = verdicts.get("tol=1e-10", "?")
    pcsi = [v for k, v in verdicts.items() if k.startswith("P-CSI")]
    return {
        "fig13.loose_flagged": loose,
        "fig13.pcsi_consistent": pcsi[0] if pcsi else "?",
    }


#: (experiment module, run kwargs, extractor) -- the default plan.
DEFAULT_PLAN = [
    ("repro.experiments.fig01_time_fraction", {"scale": 0.25},
     _extract_fig01),
    ("repro.experiments.fig05_evp_marching", {}, _extract_fig05),
    ("repro.experiments.fig06_iterations", {}, _extract_fig06),
    ("repro.experiments.fig07_lowres_scaling", {}, _extract_fig07),
    ("repro.experiments.table1_pop_improvement", {}, _extract_table1),
    ("repro.experiments.fig08_highres_yellowstone", {"scale": 0.25},
     _extract_fig08),
    ("repro.experiments.fig09_time_fraction_pcsi", {"scale": 0.25},
     _extract_fig09),
    ("repro.experiments.fig10_solver_components", {"scale": 0.25},
     _extract_fig10),
    ("repro.experiments.fig11_highres_edison", {"scale": 0.25},
     _extract_fig11),
]

#: The slow verification additions (opt in via ``include_verification``).
VERIFICATION_PLAN = [
    ("repro.experiments.fig13_rmsz",
     {"months": 6, "size": 10, "days_per_month": 20,
      "tolerances": (1e-10, 1e-11, 1e-13)},
     _extract_fig13),
]


# ----------------------------------------------------------------------
# failure policy + manifest
# ----------------------------------------------------------------------
# StepTimeoutError and FailurePolicy moved to repro.core.pool (shared
# with the solver service); re-exported here for compatibility.
__all__ = ["FailurePolicy", "StepTimeoutError", "RunManifest", "run_all"]


#: Bump when the manifest schema changes; old manifests are ignored
#: (a stale schema must not silently skip steps).
MANIFEST_VERSION = 1

#: Filename of the per-run manifest inside ``output_dir``.
MANIFEST_NAME = "manifest.json"


class RunManifest:
    """Persisted per-step ledger of one ``run_all`` invocation.

    A JSON document under ``output_dir`` mapping each step's module
    path to its outcome (``status``, ``seconds``, ``attempts``,
    ``result_file``, ``error``).  Saved atomically after every step,
    so a killed run leaves an accurate record; ``resume=True`` skips
    steps whose status is ``"done"`` *and* whose result file still
    exists (a deleted artifact re-runs the step -- the manifest never
    outranks the data).
    """

    def __init__(self, path):
        self.path = os.path.abspath(path)
        self.steps = {}

    @classmethod
    def load(cls, path):
        """Read a manifest; damaged or mismatched files yield a fresh
        (empty) manifest rather than an error."""
        manifest = cls(path)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return manifest
        if not isinstance(doc, dict) or \
                doc.get("version") != MANIFEST_VERSION:
            return manifest
        steps = doc.get("steps", {})
        if isinstance(steps, dict):
            manifest.steps = {str(k): dict(v) for k, v in steps.items()
                              if isinstance(v, dict)}
        return manifest

    def record(self, module_path, **fields):
        """Merge ``fields`` into the step's record and persist."""
        entry = self.steps.setdefault(str(module_path), {})
        entry.update(fields)
        self.save()

    def save(self):
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        doc = {"version": MANIFEST_VERSION, "steps": self.steps}
        fd, tmp = tempfile.mkstemp(prefix=".manifest-tmp-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass

    def completed_result(self, module_path):
        """Path of the step's saved figure if it completed, else None."""
        entry = self.steps.get(str(module_path), {})
        if entry.get("status") != "done":
            return None
        name = entry.get("result_file")
        if not name:
            return None
        path = os.path.join(os.path.dirname(self.path), name)
        return path if os.path.exists(path) else None


# ----------------------------------------------------------------------
# execution machinery
# ----------------------------------------------------------------------
def _execute_step(module_path, kwargs, directive=None, inline=False):
    """Run one plan step in the current process.

    Returns ``(result, seconds, cache_delta)`` where ``cache_delta`` is
    the change in the process-global cache's lookup counters across the
    step.  Used both inline (``jobs=1``) and inside pool workers.

    ``directive`` carries a parent-planned fault injection:
    ``{"sleep": s}`` stalls before the work (driving a configured
    timeout), ``{"crash": True}`` dies the way a preempted node does --
    ``os._exit`` in a pool worker, :class:`WorkerCrashError` when
    running inline (where ``os._exit`` would take the caller with it).
    """
    if directive:
        if directive.get("sleep"):
            time.sleep(float(directive["sleep"]))
        if directive.get("crash"):
            if inline:
                raise WorkerCrashError(
                    f"injected worker crash in step {module_path}")
            os._exit(13)
    cache = get_cache()
    before = cache.counters()
    start = time.perf_counter()
    module = importlib.import_module(module_path)
    result = module.run(**kwargs)
    seconds = time.perf_counter() - start
    after = cache.counters()
    delta = {name: after[name] - before[name] for name in after}
    return result, seconds, delta


# Pool initializer shared with repro.core.pool (kept under the old
# private name so forked workers resolve it identically).
_worker_init = worker_init


def _run_warmup_task(task):
    """Execute one warmup solve in a worker (writes the shared cache)."""
    from repro.experiments.common import run_solve_task

    return run_solve_task(task)


def _gather_warmup_tasks(steps):
    """Deduplicated, longest-first warmup tasks declared by the plan."""
    from repro.experiments.common import solve_task_cost

    tasks = []
    seen = set()
    for module_path, kwargs, _extractor in steps:
        module = importlib.import_module(module_path)
        declare = getattr(module, "warmup_tasks", None)
        if declare is None:
            continue
        for task in declare(**kwargs):
            if task not in seen:
                seen.add(task)
                tasks.append(task)
    tasks.sort(key=solve_task_cost, reverse=True)
    return tasks


# The rebuildable pool lives in repro.core.pool now; the old private
# name keeps external references working.
_PoolHandle = PoolHandle


def _dispatch_attempt(handle, module_path, kwargs, directive,
                      step_timeout):
    """Run one attempt of one step through the pool, with a timeout.

    Translates infrastructure failures into typed errors: a pool made
    unusable by a worker death becomes :class:`WorkerCrashError` (pool
    rebuilt), an attempt past ``step_timeout`` becomes
    :class:`StepTimeoutError` (workers killed, pool rebuilt).
    """
    future = handle.get().submit(_execute_step, module_path, kwargs,
                                 directive)
    return await_future(future, handle, f"step {module_path}",
                        timeout=step_timeout)


def _plan_directive(pipeline_faults, step_index, module_path, attempt):
    """First parent-planned injection directive for this dispatch."""
    for fault in pipeline_faults:
        directive = fault.directive(step_index, module_path, attempt)
        if directive:
            return directive
    return None


def _collect(future, handle, module_path, step_timeout):
    """Await one dispatched attempt, translating infrastructure death.

    A pool broken by a worker crash (or a future cancelled by a pool
    rebuild) becomes :class:`WorkerCrashError`; an attempt past
    ``step_timeout`` becomes :class:`StepTimeoutError` after the
    wedged workers are killed.  Both leave the handle ready to build a
    fresh pool for the retry.
    """
    return await_future(future, handle, f"step {module_path}",
                        timeout=step_timeout)


def run_all(output_dir=None, plan=None, include_verification=False,
            progress=None, jobs=1, resume=False, step_timeout=None,
            failure_policy=None, pipeline_faults=()):
    """Execute a plan; returns dict with results, comparisons, rendering.

    Parameters
    ----------
    output_dir:
        If given, each regenerated figure is saved there as JSON and a
        :class:`RunManifest` tracks per-step outcomes.
    plan:
        Override the default plan (list of
        ``(module_path, kwargs, extractor)``; ``extractor`` may be
        ``None`` to skip measurement extraction for a step).
    include_verification:
        Append the slow fig13 verification run.
    progress:
        Optional callable invoked with each experiment name as it
        starts (before its module import, so slow imports are
        attributed to the right step).
    jobs:
        Number of worker processes.  ``1`` (default) runs everything in
        this process; ``> 1`` fans warmup solves and plan steps over a
        process pool sharing one cache directory (see the module
        docstring).  Results are identical at any job count.
    resume:
        Reload steps the manifest under ``output_dir`` records as done
        (and whose saved figure still exists) instead of re-running
        them; only the missing steps execute.  Requires ``output_dir``.
    step_timeout:
        Wall-clock seconds allowed per step attempt (``jobs > 1``
        only: an in-process step cannot be preempted).  A timed-out
        attempt kills the pool's workers, rebuilds the pool and counts
        as a failure under the failure policy.
    failure_policy:
        A :class:`FailurePolicy` deciding whether a failed step aborts
        the run, is recorded and skipped, or retried with backoff
        (the default: retry twice).  Diagnosed
        :class:`~repro.core.errors.ConvergenceError` failures keep
        their own channel (``diagnoses``) and are never retried -- a
        deterministic solver failure would only fail again.
    pipeline_faults:
        :class:`~repro.parallel.faults.PipelineFault` injectors for
        chaos testing (worker crashes, cache corruption, stalls).
        Directives are planned parent-side per (step, attempt).

    Returns
    -------
    dict with ``results``, ``measurements``, ``comparisons``,
    ``rendered``, plus ``timings`` (per step, in plan order:
    ``{"step", "seconds", "cache_hits", "cache_misses"}`` -- failed
    steps carry ``"failed": True``, resumed ones ``"resumed": True``),
    ``diagnoses`` (structured
    :class:`~repro.solvers.health.SolverDiagnosis` dicts for steps a
    diagnosed solver failure aborted; the run continues past them),
    ``failures`` (steps lost to infrastructure errors after all
    attempts), ``skipped`` (module paths resumed from disk),
    ``manifest`` (its path, or ``None``), ``pool_rebuilds``, ``jobs``,
    ``cache`` (global-cache stats) and -- when ``jobs > 1`` --
    ``warmup`` (task count, wall seconds, errors).
    """
    steps = list(plan if plan is not None else DEFAULT_PLAN)
    if include_verification:
        steps += VERIFICATION_PLAN
    jobs = max(1, int(jobs))
    policy = failure_policy if failure_policy is not None \
        else FailurePolicy()
    pipeline_faults = list(pipeline_faults)
    if resume and not output_dir:
        raise ConfigurationError(
            "resume=True needs output_dir (the manifest lives there)")

    manifest = None
    resumed = {}
    if output_dir:
        manifest_path = os.path.join(output_dir, MANIFEST_NAME)
        manifest = (RunManifest.load(manifest_path) if resume
                    else RunManifest(manifest_path))
    if resume:
        for module_path, _kwargs, _extractor in steps:
            saved = manifest.completed_result(module_path)
            if saved is None:
                continue
            try:
                resumed[module_path] = load_result(saved)
            except ConfigurationError:
                continue  # damaged artifact: the step re-runs

    cache = get_cache()
    ephemeral_dir = None
    handle = None
    warmup_report = None
    try:
        effective_cache_dir = cache.cache_dir
        if jobs > 1:
            if effective_cache_dir is None:
                # Workers can only share artifacts through the disk
                # tier; give a memory-only global cache an ephemeral one
                # for the duration of the run.
                ephemeral_dir = tempfile.mkdtemp(prefix="repro-cache-")
                effective_cache_dir = ephemeral_dir
                cache.cache_dir = effective_cache_dir
            handle = _PoolHandle(jobs, effective_cache_dir)
            tasks = _gather_warmup_tasks(
                [s for s in steps if s[0] not in resumed])
            if tasks:
                if progress is not None:
                    progress(f"warmup ({len(tasks)} solves, "
                             f"jobs={jobs})")
                start = time.perf_counter()
                errors = []
                pool = handle.get()
                futures = [pool.submit(_run_warmup_task, t) for t in tasks]
                for task, future in zip(tasks, futures):
                    try:
                        future.result()
                    except (BrokenProcessPool, CancelledError) as exc:
                        handle.rebuild()
                        errors.append((task, repr(exc)))
                    except Exception as exc:  # the step retries inline
                        errors.append((task, repr(exc)))
                warmup_report = {
                    "tasks": len(tasks),
                    "seconds": time.perf_counter() - start,
                    "errors": errors,
                }

        # Chaos hook: damage the shared cache *after* warmup persisted
        # its artifacts -- the steps must heal through quarantine.
        for fault in pipeline_faults:
            fault.on_cache(effective_cache_dir)

        # First attempts fan out in parallel; retries run serially as
        # failures surface during in-order collection.
        submitted = {}
        if handle is not None:
            for index, (module_path, kwargs, _extractor) in \
                    enumerate(steps):
                if module_path in resumed:
                    continue
                if progress is not None:
                    progress(module_path)
                directive = _plan_directive(pipeline_faults, index,
                                            module_path, 1)
                submitted[index] = handle.get().submit(
                    _execute_step, module_path, kwargs, directive)

        results = {}
        measurements = {}
        timings = []
        diagnoses = []
        failures = []
        for index, (module_path, kwargs, extractor) in enumerate(steps):
            if module_path in resumed:
                result = resumed[module_path]
                results[result.name] = result
                if extractor is not None:
                    measurements.update(extractor(result))
                timings.append({
                    "step": module_path,
                    "seconds": 0.0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "resumed": True,
                })
                continue

            attempt = 1
            error = None
            outcome = None
            while True:
                try:
                    if handle is not None:
                        if attempt == 1 and index in submitted:
                            outcome = _collect(submitted[index], handle,
                                               module_path, step_timeout)
                        else:
                            directive = _plan_directive(
                                pipeline_faults, index, module_path,
                                attempt)
                            outcome = _collect(
                                handle.get().submit(
                                    _execute_step, module_path, kwargs,
                                    directive),
                                handle, module_path, step_timeout)
                    else:
                        if progress is not None and attempt == 1:
                            progress(module_path)
                        directive = _plan_directive(
                            pipeline_faults, index, module_path, attempt)
                        outcome = _execute_step(module_path, kwargs,
                                                directive, inline=True)
                    break
                except ConvergenceError as err:
                    # A diagnosed solver failure is deterministic --
                    # retrying would only reproduce it.  Record the
                    # structured diagnosis and keep collecting.
                    error = err
                    break
                except Exception as err:
                    if policy.mode == "fail_fast":
                        raise
                    error = err
                    if attempt >= policy.attempts():
                        break
                    attempt += 1
                    delay = policy.delay(index, attempt)
                    if delay > 0:
                        time.sleep(delay)

            if outcome is not None:
                result, seconds, delta = outcome
                results[result.name] = result
                if output_dir:
                    save_result(result, output_dir)
                if extractor is not None:
                    measurements.update(extractor(result))
                timing = {
                    "step": module_path,
                    "seconds": seconds,
                    "cache_hits": (delta.get("memory_hits", 0)
                                   + delta.get("disk_hits", 0)),
                    "cache_misses": delta.get("misses", 0),
                }
                if attempt > 1:
                    timing["attempts"] = attempt
                timings.append(timing)
                if manifest is not None:
                    manifest.record(module_path, status="done",
                                    seconds=seconds, attempts=attempt,
                                    result_file=f"{result.name}.json")
                continue

            if isinstance(error, ConvergenceError):
                diagnoses.append({
                    "step": module_path,
                    "error": str(error),
                    "diagnosis": (error.diagnosis.to_dict()
                                  if error.diagnosis is not None
                                  else None),
                })
            else:
                failures.append({
                    "step": module_path,
                    "error": str(error),
                    "attempts": attempt,
                })
            timings.append({
                "step": module_path,
                "seconds": 0.0,
                "cache_hits": 0,
                "cache_misses": 0,
                "failed": True,
            })
            if manifest is not None:
                manifest.record(module_path, status="failed",
                                attempts=attempt, error=str(error))
    finally:
        if handle is not None:
            handle.shutdown()
        if ephemeral_dir is not None:
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
            # Keep the warmed memory tier; detach the vanished disk dir.
            cache.cache_dir = None

    comparisons = comparison_table(measurements)
    report = {
        "results": results,
        "measurements": measurements,
        "comparisons": comparisons,
        "rendered": render_comparison(comparisons),
        "timings": timings,
        "diagnoses": diagnoses,
        "failures": failures,
        "skipped": sorted(resumed),
        "manifest": manifest.path if manifest is not None else None,
        "pool_rebuilds": handle.rebuilds if handle is not None else 0,
        "jobs": jobs,
        "cache": get_cache().stats(),
    }
    if warmup_report is not None:
        report["warmup"] = warmup_report
    return report
