"""Run the whole evaluation and produce the paper comparison.

``run_all`` executes a plan of experiments (default: every performance
artifact at tractable scales; the slow verification figures can be
included on request), saves each regenerated figure as JSON, extracts
the headline measurements, and compares them against the structured
paper values.  This is the automated backbone of EXPERIMENTS.md:

    from repro.reporting import run_all
    report = run_all(output_dir="results")
    print(report["rendered"])
"""

import importlib

from repro.reporting.compare import comparison_table, render_comparison
from repro.reporting.serialize import save_result


# ----------------------------------------------------------------------
# measurement extractors: ExperimentResult -> {paper_key: measured}
# ----------------------------------------------------------------------
def _extract_fig01(result):
    frac = result.series_by_label("barotropic %").y
    return {
        "fig01.fraction_low": frac[0] / 100.0,
        "fig01.fraction_high": frac[-1] / 100.0,
    }


def _extract_fig06(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    cg_evp = result.series_by_label("ChronGear+EVP").y
    cuts = [d / e for d, e in zip(cg, cg_evp)]
    return {
        "fig06.evp_iteration_cut": sum(cuts) / len(cuts),
        "fig06.highres_fewer_iterations":
            "true" if cg[-1] < cg[0] else "false",
    }


def _extract_fig07(result):
    cg = result.series_by_label("ChronGear+Diagonal").y
    pcsi = result.series_by_label("P-CSI+Diagonal").y
    pcsi_evp = result.series_by_label("P-CSI+EVP").y
    return {
        "fig07.chrongear_768": cg[-1],
        "fig07.pcsi_speedup_768": cg[-1] / pcsi[-1],
        "fig07.pcsi_evp_speedup_768": cg[-1] / pcsi_evp[-1],
    }


def _extract_table1(result):
    row = result.series_by_label("P-CSI+EVP").y
    return {
        "table1.pcsi_evp_48": row[0] / 100.0,
        "table1.pcsi_evp_768": row[-1] / 100.0,
    }


def _extract_fig08(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    cg_evp = result.series_by_label("ChronGear+EVP [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    sypd_base = result.series_by_label("ChronGear+Diagonal [SYPD]").y
    sypd_best = result.series_by_label("P-CSI+EVP [SYPD]").y
    return {
        "fig08.chrongear_16875": cg[-1],
        "fig08.pcsi_16875": pcsi[-1],
        "fig08.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig08.speedup_chrongear_evp": cg[-1] / cg_evp[-1],
        "fig08.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig08.sypd_baseline": sypd_base[-1],
        "fig08.sypd_pcsi_evp": sypd_best[-1],
        "fig08.rate_gain": sypd_best[-1] / sypd_base[-1],
    }


def _extract_fig09(result):
    frac = result.series_by_label("barotropic %").y
    return {"fig09.fraction_high": frac[-1] / 100.0}


def _extract_fig10(result):
    dip = result.notes["ChronGear reduction-time minimum at cores"]
    cores = result.series[0].x
    return {"fig10.reduction_dip": "true" if dip > cores[0] else "false"}


def _extract_fig11(result):
    cg = result.series_by_label("ChronGear+Diagonal [s/day]").y
    pcsi = result.series_by_label("P-CSI+Diagonal [s/day]").y
    pcsi_evp = result.series_by_label("P-CSI+EVP [s/day]").y
    spread_cg = result.series_by_label(
        "ChronGear+Diagonal run spread [s]").y
    spread_pcsi = result.series_by_label("P-CSI+EVP run spread [s]").y
    return {
        "fig11.chrongear_16875": cg[-1],
        "fig11.pcsi_16875": pcsi[-1],
        "fig11.speedup_pcsi_diag": cg[-1] / pcsi[-1],
        "fig11.speedup_pcsi_evp": cg[-1] / pcsi_evp[-1],
        "fig11.chrongear_noisy":
            "true" if spread_cg[-1] > 2 * spread_pcsi[-1] else "false",
    }


def _extract_fig05(result):
    sizes = result.series_by_label("relative round-off").x
    roundoff = result.series_by_label("relative round-off").y
    by_size = dict(zip(sizes, roundoff))
    return {"sec4.evp_roundoff_12x12": by_size.get(12, roundoff[-1])}


def _extract_fig13(result):
    verdicts = result.notes["verdicts"]
    loose = verdicts.get("tol=1e-10", "?")
    pcsi = [v for k, v in verdicts.items() if k.startswith("P-CSI")]
    return {
        "fig13.loose_flagged": loose,
        "fig13.pcsi_consistent": pcsi[0] if pcsi else "?",
    }


#: (experiment module, run kwargs, extractor) -- the default plan.
DEFAULT_PLAN = [
    ("repro.experiments.fig01_time_fraction", {"scale": 0.25},
     _extract_fig01),
    ("repro.experiments.fig05_evp_marching", {}, _extract_fig05),
    ("repro.experiments.fig06_iterations", {}, _extract_fig06),
    ("repro.experiments.fig07_lowres_scaling", {}, _extract_fig07),
    ("repro.experiments.table1_pop_improvement", {}, _extract_table1),
    ("repro.experiments.fig08_highres_yellowstone", {"scale": 0.25},
     _extract_fig08),
    ("repro.experiments.fig09_time_fraction_pcsi", {"scale": 0.25},
     _extract_fig09),
    ("repro.experiments.fig10_solver_components", {"scale": 0.25},
     _extract_fig10),
    ("repro.experiments.fig11_highres_edison", {"scale": 0.25},
     _extract_fig11),
]

#: The slow verification additions (opt in via ``include_verification``).
VERIFICATION_PLAN = [
    ("repro.experiments.fig13_rmsz",
     {"months": 6, "size": 10, "days_per_month": 20,
      "tolerances": (1e-10, 1e-11, 1e-13)},
     _extract_fig13),
]


def run_all(output_dir=None, plan=None, include_verification=False,
            progress=None):
    """Execute a plan; returns dict with results, comparisons, rendering.

    Parameters
    ----------
    output_dir:
        If given, each regenerated figure is saved there as JSON.
    plan:
        Override the default plan (list of
        ``(module_path, kwargs, extractor)``).
    include_verification:
        Append the slow fig13 verification run.
    progress:
        Optional callable invoked with each experiment name as it starts.
    """
    steps = list(plan if plan is not None else DEFAULT_PLAN)
    if include_verification:
        steps += VERIFICATION_PLAN

    results = {}
    measurements = {}
    for module_path, kwargs, extractor in steps:
        module = importlib.import_module(module_path)
        if progress is not None:
            progress(module_path)
        result = module.run(**kwargs)
        results[result.name] = result
        if output_dir:
            save_result(result, output_dir)
        measurements.update(extractor(result))

    comparisons = comparison_table(measurements)
    return {
        "results": results,
        "measurements": measurements,
        "comparisons": comparisons,
        "rendered": render_comparison(comparisons),
    }
