"""JSON round-tripping of experiment and solve results.

Keeps regenerated figures on disk so reruns can be compared across
code versions without re-executing the sweeps, and gives the solver
service (``repro.service``) a wire format for
:class:`~repro.solvers.result.SolveResult`: the solution array rides
as base64-encoded raw bytes (bit-exact, dtype + shape recorded), the
scalar fields reuse the cache payload encoding, and an attached
:class:`~repro.solvers.health.SolverDiagnosis` survives the trip via
``to_dict``/``from_dict``.
"""

import base64
import json
import os

import numpy as np

from repro.core.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, Series


def result_to_json(result):
    """Serialize an :class:`ExperimentResult` to a JSON string."""
    payload = {
        "name": result.name,
        "title": result.title,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in result.series
        ],
        "notes": {str(k): _jsonable(v) for k, v in result.notes.items()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _jsonable(value):
    """Coerce note values (tuples, numpy scalars, ...) to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_from_json(text):
    """Deserialize a JSON string back to an :class:`ExperimentResult`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise ConfigurationError(f"invalid result JSON: {err}") from None
    for field in ("name", "title", "series"):
        if field not in payload:
            raise ConfigurationError(f"result JSON missing {field!r}")
    series = [
        Series(label=s["label"], x=list(s["x"]), y=list(s["y"]))
        for s in payload["series"]
    ]
    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        series=series,
        notes=dict(payload.get("notes", {})),
    )


# ----------------------------------------------------------------------
# SolveResult wire format (used by the solver service)
# ----------------------------------------------------------------------
def encode_array(arr):
    """A JSON-able, bit-exact encoding of one numpy array."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(doc):
    """Inverse of :func:`encode_array` (bit-exact)."""
    raw = base64.b64decode(doc["data"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(doc["dtype"]))
    return arr.reshape([int(n) for n in doc["shape"]]).copy()


def solve_result_to_doc(result):
    """A :class:`~repro.solvers.result.SolveResult` as a JSON-able dict.

    Reuses the artifact-cache payload encoding for the scalar fields
    and event ledgers (floats survive exactly -- JSON emits shortest
    round-trip reprs), encodes the solution array as base64 raw bytes,
    and carries a non-``None`` diagnosis as its ``to_dict`` form.
    NaN/Inf in ``residual_norm`` (a diagnosed solve) use JSON's
    non-strict literals, which :func:`solve_result_from_doc` accepts.
    """
    from repro.experiments.common import result_to_payload

    arrays, meta = result_to_payload(result)
    payload = dict(meta)
    payload["x"] = encode_array(arrays["x"])
    payload["diagnosis"] = (None if result.diagnosis is None
                            else result.diagnosis.to_dict())
    return payload


def solve_result_from_doc(payload):
    """Inverse of :func:`solve_result_to_doc` (bit-exact)."""
    from repro.experiments.common import result_from_payload
    from repro.solvers.health import SolverDiagnosis

    try:
        x = decode_array(payload["x"])
        result = result_from_payload({"x": x}, payload)
        doc = payload.get("diagnosis")
        if doc is not None:
            result.diagnosis = SolverDiagnosis.from_dict(doc)
    except (KeyError, TypeError, ValueError) as err:
        raise ConfigurationError(
            f"malformed solve-result document: {err!r}") from None
    return result


def solve_result_to_json(result):
    """Serialize a :class:`~repro.solvers.result.SolveResult`."""
    return json.dumps(solve_result_to_doc(result), sort_keys=True)


def solve_result_from_json(text):
    """Deserialize :func:`solve_result_to_json` output (bit-exact)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"invalid solve-result JSON: {err}") from None
    return solve_result_from_doc(payload)


def save_result(result, directory, filename=None):
    """Write a result to ``directory/<name>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename or f"{result.name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(result))
    return path


def load_result(path):
    """Read a result back from disk."""
    with open(path, encoding="utf-8") as handle:
        return result_from_json(handle.read())
