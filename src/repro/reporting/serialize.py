"""JSON round-tripping of experiment results.

Keeps regenerated figures on disk so reruns can be compared across
code versions without re-executing the sweeps.
"""

import json
import os

from repro.core.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, Series


def result_to_json(result):
    """Serialize an :class:`ExperimentResult` to a JSON string."""
    payload = {
        "name": result.name,
        "title": result.title,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in result.series
        ],
        "notes": {str(k): _jsonable(v) for k, v in result.notes.items()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _jsonable(value):
    """Coerce note values (tuples, numpy scalars, ...) to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_from_json(text):
    """Deserialize a JSON string back to an :class:`ExperimentResult`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise ConfigurationError(f"invalid result JSON: {err}") from None
    for field in ("name", "title", "series"):
        if field not in payload:
            raise ConfigurationError(f"result JSON missing {field!r}")
    series = [
        Series(label=s["label"], x=list(s["x"]), y=list(s["y"]))
        for s in payload["series"]
    ]
    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        series=series,
        notes=dict(payload.get("notes", {})),
    )


def save_result(result, directory, filename=None):
    """Write a result to ``directory/<name>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename or f"{result.name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(result))
    return path


def load_result(path):
    """Read a result back from disk."""
    with open(path, encoding="utf-8") as handle:
        return result_from_json(handle.read())
