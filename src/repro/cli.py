"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every regenerable paper artifact and ablation.
``run <experiment> [--arg value ...]``
    Regenerate one artifact (e.g. ``run fig08`` or ``run table1``);
    extra ``--key value`` pairs are forwarded to the experiment's
    ``run()`` (ints/floats parsed, tuples comma-separated).
``solve``
    One-off barotropic solve on a named configuration with a chosen
    solver/preconditioner; prints iterations and modeled times.  When
    ``repro tune`` has persisted a winning combo for this grid +
    decomposition, any of ``--solver``/``--precond``/``--kernels``/
    ``--engine`` left unset is filled from it (``--no-tuned`` opts
    out).  ``--precond`` accepts the polynomial kinds ``cheby:D`` and
    ``ncheby:D[:K]``; ``--precond-degree`` / ``--newton-steps``
    override the suffix.
    ``--engine {serial,perrank,batched}`` selects the execution
    substrate; ``--kernels {auto,numpy,fused,numba}`` the kernel
    backend (default ``$REPRO_KERNELS`` or ``auto``);
    ``--inject-fault SPEC`` (repeatable) attaches
    deterministic fault injectors to exercise the solver guardrails,
    and ``--max-recoveries`` / ``--fallback chrongear`` control the
    divergence recovery of the spectrally bounded solvers (P-CSI and
    CA-PCG).  ``--sstep N`` sets CA-PCG's batch depth (one Gram
    reduction per ``N`` iterations); ``--show-events`` prints the
    solve's global-reduction and halo-exchange ledger.  A diagnosed
    failure exits with status 3.
    ``--checkpoint-dir DIR`` snapshots the solver state every
    ``--checkpoint-every`` iterations (and on diagnosed failure);
    ``--resume-from PATH`` continues a solve from such a snapshot,
    bit-identically to the uninterrupted run.
    ``--replicate-every N`` / ``--abft`` enable the in-solve fault
    tolerance layer (buddy replication for rank-loss recovery, ABFT
    checksums for silent-data-corruption detection); pair with
    ``--inject-fault rank_death:...`` or ``bitflip:...`` to watch a
    solve survive a failure.
``machines``
    Print the calibrated machine models.
``tune [--config NAME] [--blocks by,bx] [--quick] [--out PATH]``
    Benchmark candidate (solver, preconditioner+degree, kernels,
    engine) combos with real solves, print the ranked table, and
    persist the winner in the artifact cache keyed by grid +
    decomposition; later ``repro solve`` runs apply it automatically.
``report [--out DIR] [--verification] [--jobs N] [--no-cache]
[--cache-dir DIR] [--resume] [--step-timeout S] [--retries N]
[--on-failure MODE]``
    Run the whole evaluation plan and print the paper-vs-measured
    comparison (the automated backbone of EXPERIMENTS.md).  ``--jobs``
    fans the measured solves and experiment steps over worker
    processes; the artifact cache (persistent across invocations
    unless ``--no-cache``) makes warm re-runs cheap.  ``--resume``
    skips steps the manifest under ``--out`` already records as done;
    ``--step-timeout`` bounds each step attempt's wall clock;
    ``--retries`` / ``--on-failure`` configure the failure policy.
``cache {stats,clear,verify} [--cache-dir DIR] [--repair]``
    Inspect, empty, or integrity-audit the on-disk artifact cache
    (``verify --repair`` quarantines corrupt entries so the next run
    rebuilds them).  ``stats`` always reports the quarantined-entry
    count and the hit/miss ratio, including rebuilds of quarantined
    entries.
"""

import argparse
import importlib
import sys

#: experiment name -> module path (the per-paper-artifact registry).
EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_time_fraction",
    "fig02": "repro.experiments.fig02_comm_breakdown",
    "fig03": "repro.experiments.fig03_lanczos",
    "fig04": "repro.experiments.fig04_sparsity",
    "fig05": "repro.experiments.fig05_evp_marching",
    "fig06": "repro.experiments.fig06_iterations",
    "fig07": "repro.experiments.fig07_lowres_scaling",
    "table1": "repro.experiments.table1_pop_improvement",
    "fig08": "repro.experiments.fig08_highres_yellowstone",
    "fig09": "repro.experiments.fig09_time_fraction_pcsi",
    "fig10": "repro.experiments.fig10_solver_components",
    "fig11": "repro.experiments.fig11_highres_edison",
    "fig12": "repro.experiments.fig12_rmse",
    "fig13": "repro.experiments.fig13_rmsz",
    "ablation-evp-simplified": "repro.experiments.ablation_evp_simplified",
    "ablation-check-freq": "repro.experiments.ablation_check_freq",
    "ablation-block-size": "repro.experiments.ablation_block_size",
    "ablation-eigen-margin": "repro.experiments.ablation_eigen_margin",
    "ablation-land-elimination":
        "repro.experiments.ablation_land_elimination",
    "ablation-land-epsilon": "repro.experiments.ablation_land_epsilon",
    "ablation-diagnostic-field":
        "repro.experiments.ablation_diagnostic_field",
    "ablation-block-layout": "repro.experiments.ablation_block_layout",
    "ext-solver-strategies": "repro.experiments.ext_solver_strategies",
    "ext-capcg-model": "repro.experiments.ext_capcg_model",
}


def _parse_value(text):
    """Best-effort literal parsing for forwarded CLI overrides."""
    if "," in text:
        return tuple(_parse_value(part) for part in text.split(",") if part)
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def cmd_list(_args):
    print("regenerable paper artifacts (python -m repro run <name>):")
    for name, module in EXPERIMENTS.items():
        print(f"  {name:26s} {module}")
    return 0


def cmd_run(args):
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    module = importlib.import_module(EXPERIMENTS[args.experiment])
    overrides = {}
    for item in args.overrides:
        if "=" not in item:
            print(f"override {item!r} must look like key=value",
                  file=sys.stderr)
            return 2
        key, value = item.split("=", 1)
        overrides[key.lstrip("-")] = _parse_value(value)
    result = module.run(**overrides)
    print(result.render())
    return 0


def cmd_solve(args):
    import numpy as np

    from repro.core.errors import ConvergenceError
    from repro.experiments.common import (
        FULL_SHAPES,
        geometry_decomposition,
        get_cached_config,
        rescale_events,
    )
    from repro.operators import apply_stencil
    from repro.parallel import VirtualMachine, decompose, parse_fault_spec
    from repro.perfmodel import get_machine, phase_times
    from repro.precond import make_preconditioner
    from repro.precond.evp import evp_for_config
    from repro.solvers import DistributedContext, SerialContext, make_solver

    from repro.core.errors import KernelError
    from repro.kernels import resolve_kernels

    config = get_cached_config(args.config, scale=args.scale)
    print(config.describe())

    by, bx = (int(p) for p in args.blocks.split(","))
    tuned = None
    if not args.no_tuned:
        from repro.core.cache import ArtifactCache, default_cache_dir
        from repro.tuning import load_tuned_choice

        tuned_cache = ArtifactCache(
            cache_dir=args.cache_dir or default_cache_dir())
        tuned_decomp = decompose(config.ny, config.nx, by, bx,
                                 mask=config.mask)
        tuned = load_tuned_choice(config, tuned_decomp,
                                  cache=tuned_cache)

    # Explicit flags always win; unset ones fall back to the persisted
    # tuned choice (when one exists for this grid + decomposition), and
    # then to the historical defaults.
    solver_name = args.solver or (tuned and tuned.get("solver")) or "pcsi"
    precond_kind = args.precond or (tuned and tuned.get("precond")) \
        or "evp"
    engine = args.engine or (tuned and tuned.get("engine")) or "serial"
    kernels_choice = args.kernels or (tuned and tuned.get("kernels"))
    if tuned is not None and None in (args.solver, args.precond,
                                      args.engine, args.kernels):
        print(f"applying tuned choice: solver={solver_name} "
              f"precond={precond_kind} kernels={kernels_choice} "
              f"engine={engine} (from repro tune; --no-tuned to "
              f"disable)")

    try:
        kernels = resolve_kernels(kernels_choice)
    except KernelError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(f"kernel backend: {kernels.describe()}")

    faults = [parse_fault_spec(spec) for spec in args.inject_fault]
    vm_faults = [f for f in faults if f.kind != "nan_rhs"]
    if vm_faults and engine == "serial":
        # Halo / reduction / eigenbound faults live in the virtual
        # machine, which the serial context bypasses.
        print("note: --inject-fault requires the virtual machine; "
              "switching to --engine perrank")
        engine = "perrank"

    resilience = None
    if args.replicate_every is not None or args.abft:
        resilience = {"abft": bool(args.abft)}
        if args.replicate_every is not None:
            resilience["replicate_every"] = args.replicate_every
        if engine == "serial":
            # Buddy replication and halo/rowsum checks live in the
            # virtual machine, like the fault injectors.
            print("note: resilience requires the virtual machine; "
                  "switching to --engine perrank")
            engine = "perrank"

    precond_kwargs = {}
    base_kind = precond_kind.split(":", 1)[0].lower()
    if base_kind in ("cheby", "chebyshev", "ncheby", "newton-cheby",
                     "newtoncheby", "newton"):
        if args.precond_degree is not None:
            precond_kwargs["degree"] = args.precond_degree
        if args.newton_steps is not None and base_kind not in (
                "cheby", "chebyshev"):
            precond_kwargs["steps"] = args.newton_steps

    decomp = None
    if engine == "serial":
        if precond_kind == "evp":
            pre = evp_for_config(config, kernels=kernels)
        else:
            pre = make_preconditioner(precond_kind, config.stencil,
                                      kernels=kernels, **precond_kwargs)
        ctx = SerialContext(config.stencil, pre, kernels=kernels)
    else:
        decomp = decompose(config.ny, config.nx, by, bx, mask=config.mask)
        vm = VirtualMachine(decomp, mask=config.mask, engine=engine,
                            faults=vm_faults)
        if precond_kind == "evp":
            pre = evp_for_config(config, decomp=decomp, kernels=kernels)
        else:
            pre = make_preconditioner(precond_kind, config.stencil,
                                      decomp=decomp, kernels=kernels,
                                      **precond_kwargs)
        ctx = DistributedContext(config.stencil, pre, vm, kernels=kernels)
    for fault in faults:
        print(f"injecting fault: {fault.describe()}")

    extra_kwargs = {}
    if solver_name.lower() in ("pcsi", "csi", "capcg"):
        extra_kwargs["max_recoveries"] = args.max_recoveries
        extra_kwargs["fallback"] = args.fallback
    if solver_name.lower() == "capcg":
        extra_kwargs["sstep"] = args.sstep
    solver = make_solver(solver_name, ctx, tol=args.tol, **extra_kwargs)
    rng = np.random.default_rng(args.seed)
    nrhs = max(1, int(args.nrhs))
    columns = []
    for _ in range(nrhs):
        col = apply_stencil(config.stencil,
                            rng.standard_normal(config.shape) * config.mask)
        for fault in faults:
            col = fault.on_rhs(col, config.mask)
        columns.append(col)
    b = columns[0] if nrhs == 1 else np.stack(columns, axis=-1)
    if nrhs > 1:
        print(f"solving a batch of {nrhs} right-hand sides in one "
              f"multi-RHS solve")

    policy = None
    if args.checkpoint_dir:
        from repro.core.checkpoint import CheckpointPolicy

        policy = CheckpointPolicy(args.checkpoint_dir,
                                  every=args.checkpoint_every)
        print(f"checkpointing to {policy.directory} every "
              f"{policy.every} iterations")
    if args.resume_from:
        print(f"resuming from checkpoint {args.resume_from}")

    if resilience is not None:
        print(f"resilience: buddy replication every "
              f"{resilience.get('replicate_every', 10)} iterations, "
              f"ABFT {'on' if resilience['abft'] else 'off'}")
    try:
        result = solver.solve(b, checkpoint=policy,
                              resume_from=args.resume_from or None,
                              resilience=resilience)
    except ConvergenceError as err:
        print(f"solve FAILED: {err.diagnosis.describe()}"
              if err.diagnosis is not None else f"solve FAILED: {err}")
        if err.result is not None:
            print(f"  partial result: {err.result.describe()}")
            for diag in err.result.extra.get("recovery_diagnoses", []):
                print(f"  recovery attempted after: [{diag['kind']}] "
                      f"{diag['message']}")
        if policy is not None and policy.written:
            print(f"  last checkpoint: {policy.written[-1]}")
        return 3
    print(result.describe())
    if args.show_events:
        from repro.perfmodel import event_totals

        for stage, events in (("setup", result.setup_events),
                              ("loop", result.events)):
            tot = event_totals(events)
            print(f"  {stage} events: {tot.allreduces} global reductions "
                  f"({tot.allreduce_words} words), "
                  f"{tot.halo_exchanges} halo exchanges "
                  f"({tot.halo_words} words)")
            for phase in sorted(events):
                c = events[phase]
                if c.allreduces or c.halo_exchanges:
                    print(f"    {phase:18s} reductions {c.allreduces:5d} "
                          f"({c.allreduce_words} words)  "
                          f"halo {c.halo_exchanges:5d} "
                          f"({c.halo_words} words)")
        if result.iterations:
            loop_tot = event_totals(result.events)
            print(f"  loop reductions / iteration: "
                  f"{loop_tot.allreduces / result.iterations:.3f}")
    if result.extra.get("multi_rhs"):
        iters = result.extra["per_rhs_iterations"]
        norms = result.extra["per_rhs_residual_norm"]
        convs = result.extra["per_rhs_converged"]
        for j, (it, rn, ok) in enumerate(zip(iters, norms, convs)):
            status = "converged" if ok else "NOT converged"
            print(f"  rhs[{j}]: {status} in {it} iterations, "
                  f"|r| = {rn:.2e}")
    if policy is not None and policy.written:
        print(f"  checkpoints written: {len(policy.written)} "
              f"(latest: {policy.written[-1]})")
    if result.extra.get("recoveries"):
        print(f"  recovered after {result.extra['recoveries']} failed "
              f"attempt(s):")
        for diag in result.extra.get("recovery_diagnoses", []):
            print(f"    [{diag['kind']}] @ iteration {diag['iteration']}: "
                  f"{diag['message']}")
        rec = result.setup_events.get("recovery")
        if rec is not None:
            print(f"    recovery cost: {rec.flops} flops, "
                  f"{rec.halo_exchanges} halo exchanges, "
                  f"{rec.allreduces} reductions")
    res_summary = result.extra.get("resilience")
    if res_summary is not None:
        counters = res_summary["counters"]
        print(f"  resilience: {counters['replications']} replications, "
              f"{counters['halo_checks']} halo checks, "
              f"{counters['rowsum_checks']} row-sum checks, "
              f"{counters['residual_crosschecks']} residual "
              f"cross-checks")
        for rec_doc in res_summary["recoveries"]:
            print(f"    recovered [{rec_doc['kind']}] @ iteration "
                  f"{rec_doc['iteration']}: {rec_doc['message']} "
                  f"(resumed from iteration "
                  f"{rec_doc['data']['resumed_from_iteration']})")
        res_events = result.events.get("resilience")
        if res_events is not None:
            print(f"    resilience cost: {res_events.flops} flops, "
                  f"{res_events.halo_exchanges} replica/rollback halo "
                  f"exchanges, {res_events.allreduces} reductions")

    machine = get_machine(args.machine)
    if engine == "serial":
        base = args.config.split("@")[0]
        shape = FULL_SHAPES.get(base, config.shape)
        for cores in args.cores:
            model_decomp = geometry_decomposition(shape, cores)
            events = rescale_events(result.events,
                                    config.ny * config.nx, model_decomp)
            t = phase_times(events, machine, model_decomp.num_active)
            print(f"  modeled @ {cores:>6d} cores on {machine.name}: "
                  f"{t.total * config.steps_per_day:8.3f} s/simulated-day "
                  f"(comp {t.computation:.2e}  precond "
                  f"{t.preconditioning:.2e}  halo {t.boundary:.2e}  "
                  f"reduce {t.reduction:.2e} per solve)")
    else:
        t = phase_times(result.events, machine, decomp.num_active)
        print(f"  modeled on {machine.name} @ {decomp.num_active} ranks: "
              f"{t.total * config.steps_per_day:8.3f} s/simulated-day")
    return 0


def cmd_tune(args):
    import json

    from repro.core.cache import configure_cache, default_cache_dir
    from repro.experiments.common import get_cached_config
    from repro.tuning import render_table, tune

    cache = configure_cache(
        cache_dir=args.cache_dir or default_cache_dir())
    config = get_cached_config(args.config, scale=args.scale)
    print(config.describe())
    blocks = tuple(int(p) for p in args.blocks.split(","))

    def progress(entry):
        status = (f"{entry['iterations']} iters, "
                  f"{entry['wall_time'] * 1e3:.1f} ms"
                  if entry["converged"]
                  else f"FAILED: {entry['error']}")
        print(f"  {entry['solver']}/{entry['precond']}"
              f"/{entry['kernels']}/{entry['engine']}: {status}")

    print(f"tuning {args.config} on a {blocks[0]}x{blocks[1]} "
          f"decomposition (tol {args.tol:g}"
          + (", quick matrix" if args.quick else "") + ") ...")
    report = tune(config, blocks=blocks, quick=args.quick, tol=args.tol,
                  machine=args.machine, cache=cache, progress=progress)
    print()
    for line in render_table(report):
        print(line)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"ranked table written to {args.out}")
    if report["choice"] is None:
        print("no candidate converged; nothing persisted")
        return 1
    c = report["choice"]
    print(f"persisted tuned choice: solver={c['solver']} "
          f"precond={c['precond']} kernels={c['kernels']} "
          f"engine={c['engine']} (key {report['key'][:12]}..., cache "
          f"{cache.cache_dir}); later 'repro solve' runs on this grid + "
          f"decomposition apply it automatically")
    return 0


def cmd_report(args):
    from repro.core.cache import configure_cache, default_cache_dir
    from repro.reporting import FailurePolicy, run_all

    if args.no_cache:
        cache = configure_cache(cache_dir=None)
    else:
        cache = configure_cache(
            cache_dir=args.cache_dir or default_cache_dir())
    if args.resume and not args.out:
        print("error: --resume needs --out (the manifest lives there)",
              file=sys.stderr)
        return 2
    policy = FailurePolicy(mode=args.on_failure, retries=args.retries)
    report = run_all(
        output_dir=args.out,
        include_verification=args.verification,
        progress=lambda name: print(f"running {name} ..."),
        jobs=args.jobs,
        resume=args.resume,
        step_timeout=args.step_timeout,
        failure_policy=policy,
    )
    print()
    print(report["rendered"])
    print()
    print("step timings:")
    for entry in report.get("timings", []):
        step = entry["step"].rsplit(".", 1)[-1]
        if entry.get("failed"):
            print(f"  {step:28s}   FAILED")
            continue
        if entry.get("resumed"):
            print(f"  {step:28s}   resumed from manifest")
            continue
        retries = (f", attempts {entry['attempts']}"
                   if entry.get("attempts") else "")
        print(f"  {step:28s} {entry['seconds']:8.2f} s  "
              f"(cache hits {entry['cache_hits']}, "
              f"misses {entry['cache_misses']}{retries})")
    for entry in report.get("diagnoses", []):
        diag = entry["diagnosis"] or {}
        print(f"  diagnosis [{diag.get('kind', '?')}] in "
              f"{entry['step']}: {diag.get('message', entry['error'])}")
    for entry in report.get("failures", []):
        print(f"  failure in {entry['step']} after "
              f"{entry['attempts']} attempt(s): {entry['error']}")
    stats = cache.stats()
    print(f"cache: {stats['memory_hits']} memory hits, "
          f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
          f"{stats['disk_entries']} disk entries "
          f"({stats['disk_bytes'] / 1e6:.1f} MB)"
          + (f", {stats['quarantined']} quarantined"
             if stats.get("quarantined") else "")
          + (f" in {stats['cache_dir']}" if stats["cache_dir"] else ""))
    if report.get("manifest"):
        print(f"manifest: {report['manifest']}")
    return 1 if report.get("failures") else 0


def cmd_serve(args):
    from repro.core.cache import configure_cache, default_cache_dir
    from repro.service import serve

    by, bx = (int(v) for v in args.blocks.split(","))
    configure_cache(cache_dir=args.cache_dir or default_cache_dir(),
                    shards=args.shards,
                    max_bytes=args.cache_max_bytes)
    serve(host=args.host, port=args.port, jobs=args.jobs,
          max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
          blocks=(by, bx), engine=args.engine, tuned=not args.no_tuned,
          retries=args.retries, job_timeout=args.job_timeout)
    return 0


def cmd_cache(args):
    from repro.core.cache import ArtifactCache, default_cache_dir

    cache = ArtifactCache(cache_dir=args.cache_dir or default_cache_dir(),
                          shards=args.shards,
                          max_bytes=args.max_bytes)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifacts from {cache.cache_dir}")
        return 0
    if args.action == "verify":
        report = cache.verify(repair=args.repair)
        print(f"cache directory: {cache.cache_dir}")
        print(f"checked {report['checked']} entries: "
              f"{report['ok']} verified, {report['legacy']} legacy "
              f"(no checksum), {len(report['corrupt'])} corrupt")
        for path, reason in report["corrupt"]:
            import os as _os

            print(f"  corrupt: {_os.path.basename(path)} -- {reason}")
        if args.repair and report["quarantined"]:
            print(f"quarantined {report['quarantined']} corrupt "
                  f"entries to {cache.quarantine_dir()}; the next run "
                  f"rebuilds them")
        elif report["corrupt"] and not args.repair:
            print("re-run with --repair to quarantine them")
        return 1 if report["corrupt"] else 0
    stats = cache.stats()
    print(f"cache directory: {stats['cache_dir']}")
    print(f"entries: {stats['disk_entries']}")
    print(f"size: {stats['disk_bytes'] / 1e6:.2f} MB")
    # Quarantine count and hit/miss ratio print unconditionally: after
    # a `verify --repair` + rebuild cycle the interesting value is
    # often exactly 0, and hiding it made the output inconsistent
    # between healthy and healed stores.
    print(f"quarantined entries: {stats['quarantine_entries']}")
    print(f"lookups: {stats['hits']} hits / {stats['misses']} misses "
          f"(hit ratio {stats['hit_ratio']:.2f}, "
          f"{stats['rebuilds']} rebuilds)")
    if stats.get("max_bytes"):
        print(f"byte budget: {stats['max_bytes'] / 1e6:.2f} MB "
              f"({stats['evictions']} evictions this process)")
    for row in stats.get("per_shard", []):
        print(f"  shard {row['shard']:02d}: {row['entries']} entries, "
              f"{row['bytes'] / 1e6:.2f} MB, {row['hits']} hits / "
              f"{row['misses']} misses, {row['evictions']} evictions")
    return 0


def cmd_machines(_args):
    from repro.perfmodel.machines import EDISON, YELLOWSTONE

    for machine in (YELLOWSTONE, EDISON):
        print(machine.describe())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction harness for the SC'15 POP barotropic "
                    "solver paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable artifacts")

    p_run = sub.add_parser("run", help="regenerate one artifact")
    p_run.add_argument("experiment")
    p_run.add_argument("overrides", nargs="*",
                       help="key=value overrides forwarded to run()")

    p_solve = sub.add_parser("solve", help="one-off barotropic solve")
    p_solve.add_argument("--config", default="pop_1deg",
                         choices=["pop_1deg", "pop_0.1deg", "test"])
    p_solve.add_argument("--scale", type=float, default=1.0)
    p_solve.add_argument("--solver", default=None,
                         help="solver name (default: the persisted "
                              "tuned choice if any, else pcsi)")
    p_solve.add_argument("--precond", default=None,
                         help="preconditioner kind, e.g. evp, diagonal, "
                              "cheby:4, ncheby:2:1 (default: the "
                              "persisted tuned choice if any, else evp)")
    p_solve.add_argument("--precond-degree", type=int, default=None,
                         help="polynomial degree for cheby/ncheby "
                              "(overrides the kind's :D suffix)")
    p_solve.add_argument("--newton-steps", type=int, default=None,
                         help="Newton refinement sweeps for ncheby "
                              "(overrides the kind's :D:K suffix)")
    p_solve.add_argument("--no-tuned", action="store_true",
                         help="ignore any persisted 'repro tune' choice "
                              "for this grid + decomposition")
    p_solve.add_argument("--cache-dir", default=None,
                         help="artifact cache directory holding tuned "
                              "choices (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro-artifacts)")
    p_solve.add_argument("--tol", type=float, default=1e-13)
    p_solve.add_argument("--nrhs", type=int, default=1,
                         help="solve this many random right-hand sides "
                              "as one multi-RHS batch (prints per-RHS "
                              "iteration counts)")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--machine", default="yellowstone")
    p_solve.add_argument("--cores", type=int, nargs="*",
                         default=[470, 16875])
    p_solve.add_argument("--engine", default=None,
                         choices=["serial", "perrank", "batched"],
                         help="serial context or a virtual-machine "
                              "execution engine (default: the persisted "
                              "tuned choice if any, else serial)")
    p_solve.add_argument("--kernels", default=None,
                         help="kernel backend: auto, numpy, fused or "
                              "numba (default: $REPRO_KERNELS or auto)")
    p_solve.add_argument("--blocks", default="4,4",
                         help="block grid 'by,bx' for the virtual "
                              "machine (default: 4,4)")
    p_solve.add_argument("--inject-fault", action="append", default=[],
                         metavar="SPEC",
                         help="attach a fault injector, e.g. "
                              "'halo:rank=1,at=2', 'reduction:value=nan'"
                              ", 'eigenbounds:nu_factor=12', 'nan_rhs', "
                              "'rank_death:rank=2,at=12', "
                              "'bitflip:target=halo,rank=1,at=9'; "
                              "repeatable")
    p_solve.add_argument("--replicate-every", type=int, default=None,
                         metavar="N",
                         help="enable in-solve fault tolerance: "
                              "replicate each rank's block state to its "
                              "buddy rank at convergence checks at "
                              "least N iterations apart (recovers "
                              "rank_death and detected corruption by "
                              "rollback)")
    p_solve.add_argument("--abft", action="store_true",
                         help="enable ABFT silent-data-corruption "
                              "detection (halo checksums, matvec row-sum "
                              "checks, residual cross-checks); implies "
                              "buddy replication at the default cadence "
                              "unless --replicate-every is given")
    p_solve.add_argument("--max-recoveries", type=int, default=2,
                         help="divergence recovery attempts for the "
                              "spectrally bounded solvers, P-CSI and "
                              "CA-PCG (default: 2)")
    p_solve.add_argument("--fallback", default=None,
                         choices=["chrongear"],
                         help="last-resort solver once P-CSI/CA-PCG "
                              "recoveries are exhausted")
    p_solve.add_argument("--sstep", type=int, default=4,
                         help="CA-PCG batch depth: one Gram reduction "
                              "per this many iterations (default: 4)")
    p_solve.add_argument("--show-events", action="store_true",
                         help="print the solve's communication ledger "
                              "(global reductions and halo exchanges, "
                              "counts and words, per stage and phase)")
    p_solve.add_argument("--checkpoint-dir", default=None,
                         help="snapshot solver state into this "
                              "directory (periodic + on failure)")
    p_solve.add_argument("--checkpoint-every", type=int, default=50,
                         help="iterations between snapshots "
                              "(default: 50; 0 = only on failure)")
    p_solve.add_argument("--resume-from", default=None, metavar="PATH",
                         help="resume the solve from a checkpoint file "
                              "(bit-identical to the uninterrupted run)")

    sub.add_parser("machines", help="print machine models")

    p_tune = sub.add_parser(
        "tune",
        help="benchmark solver/preconditioner/kernels/engine combos and "
             "persist the winner for this grid + decomposition")
    p_tune.add_argument("--config", default="pop_1deg",
                        choices=["pop_1deg", "pop_0.1deg", "test"])
    p_tune.add_argument("--scale", type=float, default=1.0)
    p_tune.add_argument("--blocks", default="4,4",
                        help="block grid 'by,bx' the choice is keyed "
                             "under (default: 4,4)")
    p_tune.add_argument("--tol", type=float, default=1e-12,
                        help="convergence tolerance every candidate "
                             "solves to (default: 1e-12)")
    p_tune.add_argument("--quick", action="store_true",
                        help="reduced candidate matrix for smoke runs "
                             "(fewer solvers/preconds, one backend)")
    p_tune.add_argument("--machine", default="yellowstone",
                        help="machine model for the modeled-time column")
    p_tune.add_argument("--cache-dir", default=None,
                        help="artifact cache directory the choice is "
                             "persisted in (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-artifacts)")
    p_tune.add_argument("--out", default=None,
                        help="also write the full ranked report as JSON "
                             "to this path")

    p_report = sub.add_parser(
        "report", help="run the evaluation plan + paper comparison")
    p_report.add_argument("--out", default=None,
                          help="directory for per-figure JSON results")
    p_report.add_argument("--verification", action="store_true",
                          help="include the slow fig13 ensemble run")
    p_report.add_argument("--jobs", type=int, default=1,
                          help="worker processes for warmup solves and "
                               "experiment steps (default: 1, serial)")
    p_report.add_argument("--no-cache", action="store_true",
                          help="disable the persistent artifact cache "
                               "(in-memory caching only)")
    p_report.add_argument("--cache-dir", default=None,
                          help="artifact cache directory (default: "
                               "$REPRO_CACHE_DIR or "
                               "~/.cache/repro-artifacts)")
    p_report.add_argument("--resume", action="store_true",
                          help="skip steps the manifest under --out "
                               "already records as completed")
    p_report.add_argument("--step-timeout", type=float, default=None,
                          metavar="S",
                          help="wall-clock budget per step attempt in "
                               "seconds (jobs > 1 only)")
    p_report.add_argument("--retries", type=int, default=2,
                          help="extra attempts per failed step under "
                               "--on-failure retry (default: 2)")
    p_report.add_argument("--on-failure", default="retry",
                          choices=["fail_fast", "continue", "retry"],
                          help="what a failed step does to the run "
                               "(default: retry)")

    p_cache = sub.add_parser(
        "cache",
        help="inspect, clear, or integrity-audit the artifact cache")
    p_cache.add_argument("action", choices=["stats", "clear", "verify"])
    p_cache.add_argument("--cache-dir", default=None,
                         help="artifact cache directory (default: "
                              "$REPRO_CACHE_DIR or "
                              "~/.cache/repro-artifacts)")
    p_cache.add_argument("--repair", action="store_true",
                         help="with verify: quarantine corrupt entries "
                              "so the next run rebuilds them")
    p_cache.add_argument("--shards", type=int, default=None,
                         help="inspect a sharded layout: entries hash "
                              "across this many shard-NN subdirectories")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="byte budget the stats report against "
                              "(enables the per-shard eviction view)")

    p_serve = sub.add_parser(
        "serve",
        help="run the solver service: JSON-over-HTTP with dynamic "
             "multi-RHS request coalescing and an async job API")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8723,
                         help="listen port (0 = pick a free one; the "
                              "bound port is announced on stdout)")
    p_serve.add_argument("--jobs", type=int, default=0,
                         help="worker processes for solves (default 0 "
                              "= one in-process solver thread)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="coalesce at most this many compatible "
                              "requests into one multi-RHS solve "
                              "(1 disables coalescing; default: 8)")
    p_serve.add_argument("--max-wait-ms", type=float, default=25.0,
                         help="batching window: a request waits at most "
                              "this long for companions (default: 25)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="artifact cache directory shared by the "
                              "service and its workers (default: "
                              "$REPRO_CACHE_DIR or "
                              "~/.cache/repro-artifacts)")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="shard the cache across this many "
                              "lock-protected subdirectories")
    p_serve.add_argument("--cache-max-bytes", type=int, default=None,
                         help="LRU-evict cache entries beyond this "
                              "byte budget")
    p_serve.add_argument("--blocks", default="4,4",
                         help="decomposition 'by,bx' tuned choices are "
                              "looked up under, and the default "
                              "decomposition for engine solves "
                              "(default: 4,4)")
    p_serve.add_argument("--engine", default=None,
                         choices=("serial", "perrank", "batched"),
                         help="default execution engine for requests "
                              "that omit one ('batched' amortizes "
                              "coalesced multi-RHS solves; default: "
                              "classic serial context)")
    p_serve.add_argument("--no-tuned", action="store_true",
                         help="do not auto-apply persisted 'repro tune' "
                              "winners to requests omitting "
                              "solver/precond")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="extra attempts per solve after a worker "
                              "crash or timeout (default: 2)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="S",
                         help="wall-clock budget per solve attempt in "
                              "seconds (default: none)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "solve": cmd_solve,
        "machines": cmd_machines,
        "tune": cmd_tune,
        "report": cmd_report,
        "cache": cmd_cache,
        "serve": cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
