"""Figure 6: average solver iterations per configuration.

Paper results: block-EVP preconditioning "reduces the iteration count by
about two-thirds for both the 1-degree and 0.1-degree resolutions" for
both solvers, and the 0.1-degree case needs *fewer* iterations than the
1-degree case because its grid-spacing ratio is closer to 1 (smaller
condition number).
"""

from repro.experiments.common import (
    SOLVER_CONFIGS,
    ExperimentResult,
    Series,
    get_cached_config,
    measure_solver,
    print_result,
    solver_label,
    standard_warmup_tasks,
)

CONFIG_SCALES = (("pop_1deg", 1.0), ("pop_0.1deg", 0.25))


def warmup_tasks(configs=CONFIG_SCALES, tol=1.0e-13, combos=SOLVER_CONFIGS):
    """Measured solves :func:`run` will need (for pipeline warmup)."""
    return standard_warmup_tasks(configs, combos=combos, tol=tol)


def run(configs=CONFIG_SCALES, tol=1.0e-13, combos=SOLVER_CONFIGS):
    """Measured iterations to tolerance for every combination."""
    labels = [solver_label(*combo) for combo in combos]
    result = ExperimentResult(
        name="fig06",
        title=f"Average iterations to |r| <= {tol:g} |b|",
    )
    per_combo = {label: [] for label in labels}
    xs = []
    for name, scale in configs:
        config = get_cached_config(name, scale=scale)
        xs.append(config.name)
        for combo, label in zip(combos, labels):
            res = measure_solver(config, combo[0], combo[1], tol=tol)
            per_combo[label].append(res.iterations)
    for label in labels:
        result.series.append(Series(label=label, x=xs, y=per_combo[label]))

    # Headline ratios.
    for solver in ("chrongear", "pcsi"):
        if (solver, "diagonal") in combos and (solver, "evp") in combos:
            diag = per_combo[solver_label(solver, "diagonal")]
            evp = per_combo[solver_label(solver, "evp")]
            ratios = [round(d / e, 2) for d, e in zip(diag, evp)]
            result.notes[f"EVP iteration reduction, {solver} "
                         "(paper ~3x)"] = ratios
    cg = per_combo[solver_label("chrongear", "diagonal")]
    if len(cg) == 2:
        result.notes["0.1-degree needs fewer iterations than 1-degree"] = \
            cg[1] < cg[0]
    return result


def main():
    print_result(run(), xlabel="config", fmt="{:.0f}")


if __name__ == "__main__":
    main()
