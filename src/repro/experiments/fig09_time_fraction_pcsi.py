"""Figure 9: 0.1-degree time fraction with the new P-CSI+EVP solver.

Paper result: with the more scalable EVP-preconditioned P-CSI solver,
the barotropic mode is only about 16% of the total execution time at
16,875 cores (versus ~50% for the ChronGear baseline of Figure 1).
"""

from repro.experiments.common import CORES_0P1DEG, print_result
from repro.experiments.fig01_time_fraction import run as _run_fraction
from repro.experiments.fig01_time_fraction import (
    warmup_tasks as _fraction_warmup,
)
from repro.perfmodel import YELLOWSTONE


def warmup_tasks(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25):
    """Measured solves :func:`run` will need (for pipeline warmup)."""
    return _fraction_warmup(cores=cores, machine=machine, scale=scale,
                            combo=("pcsi", "evp"))


def run(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25):
    """Same computation as Figure 1 with the P-CSI+EVP combination."""
    return _run_fraction(cores=cores, machine=machine, scale=scale,
                         combo=("pcsi", "evp"))


def main():
    print_result(run(), xlabel="cores")


if __name__ == "__main__":
    main()
