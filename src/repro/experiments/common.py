"""Shared infrastructure for the experiment modules.

Key idea: the solver algorithms are *rank-count independent* -- the same
iterates, iteration counts and per-iteration operation mix arise no
matter how the grid is decomposed (validated by the context-equivalence
tests).  So each experiment solves once per (configuration, solver,
preconditioner) at a tractable grid scale, then *rescales* the recorded
event stream to the geometry of each core count on the paper's full-size
grid and prices it with the machine model:

* flop counts scale with the critical block size ``N^2/p``,
* halo words per exchange follow the decomposition's block perimeter,
* reduction counts are unchanged (their cost grows with ``p`` inside
  the machine model).

This is exactly the paper's own reasoning (Eqs. 2-6) with the constants
*measured* from running code instead of derived by hand.
"""

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError
from repro.grid import get_config, pop_0p1deg, pop_1deg
from repro.operators import apply_stencil
from repro.parallel import decompose
from repro.parallel.decomposition import decomposition_for_core_count, _factor_pairs
from repro.parallel.events import EventCounts
from repro.precond import make_preconditioner
from repro.precond.evp import evp_for_config
from repro.solvers import ChronGearSolver, PCSISolver, PCGSolver, SerialContext

#: The four solver configurations of the paper's evaluation (plus the
#: textbook-PCG lineage baseline available for extensions).
SOLVER_CONFIGS = (
    ("chrongear", "diagonal"),
    ("chrongear", "evp"),
    ("pcsi", "diagonal"),
    ("pcsi", "evp"),
)

#: Full-size grid shapes of the paper's two resolutions (ny, nx).
FULL_SHAPES = {
    "pop_1deg": (384, 320),
    "pop_0.1deg": (2400, 3600),
}

#: Core-count sweeps used in the paper's figures.
CORES_1DEG = (16, 48, 96, 192, 384, 768)
CORES_0P1DEG = (470, 940, 1880, 2700, 4220, 8440, 16875)


def solver_label(solver, precond):
    """Display label matching the paper's legends."""
    pname = {"diagonal": "Diagonal", "evp": "EVP", "identity": "None"}.get(
        precond, precond)
    sname = {"chrongear": "ChronGear", "pcsi": "P-CSI", "pcg": "PCG"}.get(
        solver, solver)
    return f"{sname}+{pname}"


# ----------------------------------------------------------------------
# one-shot measured solves, cached per process
# ----------------------------------------------------------------------
_CONFIG_CACHE = {}
_SOLVE_CACHE = {}
_PRECOND_CACHE = {}


def get_cached_config(name, scale=1.0, seed=None):
    """Build (or fetch) a named grid configuration."""
    key = (name, scale, seed)
    if key not in _CONFIG_CACHE:
        if name == "pop_1deg":
            cfg = pop_1deg(scale=scale, **({} if seed is None else {"seed": seed}))
        elif name in ("pop_0.1deg", "pop_0p1deg"):
            cfg = pop_0p1deg(scale=scale, **({} if seed is None else {"seed": seed}))
        else:
            cfg = get_config(name)
        _CONFIG_CACHE[key] = cfg
    return _CONFIG_CACHE[key]


def get_cached_preconditioner(config, kind, **kwargs):
    """Build (or fetch) a preconditioner for a cached config."""
    key = (config.name, kind, tuple(sorted(kwargs.items())))
    if key not in _PRECOND_CACHE:
        if kind == "evp":
            pre = evp_for_config(config, **kwargs)
        else:
            pre = make_preconditioner(kind, config.stencil, **kwargs)
        _PRECOND_CACHE[key] = pre
    return _PRECOND_CACHE[key]


def reference_rhs(config, seed=20151115):
    """A deterministic physically-ranged right-hand side.

    ``b = A x_ref`` for a random masked ``x_ref``: guarantees
    solvability and a known solution for error checks.
    """
    rng = np.random.default_rng(seed)
    x_ref = rng.standard_normal(config.shape) * config.mask
    return apply_stencil(config.stencil, x_ref)


def measure_solver(config, solver="chrongear", precond="diagonal",
                   tol=1.0e-13, check_freq=10, max_iterations=60000,
                   **solver_kwargs):
    """Solve once and cache the :class:`SolveResult` (with events).

    The context carries no decomposition: recorded flops correspond to a
    single rank owning the whole grid and are rescaled per core count by
    :func:`rescale_events`.
    """
    key = (config.name, solver, precond, tol, check_freq,
           tuple(sorted(solver_kwargs.items())))
    if key in _SOLVE_CACHE:
        return _SOLVE_CACHE[key]
    pre = get_cached_preconditioner(config, precond)
    ctx = SerialContext(config.stencil, pre)
    cls = {"chrongear": ChronGearSolver, "pcsi": PCSISolver,
           "pcg": PCGSolver}[solver]
    result = cls(ctx, tol=tol, check_freq=check_freq,
                 max_iterations=max_iterations, **solver_kwargs).solve(
        reference_rhs(config))
    result.extra["measured_points"] = config.ny * config.nx
    _SOLVE_CACHE[key] = result
    return result


# ----------------------------------------------------------------------
# geometry + event rescaling
# ----------------------------------------------------------------------
def geometry_decomposition(full_shape, cores, aspect=1.5):
    """Decomposition of the paper's *full-size* grid for ``cores`` ranks.

    No land mask: the paper's experiments fix the land-block ratio and
    use space-filling curves so the requested core count is what runs;
    block geometry (the critical block size and halo perimeter) is what
    the timing model needs.  Falls back over factorizations when the
    preferred aspect does not fit.
    """
    ny, nx = full_shape
    return decomposition_for_core_count(ny, nx, cores, aspect=aspect)


def rescale_events(events, measured_points, decomp):
    """Rescale a recorded event dict to a target decomposition.

    ``measured_points`` is the grid size the events were recorded on
    (one rank); the returned counts describe the critical-path rank of
    ``decomp`` on the full-size grid.
    """
    factor = decomp.max_block_points() / float(measured_points)
    words = decomp.halo_words_per_exchange()
    out = {}
    for phase, counts in events.items():
        out[phase] = EventCounts(
            flops=int(round(counts.flops * factor)),
            halo_exchanges=counts.halo_exchanges,
            halo_words=counts.halo_exchanges * words,
            allreduces=counts.allreduces,
            allreduce_words=counts.allreduce_words,
        )
    return out


def rescaled_result_events(result, decomp):
    """Events of ``result`` rescaled to ``decomp`` (loop and setup)."""
    points = result.extra["measured_points"]
    return (rescale_events(result.events, points, decomp),
            rescale_events(result.setup_events, points, decomp))


# ----------------------------------------------------------------------
# result containers + rendering
# ----------------------------------------------------------------------
@dataclass
class Series:
    """One line of a figure: a label and aligned x/y lists."""

    label: str
    x: list
    y: list


@dataclass
class ExperimentResult:
    """A regenerated table/figure: series plus free-form notes."""

    name: str
    title: str
    series: list = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def series_by_label(self, label):
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self, xlabel="x", fmt="{:.4g}"):
        """ASCII table: one row per x value, one column per series."""
        lines = [f"== {self.name}: {self.title} =="]
        if not self.series:
            return "\n".join(lines)
        xs = self.series[0].x
        headers = [xlabel] + [s.label for s in self.series]
        widths = [max(len(h), 12) for h in headers]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        for i, x in enumerate(xs):
            cells = [str(x)]
            for s in self.series:
                val = s.y[i] if i < len(s.y) else float("nan")
                cells.append(fmt.format(val) if isinstance(val, float) else str(val))
            lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        for key, val in self.notes.items():
            lines.append(f"note: {key} = {val}")
        return "\n".join(lines)


def print_result(result, xlabel="x", fmt="{:.4g}"):
    """Convenience used by the ``main()`` entry points."""
    print(result.render(xlabel=xlabel, fmt=fmt))
    return result
