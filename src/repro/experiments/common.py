"""Shared infrastructure for the experiment modules.

Key idea: the solver algorithms are *rank-count independent* -- the same
iterates, iteration counts and per-iteration operation mix arise no
matter how the grid is decomposed (validated by the context-equivalence
tests).  So each experiment solves once per (configuration, solver,
preconditioner) at a tractable grid scale, then *rescales* the recorded
event stream to the geometry of each core count on the paper's full-size
grid and prices it with the machine model:

* flop counts scale with the critical block size ``N^2/p``,
* halo words per exchange follow the decomposition's block perimeter,
* reduction counts are unchanged (their cost grows with ``p`` inside
  the machine model).

This is exactly the paper's own reasoning (Eqs. 2-6) with the constants
*measured* from running code instead of derived by hand.
"""

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CACHE_FORMAT_VERSION, digest_of, get_cache
from repro.core.errors import ConfigurationError
from repro.grid import get_config, pop_0p1deg, pop_1deg
from repro.operators import apply_stencil
from repro.parallel import decompose
from repro.parallel.decomposition import decomposition_for_core_count, _factor_pairs
from repro.parallel.events import EventCounts
from repro.precond import make_preconditioner
from repro.precond.evp import evp_for_config
from repro.solvers import (
    CAPCGSolver,
    ChronGearSolver,
    PCGSolver,
    PCSISolver,
    PipeCGSolver,
    SerialContext,
    SpectralBoundedSolver,
)
from repro.solvers.result import SolveResult

#: The four solver configurations of the paper's evaluation (plus the
#: textbook-PCG lineage baseline available for extensions).
SOLVER_CONFIGS = (
    ("chrongear", "diagonal"),
    ("chrongear", "evp"),
    ("pcsi", "diagonal"),
    ("pcsi", "evp"),
)

#: Full-size grid shapes of the paper's two resolutions (ny, nx).
FULL_SHAPES = {
    "pop_1deg": (384, 320),
    "pop_0.1deg": (2400, 3600),
}

#: Core-count sweeps used in the paper's figures.
CORES_1DEG = (16, 48, 96, 192, 384, 768)
CORES_0P1DEG = (470, 940, 1880, 2700, 4220, 8440, 16875)


def solver_label(solver, precond):
    """Display label matching the paper's legends."""
    pname = {"diagonal": "Diagonal", "evp": "EVP", "identity": "None"}.get(
        precond, precond)
    sname = {"chrongear": "ChronGear", "pcsi": "P-CSI", "pcg": "PCG"}.get(
        solver, solver)
    return f"{sname}+{pname}"


# ----------------------------------------------------------------------
# one-shot measured solves, memoized through the artifact cache
# ----------------------------------------------------------------------
# All three former module-level dicts (_CONFIG_CACHE / _PRECOND_CACHE /
# _SOLVE_CACHE) now live in the process-global ArtifactCache: configs
# and preconditioner objects in its memory tier, EVP influence matrices
# and full SolveResult event streams additionally in the disk tier (when
# a cache directory is configured), shared across processes and runs.
# Keys are content digests -- never bare config names -- so two configs
# that share a name but differ in seed/scale/content cannot collide.


def get_cached_config(name, scale=1.0, seed=None, cache=None):
    """Build (or fetch) a named grid configuration.

    Configurations are memoized in the cache's memory tier only: they
    rebuild in seconds and their arrays are large, so persisting them
    buys nothing the downstream artifact entries don't already provide.
    """
    cache = cache if cache is not None else get_cache()
    key = (name, float(scale), seed)
    cfg = cache.get_object("config", key)
    if cfg is None:
        if name == "pop_1deg":
            cfg = pop_1deg(scale=scale, **({} if seed is None else {"seed": seed}))
        elif name in ("pop_0.1deg", "pop_0p1deg"):
            cfg = pop_0p1deg(scale=scale, **({} if seed is None else {"seed": seed}))
        else:
            cfg = get_config(name)
        cache.put_object("config", key, cfg)
    return cfg


def preconditioner_key(config, kind, **kwargs):
    """Artifact-cache key for a preconditioner build.

    Keyed on the grid's *content digest* (not its name): two same-name
    configurations with different seeds get distinct keys.
    """
    return digest_of(CACHE_FORMAT_VERSION, "preconditioner",
                     config.content_digest(), kind, dict(kwargs))


def get_cached_preconditioner(config, kind, cache=None, **kwargs):
    """Build (or fetch) a preconditioner for a cached config.

    The built object is shared through the cache's memory tier; EVP
    builds additionally round-trip their influence matrices through the
    disk tier (see :func:`~repro.precond.evp.evp_for_config`), turning
    the ``O(n^3)`` setup into an npz load in warm processes.
    """
    cache = cache if cache is not None else get_cache()
    key = preconditioner_key(config, kind, **kwargs)
    pre = cache.get_object("preconditioner", key)
    if pre is None:
        if kind == "evp":
            pre = evp_for_config(config, cache=cache, **kwargs)
        else:
            pre = make_preconditioner(kind, config.stencil, **kwargs)
        cache.put_object("preconditioner", key, pre)
    return pre


def reference_rhs(config, seed=20151115):
    """A deterministic physically-ranged right-hand side.

    ``b = A x_ref`` for a random masked ``x_ref``: guarantees
    solvability and a known solution for error checks.
    """
    rng = np.random.default_rng(seed)
    x_ref = rng.standard_normal(config.shape) * config.mask
    return apply_stencil(config.stencil, x_ref)


def _json_safe(value):
    """Coerce a diagnostics value into JSON-representable form.

    Numpy scalars become Python scalars, tuples become lists; anything
    JSON cannot hold round-trips as its ``repr`` string (diagnostics
    only -- measurements never flow through this path).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def _events_to_meta(events):
    return {name: vars(c) for name, c in events.items()
            if any(vars(c).values())}


def _events_from_meta(meta):
    return {name: EventCounts(**{k: int(v) for k, v in counts.items()})
            for name, counts in meta.items()}


def result_to_payload(result):
    """Split a :class:`SolveResult` into npz arrays + JSON metadata.

    Floats survive exactly (JSON emits shortest round-trip reprs); the
    solution array rides in the npz tier bit-for-bit.
    """
    arrays = {"x": np.asarray(result.x)}
    meta = {
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "residual_norm": float(result.residual_norm),
        "b_norm": float(result.b_norm),
        "residual_history": [[int(i), float(r)]
                             for i, r in result.residual_history],
        "solver": result.solver,
        "preconditioner": result.preconditioner,
        "events": _events_to_meta(result.events),
        "setup_events": _events_to_meta(result.setup_events),
        "extra": _json_safe(result.extra),
    }
    return arrays, meta


def result_from_payload(arrays, meta):
    """Rebuild a :class:`SolveResult` from a cached payload.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads; callers treat those as cache misses.
    """
    return SolveResult(
        x=arrays["x"],
        iterations=int(meta["iterations"]),
        converged=bool(meta["converged"]),
        residual_norm=float(meta["residual_norm"]),
        b_norm=float(meta["b_norm"]),
        residual_history=[(int(i), float(r))
                          for i, r in meta["residual_history"]],
        solver=meta["solver"],
        preconditioner=meta["preconditioner"],
        events=_events_from_meta(meta["events"]),
        setup_events=_events_from_meta(meta["setup_events"]),
        extra=dict(meta["extra"]),
    )


# ----------------------------------------------------------------------
# memoized RHS content digests
# ----------------------------------------------------------------------
# ``solve_key`` used to re-hash the full RHS batch -- megabytes for a
# wide multi-RHS batch -- on *every* cache lookup, which dominates a
# warm hit.  The digest is content-addressed, so it can be memoized on
# the array object itself under a freeze protocol: memoizing marks the
# array read-only (``writeable=False``) and the cached digest is only
# trusted while that flag stays down.  Mutating the array requires
# flipping ``writeable`` back on first, which invalidates the memo --
# the next digest call sees a writeable array and re-hashes.  Only
# arrays owning their data participate (a view's base can change under
# a frozen view); everything else hashes fresh each call.

_RHS_DIGEST_MEMO = {}  # id(arr) -> digest, pruned by weakref.finalize


def rhs_digest(rhs):
    """Content digest of a right-hand side, memoized on the array.

    Returns the digest of ``("solve-rhs", shape, float64 content)``.
    The memo freezes ``rhs`` (``flags.writeable = False``); callers that
    need to mutate it afterwards must re-enable ``writeable``, which
    invalidates the cached digest.
    """
    import weakref

    b = np.asarray(rhs, dtype=np.float64)
    memoizable = (b is rhs and isinstance(rhs, np.ndarray)
                  and rhs.base is None)
    if memoizable and not b.flags.writeable:
        cached = _RHS_DIGEST_MEMO.get(id(b))
        if cached is not None:
            return cached
    digest = digest_of("solve-rhs", b.shape, b)
    if memoizable:
        try:
            b.flags.writeable = False
        except ValueError:
            return digest
        if id(b) not in _RHS_DIGEST_MEMO:
            weakref.finalize(b, _RHS_DIGEST_MEMO.pop, id(b), None)
        _RHS_DIGEST_MEMO[id(b)] = digest
    return digest


def solve_key(config, solver, precond, tol, check_freq, max_iterations,
              rhs=None, engine=None, blocks=None, resilience=None,
              **solver_kwargs):
    """Artifact-cache key for one measured solve (content-addressed).

    ``rhs`` is the right-hand side actually solved when it differs from
    the default :func:`reference_rhs`; its **full content** -- every
    column of a ``(ny, nx, nrhs)`` multi-RHS batch -- enters the digest,
    so two batches sharing some columns but differing in any other can
    never collide onto one cache entry.  The content digest is memoized
    on the array via :func:`rhs_digest`, so repeated lookups against
    the same batch hash it once.

    ``engine``/``blocks`` select a decomposed execution context (see
    :func:`measure_solver`); they only enter the key when set, so every
    pre-existing serial-context key is unchanged.
    """
    parts = [CACHE_FORMAT_VERSION, "solve",
             config.content_digest(), solver, precond,
             float(tol), int(check_freq), int(max_iterations),
             dict(solver_kwargs)]
    if engine is not None:
        parts.append(("engine", str(engine),
                      tuple(int(v) for v in blocks)))
    if resilience is not None:
        # A resilient solve records extra ("resilience"-phase) events,
        # so it must never collide with a plain solve's cache entry.
        from repro.parallel.resilience import ResiliencePolicy
        policy = ResiliencePolicy.from_any(resilience)
        parts.append(("resilience",
                      tuple(sorted(policy.to_dict().items()))))
    if rhs is not None:
        parts.append(rhs_digest(rhs))
    return digest_of(*parts)


#: Preconditioner kinds that accept a ``bounds_cache=`` keyword.
_POLY_PREFIXES = ("cheby", "chebyshev", "ncheby", "newton")


def _decomposed_context(config, precond, engine, blocks, cache):
    """Build the execution context for a decomposed measured solve.

    ``engine == "serial"`` runs the per-block serial loop over the
    decomposition; ``"perrank"``/``"batched"`` run the virtual-machine
    engines (the batched engine amortizes per-iteration fixed costs --
    halo exchanges, block-loop dispatch -- across multi-RHS columns,
    which is what the service's coalescer banks on).  The iterates are
    bit-identical across contexts (context-equivalence), so results
    remain comparable with serial-context measurements.
    """
    from repro.parallel import VirtualMachine
    from repro.solvers import DistributedContext

    by, bx = (int(v) for v in blocks)
    decomp = decompose(config.ny, config.nx, by, bx, mask=config.mask)
    if precond == "evp":
        pre = evp_for_config(config, decomp=decomp, cache=cache)
    else:
        pkw = {}
        if str(precond).split(":", 1)[0] in _POLY_PREFIXES:
            pkw["bounds_cache"] = cache
        pre = make_preconditioner(precond, config.stencil,
                                  decomp=decomp, **pkw)
    if engine == "serial":
        return SerialContext(config.stencil, pre, decomp=decomp)
    vm = VirtualMachine(decomp, mask=config.mask, engine=engine)
    return DistributedContext(config.stencil, pre, vm)


def measure_solver(config, solver="chrongear", precond="diagonal",
                   tol=1.0e-13, check_freq=10, max_iterations=60000,
                   cache=None, rhs=None, engine=None, blocks=None,
                   resilience=None, **solver_kwargs):
    """Solve once and cache the :class:`SolveResult` (with events).

    By default the context carries no decomposition: recorded flops
    correspond to a single rank owning the whole grid and are rescaled
    per core count by :func:`rescale_events`.  The full result --
    solution, residual history and the per-phase event streams every
    timing experiment is priced from -- is memoized in the artifact
    cache's memory tier and persisted to its disk tier, so warm
    processes skip the solve entirely and still observe identical
    measurements.

    ``rhs`` overrides the default :func:`reference_rhs` -- a ``(ny, nx)``
    field or a ``(ny, nx, nrhs)`` multi-RHS batch.  The cache key digests
    its full content (see :func:`solve_key`).

    ``engine`` (``"serial"``/``"perrank"``/``"batched"``) with
    ``blocks=(by, bx)`` selects a decomposed context instead (see
    :func:`_decomposed_context`); the solver service uses the batched
    engine so coalesced multi-RHS batches amortize per-iteration fixed
    costs.  Iterates are bit-identical across contexts.

    ``resilience`` (a policy dict, ``True``, or a
    :class:`~repro.parallel.resilience.ResiliencePolicy`) enables the
    in-solve fault-tolerance layer; it requires a virtual-machine
    engine and enters the cache key (a resilient solve records extra
    ``"resilience"``-phase events).
    """
    cache = cache if cache is not None else get_cache()
    if engine is not None and blocks is None:
        raise ConfigurationError(
            "measure_solver: engine requires blocks=(by, bx)")
    if resilience is not None and engine in (None, "serial"):
        raise ConfigurationError(
            "measure_solver: resilience requires a virtual-machine "
            "engine ('perrank' or 'batched')")
    key = solve_key(config, solver, precond, tol, check_freq,
                    max_iterations, rhs=rhs, engine=engine,
                    blocks=blocks, resilience=resilience,
                    **solver_kwargs)
    result = cache.get_object("solve", key)
    if result is not None:
        return result
    loaded = cache.load("solve", key)
    if loaded is not None:
        try:
            result = result_from_payload(*loaded)
        except (KeyError, TypeError, ValueError):
            result = None
        if result is not None:
            return cache.put_object("solve", key, result)
    if engine is None:
        pre = get_cached_preconditioner(config, precond, cache=cache)
        ctx = SerialContext(config.stencil, pre)
    else:
        ctx = _decomposed_context(config, precond, engine, blocks, cache)
    cls = {"chrongear": ChronGearSolver, "pcsi": PCSISolver,
           "pcg": PCGSolver, "pipecg": PipeCGSolver,
           "capcg": CAPCGSolver}[solver]
    extra_kwargs = dict(solver_kwargs)
    if issubclass(cls, SpectralBoundedSolver):
        extra_kwargs.setdefault("bounds_cache", cache)
    b = reference_rhs(config) if rhs is None else np.asarray(
        rhs, dtype=np.float64)
    result = cls(ctx, tol=tol, check_freq=check_freq,
                 max_iterations=max_iterations,
                 **extra_kwargs).solve(b, resilience=resilience)
    result.extra["measured_points"] = config.ny * config.nx
    cache.put_object("solve", key, result)
    cache.store("solve", key, *result_to_payload(result))
    return result


# ----------------------------------------------------------------------
# warmup tasks (pipeline pre-solves)
# ----------------------------------------------------------------------
# A *solve task* names one measured solve as a plain picklable tuple
# ``(config_name, scale, solver, precond, tol)``.  Experiment modules
# advertise the tasks they will need via a ``warmup_tasks(**kwargs)``
# function; the parallel runner fans the deduplicated union out to
# worker processes, which execute them with :func:`run_solve_task` and
# thereby warm the shared disk cache before the plan steps run.


def solve_task(config_name, scale, solver, precond, tol=1.0e-13):
    """Normalize one warmup solve task tuple."""
    return (config_name, float(scale), solver, precond, float(tol))


def run_solve_task(task):
    """Execute one warmup solve task (in a worker or inline)."""
    config_name, scale, solver, precond, tol = task
    cfg = get_cached_config(config_name, scale=scale)
    measure_solver(cfg, solver=solver, precond=precond, tol=tol)
    return task


def solve_task_cost(task):
    """Rough relative cost of a task, for longest-first scheduling.

    Grid points dominate; EVP setup and P-CSI's extra iterations get
    flat multipliers.  Only the *ordering* matters.
    """
    config_name, scale, solver, precond, _tol = task
    ny, nx = FULL_SHAPES.get(config_name, (384, 320))
    points = ny * nx * scale * scale
    mult = (2.0 if precond == "evp" else 1.0)
    mult *= (1.5 if solver == "pcsi" else 1.0)
    return points * mult


def standard_warmup_tasks(configs, combos=SOLVER_CONFIGS, tol=1.0e-13):
    """Tasks for the cross product of ``configs`` x solver ``combos``.

    ``configs`` is an iterable of ``(config_name, scale)`` pairs.
    """
    return [solve_task(name, scale, solver, precond, tol=tol)
            for name, scale in configs
            for solver, precond in combos]


# ----------------------------------------------------------------------
# geometry + event rescaling
# ----------------------------------------------------------------------
def geometry_decomposition(full_shape, cores, aspect=1.5):
    """Decomposition of the paper's *full-size* grid for ``cores`` ranks.

    No land mask: the paper's experiments fix the land-block ratio and
    use space-filling curves so the requested core count is what runs;
    block geometry (the critical block size and halo perimeter) is what
    the timing model needs.  Falls back over factorizations when the
    preferred aspect does not fit.
    """
    ny, nx = full_shape
    return decomposition_for_core_count(ny, nx, cores, aspect=aspect)


def rescale_events(events, measured_points, decomp):
    """Rescale a recorded event dict to a target decomposition.

    ``measured_points`` is the grid size the events were recorded on
    (one rank); the returned counts describe the critical-path rank of
    ``decomp`` on the full-size grid.
    """
    factor = decomp.max_block_points() / float(measured_points)
    words = decomp.halo_words_per_exchange()
    out = {}
    for phase, counts in events.items():
        out[phase] = EventCounts(
            flops=int(round(counts.flops * factor)),
            halo_exchanges=counts.halo_exchanges,
            halo_words=counts.halo_exchanges * words,
            allreduces=counts.allreduces,
            allreduce_words=counts.allreduce_words,
        )
    return out


def rescaled_result_events(result, decomp):
    """Events of ``result`` rescaled to ``decomp`` (loop and setup)."""
    points = result.extra["measured_points"]
    return (rescale_events(result.events, points, decomp),
            rescale_events(result.setup_events, points, decomp))


# ----------------------------------------------------------------------
# result containers + rendering
# ----------------------------------------------------------------------
@dataclass
class Series:
    """One line of a figure: a label and aligned x/y lists."""

    label: str
    x: list
    y: list


@dataclass
class ExperimentResult:
    """A regenerated table/figure: series plus free-form notes."""

    name: str
    title: str
    series: list = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def series_by_label(self, label):
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self, xlabel="x", fmt="{:.4g}"):
        """ASCII table: one row per x value, one column per series."""
        lines = [f"== {self.name}: {self.title} =="]
        if not self.series:
            return "\n".join(lines)
        xs = self.series[0].x
        headers = [xlabel] + [s.label for s in self.series]
        widths = [max(len(h), 12) for h in headers]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        for i, x in enumerate(xs):
            cells = [str(x)]
            for s in self.series:
                val = s.y[i] if i < len(s.y) else float("nan")
                cells.append(fmt.format(val) if isinstance(val, float) else str(val))
            lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        for key, val in self.notes.items():
            lines.append(f"note: {key} = {val}")
        return "\n".join(lines)


def print_result(result, xlabel="x", fmt="{:.4g}"):
    """Convenience used by the ``main()`` entry points."""
    print(result.render(xlabel=xlabel, fmt=fmt))
    return result
