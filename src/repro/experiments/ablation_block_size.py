"""Ablation: EVP tile size vs stability, quality and cost.

The paper caps EVP domains at ~12x12 because marching round-off grows
exponentially with the marching distance (section 4.3).  We sweep the
tile size on a moderate grid and record marching round-off, solver
iterations, preconditioner cost, and whether the solve converged at all
-- beyond the stability edge the preconditioner stops being SPD-like
and ChronGear diverges, which is itself a faithful reproduction of why
the 12x12 bound exists.
"""

from repro.core.errors import SolverError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
    reference_rhs,
)
from repro.precond.evp import evp_for_config
from repro.solvers import ChronGearSolver, SerialContext

DEFAULT_TILES = (4, 6, 8, 10, 12, 14)


def run(config_name="pop_0.1deg", scale=0.125, tiles=DEFAULT_TILES,
        tol=1.0e-13, max_iterations=2000):
    """Round-off, iterations and cost per EVP tile size."""
    config = get_cached_config(config_name, scale=scale)
    b = reference_rhs(config)
    points = config.ny * config.nx

    roundoffs, iters, flops = [], [], []
    for tile in tiles:
        pre = evp_for_config(config, tile_size=tile)
        roundoffs.append(pre.roundoff_estimate())
        flops.append(pre.apply_flops() / points)
        try:
            res = ChronGearSolver(SerialContext(config.stencil, pre),
                                  tol=tol, max_iterations=max_iterations,
                                  raise_on_failure=False).solve(b)
            iters.append(float(res.iterations) if res.converged
                         else float("inf"))
        except SolverError:
            iters.append(float("inf"))

    result = ExperimentResult(
        name="ablation_block_size",
        title=f"EVP tile-size sweep on {config.name} "
              "(inf = diverged)",
        series=[
            Series("marching round-off", list(tiles), roundoffs),
            Series("ChronGear iterations", list(tiles), iters),
            Series("apply flop units per point", list(tiles), flops),
        ],
        notes={"paper stability bound": "12x12"},
    )
    return result


def main():
    print_result(run(), xlabel="tile size", fmt="{:.3g}")


if __name__ == "__main__":
    main()
