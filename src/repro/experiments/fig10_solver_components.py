"""Figure 10: per-component solver times at 0.1 degree on Yellowstone.

Paper results: global-reduction time dominates ChronGear at scale and
*decreases below ~1200 cores* before growing (consistent with Eqs. 2-3:
the masking flops shrink with p while the all-reduce latency grows);
P-CSI has almost no reduction time (convergence checks only).  Boundary
(halo) time decreases for everyone, and EVP halves it by cutting the
iteration count.
"""

from repro.experiments.common import (
    CORES_0P1DEG,
    SOLVER_CONFIGS,
    ExperimentResult,
    Series,
    print_result,
    solver_label,
)
from repro.experiments.common import (
    FULL_SHAPES,
    geometry_decomposition,
    get_cached_config,
    measure_solver,
    rescaled_result_events,
)
from repro.experiments.common import standard_warmup_tasks
from repro.perfmodel import YELLOWSTONE
from repro.perfmodel.timing import halo_seconds, phase_times


def warmup_tasks(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25):
    """Measured solves :func:`run` will need (for pipeline warmup)."""
    return standard_warmup_tasks([("pop_0.1deg", scale)])


def run(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25):
    """Per-day communication-component seconds for every configuration.

    The reduction component is the full ``global_sum`` cost (masking
    flops + all-reduce), matching POP's timers; the boundary component
    is the halo messages and payload.
    """
    config = get_cached_config("pop_0.1deg", scale=scale)
    steps = config.steps_per_day
    decomps = {p: geometry_decomposition(FULL_SHAPES["pop_0.1deg"], p)
               for p in cores}
    result = ExperimentResult(
        name="fig10",
        title="0.1-degree barotropic component seconds per simulated day "
              f"({machine.name})",
    )
    component_series = {"reduction": {}, "boundary": {}}
    for combo in SOLVER_CONFIGS:
        solve = measure_solver(config, combo[0], combo[1])
        reds, halos = [], []
        for p in cores:
            decomp = decomps[p]
            events, _ = rescaled_result_events(solve, decomp)
            reds.append(
                phase_times(events, machine, decomp.num_active).reduction
                * steps)
            halos.append(
                halo_seconds(events, machine, decomp.num_active) * steps)
        component_series["reduction"][combo] = reds
        component_series["boundary"][combo] = halos
    for component in ("reduction", "boundary"):
        for combo in SOLVER_CONFIGS:
            result.series.append(Series(
                label=f"{solver_label(*combo)} {component}",
                x=list(cores),
                y=component_series[component][combo],
            ))
    cg = component_series["reduction"][("chrongear", "diagonal")]
    dips = min(range(len(cores)), key=lambda i: cg[i])
    result.notes["ChronGear reduction-time minimum at cores"] = cores[dips]
    return result


def main():
    print_result(run(), xlabel="cores")


if __name__ == "__main__":
    main()
