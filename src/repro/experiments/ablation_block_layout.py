"""Ablation: ocean block size vs load balance and halo traffic.

Paper (section 5.2): "the choice of ocean block size and layout, which
affects the distribution of work across processors, has a large impact
on performance" -- which is why the paper pins aspect ratio, land ratio
and space-filling curves before comparing solvers.  This ablation opens
that box: for a fixed rank count, sweep the block size and report

* the land-block elimination ratio (smaller blocks expose more land),
* the load imbalance of the SFC-balanced placement (smaller blocks
  balance better),
* the critical-path halo words per exchange (smaller blocks cost more
  perimeter),
* a modeled per-iteration time combining the three effects.
"""

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
)
from repro.operators import MATVEC_FLOPS_PER_POINT
from repro.parallel.placement import placement_for_block_size
from repro.perfmodel import YELLOWSTONE

DEFAULT_BLOCK_SIZES = (12, 18, 24, 36, 48)


def run(config_name="pop_0.1deg", scale=0.25, cores=256,
        block_sizes=DEFAULT_BLOCK_SIZES, machine=YELLOWSTONE,
        flops_per_point=18):
    """Sweep block size at fixed core count."""
    config = get_cached_config(config_name, scale=scale)

    land_ratio, imbalance, halo_words, modeled = [], [], [], []
    for size in block_sizes:
        decomp, report = placement_for_block_size(config, cores, size)
        land_ratio.append(decomp.land_block_ratio)
        imbalance.append(report.imbalance)
        halo_words.append(float(report.max_halo_words))
        # one ChronGear-iteration-equivalent on the critical rank
        t = (flops_per_point * report.max_work * machine.theta
             + machine.halo_time(report.max_halo_words)
             + machine.allreduce_time(report.ranks))
        modeled.append(t * 1e6)  # microseconds

    result = ExperimentResult(
        name="ablation_block_layout",
        title=f"Block size vs balance/communication at {cores} ranks "
              f"({config.name}); per-iteration model in microseconds",
        series=[
            Series("land-block ratio", list(block_sizes), land_ratio),
            Series("load imbalance (max/mean)", list(block_sizes),
                   imbalance),
            Series("critical halo words", list(block_sizes), halo_words),
            Series("modeled us/iteration", list(block_sizes), modeled),
        ],
    )
    best = min(range(len(block_sizes)), key=lambda i: modeled[i])
    result.notes["best block size (this model)"] = block_sizes[best]
    result.notes["paper recipe"] = (
        "3:2 aspect, land ratio 0.25, space-filling curves (section 5.2)"
    )
    return result


def main():
    print_result(run(), xlabel="block size", fmt="{:.4g}")


if __name__ == "__main__":
    main()
