"""Figure 4: block structure of the coefficient matrix.

The paper's Figure 4 illustrates that reordering the unknowns
block-by-block turns the nine-point operator into a *nine-diagonal
block* matrix: each block row couples to at most nine blocks (itself,
four edge neighbors with at most ``3n`` entries on ``n`` rows, and four
corner neighbors with exactly one entry).  This structure is what makes
the block-diagonal preconditioner natural.

We assemble the matrix in blocked ordering and verify/report those
structural facts quantitatively.
"""

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
)
from repro.grid import test_config
from repro.operators import to_sparse
from repro.parallel import decompose


def run(ny=48, nx=48, blocks=3, seed=4, aquaplanet=True):
    """Assemble in blocked order and measure the block coupling pattern.

    Returns per-block-row counts of coupled blocks and entry counts per
    coupling class (self / edge / corner).
    """
    config = test_config(ny, nx, seed=seed, aquaplanet=aquaplanet)
    decomp = decompose(ny, nx, blocks, blocks, curve="rowmajor")
    matrix = to_sparse(config.stencil, order="blocked", decomp=decomp).tocoo()

    # Map each unknown to its block (in blocked numbering, unknowns are
    # contiguous per block).
    boundaries = []
    counter = 0
    for block in decomp.blocks:
        boundaries.append((counter, counter + block.npoints))
        counter += block.npoints

    def block_of(index):
        for bidx, (lo, hi) in enumerate(boundaries):
            if lo <= index < hi:
                return bidx
        raise AssertionError(index)

    nblocks = len(decomp.blocks)
    coupled = [set() for _ in range(nblocks)]
    entries = np.zeros((nblocks, nblocks), dtype=np.int64)
    for r, c in zip(matrix.row, matrix.col):
        br, bc = block_of(int(r)), block_of(int(c))
        coupled[br].add(bc)
        entries[br, bc] += 1

    coupled_counts = [len(s) for s in coupled]
    corner_entries = []
    edge_entries = []
    for bidx, block in enumerate(decomp.blocks):
        neigh = decomp.neighbors(block)
        for d in ("ne", "nw", "se", "sw"):
            n = neigh[d]
            if n is not None:
                corner_entries.append(int(entries[bidx, n.index]))
        for d in ("n", "s", "e", "w"):
            n = neigh[d]
            if n is not None:
                edge_entries.append(int(entries[bidx, n.index]))

    result = ExperimentResult(
        name="fig04",
        title=f"Blocked-ordering structure, {ny}x{nx} grid in "
              f"{blocks}x{blocks} blocks",
        series=[Series("coupled blocks per block row",
                       [f"block {i}" for i in range(nblocks)],
                       [float(c) for c in coupled_counts])],
        notes={
            "max coupled blocks (paper: 9)": max(coupled_counts),
            "corner-coupling entries (paper: exactly 1 each)":
                sorted(set(corner_entries)),
            "max edge-coupling entries (paper: <= 3n)": max(edge_entries),
            "3n for this block size": 3 * decomp.max_block_shape()[0],
        },
    )
    return result


def main():
    print_result(run(), xlabel="block", fmt="{:.0f}")


if __name__ == "__main__":
    main()
