"""Figure 2: ChronGear communication breakdown at 0.1 degree.

Paper result: for the baseline solver, halo-update time decreases with
core count while global-reduction time becomes dominant beyond a couple
thousand cores -- the observation Eq. (2) formalizes.
"""

from repro.experiments.common import (
    CORES_0P1DEG,
    ExperimentResult,
    Series,
    print_result,
)
from repro.experiments.common import (
    FULL_SHAPES,
    geometry_decomposition,
    get_cached_config,
    measure_solver,
    rescaled_result_events,
)
from repro.perfmodel import YELLOWSTONE
from repro.perfmodel.timing import halo_seconds, phase_times


def run(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25):
    """Global-reduction vs halo-update seconds per simulated day.

    The "global reduction" timer wraps POP's ``global_sum`` routine, so
    it carries both the masking flops (``2 N^2/p`` per iteration, which
    shrink with p) and the synchronizing all-reduce (which grows with
    p) -- producing the dip-then-rise the paper observes.
    """
    config = get_cached_config("pop_0.1deg", scale=scale)
    result_solve = measure_solver(config, "chrongear", "diagonal")
    reductions = []
    halos = []
    for p in cores:
        decomp = geometry_decomposition(FULL_SHAPES["pop_0.1deg"], p)
        events, _ = rescaled_result_events(result_solve, decomp)
        steps = config.steps_per_day
        reductions.append(
            phase_times(events, machine, decomp.num_active).reduction * steps)
        halos.append(
            halo_seconds(events, machine, decomp.num_active) * steps)
    result = ExperimentResult(
        name="fig02",
        title="ChronGear communication components, 0.1-degree "
              f"({machine.name})",
        series=[
            Series("global reduction [s/day]", list(cores), reductions),
            Series("halo updating [s/day]", list(cores), halos),
        ],
    )
    red = result.series[0].y
    halo = result.series[1].y
    crossover = next((c for c, r, h in zip(cores, red, halo) if r > h),
                     None)
    result.notes["reduction overtakes halo at cores"] = crossover
    return result


def main():
    print_result(run(), xlabel="cores")


if __name__ == "__main__":
    main()
