"""Ablation: simplified (5-coefficient) vs full (9-coefficient) EVP.

Paper claim (section 4.3): the N/S/E/W coefficients are an order of
magnitude smaller than the corner ones, and dropping them "reduces the
cost of EVP preconditioning by about a half without any significant
impact on the convergence rate".

We measure both halves of the claim: the per-application flop units
(paper: 14 n^2 vs 22 n^2) and the iteration counts for both solvers.
On our synthetic grids the convergence impact is *not* negligible
(the cells are anisotropic enough that the edge coefficients matter);
EXPERIMENTS.md discusses the deviation.
"""

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
    reference_rhs,
)
from repro.precond.evp import evp_for_config
from repro.solvers import ChronGearSolver, PCSISolver, SerialContext


def run(config_name="pop_1deg", scale=1.0, tol=1.0e-13,
        max_iterations=30000):
    """Iterations and flops for simplified vs full EVP."""
    config = get_cached_config(config_name, scale=scale)
    b = reference_rhs(config)
    points = config.ny * config.nx

    variants = []
    for simplified in (True, False):
        pre = evp_for_config(config, simplified=simplified)
        label = "simplified" if simplified else "full"
        cg = ChronGearSolver(SerialContext(config.stencil, pre), tol=tol,
                             max_iterations=max_iterations).solve(b)
        pcsi = PCSISolver(SerialContext(config.stencil, pre), tol=tol,
                          max_iterations=max_iterations).solve(b)
        variants.append((label, pre, cg, pcsi))

    xs = [label for label, *_ in variants]
    result = ExperimentResult(
        name="ablation_evp_simplified",
        title=f"Simplified vs full EVP on {config.name}",
        series=[
            Series("ChronGear iterations", xs,
                   [float(v[2].iterations) for v in variants]),
            Series("P-CSI iterations", xs,
                   [float(v[3].iterations) for v in variants]),
            Series("apply flop units per point", xs,
                   [v[1].apply_flops() / points for v in variants]),
        ],
    )
    simp, full = variants[0][1], variants[1][1]
    result.notes["cost ratio full/simplified (paper ~22/14)"] = round(
        full.apply_flops() / simp.apply_flops(), 2)
    return result


def main():
    print_result(run(), xlabel="variant", fmt="{:.4g}")


if __name__ == "__main__":
    main()
