"""Figure 7: barotropic execution time in 1-degree POP vs core count.

Paper result: with diagonal preconditioning P-CSI beats ChronGear at all
core counts (0.58 s -> 0.41 s per simulated day at 768 cores, 1.4x);
block-EVP improves both at the higher core counts, and P-CSI+EVP
reaches 0.37 s (1.6x over the baseline) at 768 cores.
"""

from repro.experiments.common import (
    CORES_1DEG,
    SOLVER_CONFIGS,
    ExperimentResult,
    Series,
    print_result,
    solver_label,
    standard_warmup_tasks,
)
from repro.experiments.perf_sweeps import barotropic_sweep
from repro.perfmodel import YELLOWSTONE


def warmup_tasks(cores=CORES_1DEG, machine=YELLOWSTONE, scale=1.0,
                 tol=1.0e-13):
    """Measured solves :func:`run` will need (for pipeline warmup)."""
    return standard_warmup_tasks([("pop_1deg", scale)], tol=tol)


def run(cores=CORES_1DEG, machine=YELLOWSTONE, scale=1.0, tol=1.0e-13):
    """Regenerate the figure; returns seconds/simulated-day series."""
    sweep = barotropic_sweep("pop_1deg", cores, machine=machine,
                             scale=scale, tol=tol)
    result = ExperimentResult(
        name="fig07",
        title="1-degree barotropic seconds per simulated day "
              f"({machine.name})",
    )
    for combo in SOLVER_CONFIGS:
        data = sweep[combo]
        result.series.append(Series(
            label=solver_label(*combo),
            x=list(cores),
            y=[t.total for t in data["times"]],
        ))
        result.notes[f"iterations {solver_label(*combo)}"] = \
            data["result"].iterations
    base = result.series_by_label("ChronGear+Diagonal").y
    best = result.series_by_label("P-CSI+EVP").y
    result.notes["speedup at max cores (P-CSI+EVP vs ChronGear+Diagonal)"] = \
        round(base[-1] / best[-1], 2)
    return result


def main():
    print_result(run(), xlabel="cores")


if __name__ == "__main__":
    main()
