"""Ablation: P-CSI sensitivity to the eigenvalue-interval margins.

The Chebyshev interval ``[nu, mu]`` must cover the preconditioned
spectrum.  Underestimating ``nu`` (or overestimating ``mu``) widens the
interval and merely slows convergence (rate ~ sqrt(nu/mu)); but pushing
``nu`` *above* the true smallest eigenvalue leaves modes outside the
interval that the iteration amplifies -- convergence degrades sharply or
fails.  This asymmetry justifies the conservative ``nu_safety = 0.5``
default and quantifies how much the paper's loose Lanczos tolerance
(0.15) can be trusted.
"""

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    get_cached_preconditioner,
    print_result,
    reference_rhs,
)
from repro.operators import extreme_eigenvalues, ocean_submatrix
from repro.solvers import PCSISolver, SerialContext

DEFAULT_NU_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.5, 3.0, 8.0)


def run(config_name="pop_0.1deg", scale=0.125, nu_factors=DEFAULT_NU_FACTORS,
        mu_factor=1.02, tol=1.0e-13, max_iterations=20000):
    """P-CSI iterations when ``nu`` is set to ``factor * nu_true``."""
    config = get_cached_config(config_name, scale=scale)
    b = reference_rhs(config)
    matrix, idx = ocean_submatrix(config.stencil)
    nu_true, mu_true = extreme_eigenvalues(
        matrix, preconditioner_diag=config.stencil.c.ravel()[idx])
    pre = get_cached_preconditioner(config, "diagonal")

    iters = []
    for factor in nu_factors:
        bounds = (nu_true * factor, mu_true * mu_factor)
        solver = PCSISolver(SerialContext(config.stencil, pre),
                            eig_bounds=bounds, tol=tol,
                            max_iterations=max_iterations,
                            raise_on_failure=False)
        res = solver.solve(b)
        iters.append(float(res.iterations) if res.converged else float("inf"))

    result = ExperimentResult(
        name="ablation_eigen_margin",
        title=f"P-CSI iterations vs nu placement ({config.name}); "
              "nu = factor * true lambda_min",
        series=[Series("iterations (inf = no convergence)",
                       list(nu_factors), iters)],
        notes={
            "true interval": (round(nu_true, 5), round(mu_true, 3)),
            "asymmetry": "factors < 1 are safe-but-slower; factors > 1 "
                         "leave modes outside the interval",
        },
    )
    return result


def main():
    print_result(run(), xlabel="nu factor", fmt="{:.0f}")


if __name__ == "__main__":
    main()
