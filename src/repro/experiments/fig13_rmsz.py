"""Figure 13: ensemble RMSZ separates the loose-tolerance cases.

Paper result: scoring each case's monthly temperature against a
40-member perturbed-initial-condition ensemble (point-wise mean and
spread), the 1e-10 and 1e-11 cases sit clearly outside the envelope of
member RMSZ values, while the default and stricter tolerances -- and,
decisively for the release, the new P-CSI solver -- fall inside.  This
is the evaluation that admitted P-CSI+EVP into POP.
"""

from repro.core.constants import DEFAULT_ENSEMBLE_SIZE
from repro.experiments.common import ExperimentResult, Series, print_result
from repro.experiments.verification_common import (
    DEFAULT_TOL,
    TOLERANCE_CASES,
    reference_ensemble,
    run_case,
    verification_mask,
)
from repro.verification import evaluate_consistency


def run(months=12, size=DEFAULT_ENSEMBLE_SIZE, tolerances=TOLERANCE_CASES,
        days_per_month=30, include_pcsi=True, slack=1.5,
        max_months_outside=1):
    """RMSZ per month for every case, plus the ensemble envelope.

    The verdict allows a candidate to exceed ``slack`` times the member
    envelope for ``max_months_outside`` months: a candidate is *not* a
    member (its solver differs), and with reduced ensemble sizes the
    member-max envelope underestimates the population's.  The flagged
    loose-tolerance cases exceed the envelope by one to two orders of
    magnitude, far beyond any such allowance.
    """
    mask = verification_mask()
    ensemble = reference_ensemble(months, size=size,
                                  days_per_month=days_per_month)
    envelope = ensemble.member_rmsz_range(mask)
    xs = list(range(1, months + 1))

    result = ExperimentResult(
        name="fig13",
        title=f"Monthly temperature RMSZ vs {size}-member ensemble",
        series=[
            Series("ensemble min", xs, [lo for lo, _ in envelope]),
            Series("ensemble max", xs, [hi for _, hi in envelope]),
        ],
    )

    verdicts = {}
    cases = [(f"tol={tol:g}", dict(tol=tol)) for tol in tolerances]
    if include_pcsi:
        cases.append(("P-CSI+EVP", dict(solver="pcsi", precond="evp",
                                        tol=DEFAULT_TOL)))
    for label, kwargs in cases:
        fields = run_case(months, days_per_month=days_per_month, **kwargs)
        report = evaluate_consistency(fields, ensemble, mask, slack=slack,
                                      max_months_outside=max_months_outside)
        result.series.append(Series(label=label, x=xs, y=report.scores))
        verdicts[label] = ("consistent" if report.consistent
                           else "INCONSISTENT")
    result.notes["verdicts"] = verdicts
    result.notes["paper finding"] = (
        "1e-10 and 1e-11 outside the envelope; defaults, stricter "
        "tolerances and P-CSI consistent"
    )
    return result


def main():
    print_result(run(), xlabel="month", fmt="{:.3g}")


if __name__ == "__main__":
    main()
