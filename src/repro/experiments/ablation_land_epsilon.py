"""Ablation: the EVP preconditioner's fictitious land depth.

The epsilon-land embedding (DESIGN.md section 6) makes every marching
coefficient nonzero.  Too small an epsilon and the marching recurrence
amplifies round-off through land runs until the preconditioner stops
being SPD-like (solves stall); too large and land conducts noticeably,
degrading the preconditioner's resemblance to ``A`` near coasts.  The
sweep shows the usable plateau around the 0.1 default.
"""

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
    reference_rhs,
)
from repro.precond.evp import evp_for_config
from repro.solvers import ChronGearSolver, SerialContext

DEFAULT_EPSILONS = (0.05, 0.1, 0.2, 0.35, 0.5)


def run(config_name="pop_0.1deg", scale=0.125, epsilons=DEFAULT_EPSILONS,
        tol=1.0e-13, max_iterations=2000):
    """ChronGear iterations and marching round-off per land epsilon."""
    config = get_cached_config(config_name, scale=scale)
    b = reference_rhs(config)

    iters, roundoffs = [], []
    for eps in epsilons:
        pre = evp_for_config(config, land_epsilon=eps)
        roundoffs.append(pre.roundoff_estimate())
        res = ChronGearSolver(SerialContext(config.stencil, pre), tol=tol,
                              max_iterations=max_iterations,
                              raise_on_failure=False).solve(b)
        iters.append(float(res.iterations) if res.converged else float("inf"))

    result = ExperimentResult(
        name="ablation_land_epsilon",
        title=f"EVP land-epsilon sweep ({config.name}); inf = stalled",
        series=[
            Series("ChronGear iterations", list(epsilons), iters),
            Series("marching round-off", list(epsilons), roundoffs),
        ],
        notes={"default": 0.1},
    )
    return result


def main():
    print_result(run(), xlabel="land epsilon", fmt="{:.3g}")


if __name__ == "__main__":
    main()
