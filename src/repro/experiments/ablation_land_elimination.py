"""Ablation: land-block elimination and space-filling-curve placement.

POP removes all-land blocks from the decomposition and orders the
remaining blocks along a space-filling curve (Dennis 2007); the paper's
0.1-degree runs fix a land-block ratio of 0.25.  We decompose our
earthlike grid at several block counts and compare: active ranks with
and without elimination, and the placement locality of the Hilbert,
Morton and row-major orders (mean lattice distance between consecutive
ranks -- a proxy for neighbor-communication distance).
"""

from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_cached_config,
    print_result,
)
from repro.parallel import decompose
from repro.parallel.sfc import curve_locality_score, sfc_sort_blocks

DEFAULT_LATTICES = ((8, 12), (12, 18), (16, 24), (24, 36))


def run(config_name="pop_0.1deg", scale=0.25, lattices=DEFAULT_LATTICES):
    """Active-rank savings and curve locality per lattice size."""
    config = get_cached_config(config_name, scale=scale)
    xs = [f"{a}x{b}" for a, b in lattices]

    total_blocks, active_blocks, land_ratio = [], [], []
    for mby, mbx in lattices:
        decomp = decompose(config.ny, config.nx, mby, mbx, mask=config.mask)
        total_blocks.append(float(decomp.num_blocks))
        active_blocks.append(float(decomp.num_active))
        land_ratio.append(decomp.land_block_ratio)

    result = ExperimentResult(
        name="ablation_land_elimination",
        title=f"Land-block elimination and SFC placement ({config.name})",
        series=[
            Series("lattice blocks", xs, total_blocks),
            Series("active (ocean) blocks", xs, active_blocks),
            Series("land-block ratio (paper fixes 0.25)", xs, land_ratio),
        ],
    )
    for curve in ("hilbert", "morton", "rowmajor"):
        scores = [
            curve_locality_score(sfc_sort_blocks(mby, mbx, curve))
            for mby, mbx in lattices
        ]
        result.series.append(Series(f"{curve} locality (lower=better)",
                                    xs, scores))
    return result


def main():
    print_result(run(), xlabel="lattice", fmt="{:.3g}")


if __name__ == "__main__":
    main()
