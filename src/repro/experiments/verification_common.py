"""Shared setup for the section-6 verification experiments (Figs 12-13).

Defines the *verification configuration*: a small MiniPOP tuned into its
chaotic regime (strong thermal feedback; an O(1e-14) temperature
perturbation saturates within a few simulated months -- the analogue of
the real ocean's sensitivity that motivates the paper's ensemble
methodology), plus factories for solver variants and a cached reference
ensemble.

Scaling note: the paper runs 40-member, 12-month ensembles of 1-degree
CESM-POP; we run the same protocol on the mini model (DESIGN.md
section 3).  Sizes are parameters, with paper values as defaults.
"""

import numpy as np

from repro.barotropic import MiniPOP
from repro.core.constants import DEFAULT_ENSEMBLE_SIZE, ENSEMBLE_PERTURBATION
from repro.grid import test_config
from repro.precond import make_preconditioner
from repro.precond.evp import evp_for_config
from repro.solvers import ChronGearSolver, PCSISolver, SerialContext
from repro.verification import Ensemble, run_perturbed_ensemble

#: Verification grid: small, earthlike, 4 solves/day.
VERIFICATION_SHAPE = (24, 32)
VERIFICATION_SEED = 11
VERIFICATION_DT = 10800.0

#: Chaos parameters (measured: e-folding of a 1e-14 perturbation in a
#: few days; saturation within ~5 months).
CHAOS_PARAMS = dict(
    gamma_feedback=1.0e-7,
    kappa=300.0,
    restore_days=365.0,
    velocity_gain=1.5,
)

#: Default solver tolerance (POP default, paper section 6).
DEFAULT_TOL = 1.0e-13

#: The tolerance sweep of Figures 12-13.
TOLERANCE_CASES = (1e-10, 1e-11, 1e-12, 1e-13, 1e-14, 1e-15, 1e-16)

#: Reference case for RMSE (the strictest tolerance, as in the paper).
REFERENCE_TOL = 1e-16


def make_model(solver="chrongear", precond="diagonal", tol=DEFAULT_TOL,
               max_iterations=4000):
    """A fresh verification-configuration MiniPOP.

    Tolerances at or below ~1e-15 relative cannot always be met in
    double precision (exactly as in POP); the solver then returns its
    stagnated best, which is the intended behavior for the strict-
    tolerance cases.
    """
    config = test_config(*VERIFICATION_SHAPE, seed=VERIFICATION_SEED,
                         dt=VERIFICATION_DT)
    if precond == "evp":
        pre = evp_for_config(config)
    else:
        pre = make_preconditioner(precond, config.stencil)
    cls = {"chrongear": ChronGearSolver, "pcsi": PCSISolver}[solver]
    linear = cls(SerialContext(config.stencil, pre), tol=tol,
                 max_iterations=max_iterations, raise_on_failure=False)
    return MiniPOP(config, linear, **CHAOS_PARAMS)


def verification_mask():
    """The open-ocean mask used by the metrics (paper: open seas only).

    The verification grid's isolated-basin cleanup already removed
    marginal seas, so this is simply the ocean mask.
    """
    config = test_config(*VERIFICATION_SHAPE, seed=VERIFICATION_SEED,
                         dt=VERIFICATION_DT)
    return config.mask


def run_case(months, solver="chrongear", precond="diagonal",
             tol=DEFAULT_TOL, days_per_month=30, perturb_seed=None):
    """Run one candidate case; returns monthly-mean temperature fields."""
    model = make_model(solver=solver, precond=precond, tol=tol)
    if perturb_seed is not None:
        model.perturb_temperature(ENSEMBLE_PERTURBATION, seed=perturb_seed)
    return model.run_months(months, days_per_month=days_per_month)


_ENSEMBLE_CACHE = {}


def reference_ensemble(months, size=DEFAULT_ENSEMBLE_SIZE,
                       days_per_month=30, base_seed=2015):
    """The cached perturbed-initial-condition reference ensemble.

    Built with the default configuration (ChronGear+diagonal at the
    default tolerance), as the paper's reference was built with the
    released solver.
    """
    key = (months, size, days_per_month, base_seed)
    if key not in _ENSEMBLE_CACHE:
        _ENSEMBLE_CACHE[key] = run_perturbed_ensemble(
            make_model, months, size=size, base_seed=base_seed,
            days_per_month=days_per_month,
        )
    return _ENSEMBLE_CACHE[key]
