"""Ablation: which diagnostic field reveals solver differences best?

Paper (section 6): "we ultimately chose to evaluate only the
three-dimensional temperature field (instead of the two-dimensional SSH)
as we found it to be the most useful diagnostic variable for revealing
differences."

We score a loosened-tolerance candidate against small reference
ensembles built from each field's monthly means and report the
separation margin -- the candidate's RMSZ relative to the ensemble
envelope -- for temperature and for SSH.  A larger margin means the
field flags the bad solver more decisively.
"""

import numpy as np

from repro.experiments.common import ExperimentResult, Series, print_result
from repro.experiments.verification_common import make_model, verification_mask
from repro.core.constants import ENSEMBLE_PERTURBATION
from repro.verification import Ensemble, rmsz_series


def _monthly_fields(model, months, days_per_month):
    return model.run_months_fields(months, days_per_month=days_per_month,
                                   fields=("temperature", "eta"))


def run(months=4, size=8, days_per_month=15, loose_tol=1e-10,
        base_seed=2015):
    """Separation margin per diagnostic field for a loose-tolerance case."""
    mask = verification_mask()

    members = {"temperature": [], "eta": []}
    seeds = np.random.SeedSequence(base_seed).generate_state(size)
    for seed in seeds:
        model = make_model()
        model.perturb_temperature(ENSEMBLE_PERTURBATION, seed=int(seed))
        fields = _monthly_fields(model, months, days_per_month)
        for name in members:
            members[name].append(fields[name])

    candidate = _monthly_fields(make_model(tol=loose_tol), months,
                                days_per_month)

    xs = list(range(1, months + 1))
    result = ExperimentResult(
        name="ablation_diagnostic_field",
        title=f"Separation of a tol={loose_tol:g} candidate by diagnostic "
              "field (RMSZ / envelope top)",
    )
    margins = {}
    for name in ("temperature", "eta"):
        ensemble = Ensemble(members[name])
        scores = rmsz_series(candidate[name], ensemble.means(),
                             ensemble.stds(), mask)
        envelope = ensemble.member_rmsz_range(mask)
        margin = [s / hi if hi > 0 else float("inf")
                  for s, (_, hi) in zip(scores, envelope)]
        label = "temperature" if name == "temperature" else "SSH"
        result.series.append(Series(f"{label} RMSZ", xs, scores))
        result.series.append(Series(f"{label} margin", xs, margin))
        margins[label] = float(np.median(margin))

    result.notes["median margin"] = {k: round(v, 2)
                                     for k, v in margins.items()}
    result.notes["paper choice"] = (
        "temperature found most useful for revealing differences"
    )
    result.notes["more discriminating field here"] = max(
        margins, key=margins.get)
    return result


def main():
    print_result(run(), xlabel="month", fmt="{:.3g}")


if __name__ == "__main__":
    main()
