"""Core-count performance sweeps shared by the scaling figures.

Produces, for each (solver, preconditioner) combination and each core
count, the modeled per-simulated-day :class:`PhaseTimes` of the
barotropic mode on the paper's full-size grid -- the quantity Figures
7, 8, 10 and 11 plot -- plus the whole-model totals Figures 1, 8
(right), 9 and Table 1 derive from.
"""

from repro.experiments.calibration import calibrated_pop_model
from repro.experiments.common import (
    FULL_SHAPES,
    SOLVER_CONFIGS,
    geometry_decomposition,
    get_cached_config,
    measure_solver,
    rescaled_result_events,
)
from repro.perfmodel import YELLOWSTONE, phase_times
from repro.perfmodel.pop import (
    average_best,
    noisy_run_times,
    simulation_rate_sypd,
)


def barotropic_sweep(config_name, cores_list, machine=YELLOWSTONE,
                     scale=None, combos=SOLVER_CONFIGS, tol=1.0e-13,
                     check_freq=10):
    """Modeled barotropic day times across core counts.

    Returns ``{(solver, precond): {"times": [PhaseTimes], "result":
    SolveResult}}`` with one entry per core count in ``cores_list``.
    """
    base = config_name.split("@")[0]
    if scale is None:
        scale = 1.0 if base == "pop_1deg" else 0.25
    config = get_cached_config(base, scale=scale)
    full_shape = FULL_SHAPES[base]
    decomps = {p: geometry_decomposition(full_shape, p) for p in cores_list}

    out = {}
    for solver, precond in combos:
        result = measure_solver(config, solver, precond, tol=tol,
                                check_freq=check_freq)
        times = []
        for p in cores_list:
            decomp = decomps[p]
            events, _setup = rescaled_result_events(result, decomp)
            per_solve = phase_times(events, machine, decomp.num_active)
            times.append(per_solve.scaled(config.steps_per_day))
        out[(solver, precond)] = {"times": times, "result": result,
                                  "config": config}
    return out


def whole_model_sweep(config_name, cores_list, machine=YELLOWSTONE,
                      scale=None, combos=SOLVER_CONFIGS, tol=1.0e-13):
    """Barotropic + baroclinic day times and simulation rates.

    Returns ``{(solver, precond): {"barotropic": [s], "baroclinic": [s],
    "total": [s], "sypd": [...]}}``.
    """
    base = config_name.split("@")[0]
    sweep = barotropic_sweep(config_name, cores_list, machine=machine,
                             scale=scale, combos=combos, tol=tol)
    pop_model = calibrated_pop_model(machine=machine)
    shape = FULL_SHAPES[base]
    n_global = shape[0] * shape[1]
    config = next(iter(sweep.values()))["config"]
    steps = config.steps_per_day

    out = {}
    for combo, data in sweep.items():
        barotropic = [t.total for t in data["times"]]
        baroclinic = [
            pop_model.baroclinic_day_time(n_global, steps, p, machine)
            for p in cores_list
        ]
        total = [bt + bc for bt, bc in zip(barotropic, baroclinic)]
        out[combo] = {
            "barotropic": barotropic,
            "baroclinic": baroclinic,
            "total": total,
            "sypd": [simulation_rate_sypd(t) for t in total],
            "times": data["times"],
            "result": data["result"],
        }
    return out


def noisy_barotropic_sweep(config_name, cores_list, machine, seed=2015,
                           n_runs=5, best_k=3, **kwargs):
    """Barotropic day times under run-to-run noise (the Edison protocol).

    Each configuration/core count is "run" ``n_runs`` times with
    multiplicative log-normal noise on communication phases; reported
    time is the mean of the best ``best_k`` -- the paper's section-5.3
    procedure for ChronGear on Edison.
    """
    sweep = barotropic_sweep(config_name, cores_list, machine=machine,
                             **kwargs)
    out = {}
    for combo_idx, (combo, data) in enumerate(sorted(sweep.items())):
        reported = []
        spreads = []
        for p_idx, times in enumerate(data["times"]):
            runs = noisy_run_times(times, machine,
                                   seed=seed + 1000 * combo_idx + p_idx,
                                   n_runs=n_runs)
            reported.append(average_best(runs, k=best_k))
            spreads.append(max(runs) - min(runs))
        out[combo] = {"reported": reported, "spread": spreads,
                      "times": data["times"], "result": data["result"]}
    return out
