"""Figure 8: 0.1-degree barotropic time and simulation rate, Yellowstone.

Paper results at 16,875 cores: ChronGear+diagonal degrades past ~2,700
cores while P-CSI stays flat; P-CSI+diagonal accelerates the barotropic
mode 4.3x (19.0 s -> 4.4 s per simulated day), EVP preconditioning
brings ChronGear to 1.4x and P-CSI to 5.2x; the core simulation rate
rises from 6.2 to 10.5 simulated years per wall-clock day (1.7x).
"""

from repro.experiments.common import (
    CORES_0P1DEG,
    SOLVER_CONFIGS,
    ExperimentResult,
    Series,
    print_result,
    solver_label,
    standard_warmup_tasks,
)
from repro.experiments.calibration import calibration_tasks
from repro.experiments.perf_sweeps import whole_model_sweep
from repro.perfmodel import YELLOWSTONE


def warmup_tasks(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25,
                 tol=1.0e-13):
    """Measured solves :func:`run` will need (for pipeline warmup)."""
    return (standard_warmup_tasks([("pop_0.1deg", scale)], tol=tol)
            + calibration_tasks())


def run(cores=CORES_0P1DEG, machine=YELLOWSTONE, scale=0.25, tol=1.0e-13):
    """Regenerate both panels; barotropic s/day and SYPD series."""
    sweep = whole_model_sweep("pop_0.1deg", cores, machine=machine,
                              scale=scale, tol=tol)
    result = ExperimentResult(
        name="fig08",
        title="0.1-degree barotropic s/day (left) and simulated years "
              f"per day (right), {machine.name}",
    )
    for combo in SOLVER_CONFIGS:
        data = sweep[combo]
        label = solver_label(*combo)
        result.series.append(Series(label=f"{label} [s/day]",
                                    x=list(cores), y=data["barotropic"]))
    for combo in SOLVER_CONFIGS:
        data = sweep[combo]
        label = solver_label(*combo)
        result.series.append(Series(label=f"{label} [SYPD]",
                                    x=list(cores), y=data["sypd"]))

    base = sweep[("chrongear", "diagonal")]
    best = sweep[("pcsi", "evp")]
    pdiag = sweep[("pcsi", "diagonal")]
    cgevp = sweep[("chrongear", "evp")]
    result.notes["barotropic speedup P-CSI+Diagonal (paper 4.3x)"] = round(
        base["barotropic"][-1] / pdiag["barotropic"][-1], 2)
    result.notes["barotropic speedup ChronGear+EVP (paper 1.4x)"] = round(
        base["barotropic"][-1] / cgevp["barotropic"][-1], 2)
    result.notes["barotropic speedup P-CSI+EVP (paper 5.2x)"] = round(
        base["barotropic"][-1] / best["barotropic"][-1], 2)
    result.notes["SYPD baseline -> P-CSI+EVP (paper 6.2 -> 10.5)"] = (
        round(base["sypd"][-1], 2), round(best["sypd"][-1], 2))
    return result


def main():
    print_result(run(), xlabel="cores")


if __name__ == "__main__":
    main()
