"""Figure 12: monthly temperature RMSE cannot separate solver tolerances.

Paper result: running 1-degree cases with barotropic tolerances from
1e-10 to 1e-16 and computing monthly RMSE of temperature against the
strictest case shows *no ordering by tolerance* -- chaotic divergence
saturates the difference between any two runs, so "error introduced by
modifying the solver convergence tolerance is not revealed" (during some
months the loosest case even has the smallest RMSE).  This failure is
what motivates the ensemble-based RMSZ method of Figure 13.
"""

import numpy as np

from repro.experiments.common import ExperimentResult, Series, print_result
from repro.experiments.verification_common import (
    REFERENCE_TOL,
    TOLERANCE_CASES,
    run_case,
    verification_mask,
)
from repro.verification import rmse_series


def run(months=12, tolerances=TOLERANCE_CASES, days_per_month=30):
    """Monthly RMSE of each tolerance case against the strictest one."""
    mask = verification_mask()
    reference = run_case(months, tol=REFERENCE_TOL,
                         days_per_month=days_per_month)
    result = ExperimentResult(
        name="fig12",
        title="Monthly temperature RMSE vs the strictest-tolerance case",
    )
    finals = {}
    for tol in tolerances:
        if tol == REFERENCE_TOL:
            continue
        fields = run_case(months, tol=tol, days_per_month=days_per_month)
        series = rmse_series(fields, reference, mask)
        result.series.append(Series(label=f"tol={tol:g}",
                                    x=list(range(1, months + 1)),
                                    y=series))
        finals[tol] = series[-1]

    # The paper's point: RMSE does not order by tolerance once chaos
    # saturates.  Quantify with the rank correlation between log(tol)
    # and the late-month RMSE.
    tols = sorted(finals)
    ranks_by_tol = np.argsort(np.argsort([finals[t] for t in tols]))
    ideal = np.arange(len(tols))[::-1]  # loosest tol -> biggest RMSE
    agreement = float(np.mean(ranks_by_tol == ideal))
    result.notes["final-month RMSE ordered by tolerance (fraction)"] = \
        round(agreement, 2)
    result.notes["paper finding"] = \
        "RMSE does NOT reveal tolerance differences (no consistent ordering)"
    return result


def main():
    print_result(run(), xlabel="month", fmt="{:.3e}")


if __name__ == "__main__":
    main()
