"""Figure 5 / section 4.2: EVP marching accuracy and cost.

The paper states that EVP solves Dirichlet blocks "with an acceptable
round-off error of O(1e-8)" up to 12x12 in double precision, at a solve
cost of ``C_evp = 2*9 n^2 + (2n-5)^2`` versus LU's ``O(n^4)``.

We measure both: the relative round-off of EVP block solves as a
function of block size (it grows exponentially with the marching
distance -- the reason tiles are capped), and the flop-unit cost ratio
EVP/LU.
"""

import numpy as np

from repro.experiments.common import ExperimentResult, Series, print_result
from repro.grid import test_config
from repro.operators import apply_stencil
from repro.precond import BlockLUPreconditioner
from repro.precond.evp import EVPBlockPreconditioner

DEFAULT_SIZES = (4, 6, 8, 10, 12, 14, 16)


def run(sizes=DEFAULT_SIZES, seed=3, trials=5):
    """Round-off and cost of single-tile EVP solves vs block size."""
    roundoffs = []
    evp_flops = []
    lu_flops = []
    for n in sizes:
        config = test_config(n, n, seed=seed, aquaplanet=True)
        pre = EVPBlockPreconditioner(config.stencil, tile_size=n,
                                     simplified=False)
        lu = BlockLUPreconditioner(config.stencil, tile_size=n)
        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(trials):
            x_true = rng.standard_normal((n, n))
            y = apply_stencil(config.stencil, x_true)
            x = pre.apply_global(y)
            worst = max(worst, float(np.abs(x - x_true).max()
                                     / np.abs(x_true).max()))
        roundoffs.append(worst)
        evp_flops.append(float(pre.apply_flops()))
        lu_flops.append(float(lu.apply_flops()))

    result = ExperimentResult(
        name="fig05",
        title="EVP marching: solve round-off and cost vs block size",
        series=[
            Series("relative round-off", list(sizes), roundoffs),
            Series("EVP solve flop units", list(sizes), evp_flops),
            Series("LU solve flop units", list(sizes), lu_flops),
            Series("LU/EVP cost ratio", list(sizes),
                   [l / e for l, e in zip(lu_flops, evp_flops)]),
        ],
        notes={
            "round-off at 12x12 (paper: ~1e-8)":
                f"{roundoffs[sizes.index(12)]:.1e}" if 12 in sizes else "n/a",
            "paper formula at n=12 (2*9n^2 + (2n-5)^2)":
                2 * 9 * 144 + 19 * 19,
        },
    )
    return result


def main():
    print_result(run(), xlabel="block size n", fmt="{:.3g}")


if __name__ == "__main__":
    main()
